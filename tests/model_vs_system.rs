//! The analytical model and the measured system must agree on the paper's
//! qualitative claims (shape-level validation at test-friendly scale).

use access_support::costmodel::{profiles, CostModel, Ext, Mix, Op};
use access_support::prelude::*;
use access_support::workload::scale_profile;

fn core_ext(ext: Ext) -> Extension {
    match ext {
        Ext::Canonical => Extension::Canonical,
        Ext::Full => Extension::Full,
        Ext::Left => Extension::LeftComplete,
        Ext::Right => Extension::RightComplete,
    }
}

fn measured_backward_cost(scaled: &Profile, ext: Option<Ext>) -> f64 {
    let spec = GeneratorSpec::from_profile(scaled, 1.0);
    let n = scaled.n;
    let mix = Mix::new(vec![(1.0, Op::bw(0, n))], vec![], 0.0);
    let mut g = generate(&spec, 17);
    let id = ext.map(|e| {
        let m = g.path.arity(false) - 1;
        g.db.create_asr(
            g.path.clone(),
            AsrConfig {
                extension: core_ext(e),
                decomposition: Decomposition::binary(m),
                keep_set_oids: false,
            },
        )
        .unwrap()
    });
    let trace = generate_trace(&g, &mix, 15, 23);
    g.db.stats().reset();
    let path = g.path.clone();
    execute_trace(&mut g.db, id, &path, &trace).mean_cost()
}

/// Figure 6's shape holds in the measured system: every supported design
/// is far below the exhaustive search, and the analytical prediction for
/// the *same scaled profile* lands within a reasonable band of the
/// measurement.
#[test]
fn figure6_shape_empirically() {
    let scaled = scale_profile(&profiles::fig6_profile().profile, 10.0);
    let model = CostModel::new(scaled.clone());
    let n = scaled.n;

    let naive = measured_backward_cost(&scaled, None);
    let predicted_naive = model.qnas_bw(0, n);
    assert!(
        naive / predicted_naive > 0.3 && naive / predicted_naive < 3.0,
        "naive measured {naive:.1} vs predicted {predicted_naive:.1}"
    );

    for ext in Ext::ALL {
        let measured = measured_backward_cost(&scaled, Some(ext));
        assert!(
            measured * 3.0 < naive,
            "{ext}: supported {measured:.1} must be well below naive {naive:.1}"
        );
    }
}

/// Figure 11's shape holds empirically: for ins_3, left << right, and the
/// full extension performs no object-representation search at all.
#[test]
fn figure11_shape_empirically() {
    let scaled = scale_profile(&profiles::fig11_profile().profile, 25.0);
    let spec = GeneratorSpec::from_profile(&scaled, 1.0);
    let mix = Mix::new(vec![], vec![(1.0, Op::ins(3))], 1.0);

    let mut costs = std::collections::HashMap::new();
    for ext in Ext::ALL {
        let mut g = generate(&spec, 31);
        let m = g.path.arity(false) - 1;
        let id =
            g.db.create_asr(
                g.path.clone(),
                AsrConfig {
                    extension: core_ext(ext),
                    decomposition: Decomposition::binary(m),
                    keep_set_oids: false,
                },
            )
            .unwrap();
        let trace = generate_trace(&g, &mix, 12, 77);
        g.db.stats().reset();
        let path = g.path.clone();
        let report = execute_trace(&mut g.db, Some(id), &path, &trace);
        costs.insert(ext.name(), report.mean_cost());
    }
    assert!(
        costs["left"] * 3.0 < costs["right"],
        "left {:.1} must be far below right {:.1}",
        costs["left"],
        costs["right"]
    );
    assert!(
        costs["left"] * 2.0 < costs["canonical"],
        "left {:.1} must beat canonical {:.1}",
        costs["left"],
        costs["canonical"]
    );
}

/// The optimizer's recommended design actually beats an arbitrary
/// non-recommended one when both are executed on the generated system.
#[test]
fn optimizer_choice_wins_empirically() {
    let model = profiles::fig14_profile();
    let mix_spec = profiles::fig14_mix(0.2);
    let best = best_design(&model, &mix_spec);
    let best_ext = best.extension.expect("query-heavy mix wants support");

    let scaled = scale_profile(&model.profile, 25.0);
    let spec = GeneratorSpec::from_profile(&scaled, 1.0);

    let run = |ext: Ext, cuts: Vec<usize>| -> f64 {
        let mut g = generate(&spec, 3);
        let id =
            g.db.create_asr(
                g.path.clone(),
                AsrConfig {
                    extension: core_ext(ext),
                    decomposition: Decomposition::new(cuts).unwrap(),
                    keep_set_oids: false,
                },
            )
            .unwrap();
        let trace = generate_trace(&g, &mix_spec, 60, 13);
        g.db.stats().reset();
        let path = g.path.clone();
        execute_trace(&mut g.db, Some(id), &path, &trace).mean_cost()
    };

    let tuned = run(best_ext, best.decomposition.0.clone());
    // A deliberately poor design for this anchored, update-light mix.
    let poor = run(Ext::Right, (0..=model.n()).collect());
    assert!(
        tuned < poor,
        "optimizer pick {tuned:.1}/op must beat the poor design {poor:.1}/op"
    );
}
