//! Cross-crate integration tests: the full stack from schema definition
//! through ASR-backed queries and maintained updates, with page-access
//! assertions.

use access_support::prelude::*;

/// Build the company DB, index it under every extension × three
/// decompositions, and check that all designs answer the paper's queries
/// identically (falling back to naive evaluation where formula 35 demands
/// it).
#[test]
fn every_design_answers_the_paper_queries() {
    for ext in Extension::ALL {
        for cuts in [vec![0usize, 3], vec![0, 1, 2, 3], vec![0, 2, 3]] {
            let mut ex = company_database();
            let path = ex.path.clone();
            let config = AsrConfig {
                extension: ext,
                decomposition: Decomposition::new(cuts.clone()).unwrap(),
                keep_set_oids: false,
            };
            let id = ex.db.create_asr(path.clone(), config).unwrap();

            // Query 2 (backward, whole chain).
            let divisions = ex
                .db
                .backward(id, 0, 3, &Cell::Value(Value::string("Door")))
                .unwrap();
            assert_eq!(divisions.len(), 2, "{ext} {cuts:?}");

            // Query 3 (forward, whole chain).
            let auto = ex.by_name("Auto").unwrap();
            let names = ex.db.forward(id, 0, 3, auto).unwrap();
            assert_eq!(
                names,
                vec![Cell::Value(Value::string("Door"))],
                "{ext} {cuts:?}"
            );

            // Partial span with fallback.
            let sec = ex.by_name("560 SEC").unwrap();
            let parts = ex.db.forward(id, 1, 2, sec).unwrap();
            assert_eq!(parts.len(), 1, "{ext} {cuts:?}");
        }
    }
}

/// Supported evaluation must touch fewer pages than navigation for the
/// whole-chain backward query on a non-trivial population.
#[test]
fn supported_queries_cost_less_pages() {
    let spec = GeneratorSpec {
        counts: vec![20, 100, 200, 1000, 2000],
        defined: vec![18, 80, 160, 400],
        fan: vec![2, 2, 3, 4],
        sizes: vec![500, 400, 300, 300, 100],
    };
    let mut g = generate(&spec, 5);
    let target = Cell::Oid(g.levels[4][0]);
    let path = g.path.clone();

    g.db.stats().reset();
    g.db.backward_unindexed(&path, 0, 4, &target).unwrap();
    let naive_cost = g.db.stats().accesses();

    let id =
        g.db.create_asr(path.clone(), AsrConfig::binary(Extension::Full, &path))
            .unwrap();
    g.db.stats().reset();
    g.db.backward(id, 0, 4, &target).unwrap();
    let supported_cost = g.db.stats().accesses();

    assert!(
        supported_cost * 5 < naive_cost,
        "supported {supported_cost} should be at least 5x below naive {naive_cost}"
    );
}

/// A long mixed update stream keeps every extension exactly equal to a
/// from-scratch rebuild (the end-to-end version of the maintenance
/// property tests).
#[test]
fn mixed_update_stream_keeps_all_extensions_consistent() {
    let mut ex = company_database();
    let path = ex.path.clone();
    let mut ids = Vec::new();
    for ext in Extension::ALL {
        ids.push(
            ex.db
                .create_asr(path.clone(), AsrConfig::binary(ext, &path))
                .unwrap(),
        );
    }

    // Grow: a new division producing a new product from existing parts.
    let bikes = ex.db.instantiate("Division").unwrap();
    ex.db
        .set_attribute(bikes, "Name", Value::string("Bikes"))
        .unwrap();
    let prods = ex.db.instantiate("ProdSET").unwrap();
    ex.db
        .set_attribute(bikes, "Manufactures", Value::Ref(prods))
        .unwrap();
    let ebike = ex.db.instantiate("Product").unwrap();
    ex.db
        .set_attribute(ebike, "Name", Value::string("eBike"))
        .unwrap();
    ex.db.insert_into_set(prods, Value::Ref(ebike)).unwrap();
    let parts = ex.db.instantiate("BasePartSET").unwrap();
    ex.db
        .set_attribute(ebike, "Composition", Value::Ref(parts))
        .unwrap();
    let door = ex.by_name("Door").unwrap();
    ex.db.insert_into_set(parts, Value::Ref(door)).unwrap();

    // Shrink: Truck stops producing the 560 SEC.
    let truck = ex.by_name("Truck").unwrap();
    let truck_prods = ex
        .db
        .base()
        .get_attribute(truck, "Manufactures")
        .unwrap()
        .as_ref_oid()
        .unwrap();
    let sec = ex.by_name("560 SEC").unwrap();
    ex.db
        .remove_from_set(truck_prods, &Value::Ref(sec))
        .unwrap();

    // Rename the shared part (terminal value update).
    ex.db
        .set_attribute(door, "Name", Value::string("Hatch"))
        .unwrap();

    // All ASRs still equal their rebuilds and answer consistently.
    for &id in &ids {
        let asr = ex.db.asr(id).unwrap();
        asr.check_consistency().unwrap();
        let reference = access_support::asr::AccessSupportRelation::build(
            ex.db.base(),
            asr.path().clone(),
            asr.config().clone(),
            IoStats::new_handle(),
        )
        .unwrap();
        assert!(
            asr.full_rows().eq(reference.full_rows()),
            "{} diverged from rebuild",
            asr.config().extension
        );
        let hits = ex
            .db
            .backward(id, 0, 3, &Cell::Value(Value::string("Hatch")))
            .unwrap();
        // Auto still makes the 560 SEC; Bikes now uses the part too.
        assert_eq!(hits.len(), 2, "{}", asr.config().extension);
    }
}

/// The robot example (linear path, shared subobjects) works through the
/// whole stack including the value-terminated final step.
#[test]
fn robot_scenario_with_shared_subobjects() {
    let mut ex = robot_database();
    let path = ex.path.clone();
    assert!(path.is_linear());
    let id = ex
        .db
        .create_asr(
            path.clone(),
            AsrConfig::non_decomposed(Extension::Canonical, &path),
        )
        .unwrap();
    // All three robots use RobClone (Utopia) tools — two share one tool.
    let hits = ex
        .db
        .backward(id, 0, 4, &Cell::Value(Value::string("Utopia")))
        .unwrap();
    assert_eq!(hits.len(), 3);

    // Moving the shared tool's manufacturer relocates every using robot.
    let gripper = ex
        .db
        .base()
        .objects()
        .find(|o| o.attribute("Function") == &Value::string("gripping"))
        .map(|o| o.oid)
        .unwrap();
    let local = ex.db.instantiate("MANUFACTURER").unwrap();
    ex.db
        .set_attribute(local, "Location", Value::string("Earth"))
        .unwrap();
    ex.db
        .set_attribute(gripper, "ManufacturedBy", Value::Ref(local))
        .unwrap();

    let hits = ex
        .db
        .backward(id, 0, 4, &Cell::Value(Value::string("Utopia")))
        .unwrap();
    assert_eq!(hits.len(), 1, "only R2D2's welder remains Utopian");
    let hits = ex
        .db
        .backward(id, 0, 4, &Cell::Value(Value::string("Earth")))
        .unwrap();
    assert_eq!(hits.len(), 2, "X4D5 and Robi share the moved tool");
}

/// Dropping and re-creating ASRs with different configurations on a live
/// database.
#[test]
fn asr_lifecycle() {
    let mut ex = company_database();
    let path = ex.path.clone();
    let a = ex
        .db
        .create_asr(path.clone(), AsrConfig::binary(Extension::Full, &path))
        .unwrap();
    let b = ex
        .db
        .create_asr(
            path.clone(),
            AsrConfig::non_decomposed(Extension::LeftComplete, &path),
        )
        .unwrap();
    assert_eq!(ex.db.asrs().count(), 2);
    ex.db.drop_asr(a).unwrap();
    assert_eq!(ex.db.asrs().count(), 1);
    // The remaining ASR still works and is still maintained.
    let sausage = ex.by_name("Sausage").unwrap();
    let parts = ex
        .db
        .base()
        .get_attribute(sausage, "Composition")
        .unwrap()
        .as_ref_oid()
        .unwrap();
    let door = ex.by_name("Door").unwrap();
    ex.db.insert_into_set(parts, Value::Ref(door)).unwrap();
    let hits = ex
        .db
        .backward(b, 0, 3, &Cell::Value(Value::string("Door")))
        .unwrap();
    assert_eq!(
        hits.len(),
        2,
        "Sausage is not Division-reachable; Auto and Truck are"
    );
}
