//! Self-tuning physical design (the paper's Section 7 vision, closed
//! loop): the system *measures* its own application profile, *records*
//! the operation mix as it executes, asks the cost model for the best
//! access support relation, applies it — and proves the improvement by
//! replaying the same workload.
//!
//! Run with: `cargo run --release --example self_tuning`

use access_support::prelude::*;
use access_support::workload::TraceOp;

fn main() {
    // A mid-sized engineering database, generated.
    let spec = GeneratorSpec {
        counts: vec![50, 250, 500, 2500, 5000],
        defined: vec![45, 200, 400, 1000],
        fan: vec![2, 2, 3, 4],
        sizes: vec![500, 400, 300, 300, 100],
    };
    let mut g = generate(&spec, 2024);
    let path = g.path.clone();
    println!(
        "database : {} objects over path {path}",
        g.db.base().object_count()
    );

    // ------------------------------------------------------------------
    // Phase 1: run the application unindexed while recording usage.
    // ------------------------------------------------------------------
    let mix = Mix::new(
        vec![
            (0.7, Op::bw(0, 4)),
            (0.2, Op::fw(0, 4)),
            (0.1, Op::bw(0, 3)),
        ],
        vec![(1.0, Op::ins(3))],
        0.15,
    );
    let trace = generate_trace(&g, &mix, 120, 9);

    let mut recorder = UsageRecorder::new();
    for op in &trace {
        match op {
            TraceOp::Forward { i, j, .. } => recorder.record_forward(*i, *j),
            TraceOp::Backward { i, j, .. } => recorder.record_backward(*i, *j),
            TraceOp::Insert { i, .. } => recorder.record_insert(*i),
        }
    }
    g.db.stats().reset();
    let before = execute_trace(&mut g.db, None, &path, &trace);
    println!(
        "phase 1  : {} ops unindexed, {:.1} page accesses/op (P_up observed: {:.2})",
        before.operations,
        before.mean_cost(),
        recorder.p_up()
    );

    // ------------------------------------------------------------------
    // Phase 2: the advisor measures the profile and ranks every design.
    // ------------------------------------------------------------------
    let advice = advise(&g.db, &path, &recorder).expect("advice");
    println!("\nmeasured profile: c = {:?}", advice.model.profile.c);
    println!("                  d = {:?}", advice.model.profile.d);
    println!("                  fan = {:?}", advice.model.profile.fan);
    println!("\n{}", advice.summary(5));
    println!(
        "predicted cost ratio vs staying unindexed: {:.3}",
        advice.predicted_improvement(&recorder)
    );

    // ------------------------------------------------------------------
    // Phase 3: apply the recommendation and replay the workload.
    // ------------------------------------------------------------------
    let id = advice
        .apply(&mut g.db)
        .expect("apply")
        .expect("support recommended");
    let trace2 = generate_trace(&g, &mix, 120, 10);
    g.db.stats().reset();
    let after = execute_trace(&mut g.db, Some(id), &path, &trace2);
    println!(
        "phase 3  : {} ops with {}, {:.1} page accesses/op",
        after.operations,
        advice.best().label(),
        after.mean_cost()
    );
    println!(
        "speedup  : {:.1}x (predicted ratio {:.3}, achieved {:.3})",
        before.mean_cost() / after.mean_cost(),
        advice.predicted_improvement(&recorder),
        after.mean_cost() / before.mean_cost()
    );
    assert!(after.mean_cost() < before.mean_cost());
}
