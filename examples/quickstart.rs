//! Quickstart: the paper's robot example end to end.
//!
//! Builds the Section 2.2 engineering schema (Figure 1 extension), creates
//! an access support relation over the linear path
//! `ROBOT.Arm.MountedTool.ManufacturedBy.Location`, and runs the paper's
//! Query 1 — *"Find the Robots which use a Tool manufactured in Utopia"* —
//! both without and with access support, printing the page accesses each
//! strategy costs.
//!
//! Run with: `cargo run --example quickstart`

use access_support::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The object base: Figure 1's three robots.
    // ------------------------------------------------------------------
    let mut example = robot_database();
    let path = example.path.clone();
    println!("schema path : {path}");
    println!("objects     : {}", example.db.base().object_count());

    // ------------------------------------------------------------------
    // 2. Query 1 without access support: navigate the object graph.
    //    Backward navigation has no reverse references to follow — the
    //    system scans the ROBOT extent and forward-closes (Section 5.6).
    // ------------------------------------------------------------------
    example.db.stats().reset();
    let naive_hits = example
        .db
        .backward_unindexed(&path, 0, 4, &Cell::Value(Value::string("Utopia")))
        .expect("query evaluates");
    let naive_cost = example.db.stats().accesses();
    print_robots(&example, "naive", &naive_hits, naive_cost);

    // ------------------------------------------------------------------
    // 3. Materialize an access support relation: canonical extension
    //    (whole-chain queries only), binary decomposition.
    // ------------------------------------------------------------------
    let config = AsrConfig::binary(Extension::Canonical, &path);
    let asr_id = example
        .db
        .create_asr(path.clone(), config)
        .expect("ASR builds");
    {
        let asr = example.db.asr(asr_id).unwrap();
        println!(
            "\nASR built    : {} extension, decomposition {}, {} rows, {} bytes",
            asr.config().extension,
            asr.config().decomposition,
            asr.total_rows(),
            asr.data_bytes()
        );
    }

    // ------------------------------------------------------------------
    // 4. The same query through the ASR: two B+ tree lookups instead of an
    //    exhaustive search.
    // ------------------------------------------------------------------
    example.db.stats().reset();
    let supported_hits = example
        .db
        .backward(asr_id, 0, 4, &Cell::Value(Value::string("Utopia")))
        .expect("query evaluates");
    let supported_cost = example.db.stats().accesses();
    print_robots(&example, "supported", &supported_hits, supported_cost);
    assert_eq!(naive_hits, supported_hits, "both strategies agree");

    // ------------------------------------------------------------------
    // 5. Updates are maintained incrementally: remount Robi's tool to a
    //    Utopia-made welder... wait, it already is — give Robi a fresh
    //    locally-made tool instead, and watch the answer change.
    // ------------------------------------------------------------------
    let robi = example.by_name("Robi").expect("Robi exists");
    let arm = example
        .db
        .base()
        .get_attribute(robi, "Arm")
        .unwrap()
        .as_ref_oid()
        .expect("Robi has an arm");
    let local_mfr = example.db.instantiate("MANUFACTURER").unwrap();
    example
        .db
        .set_attribute(local_mfr, "Name", Value::string("LocalCorp"))
        .unwrap();
    example
        .db
        .set_attribute(local_mfr, "Location", Value::string("Earth"))
        .unwrap();
    let drill = example.db.instantiate("TOOL").unwrap();
    example
        .db
        .set_attribute(drill, "Function", Value::string("drilling"))
        .unwrap();
    example
        .db
        .set_attribute(drill, "ManufacturedBy", Value::Ref(local_mfr))
        .unwrap();
    example
        .db
        .set_attribute(arm, "MountedTool", Value::Ref(drill))
        .unwrap();

    let hits_after = example
        .db
        .backward(asr_id, 0, 4, &Cell::Value(Value::string("Utopia")))
        .unwrap();
    println!("\nafter remounting Robi's tool:");
    print_robots(&example, "supported", &hits_after, 0);
    assert_eq!(hits_after.len(), 2, "Robi no longer uses a Utopia tool");
}

fn print_robots(
    example: &access_support::workload::ExampleDb,
    label: &str,
    hits: &[Oid],
    cost: u64,
) {
    let names: Vec<String> = hits
        .iter()
        .map(|&o| {
            example
                .db
                .base()
                .get_attribute(o, "Name")
                .unwrap()
                .as_str()
                .unwrap_or("?")
                .to_string()
        })
        .collect();
    if cost > 0 {
        println!("{label:10}: {names:?}  ({cost} page accesses)");
    } else {
        println!("{label:10}: {names:?}");
    }
}
