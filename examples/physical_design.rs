//! Physical database design with the analytical cost model (Section 7).
//!
//! "Based on the application characteristics the analytical model can be
//! used to compute for all (feasible) design choices the expected cost …
//! From this, the best suited access support relation extension and
//! decomposition can be selected."
//!
//! This example characterizes an application (the paper's Section 6.4.2
//! profile), sweeps the update probability, and prints the optimizer's
//! choice at each point — then validates the recommended design against a
//! generated database by executing a concrete operation trace.
//!
//! Run with: `cargo run --release --example physical_design`

use access_support::costmodel::design::rank_designs;
use access_support::costmodel::profiles;
use access_support::prelude::*;
use access_support::workload::scale_profile;

fn main() {
    let model = profiles::fig14_profile();
    println!(
        "application profile: n = {}, c = {:?}",
        model.n(),
        model.profile.c
    );

    // ------------------------------------------------------------------
    // Sweep the update probability and ask the optimizer.
    // ------------------------------------------------------------------
    println!(
        "\n{:>6} | {:<22} | {:>12} | {:>14}",
        "P_up", "best design", "cost/op", "storage bytes"
    );
    println!("{}", "-".repeat(64));
    for p_up in [0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
        let mix = profiles::fig14_mix(p_up);
        let best = best_design(&model, &mix);
        println!(
            "{:>6.2} | {:<22} | {:>12.2} | {:>14.0}",
            p_up,
            best.label(),
            best.cost,
            best.storage_bytes
        );
    }

    // ------------------------------------------------------------------
    // Full ranking at one operating point.
    // ------------------------------------------------------------------
    let mix = profiles::fig14_mix(0.3);
    let ranked = rank_designs(&model, &mix);
    println!("\ntop 8 designs at P_up = 0.30:");
    for choice in ranked.iter().take(8) {
        println!("  {:<22} {:>10.2} accesses/op", choice.label(), choice.cost);
    }

    // ------------------------------------------------------------------
    // Validate the winner empirically on a downscaled database: execute a
    // trace under the best design and under no support.
    // ------------------------------------------------------------------
    let best = &ranked[0];
    let Some(ext) = best.extension else {
        println!("\noptimizer says: no access support — nothing to validate");
        return;
    };
    let scaled = scale_profile(&model.profile, 20.0);
    let spec = GeneratorSpec::from_profile(&scaled, 1.0);
    println!(
        "\nvalidating on a 1/20-scale database (counts {:?}) ...",
        spec.counts
    );

    let ext_core = match ext {
        Ext::Canonical => Extension::Canonical,
        Ext::Full => Extension::Full,
        Ext::Left => Extension::LeftComplete,
        Ext::Right => Extension::RightComplete,
    };
    let trace_mix = profiles::fig14_mix(0.3);

    // Unindexed run.
    let mut plain = generate(&spec, 99);
    let trace = generate_trace(&plain, &trace_mix, 200, 42);
    let path = plain.path.clone();
    let naive = execute_trace(&mut plain.db, None, &path, &trace);

    // Run under the optimizer's recommended design.
    let mut tuned = generate(&spec, 99);
    let dec = Decomposition::new(best.decomposition.0.clone()).unwrap();
    let id = tuned
        .db
        .create_asr(
            tuned.path.clone(),
            AsrConfig {
                extension: ext_core,
                decomposition: dec,
                keep_set_oids: false,
            },
        )
        .unwrap();
    tuned.db.stats().reset();
    let path = tuned.path.clone();
    let tuned_report = execute_trace(&mut tuned.db, Some(id), &path, &trace);

    println!(
        "  no support : {:>8} page accesses ({:.1}/op)",
        naive.total_accesses(),
        naive.mean_cost()
    );
    println!(
        "  {:<11}: {:>8} page accesses ({:.1}/op)",
        best.label(),
        tuned_report.total_accesses(),
        tuned_report.mean_cost()
    );
    let speedup = naive.mean_cost() / tuned_report.mean_cost().max(f64::EPSILON);
    println!("  speedup    : {speedup:.1}x");
}
