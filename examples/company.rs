//! The company database (Section 2.3): paths through set-valued
//! attributes, all four extensions side by side, and lossless
//! decomposition in action.
//!
//! Run with: `cargo run --example company`

use access_support::asr::build_auxiliary_relations;
use access_support::prelude::*;

fn main() {
    let example = company_database();
    let path = example.path.clone();
    println!(
        "path: {path}  (n = {}, set occurrences k = {})",
        path.len(),
        path.set_occurrences()
    );

    // ------------------------------------------------------------------
    // The auxiliary relations E_0, E_1, E_2 of Definition 3.3 (with set
    // OIDs, as in the paper's Section 3 example).
    // ------------------------------------------------------------------
    let aux = build_auxiliary_relations(example.db.base(), &path, true).unwrap();
    for (i, rel) in aux.iter().enumerate() {
        println!("\nE_{i} ({}-ary):", rel.arity());
        for row in rel.iter() {
            println!("  {row}");
        }
    }

    // ------------------------------------------------------------------
    // All four extensions of Definitions 3.4–3.7.
    // ------------------------------------------------------------------
    for ext in Extension::ALL {
        let rel = ext.compute(&aux).unwrap();
        println!("\nE_{} — {} tuples:", ext, rel.len());
        for row in rel.iter() {
            println!("  {row}");
        }
    }

    // ------------------------------------------------------------------
    // Theorem 3.9: decompose the full extension at (0, 3, 5) and join it
    // back together — losslessly.
    // ------------------------------------------------------------------
    let full = Extension::Full.compute(&aux).unwrap();
    let dec = Decomposition::new(vec![0, 3, 5]).unwrap();
    let parts = dec.decompose(&full).unwrap();
    println!(
        "\ndecomposition {dec}: partition sizes {:?}",
        parts.iter().map(|p| p.len()).collect::<Vec<_>>()
    );
    let reassembled = dec.reassemble(&parts, Extension::Full).unwrap();
    assert_eq!(reassembled, full);
    println!("reassembled == original: lossless ✓");

    // ------------------------------------------------------------------
    // Queries 2 and 3 of the paper through a maintained database.
    // ------------------------------------------------------------------
    let mut example = company_database();
    let path = example.path.clone();
    let asr = example
        .db
        .create_asr(path.clone(), AsrConfig::binary(Extension::Full, &path))
        .unwrap();

    // Query 2: which Division uses a BasePart named "Door"?
    let divisions = example
        .db
        .backward(asr, 0, 3, &Cell::Value(Value::string("Door")))
        .unwrap();
    println!("\nQuery 2 — divisions using \"Door\":");
    for d in &divisions {
        println!("  {}", example.db.base().get_attribute(*d, "Name").unwrap());
    }

    // Query 3: all BasePart names used by the Division named "Auto".
    let auto = example.by_name("Auto").unwrap();
    let names = example.db.forward(asr, 0, 3, auto).unwrap();
    println!("Query 3 — base parts of Auto: {names:?}");

    // ------------------------------------------------------------------
    // A partial-span query: only the full extension supports Q_{1,2}
    // directly (formula 35); other extensions transparently fall back to
    // naive navigation through Database::forward.
    // ------------------------------------------------------------------
    let sec = example.by_name("560 SEC").unwrap();
    let parts_of_sec = example.db.forward(asr, 1, 2, sec).unwrap();
    println!("Q_{{1,2}}(fw) from 560 SEC: {parts_of_sec:?}");
}
