//! Incremental maintenance under updates (Section 6).
//!
//! Demonstrates the extension-specific economics of formula (36): the
//! *full* extension maintains itself from its own stored partitions,
//! *left-complete* must forward-search the object representation,
//! *right-complete* and *canonical* must search backwards — which, with
//! uni-directional references, means extent scans.
//!
//! The example applies the same `ins_i` update stream under all four
//! extensions, printing the page accesses spent (a) searching the object
//! representation and (b) rewriting the access relation, then verifies
//! each incrementally maintained ASR equals a from-scratch rebuild.
//!
//! Run with: `cargo run --release --example maintenance`

use access_support::asr::AccessSupportRelation;
use access_support::pagesim::IoStats;
use access_support::prelude::*;

fn main() {
    let spec = GeneratorSpec {
        counts: vec![50, 250, 500, 2500, 5000],
        defined: vec![45, 200, 400, 1000],
        fan: vec![2, 2, 3, 4],
        sizes: vec![500, 400, 300, 300, 100],
    };

    println!("database: counts {:?}", spec.counts);
    println!("update stream: 25 x ins_3 (insert a BasePart-level edge)\n");
    println!(
        "{:<10} | {:>14} | {:>16} | {:>12}",
        "extension", "total accesses", "per-update cost", "rows after"
    );
    println!("{}", "-".repeat(62));

    for ext in Extension::ALL {
        let mut g = generate(&spec, 7);
        let m = g.path.arity(false) - 1;
        let id =
            g.db.create_asr(
                g.path.clone(),
                AsrConfig {
                    extension: ext,
                    decomposition: Decomposition::binary(m),
                    keep_set_oids: false,
                },
            )
            .unwrap();

        // The same 25 insertions for every extension: attach fresh
        // level-4 objects to existing level-3 sets.
        let mix = Mix::new(vec![], vec![(1.0, Op::ins(3))], 1.0);
        let trace = generate_trace(&g, &mix, 25, 123);

        g.db.stats().reset();
        let path = g.path.clone();
        let report = execute_trace(&mut g.db, Some(id), &path, &trace);

        // Verify: incremental == rebuild.
        let asr = g.db.asr(id).unwrap();
        asr.check_consistency().expect("partitions consistent");
        let reference = AccessSupportRelation::build(
            g.db.base(),
            asr.path().clone(),
            asr.config().clone(),
            IoStats::new_handle(),
        )
        .unwrap();
        assert!(
            asr.full_rows().eq(reference.full_rows()),
            "{ext}: incremental maintenance must equal rebuild"
        );

        println!(
            "{:<10} | {:>14} | {:>16.1} | {:>12}",
            ext.name(),
            report.total_accesses(),
            report.mean_cost(),
            asr.total_rows()
        );
    }

    println!(
        "\nShape check (Figure 11): with the update at the right end of the\n\
         path, left-complete costs far less than right-complete, and the\n\
         full extension avoids object-representation searches entirely."
    );
}
