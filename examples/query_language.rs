//! The paper's query notation, live: parse, EXPLAIN, and execute the
//! three example queries of Section 2 — first against the bare object
//! base, then with an access support relation registered, showing the
//! planner switch from per-object navigation to a backward span query.
//!
//! Run with: `cargo run --example query_language`

use access_support::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Query 1 on the robot database (Section 2.2).
    // ------------------------------------------------------------------
    let mut robots = robot_database();
    let q1 = r#"select r.Name
                from r in OurRobots
                where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia""#;
    println!("--- Query 1 ---\n{q1}\n");
    println!(
        "plan without access support:\n{}",
        oql_explain(&robots.db, q1).unwrap()
    );
    robots.db.stats().reset();
    let result = oql_execute(&robots.db, q1).unwrap();
    println!(
        "result ({} page accesses):\n{result}",
        robots.db.stats().accesses()
    );

    // Register an ASR over the predicate's path and watch the plan change.
    let path = robots.path.clone();
    robots
        .db
        .create_asr(path.clone(), AsrConfig::binary(Extension::Canonical, &path))
        .unwrap();
    println!(
        "plan with a canonical ASR:\n{}",
        oql_explain(&robots.db, q1).unwrap()
    );
    robots.db.stats().reset();
    let indexed = oql_execute(&robots.db, q1).unwrap();
    println!(
        "result ({} page accesses):\n{indexed}",
        robots.db.stats().accesses()
    );
    assert_eq!(result, indexed);

    // ------------------------------------------------------------------
    // Queries 2 and 3 on the company database (Section 2.3).
    // ------------------------------------------------------------------
    let company = company_database();
    let q2 = r#"select d.Name
                from d in Mercedes,
                     b in d.Manufactures.Composition
                where b.Name = "Door""#;
    println!("--- Query 2 ---\n{q2}\n");
    println!("{}", oql_execute(&company.db, q2).unwrap());

    let q3 = r#"select d.Manufactures.Composition.Name
                from d in Mercedes
                where d.Name = "Auto""#;
    println!("--- Query 3 ---\n{q3}\n");
    println!("{}", oql_execute(&company.db, q3).unwrap());

    // ------------------------------------------------------------------
    // Beyond the paper's examples: extents, comparisons, NULL tests.
    // ------------------------------------------------------------------
    let extras = [
        r#"select b.Name, b.Price from b in BasePart where b.Price >= 1.00"#,
        r#"select d.Name from d in Division where d.Manufactures = NULL"#,
        r#"select p.Name from p in Product where p.Composition != NULL"#,
    ];
    for q in extras {
        println!("--- {q}");
        print!("{}", oql_execute(&company.db, q).unwrap());
        println!();
    }
}
