//! The `asrdb` shell: an interactive front-end over the whole stack.
//!
//! Plain input is executed as a query in the paper's SQL-like notation;
//! backslash commands manage the database and its physical design:
//!
//! ```text
//! \open company            load a built-in example database
//! \schema                  show the schema
//! \asr <path> <ext> <dec>  materialize an access support relation
//! \asrs                    list access support relations
//! \drop <id>               drop one
//! \explain <query>         show the evaluation plan
//! \analyze <query>         EXPLAIN ANALYZE: run it, measured vs predicted
//! \advise <path> [p_up]    run the physical-design advisor
//! \save <file> / \load <file|dir>   snapshot persistence / recovery
//! \wal on <dir>|off|status write-ahead logging for the open database
//! \wal rotate|prune        segment maintenance for the log archive
//! \checkpoint [delta]      snapshot the durable state, truncate the log
//!                          (`delta`: only pages changed since the base)
//! \recover <lsn>           point-in-time recovery to an as-of view
//! \replica on|off|sync|status  warm standby fed by log shipping
//! \stats / \reset          page-access accounting
//! \trace on|off|show       capture finished spans in a ring buffer
//! \flightrec status|dump|tail <n>  inspect the always-on flight recorder
//! \serve <addr>            serve the open database over TCP until shutdown
//! \connect [chaos <seed>]  loopback wire mode: route queries through an
//!                          in-process server over (chaotic) channels
//! \shards on <n> [chaos <seed>]|off|status|reseed  scatter-gather serving
//!                          over a hash-partitioned in-process fleet
//! \help / \quit
//! ```
//!
//! The command interpreter is a pure function over [`ShellState`], which
//! keeps it unit-testable; the binary `asrdb` wraps it in a stdin loop.
//!
//! The session's [`UsageRecorder`] is *subscribed* to the database's
//! trace stream (see `asr_advisor::RecorderSink`): the query layer
//! announces every span query it performs as a `usage.*` event, and the
//! advisor consumes those tallies in `\advise`.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use asr_advisor::{advise, RecorderSink, UsageRecorder};

use asr_core::{AsrConfig, AsrLoadMode, Database, Decomposition, Extension};
use asr_durable::{
    recover_to_lsn, replicate, Channel, ChaosProfile, DurableDatabase, FaultyChannel, FlushPolicy,
    FsStorage, LogShipper, LosslessChannel, OpenDurable, ReplicaApplier, ReplicateOptions,
    MANIFEST_FILE,
};
use asr_gom::PathExpression;
use asr_net::{decode_frame, Request, RequestBody, Response, ResponseBody, WireMessage};
use asr_obs::{FlightRecorder, RingBufferSink, SinkId};
use asr_oql as oql;
use asr_server::{NetServer, ServerDb, ShardFaultPlan, ShardedDatabase, TcpServer};
use asr_workload::{company_database, robot_database};

/// The session's open database: plain in-memory, or write-ahead logged.
pub enum OpenDb {
    /// In-memory only; mutations do not survive the session.
    Plain(Box<Database>),
    /// WAL-backed (`\wal on <dir>` or `\load <dir>`): every mutation is
    /// logged and the directory is crash-recoverable.
    Durable(Box<DurableDatabase<FsStorage>>),
}

impl OpenDb {
    /// Read access, regardless of durability.
    pub fn as_db(&self) -> &Database {
        match self {
            OpenDb::Plain(db) => db,
            OpenDb::Durable(d) => d.database(),
        }
    }
}

/// Mutable shell session state.
#[derive(Default)]
pub struct ShellState {
    /// The open database, if any.
    pub db: Option<OpenDb>,
    /// Name of what was opened (diagnostics).
    pub origin: String,
    /// Observed usage, fed by the trace-stream subscription; feeds
    /// `\advise` when non-empty.
    pub recorder: Rc<RefCell<UsageRecorder>>,
    /// The `\trace` ring buffer, while tracing is on.  The [`SinkId`] is
    /// `None` when tracing was enabled before any database was open.
    trace: Option<(Option<SinkId>, Rc<RingBufferSink>)>,
    /// The always-on flight recorder of the open database (`\flightrec`).
    /// Durable databases bring their own; plain ones get one attached at
    /// install time.
    flightrec: Option<Rc<FlightRecorder>>,
    /// The in-process warm standby, while `\replica on` (WAL mode only).
    replica: Option<ReplicaApplier>,
    /// Loopback wire mode, while `\connect` (queries route through an
    /// in-process server session over possibly chaotic channels).
    wire: Option<WireSession>,
    /// The scatter-gather fleet, while `\shards on` (WAL mode only).
    sharded: Option<ShardedDatabase>,
    /// Should the REPL terminate?
    pub done: bool,
}

/// One loopback wire session: a [`NetServer`] session plus the chaotic
/// request/response channels, with the client half of the exactly-once
/// protocol (ids, retries, NACK handling) inlined so the served database
/// can stay in [`ShellState::db`].
struct WireSession {
    server: NetServer,
    sid: usize,
    inbox: FaultyChannel,
    outbox: FaultyChannel,
    next_id: u64,
    frames_sent: u64,
    retries: u64,
    nacks: u64,
    damaged: u64,
    chaos_seed: Option<u64>,
}

impl WireSession {
    fn new(chaos_seed: Option<u64>) -> Self {
        let (profile, seed) = match chaos_seed {
            Some(seed) => (ChaosProfile::from_seed(seed), seed),
            None => (ChaosProfile::default(), 0),
        };
        let mut server = NetServer::new();
        let sid = server.open_session();
        WireSession {
            server,
            sid,
            inbox: FaultyChannel::new(profile, seed),
            outbox: FaultyChannel::new(profile, seed.wrapping_add(1)),
            next_id: 1,
            frames_sent: 0,
            retries: 0,
            nacks: 0,
            damaged: 0,
            chaos_seed,
        }
    }

    /// Issue `body` against the session, retrying through damage — the
    /// same at-least-once-plus-dedup loop as `asr_net::WireClient`.
    fn call(
        &mut self,
        view: &mut ServerDb<'_, FsStorage>,
        body: RequestBody,
    ) -> Result<Response, String> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = Request { id, body }.encode();
        for attempt in 1..=64u32 {
            self.inbox.send(frame.clone());
            self.frames_sent += 1;
            if attempt > 1 {
                self.retries += 1;
            }
            self.server
                .pump_session(self.sid, view, &mut self.inbox, &mut self.outbox);
            while let Some(delivery) = self.outbox.recv() {
                match decode_frame(&delivery) {
                    Some(WireMessage::Response(resp)) if resp.id == id => {
                        if matches!(resp.body, ResponseBody::Nack { .. }) {
                            self.nacks += 1;
                            break; // re-send the same frame
                        }
                        return Ok(resp);
                    }
                    Some(WireMessage::Response(resp)) if resp.id == 0 => {
                        self.nacks += 1; // NACK to an unreadable id
                        break;
                    }
                    Some(WireMessage::Response(_)) => {} // stale duplicate
                    Some(WireMessage::Request(_)) | None => self.damaged += 1,
                }
            }
        }
        Err(
            "wire link exhausted after 64 attempts — `\\connect off` to leave wire mode"
                .to_string(),
        )
    }
}

impl ShellState {
    /// Fresh, databaseless state.
    pub fn new() -> Self {
        Self::default()
    }

    fn db(&self) -> Result<&Database, String> {
        self.db
            .as_ref()
            .map(OpenDb::as_db)
            .ok_or_else(|| "no database open — try `\\open company`".to_string())
    }

    fn open_mut(&mut self) -> Result<&mut OpenDb, String> {
        self.db
            .as_mut()
            .ok_or_else(|| "no database open — try `\\open company`".to_string())
    }

    fn durable_mut(&mut self) -> Result<&mut DurableDatabase<FsStorage>, String> {
        match self.open_mut()? {
            OpenDb::Durable(d) => Ok(d),
            OpenDb::Plain(_) => Err("WAL is off — `\\wal on <dir>` first".to_string()),
        }
    }

    /// Install `db` as the open database, subscribing the session's usage
    /// recorder (and re-attaching the trace ring if tracing was on).
    /// Serving modes bound to the previous database are torn down.
    fn install_db(&mut self, db: OpenDb, origin: &str) {
        self.wire = None;
        self.sharded = None;
        db.as_db()
            .tracer()
            .add_sink(Rc::new(RecorderSink::new(Rc::clone(&self.recorder))));
        if let Some((_, ring)) = self.trace.take() {
            let id = db.as_db().tracer().add_sink(ring.clone());
            self.trace = Some((Some(id), ring));
        }
        self.flightrec = Some(match &db {
            OpenDb::Durable(d) => d.flight_recorder().clone(),
            OpenDb::Plain(p) => {
                let rec = FlightRecorder::shared();
                p.tracer().add_sink(rec.clone());
                rec
            }
        });
        self.db = Some(db);
        self.origin = origin.to_string();
    }
}

/// Execute one input line; returns the text to display.
pub fn run_line(state: &mut ShellState, line: &str) -> String {
    let line = line.trim();
    if line.is_empty() {
        return String::new();
    }
    let result = if let Some(rest) = line.strip_prefix('\\') {
        run_command(state, rest)
    } else {
        run_query(state, line)
    };
    match result {
        Ok(out) => out,
        Err(msg) => format!("error: {msg}"),
    }
}

fn run_command(state: &mut ShellState, input: &str) -> Result<String, String> {
    let mut parts = input.splitn(2, ' ');
    let cmd = parts.next().unwrap_or("");
    let rest = parts.next().unwrap_or("").trim();
    match cmd {
        "help" | "h" | "?" => Ok(HELP.to_string()),
        "quit" | "q" | "exit" => {
            state.done = true;
            Ok("bye".to_string())
        }
        "open" => cmd_open(state, rest),
        "schema" => cmd_schema(state),
        "asr" => cmd_asr(state, rest),
        "asrs" => cmd_asrs(state),
        "drop" => cmd_drop(state, rest),
        "explain" => {
            let db = state.db()?;
            oql::explain(db, rest).map_err(|e| e.to_string())
        }
        "analyze" => {
            let db = state.db()?;
            let report = oql::explain_analyze(db, rest).map_err(|e| e.to_string())?;
            Ok(format!("{}{}", report.result, report.render()))
        }
        "advise" => cmd_advise(state, rest),
        "save" => {
            let db = state.db()?;
            db.save(rest).map_err(|e| e.to_string())?;
            Ok(format!("saved to {rest}"))
        }
        "load" => cmd_load(state, rest),
        "wal" => cmd_wal(state, rest),
        "checkpoint" => cmd_checkpoint(state, rest),
        "recover" => cmd_recover(state, rest),
        "replica" => cmd_replica(state, rest),
        "stats" => cmd_stats(state),
        "txn" => cmd_txn(state, rest),
        "reset" => {
            let db = state.db()?;
            db.stats().reset();
            Ok("counters reset".to_string())
        }
        "trace" => cmd_trace(state, rest),
        "flightrec" => cmd_flightrec(state, rest),
        "serve" => cmd_serve(state, rest),
        "connect" => cmd_connect(state, rest),
        "shards" => cmd_shards(state, rest),
        other => Err(format!("unknown command `\\{other}` — try `\\help`")),
    }
}

fn cmd_open(state: &mut ShellState, which: &str) -> Result<String, String> {
    let (db, desc) = match which {
        "company" => (
            company_database().db,
            "the paper's Figure 2 company database",
        ),
        "robots" | "robot" => (robot_database().db, "the paper's Figure 1 robot database"),
        other => {
            return Err(format!(
                "unknown example `{other}` (available: company, robots)"
            ))
        }
    };
    let summary = format!("opened {desc} ({} objects)", db.base().object_count());
    state.install_db(OpenDb::Plain(Box::new(db)), which);
    Ok(summary)
}

/// `\load <file|dir>`: a plain snapshot file, or (when the path holds a
/// `MANIFEST`) a durable directory — recovered via checkpoint + WAL
/// replay, staying in WAL mode afterwards.
fn cmd_load(state: &mut ShellState, rest: &str) -> Result<String, String> {
    if rest.is_empty() {
        return Err("usage: \\load <file|dir>".to_string());
    }
    if std::path::Path::new(rest).join(MANIFEST_FILE).is_file() {
        let d = Database::open_durable(rest).map_err(|e| e.to_string())?;
        let r = d.recovery_report().clone();
        let torn = match (r.torn_bytes, r.torn_reason) {
            (0, _) => String::new(),
            (n, reason) => format!(
                ", {n} torn byte(s) discarded ({})",
                reason.unwrap_or("unknown")
            ),
        };
        let summary = format!(
            "recovered {rest}: checkpoint LSN {}, {} record(s) replayed{torn}; \
             {} objects, {} access relations (WAL on){}",
            r.checkpoint_lsn,
            r.records_replayed,
            d.base().object_count(),
            d.asrs().count(),
            describe_load_modes(&r.asr_load_modes),
        );
        state.install_db(OpenDb::Durable(Box::new(d)), rest);
        Ok(summary)
    } else {
        let (db, report) = Database::load_report(rest).map_err(|e| e.to_string())?;
        let summary = format!(
            "loaded {rest}: {} objects, {} access relations (snapshot v{}){}",
            db.base().object_count(),
            db.asrs().count(),
            report.version,
            describe_load_modes(&report.asrs),
        );
        state.install_db(OpenDb::Plain(Box::new(db)), rest);
        Ok(summary)
    }
}

/// One line per ASR: was it restored physically from page images, or
/// rebuilt from the object base (and why)?
fn describe_load_modes(modes: &[(asr_core::AsrId, AsrLoadMode)]) -> String {
    let mut out = String::new();
    for (id, mode) in modes {
        match mode {
            AsrLoadMode::Physical => {
                let _ = write!(out, "\n  asr {id}: physical");
            }
            AsrLoadMode::Delta { pages } => {
                let _ = write!(out, "\n  asr {id}: delta-patched ({pages} changed pages)");
            }
            AsrLoadMode::Rebuilt(reason) => {
                let _ = write!(out, "\n  asr {id}: rebuilt ({reason})");
            }
        }
    }
    out
}

fn policy_name(p: FlushPolicy) -> String {
    match p {
        FlushPolicy::EveryRecord => "every-record".to_string(),
        FlushPolicy::EveryN(n) => format!("group({n})"),
        FlushPolicy::Explicit => "explicit".to_string(),
    }
}

fn cmd_wal(state: &mut ShellState, rest: &str) -> Result<String, String> {
    let mut parts = rest.split_whitespace();
    match parts.next() {
        Some("on") => {
            let dir = parts
                .next()
                .ok_or("usage: \\wal on <dir> — the durable directory")?;
            match state.open_mut()? {
                OpenDb::Durable(_) => Ok("WAL already on — `\\wal status`".to_string()),
                OpenDb::Plain(_) => {
                    if std::path::Path::new(dir).join(MANIFEST_FILE).is_file() {
                        return Err(format!(
                            "{dir} already holds a durable database — `\\load {dir}` recovers it"
                        ));
                    }
                    // `create` consumes the database (the initial
                    // checkpoint takes ownership); the manifest pre-check
                    // above keeps the common error from losing the session.
                    let Some(OpenDb::Plain(db)) = state.db.take() else {
                        unreachable!("matched Plain above");
                    };
                    let d = db.create_durable(dir).map_err(|e| e.to_string())?;
                    let lsn = d.wal_status().checkpoint_lsn;
                    // The durable wrapper attached its own recorder; point
                    // `\flightrec` at it so the tail covers WAL activity.
                    state.flightrec = Some(d.flight_recorder().clone());
                    state.db = Some(OpenDb::Durable(Box::new(d)));
                    Ok(format!(
                        "WAL on in {dir}: initial checkpoint written (LSN {lsn}); \
                         mutations are now logged"
                    ))
                }
            }
        }
        Some("off") => {
            let d = state.durable_mut()?;
            // A final checkpoint leaves the directory fully current; if
            // the session is poisoned we detach anyway (the directory is
            // consistent up to the last durable flush).
            let parting = match d.checkpoint() {
                Ok(()) => format!("final checkpoint at LSN {}", d.wal_status().checkpoint_lsn),
                Err(e) => format!("final checkpoint failed ({e})"),
            };
            let Some(OpenDb::Durable(d)) = state.db.take() else {
                unreachable!("durable_mut checked");
            };
            state.db = Some(OpenDb::Plain(Box::new(d.into_database())));
            Ok(format!("WAL off — {parting}; session continues in memory"))
        }
        Some("status") => {
            let d = state.durable_mut()?;
            let s = d.wal_status();
            let r = d.recovery_report();
            let mut out = format!(
                "WAL on: policy {}, last LSN {}, checkpoint LSN {}, \
                 {} durable byte(s), {} pending record(s){}\n",
                policy_name(s.policy),
                s.last_lsn,
                s.checkpoint_lsn,
                s.durable_bytes,
                s.pending_records,
                if s.poisoned { " [POISONED]" } else { "" }
            );
            let _ = writeln!(
                out,
                "segments: {} sealed, {} archived byte(s), oldest needed LSN {}{}",
                s.segment_count,
                s.archived_bytes,
                s.oldest_needed_lsn,
                s.pitr_floor_lsn
                    .map(|f| format!(", PITR floor LSN {f}"))
                    .unwrap_or_default()
            );
            if let Some(g) = d.group_commit_status() {
                let _ = writeln!(
                    out,
                    "group commit: target {} session(s), {} pending, {} group(s) flushed, \
                     {} commit(s) over {} fsync(s) ({:.2} fsyncs/commit){}",
                    g.target,
                    g.pending_sessions,
                    g.groups,
                    g.commits,
                    g.fsyncs,
                    g.fsyncs_per_commit(),
                    match g.deadline_ops {
                        Some(ops) => format!(
                            ", deadline {ops} op(s) ({} deadline flush(es))",
                            g.deadline_flushes
                        ),
                        None => String::new(),
                    }
                );
            }
            let lineage = match s.delta_base_lsn {
                Some(base) => format!(
                    "delta on base LSN {base}, chain depth {}",
                    s.delta_chain_depth
                ),
                None => "full".to_string(),
            };
            let saved = s
                .last_checkpoint_pages_full
                .saturating_sub(s.last_checkpoint_pages);
            let _ = writeln!(
                out,
                "checkpoint lineage: {lineage}{}",
                if s.last_checkpoint_pages_full > 0 {
                    format!(
                        "; last write {} of {} full page(s) ({saved} saved)",
                        s.last_checkpoint_pages, s.last_checkpoint_pages_full
                    )
                } else {
                    String::new()
                }
            );
            let _ = writeln!(
                out,
                "last recovery: {} record(s) replayed, {} skipped, {} torn byte(s){}",
                r.records_replayed,
                r.records_skipped,
                r.torn_bytes,
                r.torn_reason.map(|t| format!(" ({t})")).unwrap_or_default()
            );
            Ok(out)
        }
        Some("group") => {
            let d = state.durable_mut()?;
            match parts.next() {
                Some("off") => {
                    let parting = d
                        .group_commit_status()
                        .map(|g| {
                            format!(
                                " — {} commit(s) over {} fsync(s) while on",
                                g.commits, g.fsyncs
                            )
                        })
                        .unwrap_or_default();
                    d.disable_group_commit().map_err(|e| e.to_string())?;
                    Ok(format!(
                        "group commit off{parting}; previous flush policy restored"
                    ))
                }
                Some(n) => {
                    let usage = "usage: \\wal group <sessions> [deadline <ops>]|off";
                    let target: usize = n.parse().map_err(|_| usage.to_string())?;
                    let deadline = match parts.next() {
                        Some("deadline") => {
                            let ops: u64 = parts
                                .next()
                                .ok_or(usage)?
                                .parse()
                                .map_err(|_| usage.to_string())?;
                            Some(ops)
                        }
                        Some(other) => return Err(format!("unknown option `{other}`")),
                        None => None,
                    };
                    d.enable_group_commit(target);
                    d.set_group_commit_deadline(deadline);
                    Ok(format!(
                        "group commit on: one fsync once {target} session(s) have a \
                         commit pending{} (`\\wal status` shows the pipeline)",
                        match deadline {
                            Some(ops) => format!(", or after {ops} logged op(s)"),
                            None => String::new(),
                        }
                    ))
                }
                None => Err("usage: \\wal group <sessions> [deadline <ops>]|off".to_string()),
            }
        }
        Some("prune") => {
            let d = state.durable_mut()?;
            let report = d.prune_segments().map_err(|e| e.to_string())?;
            if report.segments_removed == 0 && report.checkpoints_removed == 0 {
                return Ok(
                    "nothing to prune: every segment is newer than the checkpoint".to_string(),
                );
            }
            Ok(format!(
                "pruned {} segment(s) ({} byte(s) reclaimed) and {} archived checkpoint(s); \
                 PITR floor is now LSN {}",
                report.segments_removed,
                report.bytes_reclaimed,
                report.checkpoints_removed,
                d.wal_status().pitr_floor_lsn.unwrap_or(0)
            ))
        }
        Some("rotate") => {
            let d = state.durable_mut()?;
            match d.rotate_segment().map_err(|e| e.to_string())? {
                Some(meta) => Ok(format!(
                    "sealed segment {} covering LSNs {}..={} ({} byte(s))",
                    meta.seqno, meta.first_lsn, meta.last_lsn, meta.bytes
                )),
                None => Ok("active log is empty — nothing to seal".to_string()),
            }
        }
        _ => Err("usage: \\wal on <dir>|off|status|group <n>|rotate|prune".to_string()),
    }
}

/// `\txn status`: the MVCC epoch/pin counters of the open database —
/// commit epoch, live snapshot pins, and reclamation progress.
fn cmd_txn(state: &mut ShellState, rest: &str) -> Result<String, String> {
    match rest.trim() {
        "" | "status" => {
            let t = state.db()?.txn_status();
            Ok(format!(
                "commit epoch {}, {} active snapshot(s), oldest pinned epoch {}, \
                 {} epoch(s) reclaimed",
                t.commit_epoch,
                t.active_snapshots,
                t.oldest_pinned
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "none".to_string()),
                t.epochs_reclaimed
            ))
        }
        _ => Err("usage: \\txn status".to_string()),
    }
}

/// `\recover <lsn>`: point-in-time recovery.  Reconstructs the database
/// as of the bound from archived checkpoints and sealed segments, and
/// installs it as an in-memory session — the durable directory itself is
/// never modified.
fn cmd_recover(state: &mut ShellState, rest: &str) -> Result<String, String> {
    let bound: u64 = rest
        .trim()
        .parse()
        .map_err(|_| "usage: \\recover <lsn>".to_string())?;
    let d = state.durable_mut()?;
    let (db, report) = recover_to_lsn(d.storage(), bound).map_err(|e| e.to_string())?;
    let summary = format!(
        "recovered as of LSN {}: checkpoint LSN {} + {} record(s) replayed \
         ({} segment(s), {} page(s) read); {} objects, {} access relations\n\
         in-memory as-of view — the durable directory is untouched; \\load it to return to the tip",
        report.bound,
        report.checkpoint_lsn,
        report.records_replayed,
        report.segments_read,
        report.pages_read,
        db.base().object_count(),
        db.asrs().count(),
    );
    state.install_db(OpenDb::Plain(Box::new(db)), &format!("pitr@{bound}"));
    Ok(summary)
}

/// `\replica on|off|sync|status`: an in-process warm standby fed by log
/// shipping from the open durable database.
fn cmd_replica(state: &mut ShellState, rest: &str) -> Result<String, String> {
    match rest.trim() {
        "on" => {
            state.durable_mut()?; // replication needs a durable primary
            if state.replica.is_some() {
                return Ok("replica already on — `\\replica sync` to catch it up".to_string());
            }
            state.replica = Some(ReplicaApplier::new());
            Ok("replica on (empty standby) — `\\replica sync` ships history to it".to_string())
        }
        "off" => match state.replica.take() {
            Some(r) => Ok(format!(
                "replica off (was at LSN {}, {} record(s) applied)",
                r.applied_lsn(),
                r.status().records_applied
            )),
            None => Ok("replica already off".to_string()),
        },
        "sync" => {
            let Some(mut applier) = state.replica.take() else {
                return Err("replica is off — `\\replica on` first".to_string());
            };
            let d = match state.durable_mut() {
                Ok(d) => d,
                Err(e) => {
                    state.replica = Some(applier);
                    return Err(e);
                }
            };
            let mut channel = LosslessChannel::new();
            let res = replicate(d, &mut applier, &mut channel, &ReplicateOptions::default());
            let out = match res {
                Ok(report) => Ok(format!(
                    "replica caught up to LSN {}: {} round(s), {} delivery(ies), \
                     {} record(s) applied",
                    report.converged_lsn,
                    report.rounds,
                    report.deliveries_sent,
                    report.records_applied
                )),
                Err(e) => Err(e.to_string()),
            };
            state.replica = Some(applier);
            out
        }
        "status" => {
            let Some(applier) = &state.replica else {
                return Err("replica is off — `\\replica on` first".to_string());
            };
            let st = applier.status();
            let d = state
                .db
                .as_ref()
                .and_then(|db| match db {
                    OpenDb::Durable(d) => Some(d),
                    OpenDb::Plain(_) => None,
                })
                .ok_or("WAL is off — `\\wal on <dir>` first")?;
            let shipper = LogShipper::new(d.storage());
            let tip = shipper.tip().map_err(|e| e.to_string())?;
            let lag_lsns = tip.saturating_sub(st.applied_lsn);
            let lag_bytes = shipper
                .lag_bytes(st.applied_lsn)
                .map_err(|e| e.to_string())?;
            let lag_pages = lag_bytes.div_ceil(asr_pagesim::PAGE_SIZE as u64);
            let mut out = format!(
                "replica: {}, applied LSN {} of {tip} (lag {lag_lsns} LSN(s), ~{lag_pages} page(s))\n",
                if st.bootstrapped {
                    "bootstrapped"
                } else {
                    "empty (never seeded)"
                },
                st.applied_lsn,
            );
            let _ = writeln!(
                out,
                "lifetime: {} record(s) applied, {} bootstrap(s), {} duplicate(s), \
                 {} gap NACK(s), {} corrupt NACK(s), {} byte(s) received",
                st.records_applied,
                st.bootstraps,
                st.duplicates,
                st.gaps,
                st.corrupt,
                st.bytes_received
            );
            Ok(out)
        }
        other => Err(format!(
            "usage: \\replica on|off|sync|status (got `{other}`)"
        )),
    }
}

fn cmd_checkpoint(state: &mut ShellState, rest: &str) -> Result<String, String> {
    let d = state.durable_mut()?;
    match rest {
        "" => {
            d.checkpoint().map_err(|e| e.to_string())?;
            Ok(format!(
                "checkpoint written at LSN {} (log truncated)",
                d.wal_status().checkpoint_lsn
            ))
        }
        "delta" => {
            let r = d.checkpoint_delta().map_err(|e| e.to_string())?;
            if r.snapshot_bytes == 0 {
                return Ok(format!(
                    "nothing logged since LSN {} — checkpoint unchanged{}",
                    r.lsn,
                    r.base_lsn
                        .map(|b| format!(" (delta on base LSN {b}, chain depth {})", r.chain_depth))
                        .unwrap_or_default()
                ));
            }
            match r.base_lsn {
                Some(base) => Ok(format!(
                    "delta checkpoint written at LSN {} on base LSN {base} (chain depth {}): \
                     {} of {} full page(s) written — {} page(s) saved; log truncated",
                    r.lsn,
                    r.chain_depth,
                    r.pages_written,
                    r.pages_full,
                    r.pages_full.saturating_sub(r.pages_written),
                )),
                None => Ok(format!(
                    "checkpoint written at LSN {} (delta unavailable — wrote a full snapshot; \
                     log truncated)",
                    r.lsn
                )),
            }
        }
        other => Err(format!("usage: \\checkpoint [delta] (got `{other}`)")),
    }
}

fn cmd_stats(state: &ShellState) -> Result<String, String> {
    let db = state.db()?;
    let stats = db.stats();
    let (reads, writes, hits) = (stats.reads(), stats.writes(), stats.buffer_hits());
    let requests = reads + hits;
    let hit_rate = if requests == 0 {
        0.0
    } else {
        100.0 * hits as f64 / requests as f64
    };
    let mut out = format!(
        "page accesses: {} ({reads} reads + {writes} writes), \
         {hits} buffer hits ({hit_rate:.1}% hit rate)\n",
        stats.accesses()
    );
    let batch_probes = stats.batch_probes();
    if batch_probes > 0 {
        let _ = writeln!(
            out,
            "batched probes: {batch_probes} ({} page read(s) saved vs. per-key descents)",
            stats.batch_pages_saved()
        );
    }
    let structures = stats.structures();
    if !structures.is_empty() {
        let width = structures
            .iter()
            .map(|s| s.label.len())
            .max()
            .unwrap_or(0)
            .max("structure".len());
        let kw = structures
            .iter()
            .map(|s| s.kind.name().len())
            .max()
            .unwrap_or(0)
            .max("kind".len());
        let _ = writeln!(
            out,
            "{:<width$}  {:<kw$} {:>8} {:>8} {:>8}",
            "structure", "kind", "reads", "writes", "hits"
        );
        for s in &structures {
            let _ = writeln!(
                out,
                "{:<width$}  {:<kw$} {:>8} {:>8} {:>8}",
                s.label,
                s.kind.name(),
                s.reads,
                s.writes,
                s.buffer_hits
            );
        }
    }
    let metrics = db.tracer().metrics().render_table();
    if !metrics.is_empty() {
        out.push_str(&metrics);
    }
    Ok(out)
}

fn cmd_trace(state: &mut ShellState, arg: &str) -> Result<String, String> {
    match arg {
        "on" => {
            if state.trace.is_some() {
                return Ok("tracing already on".to_string());
            }
            let ring = Rc::new(RingBufferSink::new(1024));
            // Only attach when a database is open; install_db attaches
            // the ring to any database opened later.
            let id = state
                .db
                .as_ref()
                .map(|db| db.as_db().tracer().add_sink(ring.clone()));
            state.trace = Some((id, ring));
            Ok("tracing on (ring of 1024 spans; `\\trace show` to drain)".to_string())
        }
        "off" => match state.trace.take() {
            Some((id, ring)) => {
                if let (Some(db), Some(id)) = (&state.db, id) {
                    db.as_db().tracer().remove_sink(id);
                }
                Ok(format!(
                    "tracing off ({} buffered span(s) discarded)",
                    ring.len()
                ))
            }
            None => Ok("tracing already off".to_string()),
        },
        "show" => match &state.trace {
            Some((_, ring)) => {
                let records = ring.drain();
                if records.is_empty() {
                    return Ok("trace buffer empty".to_string());
                }
                let mut out = String::new();
                for r in &records {
                    out.push_str(&r.to_jsonl());
                    out.push('\n');
                }
                Ok(out)
            }
            None => Err("tracing is off — `\\trace on` first".to_string()),
        },
        other => Err(format!("usage: \\trace on|off|show (got `{other}`)")),
    }
}

fn cmd_flightrec(state: &mut ShellState, arg: &str) -> Result<String, String> {
    let rec = state
        .flightrec
        .as_ref()
        .ok_or_else(|| "no database open — the flight recorder starts with one".to_string())?;
    let mut parts = arg.split_whitespace();
    match parts.next().unwrap_or("status") {
        "status" => {
            let s = rec.status();
            let span = match (s.first_seq, s.last_seq) {
                (Some(a), Some(b)) => format!("seq {a}..{b}"),
                _ => "empty".to_string(),
            };
            Ok(format!(
                "flight recorder: {}/{} event(s) buffered, {} recorded, {} dropped, {span}",
                s.len, s.capacity, s.recorded, s.dropped
            ))
        }
        "dump" => {
            let dump = rec.dump_jsonl();
            if dump.is_empty() {
                Ok("flight recorder empty".to_string())
            } else {
                Ok(dump)
            }
        }
        "tail" => {
            let n = parts
                .next()
                .unwrap_or("10")
                .parse::<usize>()
                .map_err(|_| "usage: \\flightrec tail <n>".to_string())?;
            let lines = rec.tail_summaries(n);
            if lines.is_empty() {
                Ok("flight recorder empty".to_string())
            } else {
                Ok(lines.join("\n"))
            }
        }
        other => Err(format!(
            "usage: \\flightrec status|dump|tail <n> (got `{other}`)"
        )),
    }
}

/// `\serve <addr>`: serve the open database over TCP.  Blocks this
/// session until a client sends `Shutdown` (every connection gets its
/// own exactly-once session).
fn cmd_serve(state: &mut ShellState, rest: &str) -> Result<String, String> {
    let addr = rest.trim();
    if addr.is_empty() {
        return Err("usage: \\serve <addr:port> — e.g. \\serve 127.0.0.1:7070".to_string());
    }
    let open = state.open_mut()?;
    let mut tcp = TcpServer::bind(addr).map_err(|e| e.to_string())?;
    let local = tcp.local_addr().map_err(|e| e.to_string())?;
    let report = match open {
        OpenDb::Plain(db) => tcp.serve_until_shutdown(&mut ServerDb::<FsStorage>::Plain(db)),
        OpenDb::Durable(d) => tcp.serve_until_shutdown(&mut ServerDb::Durable(d)),
    }
    .map_err(|e| e.to_string())?;
    Ok(format!(
        "served {local}: {} session(s), {} request(s) executed, {} replayed, {} NACKed",
        tcp.server().session_count(),
        report.executed,
        report.replayed,
        report.nacked
    ))
}

/// `\connect [chaos <seed>]` / `\connect status` / `\connect off`:
/// loopback wire mode.  While connected, query lines are framed as wire
/// requests and pumped through an in-process server session — with
/// `chaos`, over seeded fault-injecting channels, paying retries.
fn cmd_connect(state: &mut ShellState, rest: &str) -> Result<String, String> {
    let mut parts = rest.split_whitespace();
    match parts.next() {
        None => {
            state.db()?;
            if state.sharded.is_some() {
                return Err("sharding is on — `\\shards off` first".to_string());
            }
            if state.wire.is_some() {
                return Ok("already connected — `\\connect status`".to_string());
            }
            state.wire = Some(WireSession::new(None));
            Ok(
                "wire mode on (lossless loopback): queries now route through the \
                server session — `\\connect off` to leave"
                    .to_string(),
            )
        }
        Some("chaos") => {
            state.db()?;
            if state.sharded.is_some() {
                return Err("sharding is on — `\\shards off` first".to_string());
            }
            let seed: u64 = parts
                .next()
                .ok_or("usage: \\connect chaos <seed>")?
                .parse()
                .map_err(|_| "usage: \\connect chaos <seed>".to_string())?;
            state.wire = Some(WireSession::new(Some(seed)));
            Ok(format!(
                "wire mode on (chaos seed {seed}): frames are dropped, damaged, \
                 duplicated and reordered; every query still executes exactly once"
            ))
        }
        Some("off") => match state.wire.take() {
            Some(w) => Ok(format!(
                "wire mode off — {} request(s), {} frame(s) sent, {} retry(ies), \
                 {} NACK(s), {} damaged response(s)",
                w.next_id - 1,
                w.frames_sent,
                w.retries,
                w.nacks,
                w.damaged
            )),
            None => Ok("wire mode already off".to_string()),
        },
        Some("status") => {
            let Some(w) = &state.wire else {
                return Err("wire mode is off — `\\connect` first".to_string());
            };
            let (rx, tx) = (w.inbox.stats(), w.outbox.stats());
            let mut out = format!(
                "wire mode: {}, {} request(s), {} frame(s) sent, {} retry(ies), \
                 {} NACK(s), {} damaged response(s)\n",
                match w.chaos_seed {
                    Some(seed) => format!("chaos seed {seed}"),
                    None => "lossless".to_string(),
                },
                w.next_id - 1,
                w.frames_sent,
                w.retries,
                w.nacks,
                w.damaged
            );
            let _ = writeln!(
                out,
                "requests:  {} sent, {} delivered, {} dropped, {} dup, {} reordered, \
                 {} truncated, {} flipped",
                rx.sent,
                rx.delivered,
                rx.dropped,
                rx.duplicated,
                rx.reordered,
                rx.truncated,
                rx.flipped
            );
            let _ = writeln!(
                out,
                "responses: {} sent, {} delivered, {} dropped, {} dup, {} reordered, \
                 {} truncated, {} flipped",
                tx.sent,
                tx.delivered,
                tx.dropped,
                tx.duplicated,
                tx.reordered,
                tx.truncated,
                tx.flipped
            );
            Ok(out)
        }
        Some(other) => Err(format!(
            "usage: \\connect [chaos <seed>]|off|status (got `{other}`)"
        )),
    }
}

/// `\shards on <n> [chaos <seed>]|off|status|reseed|tick [n]|fault
/// <shard> <seed>|deadline <attempts>`: scatter-gather serving with
/// fault domains.  Requires WAL mode — the fleet is seeded from the
/// durable primary through the replication substrate, `reseed` replays
/// the WAL suffix after mutations, `fault` arms a deterministic
/// crash/stall plan on one shard, and `tick` drives the coordinator's
/// health check + self-healing reseed loop.
fn cmd_shards(state: &mut ShellState, rest: &str) -> Result<String, String> {
    let mut parts = rest.split_whitespace();
    match parts.next() {
        Some("on") => {
            if state.wire.is_some() {
                return Err("wire mode is on — `\\connect off` first".to_string());
            }
            let n: usize = parts
                .next()
                .ok_or("usage: \\shards on <n> [chaos <seed>]")?
                .parse()
                .map_err(|_| "usage: \\shards on <n> [chaos <seed>]".to_string())?;
            let chaos = match parts.next() {
                Some("chaos") => {
                    let seed: u64 = parts
                        .next()
                        .ok_or("usage: \\shards on <n> chaos <seed>")?
                        .parse()
                        .map_err(|_| "usage: \\shards on <n> chaos <seed>".to_string())?;
                    Some((ChaosProfile::from_seed(seed), seed))
                }
                Some(other) => return Err(format!("unknown option `{other}`")),
                None => None,
            };
            let d = state.durable_mut()?;
            let sharded = ShardedDatabase::from_primary(d, n, chaos).map_err(|e| e.to_string())?;
            let placed: u64 = (0..n).map(|i| sharded.fleet().node(i).placed_rows()).sum();
            state.sharded = Some(sharded);
            Ok(format!(
                "sharding on: {n} shard(s) seeded via replication, {placed} row(s) \
                 hash-placed{}; queries now run scatter-gather — `\\shards reseed` \
                 after mutations",
                match chaos {
                    Some((_, seed)) => format!(", serving channels under chaos seed {seed}"),
                    None => String::new(),
                }
            ))
        }
        Some("off") => match state.sharded.take() {
            Some(_) => Ok("sharding off — queries run on the primary again".to_string()),
            None => Ok("sharding already off".to_string()),
        },
        Some("status") => match &mut state.sharded {
            Some(s) => s.render_status().map_err(|e| e.to_string()),
            None => Err("sharding is off — `\\shards on <n>` first".to_string()),
        },
        Some("reseed") => {
            let Some(mut sharded) = state.sharded.take() else {
                return Err("sharding is off — `\\shards on <n>` first".to_string());
            };
            let d = match state.durable_mut() {
                Ok(d) => d,
                Err(e) => {
                    state.sharded = Some(sharded);
                    return Err(e);
                }
            };
            let res = sharded.reseed(d).map_err(|e| e.to_string());
            let out = res.map(|()| {
                let lsn = sharded.fleet().node(0).applied_lsn();
                format!("fleet reseeded: every shard caught up to LSN {lsn}")
            });
            state.sharded = Some(sharded);
            out
        }
        Some("tick") => {
            let n: u64 = match parts.next() {
                Some(n) => n
                    .parse()
                    .map_err(|_| "usage: \\shards tick [n]".to_string())?,
                None => 1,
            };
            let Some(mut sharded) = state.sharded.take() else {
                return Err("sharding is off — `\\shards on <n>` first".to_string());
            };
            let d = match state.durable_mut() {
                Ok(d) => d,
                Err(e) => {
                    state.sharded = Some(sharded);
                    return Err(e);
                }
            };
            for _ in 0..n.max(1) {
                sharded.tick(d);
            }
            let states: Vec<String> = sharded
                .health_states()
                .iter()
                .map(|s| s.label().to_string())
                .collect();
            let verdict = if sharded.all_up() {
                "fleet healthy".to_string()
            } else {
                format!("[{}]", states.join(", "))
            };
            let out = format!("ticked {n} time(s): {verdict}");
            state.sharded = Some(sharded);
            Ok(out)
        }
        Some("fault") => {
            let usage = "usage: \\shards fault <shard> <seed>";
            let shard: usize = parts
                .next()
                .ok_or(usage)?
                .parse()
                .map_err(|_| usage.to_string())?;
            let seed: u64 = parts
                .next()
                .ok_or(usage)?
                .parse()
                .map_err(|_| usage.to_string())?;
            let Some(sharded) = state.sharded.as_mut() else {
                return Err("sharding is off — `\\shards on <n>` first".to_string());
            };
            if shard >= sharded.shard_count() {
                return Err(format!(
                    "shard {shard} out of range (fleet has {})",
                    sharded.shard_count()
                ));
            }
            let plan = ShardFaultPlan::from_seed(seed);
            let desc = plan.describe();
            sharded.set_fault_plan(shard, plan);
            Ok(format!(
                "fault plan armed on shard {shard} (seed {seed}): {desc}; \
                 run queries then `\\shards tick` to watch it heal"
            ))
        }
        Some("deadline") => {
            let attempts: u32 = parts
                .next()
                .ok_or("usage: \\shards deadline <attempts>")?
                .parse()
                .map_err(|_| "usage: \\shards deadline <attempts>".to_string())?;
            let Some(sharded) = state.sharded.as_mut() else {
                return Err("sharding is off — `\\shards on <n>` first".to_string());
            };
            sharded.set_deadline(attempts);
            Ok(format!(
                "per-shard request deadline set to {} attempt(s); a shard that \
                 misses it goes suspect, then down",
                attempts.max(1)
            ))
        }
        _ => Err(
            "usage: \\shards on <n> [chaos <seed>]|off|status|reseed|tick [n]|\
             fault <shard> <seed>|deadline <attempts>"
                .to_string(),
        ),
    }
}

fn cmd_schema(state: &ShellState) -> Result<String, String> {
    let db = state.db()?;
    let schema = db.base().schema();
    let mut out = String::new();
    for (id, def) in schema.types() {
        match &def.kind {
            asr_gom::TypeKind::Tuple {
                supertypes,
                attributes,
            } => {
                let sups: Vec<&str> = supertypes.iter().map(|&s| schema.name(s)).collect();
                let attrs: Vec<String> = attributes
                    .iter()
                    .map(|a| format!("{}: {}", a.name, schema.ref_name(a.ty)))
                    .collect();
                let sup_txt = if sups.is_empty() {
                    String::new()
                } else {
                    format!(" supertypes ({})", sups.join(", "))
                };
                let _ = writeln!(
                    out,
                    "type {} is{sup_txt} [{}]   -- {} objects",
                    def.name,
                    attrs.join(", "),
                    db.base().extent(id).len()
                );
            }
            asr_gom::TypeKind::Set { element } => {
                let _ = writeln!(
                    out,
                    "type {} is {{{}}}",
                    def.name,
                    schema.ref_name(*element)
                );
            }
            asr_gom::TypeKind::List { element } => {
                let _ = writeln!(out, "type {} is <{}>", def.name, schema.ref_name(*element));
            }
        }
    }
    for (name, value) in db.base().variables() {
        let _ = writeln!(out, "var {name} = {value}");
    }
    Ok(out)
}

fn parse_extension(name: &str) -> Result<Extension, String> {
    Extension::ALL
        .into_iter()
        .find(|e| e.name() == name)
        .ok_or_else(|| format!("unknown extension `{name}` (canonical, full, left, right)"))
}

fn parse_decomposition(spec: &str, m: usize) -> Result<Decomposition, String> {
    match spec {
        "binary" | "bi" => Ok(Decomposition::binary(m)),
        "none" | "no" => Ok(Decomposition::none(m)),
        cuts => {
            let cuts: Vec<usize> = cuts
                .trim_matches(|c| c == '(' || c == ')')
                .split(',')
                .map(|c| c.trim().parse().map_err(|_| format!("bad cut `{c}`")))
                .collect::<Result<_, String>>()?;
            Decomposition::new(cuts).map_err(|e| e.to_string())
        }
    }
}

fn cmd_asr(state: &mut ShellState, rest: &str) -> Result<String, String> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    let [dotted, ext, dec] = parts.as_slice() else {
        return Err(
            "usage: \\asr <Type.A1.A2…> <canonical|full|left|right> <binary|none|0,2,4>"
                .to_string(),
        );
    };
    let open = state.open_mut()?;
    let path =
        PathExpression::parse(open.as_db().base().schema(), dotted).map_err(|e| e.to_string())?;
    let extension = parse_extension(ext)?;
    let m = path.arity(false) - 1;
    let decomposition = parse_decomposition(dec, m)?;
    let config = AsrConfig {
        extension,
        decomposition,
        keep_set_oids: false,
    };
    // In WAL mode the creation goes through the durable wrapper so it is
    // logged (and replayed on recovery instead of rebuilt).
    let id = match open {
        OpenDb::Plain(db) => db.create_asr(path, config).map_err(|e| e.to_string())?,
        OpenDb::Durable(d) => d.create_asr_on(dotted, config).map_err(|e| e.to_string())?,
    };
    let asr = open.as_db().asr(id).map_err(|e| e.to_string())?;
    Ok(format!(
        "ASR #{id}: {} {} over {} — {} rows, {} pages",
        asr.config().extension,
        asr.config().decomposition,
        asr.path(),
        asr.total_rows(),
        asr.total_pages()
    ))
}

fn cmd_asrs(state: &ShellState) -> Result<String, String> {
    let db = state.db()?;
    let mut out = String::new();
    let mut any = false;
    for (id, asr) in db.asrs() {
        any = true;
        let _ = writeln!(
            out,
            "#{id}  {:<9} {:<14} {}  ({} rows, {} bytes)",
            asr.config().extension.name(),
            asr.config().decomposition.to_string(),
            asr.path(),
            asr.total_rows(),
            asr.data_bytes()
        );
    }
    if !any {
        out.push_str("no access support relations\n");
    }
    Ok(out)
}

fn cmd_drop(state: &mut ShellState, rest: &str) -> Result<String, String> {
    let id: usize = rest
        .trim()
        .parse()
        .map_err(|_| format!("bad ASR id `{rest}`"))?;
    match state.open_mut()? {
        OpenDb::Plain(db) => db.drop_asr(id).map_err(|e| e.to_string())?,
        OpenDb::Durable(d) => d.drop_asr(id).map_err(|e| e.to_string())?,
    }
    Ok(format!("dropped ASR #{id}"))
}

fn cmd_advise(state: &mut ShellState, rest: &str) -> Result<String, String> {
    let mut parts = rest.split_whitespace();
    let dotted = parts.next().ok_or("usage: \\advise <Type.A1.A2…> [p_up]")?;
    let p_up: Option<f64> = match parts.next() {
        Some(p) => Some(p.parse().map_err(|_| format!("bad p_up `{p}`"))?),
        None => None,
    };
    let db = state.db()?;
    let path = PathExpression::parse(db.base().schema(), dotted).map_err(|e| e.to_string())?;
    let n = path.len();
    // Prefer the session's recorded usage; otherwise synthesize a
    // representative whole-chain pattern at the requested update share.
    let recorded = state.recorder.borrow();
    let (recorder, basis) = if recorded.is_empty() || p_up.is_some() {
        let p_up = p_up.unwrap_or(0.1);
        let mut r = UsageRecorder::new();
        let ops = 1000usize;
        let updates = ((ops as f64) * p_up).round() as usize;
        for _ in 0..(ops - updates) {
            r.record_backward(0, n);
        }
        for _ in 0..updates {
            r.record_insert(n - 1);
        }
        (
            r,
            format!("assumed mix: Q_{{0,{n}}}(bw) with P_up = {p_up}"),
        )
    } else {
        (
            recorded.clone(),
            format!(
                "recorded session usage: {} queries, {} updates (P_up = {:.2})",
                recorded.query_count(),
                recorded.update_count(),
                recorded.p_up()
            ),
        )
    };
    drop(recorded);
    let advice = advise(db, &path, &recorder).map_err(|e| e.to_string())?;
    let mut out = advice.summary(6);
    let _ = writeln!(
        out,
        "{basis}; predicted cost ratio vs no support: {:.3}",
        advice.predicted_improvement(&recorder)
    );
    let _ = writeln!(
        out,
        "materialize with: \\asr {} {} {}",
        dotted,
        advice.best().extension.map(|e| e.name()).unwrap_or("none"),
        advice.best().decomposition
    );
    Ok(out)
}

fn run_query(state: &mut ShellState, text: &str) -> Result<String, String> {
    if state.sharded.is_some() {
        return run_query_sharded(state, text);
    }
    if state.wire.is_some() {
        return run_query_wire(state, text);
    }
    let db = state.db()?;
    let before = db.stats().accesses();
    let query = oql::parse(text).map_err(|e| e.to_string())?;
    // The executor announces its span usage as `usage.*` trace events,
    // which the subscribed RecorderSink folds into `state.recorder`.
    let result = oql::execute_query(db, &query).map_err(|e| e.to_string())?;
    let cost = db.stats().accesses() - before;
    let mut out = result.to_string();
    let _ = writeln!(out, "({} row(s), {cost} page accesses)", result.rows.len());
    Ok(out)
}

/// A query line while `\connect` is on: frame it, push it through the
/// chaotic loopback session, decode the response table.
fn run_query_wire(state: &mut ShellState, text: &str) -> Result<String, String> {
    let ShellState { db, wire, .. } = state;
    let Some(open) = db.as_mut() else {
        return Err("no database open — try `\\open company`".to_string());
    };
    let wire = wire.as_mut().expect("checked by run_query");
    let mut view = match open {
        OpenDb::Plain(db) => ServerDb::<FsStorage>::Plain(db),
        OpenDb::Durable(d) => ServerDb::Durable(d),
    };
    let sent_before = wire.frames_sent;
    let resp = wire.call(&mut view, RequestBody::Query(text.to_string()))?;
    let attempts = wire.frames_sent - sent_before;
    match resp.body {
        ResponseBody::Table { columns, rows } => {
            let nrows = rows.len();
            let result = oql::ResultSet { columns, rows };
            let mut out = result.to_string();
            let _ = writeln!(
                out,
                "({nrows} row(s) over the wire, {} server page accesses, {attempts} frame(s))",
                resp.io.accesses()
            );
            Ok(out)
        }
        ResponseBody::Err(msg) => Err(msg),
        other => Err(format!("unexpected response `{}`", other.label())),
    }
}

/// A query line while `\shards on`: execute on the coordinator, every
/// span scattered across the fleet and gathered back.
fn run_query_sharded(state: &mut ShellState, text: &str) -> Result<String, String> {
    let sharded = state.sharded.as_mut().expect("checked by run_query");
    sharded.take_degraded(); // clear carry-over from a prior query
    let result = sharded.query(text).map_err(|e| e.to_string())?;
    let (merged, max_shard) = sharded.fleet_mut().take_io();
    let missing = sharded.take_degraded();
    let mut out = result.to_string();
    let _ = writeln!(
        out,
        "({} row(s) scatter-gathered over {} shard(s): {} merged page accesses, \
         {max_shard} on the hottest shard)",
        result.rows.len(),
        sharded.shard_count(),
        merged.accesses()
    );
    if !missing.is_empty() {
        let ids: Vec<String> = missing.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(
            out,
            "partial: missing shards {{{}}} — answer is a subset; \
             `\\shards tick` to heal",
            ids.join(", ")
        );
    }
    Ok(out)
}

const HELP: &str = r#"commands:
  \open <company|robots>     load a built-in example database
  \load <file|dir> / \save <file>  snapshot persistence; a directory
                             with a MANIFEST is recovered (checkpoint
                             + WAL replay) and stays in WAL mode
  \wal on <dir>|off|status   write-ahead logging for the open database
  \wal group <n> [deadline <ops>]|off  group commit: one fsync per n
                             pending session commits; `deadline` flushes a
                             partial group after that many logged ops
  \wal rotate|prune          seal the active log / drop archived history
                             fully covered by the newest checkpoint
  \txn status                MVCC epochs: commit epoch, snapshot pins,
                             reclamation progress
  \checkpoint [delta]        flush, snapshot, truncate the log; `delta`
                             writes only pages changed since the base
                             checkpoint (falls back to full when needed)
  \recover <lsn>             point-in-time recovery: rebuild the state as
                             of that LSN (in-memory; directory untouched)
  \replica on|off|sync|status  in-process warm standby via log shipping;
                             status shows lag in LSNs and modeled pages
  \schema                    show types, extents and variables
  \asr <path> <ext> <dec>    materialize an access support relation
                             ext: canonical|full|left|right
                             dec: binary | none | 0,2,4
  \asrs                      list access support relations
  \drop <id>                 drop an access support relation
  \explain <query>           show the evaluation plan
  \analyze <query>           run it: per-operator I/O vs cost-model prediction
  \advise <path> [p_up]      physical-design advisor (default p_up 0.1)
  \stats / \reset            page-access counters, per structure
  \trace on|off|show         buffer finished trace spans, dump as JSONL
  \flightrec status|dump|tail <n>  the always-on bounded event recorder:
                             recent spans/events as summaries or JSONL
  \serve <addr:port>         serve the open database over TCP (blocks
                             until a client sends Shutdown)
  \connect [chaos <seed>]    loopback wire mode: queries go through an
                             in-process server session; `chaos` injects
                             frame damage (CRC-caught, retried, never
                             mis-executed).  \connect off|status
  \shards on <n> [chaos <seed>]  scatter-gather serving over n shards
                             seeded from the WAL-mode primary; queries
                             fan out and union.  \shards off|status|reseed
  \shards fault <i> <seed>   arm a deterministic crash/stall plan on one
                             shard; degraded reads print `partial: missing
                             shards {…}` until the fleet heals
  \shards tick [n]           drive the coordinator health check: probe,
                             mark suspect/down, reseed replacements
  \shards deadline <k>       per-shard request deadline in wire attempts
  \quit
anything else is executed as a query:
  select d.Name from d in Mercedes, b in d.Manufactures.Composition
  where b.Name = "Door""#;

#[cfg(test)]
mod tests {
    use super::*;

    fn run(state: &mut ShellState, lines: &[&str]) -> Vec<String> {
        lines.iter().map(|l| run_line(state, l)).collect()
    }

    #[test]
    fn full_session() {
        let mut s = ShellState::new();
        let out = run(&mut s, &[
            "\\open company",
            "\\schema",
            "\\asr Division.Manufactures.Composition.Name full binary",
            "\\asrs",
            r#"select d.Name from d in Mercedes, b in d.Manufactures.Composition where b.Name = "Door""#,
            "\\explain select d.Name from d in Division where d.Manufactures.Composition.Name = \"Door\"",
            "\\stats",
            "\\reset",
            "\\drop 0",
            "\\asrs",
            "\\quit",
        ]);
        assert!(out[0].contains("opened"));
        assert!(out[1].contains("type Division is"));
        assert!(out[1].contains("var Mercedes"));
        assert!(out[2].contains("ASR #0: full (0,1,2,3)"));
        assert!(out[3].contains("#0"));
        assert!(out[4].contains("\"Auto\"") && out[4].contains("\"Truck\""));
        assert!(out[4].contains("page accesses"));
        assert!(out[5].contains("backward span query through ASR"));
        assert!(out[6].contains("page accesses:"));
        assert!(out[8].contains("dropped"));
        assert!(out[9].contains("no access support relations"));
        assert!(s.done);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = ShellState::new();
        assert!(run_line(&mut s, "select x from x in Y").starts_with("error:"));
        assert!(run_line(&mut s, "\\bogus").contains("unknown command"));
        run_line(&mut s, "\\open company");
        assert!(run_line(&mut s, "\\asr Nope.x full binary").starts_with("error:"));
        assert!(run_line(&mut s, "\\asr Division.Manufactures full").starts_with("error:"));
        assert!(run_line(&mut s, "\\drop 99").starts_with("error:"));
        assert!(run_line(&mut s, "select nonsense").starts_with("error:"));
        assert!(run_line(&mut s, "\\open nowhere").starts_with("error:"));
        assert!(!s.done);
    }

    #[test]
    fn advise_command() {
        let mut s = ShellState::new();
        run_line(&mut s, "\\open company");
        let out = run_line(
            &mut s,
            "\\advise Division.Manufactures.Composition.Name 0.2",
        );
        assert!(out.contains("advice for"), "{out}");
        assert!(out.contains("assumed mix"), "{out}");
        assert!(out.contains("materialize with:"), "{out}");
        assert!(run_line(
            &mut s,
            "\\advise Division.Manufactures.Composition.Name oops"
        )
        .starts_with("error:"));
    }

    #[test]
    fn advise_uses_recorded_session_usage() {
        let mut s = ShellState::new();
        run_line(&mut s, "\\open company");
        // Execute real queries: their spans are recorded.
        let q =
            r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#;
        run_line(&mut s, q);
        run_line(&mut s, q);
        // Each execution records the predicate span (backward) and the
        // d.Name projection (forward) — via the trace-stream subscription,
        // not an explicit recorder call.
        assert_eq!(s.recorder.borrow().query_count(), 4);
        let out = run_line(&mut s, "\\advise Division.Manufactures.Composition.Name");
        assert!(out.contains("recorded session usage: 4 queries"), "{out}");
        // An explicit p_up overrides the recording.
        let out = run_line(
            &mut s,
            "\\advise Division.Manufactures.Composition.Name 0.5",
        );
        assert!(out.contains("assumed mix"), "{out}");
    }

    #[test]
    fn save_load_through_shell() {
        let mut s = ShellState::new();
        run_line(&mut s, "\\open robots");
        run_line(
            &mut s,
            "\\asr ROBOT.Arm.MountedTool.ManufacturedBy.Location canonical none",
        );
        let file = std::env::temp_dir().join("asrdb_shell_test.snap");
        let file_str = file.to_str().unwrap().to_string();
        assert!(run_line(&mut s, &format!("\\save {file_str}")).contains("saved"));
        let mut s2 = ShellState::new();
        let out = run_line(&mut s2, &format!("\\load {file_str}"));
        assert!(out.contains("1 access relations"), "{out}");
        assert!(out.contains("(snapshot v2)"), "{out}");
        assert!(out.contains("asr 0: physical"), "{out}");
        let q = run_line(
            &mut s2,
            r#"select r.Name from r in OurRobots where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia""#,
        );
        assert!(q.contains("3 row(s)"), "{q}");
        std::fs::remove_file(file).ok();
    }

    #[test]
    fn wal_mode_logs_recovers_and_detaches() {
        let dir = std::env::temp_dir().join("asrdb_shell_wal_test");
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        let mut s = ShellState::new();
        run_line(&mut s, "\\open company");
        // Durability commands demand WAL mode.
        assert!(run_line(&mut s, "\\wal status").starts_with("error:"));
        assert!(run_line(&mut s, "\\checkpoint").starts_with("error:"));
        assert!(run_line(&mut s, "\\wal sideways").starts_with("error:"));
        let on = run_line(&mut s, &format!("\\wal on {dir_str}"));
        assert!(on.contains("WAL on"), "{on}");
        assert!(on.contains("initial checkpoint"), "{on}");
        // The ASR creation is logged, not just applied.
        let out = run_line(
            &mut s,
            "\\asr Division.Manufactures.Composition.Name full binary",
        );
        assert!(out.contains("ASR #0"), "{out}");
        let st = run_line(&mut s, "\\wal status");
        assert!(st.contains("policy every-record"), "{st}");
        assert!(st.contains("last LSN 1, checkpoint LSN 0"), "{st}");
        let stats = run_line(&mut s, "\\stats");
        assert!(stats.contains("wal.records"), "{stats}");
        assert!(stats.contains("wal.log"), "{stats}");

        // "Crash" (drop the session without a checkpoint); recovery
        // replays the logged creation instead of silently rebuilding.
        drop(s);
        let mut s2 = ShellState::new();
        let out = run_line(&mut s2, &format!("\\load {dir_str}"));
        assert!(out.contains("recovered"), "{out}");
        assert!(out.contains("1 record(s) replayed"), "{out}");
        assert!(out.contains("1 access relations"), "{out}");
        assert!(out.contains("(WAL on)"), "{out}");
        let q = run_line(
            &mut s2,
            r#"select d.Name from d in Mercedes, b in d.Manufactures.Composition where b.Name = "Door""#,
        );
        assert!(q.contains("\"Auto\""), "{q}");
        let st = run_line(&mut s2, "\\wal status");
        assert!(st.contains("last recovery: 1 record(s) replayed"), "{st}");

        // Checkpoint, then detach; the session keeps running in memory.
        assert!(run_line(&mut s2, "\\checkpoint").contains("checkpoint written at LSN 1"));
        let off = run_line(&mut s2, "\\wal off");
        assert!(off.contains("WAL off"), "{off}");
        assert!(run_line(&mut s2, "\\asrs").contains("#0"));
        assert!(run_line(&mut s2, "\\wal status").starts_with("error:"));

        // Reloading the checkpointed directory restores the ASR from its
        // page images (the v2 physical section), not by re-joining.
        let mut s4 = ShellState::new();
        let out = run_line(&mut s4, &format!("\\load {dir_str}"));
        assert!(out.contains("0 record(s) replayed"), "{out}");
        assert!(out.contains("asr 0: physical"), "{out}");
        drop(s4);

        // Enabling WAL into a directory that already holds a durable
        // database is refused (the database would be lost) — `\load` it.
        let mut s3 = ShellState::new();
        run_line(&mut s3, "\\open company");
        let err = run_line(&mut s3, &format!("\\wal on {dir_str}"));
        assert!(err.starts_with("error:"), "{err}");
        assert!(err.contains("\\load"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn txn_status_and_group_commit_through_shell() {
        let mut s = ShellState::new();
        assert!(run_line(&mut s, "\\txn status").starts_with("error:"));
        run_line(&mut s, "\\open company");
        // `\txn` works on a plain in-memory database too.
        let t = run_line(&mut s, "\\txn status");
        assert!(t.contains("commit epoch 0"), "{t}");
        assert!(t.contains("0 active snapshot(s)"), "{t}");
        assert!(t.contains("oldest pinned epoch none"), "{t}");
        assert!(run_line(&mut s, "\\txn sideways").starts_with("error:"));

        // Group commit demands WAL mode.
        assert!(run_line(&mut s, "\\wal group 4").starts_with("error:"));
        let dir = std::env::temp_dir().join("asrdb_shell_group_test");
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        run_line(&mut s, &format!("\\wal on {dir_str}"));
        assert!(run_line(&mut s, "\\wal group").starts_with("error:"));
        assert!(run_line(&mut s, "\\wal group sideways").starts_with("error:"));
        let on = run_line(&mut s, "\\wal group 4");
        assert!(on.contains("group commit on"), "{on}");
        let st = run_line(&mut s, "\\wal status");
        assert!(st.contains("policy explicit"), "{st}");
        assert!(st.contains("group commit: target 4 session(s)"), "{st}");

        // A logged mutation parks in the open group ...
        run_line(
            &mut s,
            "\\asr Division.Manufactures.Composition.Name full binary",
        );
        let st = run_line(&mut s, "\\wal status");
        assert!(st.contains("1 pending record(s)"), "{st}");

        // ... and `\wal group off` flushes it and restores the policy.
        let off = run_line(&mut s, "\\wal group off");
        assert!(off.contains("group commit off"), "{off}");
        let st = run_line(&mut s, "\\wal status");
        assert!(st.contains("policy every-record"), "{st}");
        assert!(st.contains("0 pending record(s)"), "{st}");
        assert!(!st.contains("group commit: target"), "{st}");

        // With an op-count deadline the pipeline flushes a partial group
        // on its own: the lone logged mutation never waits for 3 peers.
        assert!(run_line(&mut s, "\\wal group 4 sideways").starts_with("error:"));
        assert!(run_line(&mut s, "\\wal group 4 deadline").starts_with("error:"));
        let on = run_line(&mut s, "\\wal group 4 deadline 1");
        assert!(on.contains("after 1 logged op(s)"), "{on}");
        run_line(&mut s, "\\drop 0");
        let st = run_line(&mut s, "\\wal status");
        assert!(st.contains("deadline 1 op(s)"), "{st}");
        assert!(st.contains("deadline flush(es)"), "{st}");
        assert!(st.contains("0 pending record(s)"), "{st}");
        run_line(&mut s, "\\wal group off");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_replica_and_prune_through_shell() {
        let dir = std::env::temp_dir().join("asrdb_shell_pitr_test");
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        let mut s = ShellState::new();
        run_line(&mut s, "\\open company");
        // PITR and replication demand WAL mode.
        assert!(run_line(&mut s, "\\recover 0").starts_with("error:"));
        assert!(run_line(&mut s, "\\replica on").starts_with("error:"));
        run_line(&mut s, &format!("\\wal on {dir_str}"));

        // LSN 1: create an ASR.  LSN 2 would be the next mutation.
        run_line(
            &mut s,
            "\\asr Division.Manufactures.Composition.Name full binary",
        );
        let st = run_line(&mut s, "\\wal status");
        assert!(st.contains("segments: 0 sealed"), "{st}");
        assert!(st.contains("oldest needed LSN 1"), "{st}");
        assert!(st.contains("PITR floor LSN 0"), "{st}");

        // Replica: seed it, verify it matches the primary byte for byte.
        assert!(run_line(&mut s, "\\replica status").starts_with("error:"));
        assert!(run_line(&mut s, "\\replica on").contains("replica on"));
        let status = run_line(&mut s, "\\replica status");
        assert!(status.contains("empty (never seeded)"), "{status}");
        assert!(
            status.contains("applied LSN 0 of 1 (lag 1 LSN(s)"),
            "{status}"
        );
        let sync = run_line(&mut s, "\\replica sync");
        assert!(sync.contains("caught up to LSN 1"), "{sync}");
        let status = run_line(&mut s, "\\replica status");
        assert!(
            status.contains("bootstrapped, applied LSN 1 of 1"),
            "{status}"
        );
        assert!(status.contains("lag 0 LSN(s), ~0 page(s)"), "{status}");
        assert!(run_line(&mut s, "\\replica sideways").starts_with("error:"));

        // Rotate + checkpoint + prune: segment lifecycle over the shell.
        let rot = run_line(&mut s, "\\wal rotate");
        assert!(
            rot.contains("sealed segment 1 covering LSNs 1..=1"),
            "{rot}"
        );
        assert!(run_line(&mut s, "\\wal rotate").contains("nothing to seal"));
        run_line(&mut s, "\\checkpoint");
        let pruned = run_line(&mut s, "\\wal prune");
        assert!(pruned.contains("pruned 1 segment(s)"), "{pruned}");
        assert!(pruned.contains("PITR floor is now LSN 1"), "{pruned}");
        assert!(run_line(&mut s, "\\wal prune").contains("nothing to prune"));

        // PITR below the floor is refused loudly; at the floor it works
        // and installs an in-memory as-of view.
        assert!(
            run_line(&mut s, "\\recover 0").contains("point-in-time recovery unavailable"),
            "pruned bound must be refused"
        );
        assert!(run_line(&mut s, "\\recover oops").starts_with("error:"));
        let rec = run_line(&mut s, "\\recover 1");
        assert!(rec.contains("recovered as of LSN 1"), "{rec}");
        assert!(rec.contains("1 access relations"), "{rec}");
        assert!(rec.contains("in-memory as-of view"), "{rec}");
        // The as-of view is plain: durable commands are gone until \load.
        assert!(run_line(&mut s, "\\wal status").starts_with("error:"));
        assert!(run_line(&mut s, "\\asrs").contains("#0"));
        let out = run_line(&mut s, &format!("\\load {dir_str}"));
        assert!(out.contains("recovered"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_checkpoints_through_shell() {
        let dir = std::env::temp_dir().join("asrdb_shell_delta_ckpt_test");
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        let mut s = ShellState::new();
        run_line(&mut s, "\\open company");
        run_line(&mut s, &format!("\\wal on {dir_str}"));
        run_line(
            &mut s,
            "\\asr Division.Manufactures.Composition.Name full binary",
        );

        // The ASR creation dirtied the design: the first delta falls back
        // to a full snapshot, honestly labeled.
        let full = run_line(&mut s, "\\checkpoint delta");
        assert!(full.contains("delta unavailable"), "{full}");
        let st = run_line(&mut s, "\\wal status");
        assert!(st.contains("checkpoint lineage: full"), "{st}");

        // Nothing logged since: a delta now is a no-op, not a same-LSN
        // self-overwrite.
        let noop = run_line(&mut s, "\\checkpoint delta");
        assert!(noop.contains("nothing logged since LSN 1"), "{noop}");

        // A plain object mutation later (no shell command mutates
        // objects, so reach through the session handle), the delta path
        // engages and the lineage line reports the pages saved.
        match s.db.as_mut().expect("session open") {
            OpenDb::Durable(d) => {
                d.instantiate("BasePart").expect("logged instantiate");
            }
            OpenDb::Plain(_) => panic!("session must be durable here"),
        }
        let delta = run_line(&mut s, "\\checkpoint delta");
        assert!(
            delta.contains("delta checkpoint written at LSN 2"),
            "{delta}"
        );
        assert!(delta.contains("on base LSN 1 (chain depth 1)"), "{delta}");
        assert!(delta.contains("page(s) saved"), "{delta}");
        let st = run_line(&mut s, "\\wal status");
        assert!(
            st.contains("checkpoint lineage: delta on base LSN 1, chain depth 1"),
            "{st}"
        );
        assert!(st.contains("last write"), "{st}");

        assert!(run_line(&mut s, "\\checkpoint sideways").starts_with("error:"));

        // Recovery through the delta chain round-trips the session.
        let mut s2 = ShellState::new();
        let out = run_line(&mut s2, &format!("\\load {dir_str}"));
        assert!(out.contains("recovered"), "{out}");
        assert!(run_line(&mut s2, "\\asrs").contains("#0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replica_off_and_usage_errors() {
        let mut s = ShellState::new();
        run_line(&mut s, "\\open company");
        assert!(run_line(&mut s, "\\replica sync").starts_with("error:"));
        assert_eq!(run_line(&mut s, "\\replica off"), "replica already off");
    }

    #[test]
    fn analyze_command() {
        let mut s = ShellState::new();
        run_line(&mut s, "\\open company");
        run_line(
            &mut s,
            "\\asr Division.Manufactures.Composition.Name full binary",
        );
        let out = run_line(
            &mut s,
            "\\analyze select d.Name from d in Division where d.Manufactures.Composition.Name = \"Door\"",
        );
        assert!(out.contains("\"Auto\""), "{out}");
        assert!(out.contains("measured:"), "{out}");
        assert!(out.contains("predicted"), "{out}");
        assert!(out.contains("ASR #0"), "{out}");
        assert!(run_line(&mut s, "\\analyze select nonsense").starts_with("error:"));
    }

    #[test]
    fn stats_breakdown_per_structure() {
        let mut s = ShellState::new();
        run_line(&mut s, "\\open company");
        run_line(
            &mut s,
            "\\asr Division.Manufactures.Composition.Name full binary",
        );
        run_line(
            &mut s,
            r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#,
        );
        let out = run_line(&mut s, "\\stats");
        assert!(out.contains("reads"), "{out}");
        assert!(out.contains("% hit rate"), "{out}");
        assert!(out.contains("objects.Division"), "{out}");
        assert!(out.contains("btree"), "{out}");
    }

    #[test]
    fn trace_ring_captures_spans() {
        let mut s = ShellState::new();
        // Turning tracing on before any database is open still works: the
        // ring attaches when the database arrives.
        assert!(run_line(&mut s, "\\trace on").contains("tracing on"));
        run_line(&mut s, "\\open company");
        run_line(&mut s, r#"select d.Name from d in Mercedes"#);
        let shown = run_line(&mut s, "\\trace show");
        assert!(shown.contains("\"oql.query\""), "{shown}");
        assert!(shown.contains("\"usage.forward\""), "{shown}");
        // Drained: a second show starts empty.
        assert_eq!(run_line(&mut s, "\\trace show"), "trace buffer empty");
        assert!(run_line(&mut s, "\\trace off").contains("tracing off"));
        // Detached: new queries no longer buffer anywhere.
        assert!(run_line(&mut s, "\\trace show").starts_with("error:"));
        assert!(run_line(&mut s, "\\trace sideways").starts_with("error:"));
    }

    #[test]
    fn flightrec_records_query_spans() {
        let mut s = ShellState::new();
        assert!(run_line(&mut s, "\\flightrec status").starts_with("error: no database"));
        run_line(&mut s, "\\open company");
        run_line(&mut s, r#"select d.Name from d in Mercedes"#);
        let status = run_line(&mut s, "\\flightrec status");
        assert!(status.contains("flight recorder:"), "{status}");
        assert!(!status.contains(" 0 recorded"), "{status}");
        let tail = run_line(&mut s, "\\flightrec tail 5");
        assert!(tail.contains("oql.query"), "{tail}");
        let dump = run_line(&mut s, "\\flightrec dump");
        assert!(dump.contains("\"seq\":"), "{dump}");
        assert!(run_line(&mut s, "\\flightrec sideways").starts_with("error:"));
    }

    #[test]
    fn help_and_blank_lines() {
        let mut s = ShellState::new();
        assert!(run_line(&mut s, "\\help").contains("\\asr"));
        assert_eq!(run_line(&mut s, "   "), "");
        assert!(run_line(&mut s, "\\stats").starts_with("error: no database"));
    }

    #[test]
    fn wire_mode_routes_queries_exactly_once() {
        let query =
            r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#;
        let mut s = ShellState::new();
        assert!(run_line(&mut s, "\\connect").starts_with("error: no database"));
        run_line(&mut s, "\\open company");
        run_line(
            &mut s,
            "\\asr Division.Manufactures.Composition.Name full binary",
        );
        let direct = run_line(&mut s, query);

        // Lossless loopback first: same rows, wire-annotated trailer.
        assert!(run_line(&mut s, "\\connect").contains("wire mode on"));
        let wired = run_line(&mut s, query);
        assert!(wired.contains("Auto"), "{wired}");
        assert!(wired.contains("over the wire"), "{wired}");
        assert_eq!(
            wired.lines().next(),
            direct.lines().next(),
            "wire rows must match direct execution"
        );
        let off = run_line(&mut s, "\\connect off");
        assert!(off.contains("wire mode off"), "{off}");
        assert!(off.contains("1 request(s)"), "{off}");

        // Chaotic loopback: still the right rows, damage paid in retries.
        assert!(run_line(&mut s, "\\connect chaos 7").contains("chaos seed 7"));
        for _ in 0..6 {
            let wired = run_line(&mut s, query);
            assert!(wired.contains("Auto"), "{wired}");
        }
        let status = run_line(&mut s, "\\connect status");
        assert!(status.contains("chaos seed 7"), "{status}");
        assert!(status.contains("6 request(s)"), "{status}");
        // A server error stays a request error, not a broken session.
        assert!(run_line(&mut s, "select nonsense").starts_with("error:"));
        assert!(run_line(&mut s, query).contains("Auto"));
        run_line(&mut s, "\\connect off");
        assert!(run_line(&mut s, "\\connect off").contains("already off"));
        assert!(run_line(&mut s, "\\connect status").starts_with("error:"));
        assert!(run_line(&mut s, "\\connect sideways").starts_with("error:"));
    }

    #[test]
    fn shards_mode_scatter_gathers_and_reseeds() {
        let query =
            r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#;
        let dir = std::env::temp_dir().join("asrdb_shell_shards_test");
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        let mut s = ShellState::new();
        run_line(&mut s, "\\open company");
        // Sharding needs a durable primary to seed from.
        assert!(run_line(&mut s, "\\shards on 2").starts_with("error: WAL is off"));
        run_line(&mut s, &format!("\\wal on {dir_str}"));
        run_line(
            &mut s,
            "\\asr Division.Manufactures.Composition.Name full binary",
        );
        let direct = run_line(&mut s, query);

        let on = run_line(&mut s, "\\shards on 2 chaos 5");
        assert!(on.contains("2 shard(s) seeded"), "{on}");
        assert!(on.contains("chaos seed 5"), "{on}");
        let sharded = run_line(&mut s, query);
        assert!(
            sharded.contains("scatter-gathered over 2 shard(s)"),
            "{sharded}"
        );
        assert_eq!(
            sharded.lines().next(),
            direct.lines().next(),
            "sharded rows must match the primary"
        );
        let status = run_line(&mut s, "\\shards status");
        assert!(status.contains("shard 0:"), "{status}");
        assert!(status.contains("shard 1:"), "{status}");
        assert!(status.contains("applied_lsn"), "{status}");

        // Mutate through the primary (a logged ASR drop + re-create),
        // then catch the fleet up.
        run_line(&mut s, "\\drop 0");
        run_line(
            &mut s,
            "\\asr Division.Manufactures.Composition.Name full binary",
        );
        let reseed = run_line(&mut s, "\\shards reseed");
        assert!(reseed.contains("caught up to LSN"), "{reseed}");
        assert!(run_line(&mut s, query).contains("Auto"));

        assert!(run_line(&mut s, "\\shards off").contains("sharding off"));
        assert!(run_line(&mut s, "\\shards off").contains("already off"));
        assert!(run_line(&mut s, "\\shards status").starts_with("error:"));
        assert!(run_line(&mut s, "\\shards reseed").starts_with("error:"));
        assert!(run_line(&mut s, "\\shards tick").starts_with("error:"));
        assert!(run_line(&mut s, "\\shards fault 0 1").starts_with("error:"));
        assert!(run_line(&mut s, "\\shards deadline 2").starts_with("error:"));
        assert!(run_line(&mut s, "\\shards sideways").starts_with("error:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shards_fault_degrades_then_ticks_back_to_healthy() {
        let query =
            r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#;
        let dir = std::env::temp_dir().join("asrdb_shell_shard_fault_test");
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        let mut s = ShellState::new();
        run_line(&mut s, "\\open company");
        run_line(&mut s, &format!("\\wal on {dir_str}"));
        run_line(
            &mut s,
            "\\asr Division.Manufactures.Composition.Name full binary",
        );
        let direct = run_line(&mut s, query);
        run_line(&mut s, "\\shards on 2");
        assert!(run_line(&mut s, "\\shards fault 9 1").starts_with("error:"));
        assert!(run_line(&mut s, "\\shards fault 0").starts_with("error:"));
        let deadline = run_line(&mut s, "\\shards deadline 2");
        assert!(deadline.contains("2 attempt(s)"), "{deadline}");

        // A seed whose plan crashes shard 0 on its very first poll.
        let seed = (0..500)
            .find(|&sd| ShardFaultPlan::from_seed(sd).crash_at_op == Some(1))
            .expect("some seed crashes at op 1");
        let armed = run_line(&mut s, &format!("\\shards fault 0 {seed}"));
        assert!(armed.contains("crash at op 1"), "{armed}");

        // The crashed shard drops out of the scatter; the answer is
        // explicitly partial, never silently wrong.
        let degraded = run_line(&mut s, query);
        assert!(
            degraded.contains("partial: missing shards {0}"),
            "{degraded}"
        );
        let status = run_line(&mut s, "\\shards status");
        assert!(!status.contains("shard 0: state=up"), "{status}");
        assert!(status.contains("(unreachable"), "{status}");

        // Ticking the health loop marks it down, reseeds a replacement
        // and converges back to all-Up ...
        let healed = run_line(&mut s, "\\shards tick 8");
        assert!(healed.contains("fleet healthy"), "{healed}");
        let status = run_line(&mut s, "\\shards status");
        assert!(status.contains("shard 0: state=up"), "{status}");

        // ... after which answers are bit-identical to the primary again.
        let recovered = run_line(&mut s, query);
        assert!(!recovered.contains("partial:"), "{recovered}");
        assert_eq!(
            recovered.lines().next(),
            direct.lines().next(),
            "post-recovery rows must match the primary"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_answers_a_tcp_client_until_shutdown() {
        // A fixed state inside the serving thread (Database is not Send);
        // only the port crosses over.
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe binds");
            let port = probe.local_addr().expect("addr").port();
            drop(probe);
            let mut s = ShellState::new();
            assert!(run_line(&mut s, "\\serve 127.0.0.1:0").starts_with("error: no database"));
            run_line(&mut s, "\\open company");
            assert!(run_line(&mut s, "\\serve").starts_with("error: usage"));
            addr_tx.send(port).expect("port crosses");
            run_line(&mut s, &format!("\\serve 127.0.0.1:{port}"))
        });
        let port = addr_rx.recv().expect("server thread reports its port");
        let addr = format!("127.0.0.1:{port}").parse().expect("addr parses");
        // The probe listener just closed; retry briefly while the serve
        // command rebinds.
        let mut transport = None;
        for _ in 0..100 {
            match asr_server::TcpTransport::connect(&addr) {
                Ok(t) => {
                    transport = Some(t);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let mut client = asr_net::WireClient::new(transport.expect("connects"));
        let resp = client
            .call(RequestBody::Query(
                "select d.Name from d in Division".to_string(),
            ))
            .expect("query");
        assert!(matches!(resp.body, ResponseBody::Table { ref rows, .. } if rows.len() == 3));
        client.call(RequestBody::Shutdown).expect("shutdown");
        let summary = handle.join().expect("server thread exits");
        assert!(summary.contains("served 127.0.0.1"), "{summary}");
        assert!(summary.contains("2 request(s) executed"), "{summary}");
    }
}
