//! # access-support — access support relations for object bases
//!
//! A from-scratch Rust reproduction of Kemper & Moerkotte, *"Access
//! Support in Object Bases"* (SIGMOD 1990): materialized path indexes for
//! object-oriented databases, with the paper's four extensions, arbitrary
//! lossless decompositions, dual-clustered B+ tree storage, incremental
//! maintenance, and the complete analytical cost model that reproduces
//! every figure of the paper's evaluation.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`gom`] — the Generic Object Model (schema, objects, path
//!   expressions);
//! * [`pagesim`] — the page-access-metered storage substrate (clustered
//!   files, B+ trees);
//! * [`asr`] — the access support relations themselves (the paper's
//!   contribution);
//! * [`costmodel`] — the analytical cost model (Sections 4–6);
//! * [`workload`] — profile-driven synthetic databases and the paper's
//!   example schemas;
//! * [`oql`] — the paper's SQL-like query notation, parsed, planned
//!   against registered ASRs, and executed;
//! * [`advisor`] — the Section-7 vision: derive the application profile
//!   from the live base, record the usage pattern, and (semi-)
//!   automatically adjust the physical design;
//! * [`durable`] — the durability subsystem: a checksummed write-ahead
//!   log of logical mutations, incremental checkpoint/recovery that
//!   replays the WAL tail through the maintenance engine instead of
//!   rebuilding ASRs, and a fault-injection harness for crash testing;
//! * [`obs`] — the zero-dependency tracing and metrics layer (nested
//!   spans with per-span I/O deltas, counters/gauges/histograms, and
//!   pluggable event sinks) that powers `EXPLAIN ANALYZE` and the
//!   per-structure I/O attribution in `\stats`.
//!
//! ## Quickstart
//!
//! ```
//! use access_support::prelude::*;
//!
//! // The paper's company database (Figure 2).
//! let mut example = company_database();
//! let path = example.path.clone();
//!
//! // Materialize an access support relation: full extension, binary
//! // decomposition.
//! let config = AsrConfig::binary(Extension::Full, &path);
//! let asr = example.db.create_asr(path, config).unwrap();
//!
//! // Query 2: which Division uses a BasePart named "Door"?
//! let hits = example.db
//!     .backward(asr, 0, 3, &Cell::Value(Value::string("Door")))
//!     .unwrap();
//! assert_eq!(hits.len(), 2); // Auto and Truck
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use asr_advisor as advisor;
pub use asr_core as asr;
pub use asr_costmodel as costmodel;
pub use asr_durable as durable;
pub use asr_gom as gom;
pub use asr_obs as obs;
pub use asr_oql as oql;
pub use asr_pagesim as pagesim;
pub use asr_workload as workload;

pub mod shell;

/// Convenience re-exports covering the common API surface.
pub mod prelude {
    pub use asr_advisor::{advise, derive_profile, UsageRecorder};
    pub use asr_core::{
        AccessSupportRelation, AsrConfig, AsrId, Cell, Database, Decomposition, Extension,
        ObjectStore, Relation, Row,
    };
    pub use asr_costmodel::{best_design, CostModel, Dec, Ext, Mix, Op, Profile, QueryKind};
    pub use asr_durable::{DurableDatabase, FlushPolicy, OpenDurable, RecoveryReport};
    pub use asr_gom::{ObjectBase, Oid, PathExpression, Schema, Value};
    pub use asr_obs::{MetricsRegistry, RingBufferSink, Tracer};
    pub use asr_oql::{
        execute as oql_execute, explain as oql_explain, explain_analyze as oql_explain_analyze,
    };
    pub use asr_pagesim::{BPlusTree, ClusteredFile, IoStats, PAGE_SIZE};
    pub use asr_workload::{
        company_database, execute_trace, generate, generate_trace, robot_database, GeneratorSpec,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let db = company_database();
        assert!(db.db.base().object_count() > 0);
    }
}
