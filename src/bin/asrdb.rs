//! `asrdb` — the interactive shell over the access-support stack.
//!
//! ```text
//! cargo run --bin asrdb
//! asrdb> \open company
//! asrdb> select d.Name from d in Mercedes where d.Manufactures.Composition.Name = "Door"
//! ```

use std::io::{BufRead, Write};

use access_support::shell::{run_line, ShellState};

fn main() {
    let mut state = ShellState::new();
    println!("asrdb — access support relations shell (\\help for commands)");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("asrdb> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                let reply = run_line(&mut state, &line);
                if !reply.is_empty() {
                    println!("{reply}");
                }
                if state.done {
                    break;
                }
            }
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
}
