//! Property tests for the query parser: every well-formed AST prints and
//! re-parses to itself, and arbitrary byte soup never panics the
//! lexer/parser.

use asr_oql::ast::{Binding, Comparison, Literal, PathRef, Predicate, Query, Source};
use asr_oql::parse;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        !matches!(
            s.to_ascii_lowercase().as_str(),
            "select" | "from" | "where" | "in" | "and" | "true" | "false" | "null"
        )
    })
}

fn path_ref(var: String) -> impl Strategy<Value = PathRef> {
    proptest::collection::vec(ident(), 0..4).prop_map(move |attrs| PathRef {
        var: var.clone(),
        attrs,
    })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        "[a-zA-Z0-9 _.-]{0,12}".prop_map(Literal::Str),
        any::<i32>().prop_map(|i| Literal::Int(i as i64)),
        (0i64..10_000, 0i64..100).prop_map(|(w, c)| Literal::Dec(w, c)),
        any::<bool>().prop_map(Literal::Bool),
        Just(Literal::Null),
    ]
}

fn comparison() -> impl Strategy<Value = Comparison> {
    prop_oneof![
        Just(Comparison::Eq),
        Just(Comparison::Ne),
        Just(Comparison::Lt),
        Just(Comparison::Le),
        Just(Comparison::Gt),
        Just(Comparison::Ge),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec(ident(), 1..4),
        ident(),
        proptest::collection::vec((comparison(), literal()), 0..3),
    )
        .prop_flat_map(|(vars, collection, pred_parts)| {
            let first = vars[0].clone();
            let proj_strategies: Vec<_> =
                vars.iter().map(|v| path_ref(v.clone()).boxed()).collect();
            let pred_strategies: Vec<_> = pred_parts
                .into_iter()
                .map(|(op, lit)| {
                    let v = first.clone();
                    (path_ref(v), Just(op), Just(lit))
                        .prop_filter_map("predicates need attrs", |(p, op, lit)| {
                            if p.attrs.is_empty() {
                                None
                            } else {
                                Some(Predicate {
                                    path: p,
                                    op,
                                    literal: lit,
                                })
                            }
                        })
                        .boxed()
                })
                .collect();
            let vars2 = vars.clone();
            (proj_strategies, pred_strategies).prop_map(move |(projections, predicates)| {
                let mut bindings = vec![Binding {
                    var: vars2[0].clone(),
                    source: Source::Collection(collection.clone()),
                }];
                for v in vars2.iter().skip(1) {
                    if bindings.iter().any(|b| &b.var == v) {
                        continue;
                    }
                    bindings.push(Binding {
                        var: v.clone(),
                        source: Source::Path(PathRef {
                            var: vars2[0].clone(),
                            attrs: vec!["x".into()],
                        }),
                    });
                }
                // Projections must reference bound variables only.
                let projections = projections
                    .into_iter()
                    .filter(|p| bindings.iter().any(|b| b.var == p.var))
                    .collect::<Vec<_>>();
                let projections = if projections.is_empty() {
                    vec![PathRef {
                        var: vars2[0].clone(),
                        attrs: vec![],
                    }]
                } else {
                    projections
                };
                Query {
                    projections,
                    bindings,
                    predicates,
                }
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_round_trip(q in query()) {
        let text = q.to_string();
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
        prop_assert_eq!(reparsed, q);
    }

    #[test]
    fn parser_never_panics(junk in "[ -~\n]{0,120}") {
        let _ = parse(&junk); // errors allowed, panics not
    }

    #[test]
    fn lexer_handles_all_printable_input(junk in "\\PC{0,80}") {
        let _ = asr_oql::lexer::tokenize(&junk);
    }
}
