//! End-to-end tests: the paper's queries in the paper's own notation,
//! with and without access support relations.

use asr_core::{AsrConfig, Extension};
use asr_gom::Value;
use asr_oql::{execute, explain};
use asr_workload::{company_database, robot_database};

#[test]
fn query_1_robots_using_utopia_tools() {
    let ex = robot_database();
    let result = execute(
        &ex.db,
        r#"select r.Name
           from r in OurRobots
           where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia""#,
    )
    .unwrap();
    assert_eq!(result.columns, vec!["r.Name"]);
    let names: Vec<&str> = result.rows.iter().filter_map(|r| r[0].as_str()).collect();
    assert_eq!(names, vec!["R2D2", "Robi", "X4D5"]);
}

#[test]
fn query_2_divisions_using_door() {
    let ex = company_database();
    let result = execute(
        &ex.db,
        r#"select d.Name
           from d in Mercedes,
                b in d.Manufactures.Composition
           where b.Name = "Door""#,
    )
    .unwrap();
    let names: Vec<&str> = result.rows.iter().filter_map(|r| r[0].as_str()).collect();
    assert_eq!(names, vec!["Auto", "Truck"]);
}

#[test]
fn query_3_baseparts_of_auto() {
    let ex = company_database();
    let result = execute(
        &ex.db,
        r#"select d.Manufactures.Composition.Name
           from d in Mercedes
           where d.Name = "Auto""#,
    )
    .unwrap();
    assert_eq!(result.rows, vec![vec![Value::string("Door")]]);
}

#[test]
fn indexed_and_unindexed_agree_and_index_is_cheaper() {
    let query = r#"select r.Name
                   from r in ROBOT
                   where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia""#;

    let ex = robot_database();
    ex.db.stats().reset();
    let plain = execute(&ex.db, query).unwrap();
    let plain_cost = ex.db.stats().accesses();

    let mut ex = robot_database();
    let path = ex.path.clone();
    ex.db
        .create_asr(path.clone(), AsrConfig::binary(Extension::Canonical, &path))
        .unwrap();
    ex.db.stats().reset();
    let indexed = execute(&ex.db, query).unwrap();
    let indexed_cost = ex.db.stats().accesses();

    assert_eq!(plain.rows, indexed.rows);
    assert!(plain_cost > 0 && indexed_cost > 0);
    // The tiny example barely differentiates; the explain output proves
    // the route taken.
    let plan = explain(&ex.db, query).unwrap();
    assert!(plan.contains("backward span query through ASR"), "{plan}");
    let plain_plan = explain(&company_database().db, "select d.Name from d in Division").unwrap();
    assert!(plain_plan.contains("extent of Division"), "{plain_plan}");
}

#[test]
fn extent_iteration_and_comparisons() {
    let ex = company_database();
    // Price comparison on the BasePart extent.
    let result = execute(
        &ex.db,
        r#"select b.Name from b in BasePart where b.Price >= 1.00"#,
    )
    .unwrap();
    assert_eq!(result.rows, vec![vec![Value::string("Door")]]);
    let result = execute(
        &ex.db,
        r#"select b.Name from b in BasePart where b.Price < 1.00"#,
    )
    .unwrap();
    assert_eq!(result.rows, vec![vec![Value::string("Pepper")]]);
    let result = execute(
        &ex.db,
        r#"select b.Name from b in BasePart where b.Name != "Door""#,
    )
    .unwrap();
    assert_eq!(result.rows, vec![vec![Value::string("Pepper")]]);
}

#[test]
fn null_tests() {
    let ex = company_database();
    // Space has no Manufactures set; MB Trak has no Composition.
    let result = execute(
        &ex.db,
        r#"select d.Name from d in Division where d.Manufactures = NULL"#,
    )
    .unwrap();
    assert_eq!(result.rows, vec![vec![Value::string("Space")]]);
    let result = execute(
        &ex.db,
        r#"select p.Name from p in Product where p.Composition != NULL"#,
    )
    .unwrap();
    let names: Vec<&str> = result.rows.iter().filter_map(|r| r[0].as_str()).collect();
    assert_eq!(names, vec!["560 SEC", "Sausage"]);
}

#[test]
fn conjunction_and_multi_projection() {
    let ex = company_database();
    let result = execute(
        &ex.db,
        r#"select d.Name, d.Manufactures.Name
           from d in Division
           where d.Manufactures.Composition.Name = "Door" and d.Name = "Truck""#,
    )
    .unwrap();
    assert_eq!(result.columns.len(), 2);
    // Truck manufactures both products; each yields a row.
    let pairs: Vec<(String, String)> = result
        .rows
        .iter()
        .map(|r| (r[0].as_str().unwrap().into(), r[1].as_str().unwrap().into()))
        .collect();
    assert!(pairs.contains(&("Truck".into(), "560 SEC".into())));
    assert!(pairs.contains(&("Truck".into(), "MB Trak".into())));
}

#[test]
fn bare_variable_projection_yields_references() {
    let ex = company_database();
    let result = execute(&ex.db, "select b from b in BasePart").unwrap();
    assert_eq!(result.rows.len(), 2);
    assert!(result.rows.iter().all(|r| matches!(r[0], Value::Ref(_))));
}

#[test]
fn semantic_errors() {
    let ex = company_database();
    for (query, needle) in [
        ("select x.Name from d in Division", "unbound variable `x`"),
        (
            "select d.Name from d in Nowhere",
            "neither a database variable nor a type",
        ),
        (
            "select d.Name from d in Division, d in Division",
            "bound twice",
        ),
        (
            r#"select d.Name from d in Division where d.Name = 5"#,
            "cannot compare STRING",
        ),
        (
            r#"select d.Name from d in Division where d = "x""#,
            "must compare an attribute",
        ),
        (
            r#"select d.Name from d in Division where d.Manufactures = "x""#,
            "only NULL tests apply",
        ),
        (
            r#"select d.Name from d in Division where d.Manufactures < NULL"#,
            "not defined on NULL",
        ),
        (
            "select n from d in Division, n in d.Name",
            "cannot range over atomic",
        ),
    ] {
        let err = execute(&ex.db, query).unwrap_err().to_string();
        assert!(err.contains(needle), "query `{query}`: got `{err}`");
    }
}

#[test]
fn indexed_predicate_respects_updates() {
    let mut ex = company_database();
    let path = ex.path.clone();
    ex.db
        .create_asr(path.clone(), AsrConfig::binary(Extension::Full, &path))
        .unwrap();
    let query = r#"select d.Name
                   from d in Division
                   where d.Manufactures.Composition.Name = "Door""#;
    assert_eq!(execute(&ex.db, query).unwrap().rows.len(), 2);

    // Sausage's parts set gains a Door-named part... rather: rename
    // Pepper to Door; Sausage is not Division-reachable, so still 2 rows.
    let pepper = ex.by_name("Pepper").unwrap();
    ex.db
        .set_attribute(pepper, "Name", Value::string("Door"))
        .unwrap();
    assert_eq!(execute(&ex.db, query).unwrap().rows.len(), 2);

    // Renaming the real Door changes the answer through the index.
    let door = ex
        .db
        .base()
        .objects()
        .filter(|o| o.attribute("Name") == &Value::string("Door"))
        .map(|o| o.oid)
        .min()
        .unwrap();
    ex.db
        .set_attribute(door, "Name", Value::string("Hatch"))
        .unwrap();
    assert_eq!(execute(&ex.db, query).unwrap().rows.len(), 0);
}
