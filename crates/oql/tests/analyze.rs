//! `EXPLAIN ANALYZE` accounting: every page access an execution charges
//! must land in exactly one operator slot, so the per-operator counters
//! sum to the global `IoStats` delta — indexed and unindexed alike.

use asr_core::{AsrConfig, Extension};
use asr_gom::PathExpression;
use asr_oql::{execute, explain_analyze};
use asr_workload::company_database;

const QUERY: &str =
    r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#;

#[test]
fn operator_totals_equal_global_io_delta_unindexed() {
    let ex = company_database();
    let before = ex.db.stats().snapshot();
    let report = explain_analyze(&ex.db, QUERY).unwrap();
    let after = ex.db.stats().snapshot();

    assert_eq!(report.measured_reads, after.reads - before.reads);
    assert_eq!(report.measured_writes, after.writes - before.writes);
    assert_eq!(
        report.operator_totals(),
        (report.measured_reads, report.measured_writes),
        "per-operator counters must sum to the global delta"
    );
    assert!(
        report.measured_reads > 0,
        "naive navigation reads object pages"
    );
    assert_eq!(report.result.rows.len(), 2, "Auto and Truck build Doors");
    // The unindexed predicate runs forward per candidate and is priced by
    // the no-support formula.
    let pred = report
        .operators
        .iter()
        .find(|o| o.label.contains("forward per candidate"))
        .expect("unindexed predicate operator");
    assert!(pred.io.calls >= 1);
    assert!(pred.predicted.unwrap_or(0.0) > 0.0);
}

#[test]
fn operator_totals_equal_global_io_delta_indexed() {
    let mut ex = company_database();
    let path = PathExpression::parse(
        ex.db.base().schema(),
        "Division.Manufactures.Composition.Name",
    )
    .unwrap();
    let config = AsrConfig::binary(Extension::Full, &path);
    let id = ex.db.create_asr(path, config).unwrap();

    let before = ex.db.stats().snapshot();
    let report = explain_analyze(&ex.db, QUERY).unwrap();
    let after = ex.db.stats().snapshot();

    assert_eq!(report.measured_reads, after.reads - before.reads);
    assert_eq!(report.measured_writes, after.writes - before.writes);
    assert_eq!(
        report.operator_totals(),
        (report.measured_reads, report.measured_writes)
    );

    // The predicate now runs as one backward span query through the ASR,
    // with a cost-model prediction next to the measurement.
    let pred = report
        .operators
        .iter()
        .find(|o| o.label.contains(&format!("ASR #{id}")))
        .expect("indexed predicate operator");
    assert_eq!(pred.io.calls, 1, "one backward precompute");
    assert!(pred.io.reads > 0);
    assert!(
        pred.predicted
            .expect("model covers supported backward spans")
            > 0.0
    );

    // Same answer as the plain executor, and the rendering mentions both
    // sides of the comparison.
    let plain = execute(&ex.db, QUERY).unwrap();
    assert_eq!(report.result, plain);
    let text = report.render();
    assert!(text.contains("predicted"), "{text}");
    assert!(text.contains("measured:"), "{text}");
}

#[test]
fn batched_probe_counters_attributed_to_operators() {
    let mut ex = company_database();
    let path = PathExpression::parse(
        ex.db.base().schema(),
        "Division.Manufactures.Composition.Name",
    )
    .unwrap();
    let config = AsrConfig::binary(Extension::Full, &path);
    ex.db.create_asr(path, config).unwrap();

    let before = ex.db.stats().snapshot();
    let report = explain_analyze(&ex.db, QUERY).unwrap();
    let after = ex.db.stats().snapshot();

    // The indexed predicate runs through batched frontier probes; the
    // per-operator batch counters must sum to the global delta, just
    // like reads and writes.
    let probes: u64 = report.operators.iter().map(|o| o.io.batch_probes).sum();
    let saved: u64 = report
        .operators
        .iter()
        .map(|o| o.io.batch_pages_saved)
        .sum();
    assert_eq!(probes, after.batch_probes - before.batch_probes);
    assert_eq!(saved, after.batch_pages_saved - before.batch_pages_saved);
    assert!(
        probes > 0,
        "the supported backward span issues batched probes"
    );
}

#[test]
fn multi_binding_query_accounts_navigation_domains() {
    let ex = company_database();
    let q = r#"select d.Name, b.Name
               from d in Mercedes, b in d.Manufactures.Composition
               where b.Name = "Door""#;
    let report = explain_analyze(&ex.db, q).unwrap();
    assert_eq!(
        report.operator_totals(),
        (report.measured_reads, report.measured_writes)
    );
    let nav = report
        .operators
        .iter()
        .find(|o| o.label.contains("navigate"))
        .expect("navigation-domain binding");
    assert!(
        nav.io.calls >= 1,
        "one domain materialization per outer candidate"
    );
}
