//! Recursive-descent parser for the query notation.

use crate::ast::{Binding, Comparison, Literal, PathRef, Predicate, Query, Source};
use crate::error::{OqlError, Result};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse a query string.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let query = p.query()?;
    p.expect_eof()?;
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> OqlError {
        OqlError::Parse {
            offset: self.peek().offset,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if &self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {what}, found {}",
                self.peek().kind.describe()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing {}",
                self.peek().kind.describe()
            )))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.advance();
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect(&TokenKind::Select, "`select`")?;
        let mut projections = vec![self.path_ref()?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            projections.push(self.path_ref()?);
        }
        self.expect(&TokenKind::From, "`from`")?;
        let mut bindings = vec![self.binding()?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            bindings.push(self.binding()?);
        }
        let mut predicates = Vec::new();
        if self.peek().kind == TokenKind::Where {
            self.advance();
            predicates.push(self.predicate()?);
            while self.peek().kind == TokenKind::And {
                self.advance();
                predicates.push(self.predicate()?);
            }
        }
        Ok(Query {
            projections,
            bindings,
            predicates,
        })
    }

    fn path_ref(&mut self) -> Result<PathRef> {
        let var = self.ident("a variable or collection name")?;
        let mut attrs = Vec::new();
        while self.peek().kind == TokenKind::Dot {
            self.advance();
            attrs.push(self.ident("an attribute name")?);
        }
        Ok(PathRef { var, attrs })
    }

    fn binding(&mut self) -> Result<Binding> {
        let var = self.ident("a range variable")?;
        self.expect(&TokenKind::In, "`in`")?;
        let head = self.path_ref()?;
        let source = if head.attrs.is_empty() {
            Source::Collection(head.var)
        } else {
            Source::Path(head)
        };
        Ok(Binding { var, source })
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let path = self.path_ref()?;
        let op = match self.peek().kind {
            TokenKind::Eq => Comparison::Eq,
            TokenKind::Ne => Comparison::Ne,
            TokenKind::Lt => Comparison::Lt,
            TokenKind::Le => Comparison::Le,
            TokenKind::Gt => Comparison::Gt,
            TokenKind::Ge => Comparison::Ge,
            _ => return Err(self.err("expected a comparison operator")),
        };
        self.advance();
        let literal = match self.advance().kind {
            TokenKind::Str(s) => Literal::Str(s),
            TokenKind::Int(i) => Literal::Int(i),
            TokenKind::Dec(w, c) => Literal::Dec(w, c),
            TokenKind::Bool(b) => Literal::Bool(b),
            TokenKind::Null => Literal::Null,
            other => {
                return Err(self.err(format!("expected a literal, found {}", other.describe())))
            }
        };
        Ok(Predicate { path, op, literal })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_query_1() {
        let q = parse(
            r#"select r.Name
               from r in OurRobots
               where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia""#,
        )
        .unwrap();
        assert_eq!(q.projections.len(), 1);
        assert_eq!(q.projections[0].to_string(), "r.Name");
        assert_eq!(q.bindings.len(), 1);
        assert_eq!(q.bindings[0].var, "r");
        assert_eq!(q.bindings[0].source, Source::Collection("OurRobots".into()));
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(
            q.predicates[0].path.to_string(),
            "r.Arm.MountedTool.ManufacturedBy.Location"
        );
        assert_eq!(q.predicates[0].literal, Literal::Str("Utopia".into()));
    }

    #[test]
    fn paper_query_2_with_path_binding() {
        let q = parse(
            r#"select d.Name
               from d in Mercedes,
                    b in d.Manufactures.Composition
               where b.Name = "Door""#,
        )
        .unwrap();
        assert_eq!(q.bindings.len(), 2);
        match &q.bindings[1].source {
            Source::Path(p) => {
                assert_eq!(p.var, "d");
                assert_eq!(p.attrs, vec!["Manufactures", "Composition"]);
            }
            other => panic!("expected a path source, got {other}"),
        }
    }

    #[test]
    fn paper_query_3_path_projection() {
        let q = parse(
            r#"select d.Manufactures.Composition.Name
               from d in Mercedes
               where d.Name = "Auto""#,
        )
        .unwrap();
        assert_eq!(q.projections[0].attrs.len(), 3);
    }

    #[test]
    fn conjunctions_and_operators() {
        let q =
            parse(r#"select b from b in BasePart where b.Price >= 100.00 and b.Name != "Door""#)
                .unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.predicates[0].op, Comparison::Ge);
        assert_eq!(q.predicates[0].literal, Literal::Dec(100, 0));
        assert_eq!(q.predicates[1].op, Comparison::Ne);
        // Bare-variable projection.
        assert!(q.projections[0].attrs.is_empty());
    }

    #[test]
    fn no_where_clause() {
        let q = parse("select r.Name from r in OurRobots").unwrap();
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn syntax_errors_report_position() {
        for bad in [
            "from r in X",                                // missing select
            "select from r in X",                         // missing projection
            "select r.Name r in X",                       // missing from
            "select r.Name from r X",                     // missing in
            "select r.Name from r in X where r",          // missing operator
            "select r.Name from r in X where r = select", // bad literal
            "select r.Name from r in X extra",            // trailing garbage
        ] {
            let err = parse(bad).unwrap_err();
            assert!(matches!(err, OqlError::Parse { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn round_trips_through_display() {
        let text = r#"select d.Name from d in Mercedes, b in d.Manufactures.Composition where b.Name = "Door""#;
        let q = parse(text).unwrap();
        let q2 = parse(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
