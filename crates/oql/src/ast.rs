//! Abstract syntax of the query notation.

use std::fmt;

/// A dotted reference `var.A1.….Ak` (the attribute chain may be empty —
/// then the reference denotes the variable itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathRef {
    /// The range variable.
    pub var: String,
    /// The attribute chain.
    pub attrs: Vec<String>,
}

impl fmt::Display for PathRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.var)?;
        for a in &self.attrs {
            write!(f, ".{a}")?;
        }
        Ok(())
    }
}

/// One `from` binding: `var in source`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The freshly bound range variable.
    pub var: String,
    /// What it ranges over.
    pub source: Source,
}

/// The source of a binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A named database variable (root) or a type extent, e.g.
    /// `OurRobots` or `ROBOT`.
    Collection(String),
    /// A path from an earlier variable, e.g. `d.Manufactures.Composition`
    /// (the paper's Query 2 binds `b` this way).
    Path(PathRef),
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Collection(name) => f.write_str(name),
            Source::Path(p) => write!(f, "{p}"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Comparison::Eq => "=",
            Comparison::Ne => "!=",
            Comparison::Lt => "<",
            Comparison::Le => "<=",
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
        })
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal (whole, cents).
    Dec(i64, i64),
    /// Boolean literal.
    Bool(bool),
    /// `NULL`.
    Null,
}

impl Literal {
    /// Convert to a GOM value.
    pub fn to_value(&self) -> asr_gom::Value {
        match self {
            Literal::Str(s) => asr_gom::Value::string(s.clone()),
            Literal::Int(i) => asr_gom::Value::Integer(*i),
            Literal::Dec(w, c) => asr_gom::Value::decimal(*w, *c),
            Literal::Bool(b) => asr_gom::Value::Bool(*b),
            Literal::Null => asr_gom::Value::Null,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "\"{s}\""),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Dec(w, c) => write!(f, "{w}.{c:02}"),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

/// One `where` predicate: `path op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The dotted reference being tested.
    pub path: PathRef,
    /// The comparison.
    pub op: Comparison,
    /// The right-hand literal.
    pub literal: Literal,
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.path, self.op, self.literal)
    }
}

/// A whole query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projections (dotted references).
    pub projections: Vec<PathRef>,
    /// Range-variable bindings, in order.
    pub bindings: Vec<Binding>,
    /// Conjunctive predicates (possibly empty).
    pub predicates: Vec<Predicate>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        for (i, p) in self.projections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, " from ")?;
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} in {}", b.var, b.source)?;
        }
        if !self.predicates.is_empty() {
            write!(f, " where ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " and ")?;
                }
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_shape() {
        let q = Query {
            projections: vec![PathRef {
                var: "r".into(),
                attrs: vec!["Name".into()],
            }],
            bindings: vec![Binding {
                var: "r".into(),
                source: Source::Collection("OurRobots".into()),
            }],
            predicates: vec![Predicate {
                path: PathRef {
                    var: "r".into(),
                    attrs: vec!["Arm".into(), "MountedTool".into()],
                },
                op: Comparison::Eq,
                literal: Literal::Str("x".into()),
            }],
        };
        let s = q.to_string();
        assert!(s.starts_with("select r.Name from r in OurRobots where"));
        assert!(s.contains("r.Arm.MountedTool = \"x\""));
    }

    #[test]
    fn literal_conversion() {
        assert_eq!(Literal::Int(5).to_value(), asr_gom::Value::Integer(5));
        assert_eq!(
            Literal::Dec(1205, 50).to_value(),
            asr_gom::Value::decimal(1205, 50)
        );
        assert!(Literal::Null.to_value().is_null());
    }
}
