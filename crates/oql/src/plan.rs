//! Semantic analysis and access planning.
//!
//! Analysis resolves every range variable to its element type against the
//! GOM schema, validates each dotted reference as a [`PathExpression`],
//! and type-checks predicate literals against the referenced attribute's
//! declared atomic type.
//!
//! Planning then looks for the paper's optimization opportunity: an
//! equality predicate over a path that some registered **access support
//! relation** covers end to end turns the selection into a single
//! *backward* span query (`Q_{0,n}(bw)`) instead of a per-object forward
//! navigation — exactly the transformation Section 5 prices.

use asr_core::{AsrId, Database};
use asr_gom::{AtomicType, PathExpression, TypeId, TypeRef};

use crate::ast::{Binding, Comparison, Literal, Query, Source};
use crate::error::{OqlError, Result};

/// A resolved binding.
#[derive(Debug, Clone)]
pub struct ResolvedBinding {
    /// The variable name.
    pub var: String,
    /// Element type the variable ranges over.
    pub ty: TypeId,
    /// How its domain is produced.
    pub domain: Domain,
}

/// The domain of a resolved binding.
#[derive(Debug, Clone)]
pub enum Domain {
    /// Elements of the set object behind a database variable.
    Root(asr_gom::Oid),
    /// The deep extent of a type.
    Extent(TypeId),
    /// Forward navigation from an earlier binding.
    Navigate {
        /// Index of the source binding.
        from: usize,
        /// The validated path from the source binding's type.
        path: PathExpression,
    },
}

/// A resolved predicate.
#[derive(Debug, Clone)]
pub struct ResolvedPredicate {
    /// Index of the binding the predicate constrains.
    pub binding: usize,
    /// The validated path from the binding's type.
    pub path: PathExpression,
    /// The comparison.
    pub op: Comparison,
    /// The literal, as a GOM value (`Null` for NULL tests).
    pub value: asr_gom::Value,
    /// A covering ASR when the planner found one (equality predicates over
    /// the whole chain only).
    pub asr: Option<AsrId>,
}

/// A resolved projection.
#[derive(Debug, Clone)]
pub struct ResolvedProjection {
    /// Index of the binding projected from.
    pub binding: usize,
    /// The validated path (`None` projects the object itself).
    pub path: Option<PathExpression>,
    /// Output column label.
    pub label: String,
}

/// The fully analyzed query.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Bindings in evaluation order.
    pub bindings: Vec<ResolvedBinding>,
    /// Predicates with planner decisions.
    pub predicates: Vec<ResolvedPredicate>,
    /// Projections.
    pub projections: Vec<ResolvedProjection>,
}

impl Plan {
    /// Does any predicate run through an access support relation?
    pub fn uses_index(&self) -> bool {
        self.predicates.iter().any(|p| p.asr.is_some())
    }
}

/// Analyze and plan a parsed query against a database.
pub fn analyze(db: &Database, query: &Query) -> Result<Plan> {
    let schema = db.base().schema();
    let mut bindings: Vec<ResolvedBinding> = Vec::new();

    let find_binding = |bindings: &[ResolvedBinding], var: &str| -> Result<usize> {
        bindings
            .iter()
            .position(|b| b.var == var)
            .ok_or_else(|| OqlError::Semantic(format!("unbound variable `{var}`")))
    };

    for Binding { var, source } in &query.bindings {
        if bindings.iter().any(|b| &b.var == var) {
            return Err(OqlError::Semantic(format!("variable `{var}` bound twice")));
        }
        let (ty, domain) = match source {
            Source::Collection(name) => {
                // A database variable takes precedence; a type name binds
                // the extent.
                if let Ok(value) = db.base().variable(name) {
                    let set_oid = value.as_ref_oid().ok_or_else(|| {
                        OqlError::Semantic(format!(
                            "database variable `{name}` is not a collection"
                        ))
                    })?;
                    let set_ty = db.base().type_of(set_oid)?;
                    let elem = schema
                        .def(set_ty)?
                        .kind
                        .element()
                        .and_then(TypeRef::as_named)
                        .ok_or_else(|| {
                            OqlError::Semantic(format!(
                                "database variable `{name}` is not a set of objects"
                            ))
                        })?;
                    (elem, Domain::Root(set_oid))
                } else if let Some(ty) = schema.resolve(name) {
                    if !schema.def(ty)?.kind.is_tuple() {
                        return Err(OqlError::Semantic(format!(
                            "`{name}` is not a tuple type; only object extents are iterable"
                        )));
                    }
                    (ty, Domain::Extent(ty))
                } else {
                    return Err(OqlError::Semantic(format!(
                        "`{name}` is neither a database variable nor a type"
                    )));
                }
            }
            Source::Path(path_ref) => {
                let from = find_binding(&bindings, &path_ref.var)?;
                let anchor = schema.name(bindings[from].ty).to_string();
                let path = PathExpression::new(
                    schema,
                    &anchor,
                    path_ref.attrs.iter().map(String::as_str),
                )?;
                let elem = match path.type_at(path.len()) {
                    TypeRef::Named(id) => id,
                    TypeRef::Atomic(a) => {
                        return Err(OqlError::Semantic(format!(
                            "cannot range over atomic {} values in `{path_ref}`",
                            a.name()
                        )))
                    }
                };
                (elem, Domain::Navigate { from, path })
            }
        };
        bindings.push(ResolvedBinding {
            var: var.clone(),
            ty,
            domain,
        });
    }

    let mut predicates = Vec::new();
    for pred in &query.predicates {
        let binding = find_binding(&bindings, &pred.path.var)?;
        if pred.path.attrs.is_empty() {
            return Err(OqlError::Semantic(format!(
                "predicate `{pred}` must compare an attribute, not the variable itself"
            )));
        }
        let anchor = schema.name(bindings[binding].ty).to_string();
        let path =
            PathExpression::new(schema, &anchor, pred.path.attrs.iter().map(String::as_str))?;
        typecheck(&path, &pred.literal, schema)?;
        // The paper's optimization: a whole-chain equality against a
        // literal is a backward span query through a covering ASR.
        let value = pred.literal.to_value();
        let asr = if pred.op == Comparison::Eq && !value.is_null() {
            db.find_supporting_asr(&path, 0, path.len())
        } else {
            None
        };
        predicates.push(ResolvedPredicate {
            binding,
            path,
            op: pred.op,
            value,
            asr,
        });
    }

    let mut projections = Vec::new();
    for proj in &query.projections {
        let binding = find_binding(&bindings, &proj.var)?;
        let path = if proj.attrs.is_empty() {
            None
        } else {
            let anchor = schema.name(bindings[binding].ty).to_string();
            Some(PathExpression::new(
                schema,
                &anchor,
                proj.attrs.iter().map(String::as_str),
            )?)
        };
        projections.push(ResolvedProjection {
            binding,
            path,
            label: proj.to_string(),
        });
    }

    Ok(Plan {
        bindings,
        predicates,
        projections,
    })
}

/// Check that a comparison literal matches the path's terminal type.
fn typecheck(path: &PathExpression, literal: &Literal, schema: &asr_gom::Schema) -> Result<()> {
    let terminal = path.type_at(path.len());
    match (terminal, literal) {
        (_, Literal::Null) => Ok(()),
        (TypeRef::Atomic(AtomicType::String), Literal::Str(_))
        | (TypeRef::Atomic(AtomicType::Integer), Literal::Int(_))
        | (TypeRef::Atomic(AtomicType::Decimal), Literal::Dec(..))
        | (TypeRef::Atomic(AtomicType::Bool), Literal::Bool(_)) => Ok(()),
        (TypeRef::Atomic(a), lit) => Err(OqlError::Semantic(format!(
            "cannot compare {} attribute `{path}` with {lit}",
            a.name()
        ))),
        (TypeRef::Named(id), lit) => Err(OqlError::Semantic(format!(
            "`{path}` references objects of type {}; only NULL tests apply, not {lit}",
            schema.name(id)
        ))),
    }
}

/// Render the plan for a query — which predicates use which access
/// support relations (the `EXPLAIN` of this little language).
pub fn explain(db: &Database, text: &str) -> Result<String> {
    let query = crate::parser::parse(text)?;
    let plan = analyze(db, &query)?;
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "query : {query}");
    for b in &plan.bindings {
        let domain = match &b.domain {
            Domain::Root(oid) => format!("elements of root collection {oid}"),
            Domain::Extent(ty) => {
                format!("extent of {}", db.base().schema().name(*ty))
            }
            Domain::Navigate { from, path } => {
                format!("navigate {path} from `{}`", plan.bindings[*from].var)
            }
        };
        let _ = writeln!(out, "bind  : {} := {domain}", b.var);
    }
    for p in &plan.predicates {
        let strategy = match p.asr {
            Some(id) => {
                let asr = db.asr(id)?;
                format!(
                    "backward span query through ASR #{id} ({} {})",
                    asr.config().extension,
                    asr.config().decomposition
                )
            }
            None => "forward navigation per candidate".to_string(),
        };
        let _ = writeln!(
            out,
            "pred  : {} {} {:?}  -> {strategy}",
            p.path, p.op, p.value
        );
    }
    for p in &plan.projections {
        let _ = writeln!(out, "proj  : {}", p.label);
    }
    Ok(out)
}
