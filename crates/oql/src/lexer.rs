//! Tokenizer for the SQL-like query notation.

use crate::error::{OqlError, Result};

/// A token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset where the token starts (for error messages).
    pub offset: usize,
    /// The token itself.
    pub kind: TokenKind,
}

/// The token kinds of the grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword `select` (case-insensitive).
    Select,
    /// Keyword `from`.
    From,
    /// Keyword `where`.
    Where,
    /// Keyword `in`.
    In,
    /// Keyword `and`.
    And,
    /// An identifier (variable, attribute, collection name).
    Ident(String),
    /// A string literal, quotes removed.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A decimal literal (whole, cents) — e.g. `1205.50`.
    Dec(i64, i64),
    /// `true` / `false`.
    Bool(bool),
    /// `NULL`.
    Null,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Int(i) => format!("number {i}"),
            TokenKind::Dec(w, c) => format!("number {w}.{c:02}"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("{other:?}").to_lowercase(),
        }
    }
}

/// Tokenize the whole input.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let char_at = |i: usize| input[i..].chars().next().expect("in-bounds char");
    while i < bytes.len() {
        let start = i;
        let c = char_at(i);
        match c {
            c if c.is_whitespace() => {
                i += c.len_utf8();
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment (the paper's examples carry prose remarks).
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '.' => {
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Dot,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Comma,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Eq,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Ne,
                });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Le,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Lt,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Ge,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Gt,
                    });
                    i += 1;
                }
            }
            '"' => {
                i += 1;
                let str_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(OqlError::Lex {
                        offset: start,
                        message: "unterminated string literal".into(),
                    });
                }
                let s = &input[str_start..i];
                i += 1; // closing quote
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Str(s.to_string()),
                });
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                if c == '-' {
                    i += 1;
                }
                let num_start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let whole: i64 = input[num_start..i].parse().map_err(|_| OqlError::Lex {
                    offset: start,
                    message: "integer out of range".into(),
                })?;
                let whole = if c == '-' { -whole } else { whole };
                if bytes.get(i) == Some(&b'.')
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    i += 1;
                    let frac_start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let frac_str = &input[frac_start..i];
                    if frac_str.len() > 2 {
                        return Err(OqlError::Lex {
                            offset: start,
                            message: "decimals support at most two fractional digits".into(),
                        });
                    }
                    let mut cents: i64 = frac_str.parse().unwrap_or(0);
                    if frac_str.len() == 1 {
                        cents *= 10;
                    }
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Dec(whole, cents),
                    });
                } else {
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Int(whole),
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                while i < bytes.len() {
                    let c = char_at(i);
                    if c.is_alphanumeric() || c == '_' {
                        i += c.len_utf8();
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let kind = match word.to_ascii_lowercase().as_str() {
                    "select" => TokenKind::Select,
                    "from" => TokenKind::From,
                    "where" => TokenKind::Where,
                    "in" => TokenKind::In,
                    "and" => TokenKind::And,
                    "true" => TokenKind::Bool(true),
                    "false" => TokenKind::Bool(false),
                    "null" => TokenKind::Null,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token {
                    offset: start,
                    kind,
                });
            }
            other => {
                return Err(OqlError::Lex {
                    offset: start,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    tokens.push(Token {
        offset: input.len(),
        kind: TokenKind::Eof,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn paper_query_1_tokenizes() {
        let toks = kinds(
            r#"select r.Name
               from r in OurRobots
               where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia""#,
        );
        assert_eq!(toks[0], TokenKind::Select);
        assert_eq!(toks[1], TokenKind::Ident("r".into()));
        assert_eq!(toks[2], TokenKind::Dot);
        assert!(toks.contains(&TokenKind::Str("Utopia".into())));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("SELECT FROM WHERE IN AND")[..5].to_vec(),
            vec![
                TokenKind::Select,
                TokenKind::From,
                TokenKind::Where,
                TokenKind::In,
                TokenKind::And,
            ]
        );
    }

    #[test]
    fn numbers_and_decimals() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("-7")[0], TokenKind::Int(-7));
        assert_eq!(kinds("1205.50")[0], TokenKind::Dec(1205, 50));
        assert_eq!(kinds("0.5")[0], TokenKind::Dec(0, 50));
        assert!(tokenize("1.234").is_err(), "3 fractional digits rejected");
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= != < <= > >=")[..6].to_vec(),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
            ]
        );
    }

    #[test]
    fn comments_and_errors() {
        let toks = kinds("select -- the projection\n x");
        assert_eq!(toks.len(), 3, "comment skipped");
        assert!(tokenize("select @").is_err());
        assert!(matches!(
            tokenize(r#"where x = "unterminated"#),
            Err(OqlError::Lex { .. })
        ));
    }

    #[test]
    fn null_and_bool_literals() {
        assert_eq!(kinds("NULL")[0], TokenKind::Null);
        assert_eq!(
            kinds("true false")[..2].to_vec(),
            vec![TokenKind::Bool(true), TokenKind::Bool(false)]
        );
    }
}
