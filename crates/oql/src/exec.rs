//! Query execution: nested-loop evaluation over the resolved bindings,
//! with indexed predicates evaluated once as backward span queries.

use std::collections::BTreeSet;

use asr_core::{Cell, Database};
use asr_gom::{Oid, Value};

use crate::ast::{Comparison, Query};
use crate::error::{OqlError, Result};
use crate::plan::{analyze, Domain, Plan, ResolvedPredicate};
use crate::route::{LocalRouter, SpanRouter};

/// A query result: column labels plus value rows (duplicates removed,
/// deterministic order).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column labels (the projection texts).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl std::fmt::Display for ResultSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// Measured I/O and row production of one plan operator
/// (see [`ExecProfile`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpIo {
    /// How many times the operator ran.
    pub calls: u64,
    /// Rows/objects it produced across all calls.
    pub rows: u64,
    /// Page reads charged while it ran.
    pub reads: u64,
    /// Page writes charged while it ran.
    pub writes: u64,
    /// Buffer hits recorded while it ran.
    pub buffer_hits: u64,
    /// Batched B+-tree probes issued while it ran.
    pub batch_probes: u64,
    /// Page reads avoided by batching (vs. standalone per-key probes).
    pub batch_pages_saved: u64,
}

impl OpIo {
    /// Total page accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Per-operator execution profile, indexed like the [`Plan`]'s vectors.
/// Every page access an execution charges lands in exactly one slot, so
/// the slots sum to the global [`asr_pagesim::IoStats`] delta.
#[derive(Debug, Default, Clone)]
pub struct ExecProfile {
    /// One slot per binding: domain materialization (scan or navigate).
    pub bindings: Vec<OpIo>,
    /// One slot per predicate: the backward precompute for indexed
    /// predicates, the per-candidate forward navigation otherwise.
    pub predicates: Vec<OpIo>,
    /// One slot per projection: the emit-time forward navigation.
    pub projections: Vec<OpIo>,
}

impl ExecProfile {
    pub(crate) fn sized(plan: &Plan) -> Self {
        ExecProfile {
            bindings: vec![OpIo::default(); plan.bindings.len()],
            predicates: vec![OpIo::default(); plan.predicates.len()],
            projections: vec![OpIo::default(); plan.projections.len()],
        }
    }

    /// Sum of every operator's counters.
    pub fn total(&self) -> OpIo {
        let mut total = OpIo::default();
        for op in self
            .bindings
            .iter()
            .chain(&self.predicates)
            .chain(&self.projections)
        {
            total.calls += op.calls;
            total.rows += op.rows;
            total.reads += op.reads;
            total.writes += op.writes;
            total.buffer_hits += op.buffer_hits;
            total.batch_probes += op.batch_probes;
            total.batch_pages_saved += op.batch_pages_saved;
        }
        total
    }
}

/// Run `f`, attributing the I/O it charges (and `rows` it reports) to
/// `slot` when profiling is on.
fn charge<T>(db: &Database, slot: Option<&mut OpIo>, f: impl FnOnce() -> T) -> (T, u64)
where
    T: RowCount,
{
    match slot {
        None => {
            let out = f();
            let rows = out.row_count();
            (out, rows)
        }
        Some(op) => {
            let before = db.stats().snapshot();
            let out = f();
            let after = db.stats().snapshot();
            op.calls += 1;
            op.reads += after.reads - before.reads;
            op.writes += after.writes - before.writes;
            op.buffer_hits += after.buffer_hits - before.buffer_hits;
            op.batch_probes += after.batch_probes - before.batch_probes;
            op.batch_pages_saved += after.batch_pages_saved - before.batch_pages_saved;
            let rows = out.row_count();
            op.rows += rows;
            (out, rows)
        }
    }
}

/// Row-production accounting for [`charge`].
trait RowCount {
    fn row_count(&self) -> u64;
}

impl<T> RowCount for Result<Vec<T>> {
    fn row_count(&self) -> u64 {
        self.as_ref().map(|v| v.len() as u64).unwrap_or(0)
    }
}

impl RowCount for Result<BTreeSet<Oid>> {
    fn row_count(&self) -> u64 {
        self.as_ref().map(|v| v.len() as u64).unwrap_or(0)
    }
}

impl RowCount for Result<bool> {
    fn row_count(&self) -> u64 {
        u64::from(*self.as_ref().unwrap_or(&false))
    }
}

/// Parse, analyze, plan and execute a query text.
pub fn execute(db: &Database, text: &str) -> Result<ResultSet> {
    execute_routed(db, text, &mut LocalRouter)
}

/// Parse, analyze, plan and execute a query text, running every span
/// navigation through `router` (single-node or scatter-gather).
pub fn execute_routed(db: &Database, text: &str, router: &mut dyn SpanRouter) -> Result<ResultSet> {
    let query = crate::parser::parse(text)?;
    let plan = analyze(db, &query)?;
    run_plan(db, &plan, None, router)
}

/// Execute an already parsed query.
pub fn execute_query(db: &Database, query: &Query) -> Result<ResultSet> {
    let plan = analyze(db, query)?;
    run_plan(db, &plan, None, &mut LocalRouter)
}

/// Execute a query and return the per-operator execution profile next to
/// the result (the measurement half of `EXPLAIN ANALYZE`).
pub fn execute_profiled(db: &Database, query: &Query) -> Result<(ResultSet, ExecProfile)> {
    let plan = analyze(db, query)?;
    let mut profile = ExecProfile::sized(&plan);
    let result = run_plan(db, &plan, Some(&mut profile), &mut LocalRouter)?;
    Ok((result, profile))
}

/// Execute an analyzed plan, optionally profiling per-operator I/O.
pub(crate) fn run_plan(
    db: &Database,
    plan: &Plan,
    mut profile: Option<&mut ExecProfile>,
    router: &mut dyn SpanRouter,
) -> Result<ResultSet> {
    emit_usage_events(db, plan);
    let mut span = db.tracer().span("oql.query");
    let columns = plan.projections.iter().map(|p| p.label.clone()).collect();

    // Pre-compute candidate sets for indexed predicates (one backward
    // span query each — the paper's supported evaluation).
    let mut candidate_sets: Vec<Option<BTreeSet<Oid>>> = vec![None; plan.bindings.len()];
    for (k, pred) in plan.predicates.iter().enumerate() {
        if let Some(asr) = pred.asr {
            let target = Cell::from_gom(&pred.value)
                .ok_or_else(|| OqlError::Semantic("indexed predicate against NULL".to_string()))?;
            let slot = profile.as_deref_mut().map(|p| &mut p.predicates[k]);
            let (hits, _) = charge(db, slot, || -> Result<BTreeSet<Oid>> {
                Ok(router
                    .backward_span(db, asr, 0, pred.path.len(), &target)?
                    .into_iter()
                    .collect())
            });
            let hits = hits?;
            match &mut candidate_sets[pred.binding] {
                Some(existing) => {
                    existing.retain(|o| hits.contains(o));
                }
                slot @ None => *slot = Some(hits),
            }
        }
    }

    let mut rows: BTreeSet<Vec<Value>> = BTreeSet::new();
    let mut env: Vec<Option<Oid>> = vec![None; plan.bindings.len()];
    eval_bindings(
        db,
        plan,
        &candidate_sets,
        0,
        &mut env,
        &mut rows,
        &mut profile,
        router,
    )?;
    span.set_rows(rows.len() as u64);
    Ok(ResultSet {
        columns,
        rows: rows.into_iter().collect(),
    })
}

/// Report the query's span usage to any tracing subscriber (e.g. the
/// advisor's usage recorder): every predicate is a whole-chain backward
/// span, every path projection a whole-chain forward span.
fn emit_usage_events(db: &Database, plan: &Plan) {
    let tracer = db.tracer();
    for pred in &plan.predicates {
        tracer.event(
            "usage.backward",
            &[("i", "0".to_string()), ("j", pred.path.len().to_string())],
        );
    }
    for proj in plan.projections.iter().filter_map(|p| p.path.as_ref()) {
        tracer.event(
            "usage.forward",
            &[("i", "0".to_string()), ("j", proj.len().to_string())],
        );
    }
}

/// Recursive nested-loop evaluation of bindings `idx..`.
#[allow(clippy::too_many_arguments)]
fn eval_bindings(
    db: &Database,
    plan: &Plan,
    candidates: &[Option<BTreeSet<Oid>>],
    idx: usize,
    env: &mut Vec<Option<Oid>>,
    rows: &mut BTreeSet<Vec<Value>>,
    profile: &mut Option<&mut ExecProfile>,
    router: &mut dyn SpanRouter,
) -> Result<()> {
    if idx == plan.bindings.len() {
        return emit(db, plan, env, rows, profile, router);
    }
    let binding = &plan.bindings[idx];
    let slot = profile.as_deref_mut().map(|p| &mut p.bindings[idx]);
    let (domain, _) = charge(db, slot, || -> Result<Vec<Oid>> {
        Ok(match &binding.domain {
            Domain::Root(set) => db.base().element_oids(*set)?,
            Domain::Extent(ty) => db.base().extent_closure(*ty),
            Domain::Navigate { from, path } => {
                let start = env[*from].expect("earlier binding is bound");
                router
                    .forward_span(db, path, 0, path.len(), start)?
                    .into_iter()
                    .filter_map(|c| c.as_oid())
                    .collect()
            }
        })
    });
    let domain = domain?;
    for obj in domain {
        if let Some(set) = &candidates[idx] {
            if !set.contains(&obj) {
                continue;
            }
        }
        env[idx] = Some(obj);
        // Evaluate the non-indexed predicates bound at this level as soon
        // as the variable is set (predicate push-down).
        let mut ok = true;
        for (k, pred) in plan
            .predicates
            .iter()
            .enumerate()
            .filter(|(_, p)| p.binding == idx && p.asr.is_none())
        {
            let slot = profile.as_deref_mut().map(|p| &mut p.predicates[k]);
            let (holds, _) = charge(db, slot, || eval_predicate(db, pred, obj, router));
            if !holds? {
                ok = false;
                break;
            }
        }
        if ok {
            eval_bindings(db, plan, candidates, idx + 1, env, rows, profile, router)?;
        }
        env[idx] = None;
    }
    Ok(())
}

/// Does `obj` satisfy the predicate?  Paths through sets use existential
/// semantics: the predicate holds when *any* reached value satisfies the
/// comparison (NULL tests invert: `= NULL` holds when nothing is reached).
fn eval_predicate(
    db: &Database,
    pred: &ResolvedPredicate,
    obj: Oid,
    router: &mut dyn SpanRouter,
) -> Result<bool> {
    let reached = router.forward_span(db, &pred.path, 0, pred.path.len(), obj)?;
    if pred.value.is_null() {
        return Ok(match pred.op {
            Comparison::Eq => reached.is_empty(),
            Comparison::Ne => !reached.is_empty(),
            other => {
                return Err(OqlError::Semantic(format!(
                    "operator {other} is not defined on NULL"
                )))
            }
        });
    }
    for cell in reached {
        let value = match cell {
            Cell::Value(v) => v,
            Cell::Oid(o) => Value::Ref(o),
        };
        if compare(&value, pred.op, &pred.value)? {
            return Ok(true);
        }
    }
    Ok(false)
}

fn compare(left: &Value, op: Comparison, right: &Value) -> Result<bool> {
    use std::cmp::Ordering;
    let ord = match (left, right) {
        (Value::Integer(a), Value::Integer(b)) => a.cmp(b),
        (Value::Decimal(a), Value::Decimal(b)) => a.cmp(b),
        (Value::String(a), Value::String(b)) => a.cmp(b),
        (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
        (Value::Ref(a), Value::Ref(b)) => a.cmp(b),
        _ => {
            return Ok(matches!(op, Comparison::Ne)); // different kinds never equal
        }
    };
    Ok(match op {
        Comparison::Eq => ord == Ordering::Equal,
        Comparison::Ne => ord != Ordering::Equal,
        Comparison::Lt => ord == Ordering::Less,
        Comparison::Le => ord != Ordering::Greater,
        Comparison::Gt => ord == Ordering::Greater,
        Comparison::Ge => ord != Ordering::Less,
    })
}

/// Emit the projection rows for the current environment (cartesian over
/// multi-valued projections).
fn emit(
    db: &Database,
    plan: &Plan,
    env: &[Option<Oid>],
    rows: &mut BTreeSet<Vec<Value>>,
    profile: &mut Option<&mut ExecProfile>,
    router: &mut dyn SpanRouter,
) -> Result<()> {
    let mut per_column: Vec<Vec<Value>> = Vec::with_capacity(plan.projections.len());
    for (k, proj) in plan.projections.iter().enumerate() {
        let obj = env[proj.binding].expect("binding is bound");
        let slot = profile.as_deref_mut().map(|p| &mut p.projections[k]);
        let (values, _) = charge(db, slot, || -> Result<Vec<Value>> {
            Ok(match &proj.path {
                None => vec![Value::Ref(obj)],
                Some(path) => router
                    .forward_span(db, path, 0, path.len(), obj)?
                    .into_iter()
                    .map(|c| match c {
                        Cell::Value(v) => v,
                        Cell::Oid(o) => Value::Ref(o),
                    })
                    .collect(),
            })
        });
        let values = values?;
        if values.is_empty() {
            return Ok(()); // a NULL projection suppresses the tuple
        }
        per_column.push(values);
    }
    // Cartesian product across the projections.
    let mut stack: Vec<Vec<Value>> = vec![Vec::new()];
    for column in &per_column {
        let mut next = Vec::with_capacity(stack.len() * column.len());
        for prefix in &stack {
            for v in column {
                let mut row = prefix.clone();
                row.push(v.clone());
                next.push(row);
            }
        }
        stack = next;
    }
    rows.extend(stack);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_semantics() {
        let a = Value::Integer(3);
        let b = Value::Integer(5);
        assert!(compare(&a, Comparison::Lt, &b).unwrap());
        assert!(compare(&b, Comparison::Ge, &a).unwrap());
        assert!(!compare(&a, Comparison::Eq, &b).unwrap());
        // Kind mismatch: only != holds.
        let s = Value::string("x");
        assert!(compare(&a, Comparison::Ne, &s).unwrap());
        assert!(!compare(&a, Comparison::Eq, &s).unwrap());
    }
}
