//! Query execution: nested-loop evaluation over the resolved bindings,
//! with indexed predicates evaluated once as backward span queries.

use std::collections::BTreeSet;

use asr_core::{Cell, Database};
use asr_gom::{Oid, Value};

use crate::ast::{Comparison, Query};
use crate::error::{OqlError, Result};
use crate::plan::{analyze, Domain, Plan, ResolvedPredicate};

/// A query result: column labels plus value rows (duplicates removed,
/// deterministic order).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column labels (the projection texts).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl std::fmt::Display for ResultSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// Parse, analyze, plan and execute a query text.
pub fn execute(db: &Database, text: &str) -> Result<ResultSet> {
    let query = crate::parser::parse(text)?;
    execute_query(db, &query)
}

/// Execute an already parsed query.
pub fn execute_query(db: &Database, query: &Query) -> Result<ResultSet> {
    let plan = analyze(db, query)?;
    let columns = plan.projections.iter().map(|p| p.label.clone()).collect();

    // Pre-compute candidate sets for indexed predicates (one backward
    // span query each — the paper's supported evaluation).
    let mut candidate_sets: Vec<Option<BTreeSet<Oid>>> = vec![None; plan.bindings.len()];
    for pred in &plan.predicates {
        if let Some(asr) = pred.asr {
            let target = Cell::from_gom(&pred.value).ok_or_else(|| {
                OqlError::Semantic("indexed predicate against NULL".to_string())
            })?;
            let hits: BTreeSet<Oid> =
                db.backward(asr, 0, pred.path.len(), &target)?.into_iter().collect();
            match &mut candidate_sets[pred.binding] {
                Some(existing) => {
                    existing.retain(|o| hits.contains(o));
                }
                slot @ None => *slot = Some(hits),
            }
        }
    }

    let mut rows: BTreeSet<Vec<Value>> = BTreeSet::new();
    let mut env: Vec<Option<Oid>> = vec![None; plan.bindings.len()];
    eval_bindings(db, &plan, &candidate_sets, 0, &mut env, &mut rows)?;
    Ok(ResultSet { columns, rows: rows.into_iter().collect() })
}

/// Recursive nested-loop evaluation of bindings `idx..`.
fn eval_bindings(
    db: &Database,
    plan: &Plan,
    candidates: &[Option<BTreeSet<Oid>>],
    idx: usize,
    env: &mut Vec<Option<Oid>>,
    rows: &mut BTreeSet<Vec<Value>>,
) -> Result<()> {
    if idx == plan.bindings.len() {
        return emit(db, plan, env, rows);
    }
    let binding = &plan.bindings[idx];
    let domain: Vec<Oid> = match &binding.domain {
        Domain::Root(set) => db.base().element_oids(*set)?,
        Domain::Extent(ty) => db.base().extent_closure(*ty),
        Domain::Navigate { from, path } => {
            let start = env[*from].expect("earlier binding is bound");
            db.navigate_forward(path, 0, path.len(), start)?
                .into_iter()
                .filter_map(|c| c.as_oid())
                .collect()
        }
    };
    for obj in domain {
        if let Some(set) = &candidates[idx] {
            if !set.contains(&obj) {
                continue;
            }
        }
        env[idx] = Some(obj);
        // Evaluate the non-indexed predicates bound at this level as soon
        // as the variable is set (predicate push-down).
        let mut ok = true;
        for pred in plan.predicates.iter().filter(|p| p.binding == idx && p.asr.is_none()) {
            if !eval_predicate(db, pred, obj)? {
                ok = false;
                break;
            }
        }
        if ok {
            eval_bindings(db, plan, candidates, idx + 1, env, rows)?;
        }
        env[idx] = None;
    }
    Ok(())
}

/// Does `obj` satisfy the predicate?  Paths through sets use existential
/// semantics: the predicate holds when *any* reached value satisfies the
/// comparison (NULL tests invert: `= NULL` holds when nothing is reached).
fn eval_predicate(db: &Database, pred: &ResolvedPredicate, obj: Oid) -> Result<bool> {
    let reached = db.navigate_forward(&pred.path, 0, pred.path.len(), obj)?;
    if pred.value.is_null() {
        return Ok(match pred.op {
            Comparison::Eq => reached.is_empty(),
            Comparison::Ne => !reached.is_empty(),
            other => {
                return Err(OqlError::Semantic(format!(
                    "operator {other} is not defined on NULL"
                )))
            }
        });
    }
    for cell in reached {
        let value = match cell {
            Cell::Value(v) => v,
            Cell::Oid(o) => Value::Ref(o),
        };
        if compare(&value, pred.op, &pred.value)? {
            return Ok(true);
        }
    }
    Ok(false)
}

fn compare(left: &Value, op: Comparison, right: &Value) -> Result<bool> {
    use std::cmp::Ordering;
    let ord = match (left, right) {
        (Value::Integer(a), Value::Integer(b)) => a.cmp(b),
        (Value::Decimal(a), Value::Decimal(b)) => a.cmp(b),
        (Value::String(a), Value::String(b)) => a.cmp(b),
        (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
        (Value::Ref(a), Value::Ref(b)) => a.cmp(b),
        _ => {
            return Ok(matches!(op, Comparison::Ne)); // different kinds never equal
        }
    };
    Ok(match op {
        Comparison::Eq => ord == Ordering::Equal,
        Comparison::Ne => ord != Ordering::Equal,
        Comparison::Lt => ord == Ordering::Less,
        Comparison::Le => ord != Ordering::Greater,
        Comparison::Gt => ord == Ordering::Greater,
        Comparison::Ge => ord != Ordering::Less,
    })
}

/// Emit the projection rows for the current environment (cartesian over
/// multi-valued projections).
fn emit(
    db: &Database,
    plan: &Plan,
    env: &[Option<Oid>],
    rows: &mut BTreeSet<Vec<Value>>,
) -> Result<()> {
    let mut per_column: Vec<Vec<Value>> = Vec::with_capacity(plan.projections.len());
    for proj in &plan.projections {
        let obj = env[proj.binding].expect("binding is bound");
        let values: Vec<Value> = match &proj.path {
            None => vec![Value::Ref(obj)],
            Some(path) => db
                .navigate_forward(path, 0, path.len(), obj)?
                .into_iter()
                .map(|c| match c {
                    Cell::Value(v) => v,
                    Cell::Oid(o) => Value::Ref(o),
                })
                .collect(),
        };
        if values.is_empty() {
            return Ok(()); // a NULL projection suppresses the tuple
        }
        per_column.push(values);
    }
    // Cartesian product across the projections.
    let mut stack: Vec<Vec<Value>> = vec![Vec::new()];
    for column in &per_column {
        let mut next = Vec::with_capacity(stack.len() * column.len());
        for prefix in &stack {
            for v in column {
                let mut row = prefix.clone();
                row.push(v.clone());
                next.push(row);
            }
        }
        stack = next;
    }
    rows.extend(stack);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_semantics() {
        let a = Value::Integer(3);
        let b = Value::Integer(5);
        assert!(compare(&a, Comparison::Lt, &b).unwrap());
        assert!(compare(&b, Comparison::Ge, &a).unwrap());
        assert!(!compare(&a, Comparison::Eq, &b).unwrap());
        // Kind mismatch: only != holds.
        let s = Value::string("x");
        assert!(compare(&a, Comparison::Ne, &s).unwrap());
        assert!(!compare(&a, Comparison::Eq, &s).unwrap());
    }
}
