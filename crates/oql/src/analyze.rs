//! `EXPLAIN ANALYZE`: execute a query with per-operator I/O attribution
//! and print the measured page accesses side-by-side with the analytical
//! cost model's prediction.
//!
//! The measured numbers come from [`crate::exec::ExecProfile`] (every
//! page access of the execution lands in exactly one operator slot); the
//! predictions instantiate the paper's cost model over a profile
//! *derived from the live database* ([`asr_advisor::derive_profile`]) —
//! formula (35)'s `qsup_bw` for predicates answered through an access
//! support relation, `q_nosupport` for naive forward navigation.

use std::fmt::Write as _;

use asr_advisor::derive_profile;
use asr_core::{Database, Extension};
use asr_costmodel::{CostModel, Dec, Ext, QueryKind};
use asr_gom::PathExpression;

use crate::error::Result;
use crate::exec::{run_plan, ExecProfile, OpIo, ResultSet};
use crate::plan::{analyze, Domain};
use crate::route::LocalRouter;

/// One row of the `EXPLAIN ANALYZE` table.
#[derive(Debug, Clone)]
pub struct OperatorReport {
    /// Human-readable operator description.
    pub label: String,
    /// Measured execution counters.
    pub io: OpIo,
    /// Cost-model page accesses for all calls of this operator, when the
    /// model covers it.
    pub predicted: Option<f64>,
}

/// The full `EXPLAIN ANALYZE` output: operators, result, and the global
/// I/O delta of the execution.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// Per-operator rows, in plan order (bindings, predicates,
    /// projections).
    pub operators: Vec<OperatorReport>,
    /// The query result.
    pub result: ResultSet,
    /// Page reads of the whole execution (global counter delta).
    pub measured_reads: u64,
    /// Page writes of the whole execution (global counter delta).
    pub measured_writes: u64,
}

impl AnalyzeReport {
    /// Sum of the per-operator read/write counters — by construction
    /// equal to (`measured_reads`, `measured_writes`).
    pub fn operator_totals(&self) -> (u64, u64) {
        let reads = self.operators.iter().map(|o| o.io.reads).sum();
        let writes = self.operators.iter().map(|o| o.io.writes).sum();
        (reads, writes)
    }

    /// Sum of the predictions that the model covered.
    pub fn predicted_total(&self) -> f64 {
        self.operators.iter().filter_map(|o| o.predicted).sum()
    }

    /// Render the operator table plus totals (the shell's `\analyze`).
    pub fn render(&self) -> String {
        let width = self
            .operators
            .iter()
            .map(|o| o.label.len())
            .chain(std::iter::once("operator".len()))
            .max()
            .unwrap_or(8);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<width$}  {:>6} {:>8} {:>7} {:>7} {:>6} {:>6} {:>10}",
            "operator", "calls", "rows", "reads", "writes", "hits", "saved", "predicted"
        );
        for op in &self.operators {
            let predicted = match op.predicted {
                Some(p) => format!("{p:.1}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<width$}  {:>6} {:>8} {:>7} {:>7} {:>6} {:>6} {:>10}",
                op.label,
                op.io.calls,
                op.io.rows,
                op.io.reads,
                op.io.writes,
                op.io.buffer_hits,
                op.io.batch_pages_saved,
                predicted
            );
        }
        let _ = writeln!(
            out,
            "measured: {} reads + {} writes = {} page accesses; model predicts {:.1}",
            self.measured_reads,
            self.measured_writes,
            self.measured_reads + self.measured_writes,
            self.predicted_total()
        );
        let saved: u64 = self.operators.iter().map(|o| o.io.batch_pages_saved).sum();
        if saved > 0 {
            let probes: u64 = self.operators.iter().map(|o| o.io.batch_probes).sum();
            let _ = writeln!(
                out,
                "batched probes: {probes} ({saved} page read(s) saved vs. per-key descents)"
            );
        }
        let _ = writeln!(out, "({} row(s))", self.result.rows.len());
        out
    }
}

/// Parse, plan, execute and profile `text`, pairing each operator's
/// measured I/O with the cost model's prediction.
pub fn explain_analyze(db: &Database, text: &str) -> Result<AnalyzeReport> {
    let query = crate::parser::parse(text)?;
    let plan = analyze(db, &query)?;
    let mut profile = ExecProfile::sized(&plan);
    let before = db.stats().snapshot();
    let result = {
        let mut span = db.tracer().span("oql.explain_analyze");
        let result = run_plan(db, &plan, Some(&mut profile), &mut LocalRouter)?;
        span.set_rows(result.rows.len() as u64);
        result
    };
    let after = db.stats().snapshot();

    let mut operators = Vec::new();
    for (binding, io) in plan.bindings.iter().zip(&profile.bindings) {
        let (label, predicted) = match &binding.domain {
            Domain::Root(set) => (
                format!("bind {} := elements of root {set}", binding.var),
                None,
            ),
            Domain::Extent(ty) => (
                format!(
                    "bind {} := extent of {}",
                    binding.var,
                    db.base().schema().name(*ty)
                ),
                None,
            ),
            Domain::Navigate { from, path } => (
                format!(
                    "bind {} := navigate {path} from `{}`",
                    binding.var, plan.bindings[*from].var
                ),
                predict_forward(db, path, io.calls),
            ),
        };
        operators.push(OperatorReport {
            label,
            io: *io,
            predicted,
        });
    }
    for (pred, io) in plan.predicates.iter().zip(&profile.predicates) {
        let (label, predicted) = match pred.asr {
            Some(id) => (
                format!(
                    "pred {} {} {:?} [backward, ASR #{id}]",
                    pred.path, pred.op, pred.value
                ),
                predict_backward(db, id, &pred.path, io.calls),
            ),
            None => (
                format!(
                    "pred {} {} {:?} [forward per candidate]",
                    pred.path, pred.op, pred.value
                ),
                predict_forward(db, &pred.path, io.calls),
            ),
        };
        operators.push(OperatorReport {
            label,
            io: *io,
            predicted,
        });
    }
    for (proj, io) in plan.projections.iter().zip(&profile.projections) {
        let predicted = proj
            .path
            .as_ref()
            .and_then(|p| predict_forward(db, p, io.calls));
        operators.push(OperatorReport {
            label: format!("proj {}", proj.label),
            io: *io,
            predicted,
        });
    }

    Ok(AnalyzeReport {
        operators,
        result,
        measured_reads: after.reads - before.reads,
        measured_writes: after.writes - before.writes,
    })
}

fn to_ext(extension: Extension) -> Ext {
    match extension {
        Extension::Canonical => Ext::Canonical,
        Extension::Full => Ext::Full,
        Extension::LeftComplete => Ext::Left,
        Extension::RightComplete => Ext::Right,
    }
}

/// Model a whole-chain backward span query through ASR `id`, scaled by
/// the operator's call count.
fn predict_backward(
    db: &Database,
    id: asr_core::AsrId,
    path: &PathExpression,
    calls: u64,
) -> Option<f64> {
    let asr = db.asr(id).ok()?;
    let model = CostModel::new(derive_profile(db, path).ok()?);
    let dec = Dec(asr.config().decomposition.cuts().to_vec());
    Some(calls as f64 * model.qsup_bw(to_ext(asr.config().extension), 0, path.len(), &dec))
}

/// Model a whole-chain forward navigation: through a supporting ASR when
/// one is registered (that is what the executor routes through), naively
/// otherwise.  Scaled by the operator's call count.
fn predict_forward(db: &Database, path: &PathExpression, calls: u64) -> Option<f64> {
    let model = CostModel::new(derive_profile(db, path).ok()?);
    let per_call = match db.find_supporting_asr(path, 0, path.len()) {
        Some(id) => {
            let asr = db.asr(id).ok()?;
            let dec = Dec(asr.config().decomposition.cuts().to_vec());
            model.qsup_fw(to_ext(asr.config().extension), 0, path.len(), &dec)
        }
        None => model.q_nosupport(QueryKind::Forward, 0, path.len()),
    };
    Some(calls as f64 * per_call)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_report_renders() {
        let report = AnalyzeReport {
            operators: vec![OperatorReport {
                label: "bind x := extent of T".to_string(),
                io: OpIo {
                    calls: 1,
                    rows: 3,
                    reads: 2,
                    ..OpIo::default()
                },
                predicted: None,
            }],
            result: ResultSet {
                columns: vec!["x".to_string()],
                rows: Vec::new(),
            },
            measured_reads: 2,
            measured_writes: 0,
        };
        let text = report.render();
        assert!(text.contains("operator"));
        assert!(text.contains("2 reads + 0 writes = 2 page accesses"));
        assert_eq!(report.operator_totals(), (2, 0));
    }
}
