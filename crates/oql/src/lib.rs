//! # asr-oql — the paper's SQL-like query language
//!
//! Kemper & Moerkotte present every example query in an SQL-like
//! notation (Section 2):
//!
//! ```text
//! select r.Name
//! from r in OurRobots
//! where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"
//! ```
//!
//! This crate implements that notation end to end: a lexer, a
//! recursive-descent parser, semantic analysis against the GOM schema, a
//! small **planner** that recognizes when a `where` predicate can be
//! answered by a registered access support relation (turning the
//! selection into a *backward* span query), and an executor with naive
//! navigation as the fallback.
//!
//! Supported grammar (a faithful subset of the paper's examples):
//!
//! ```text
//! query   := "select" proj ("," proj)*
//!            "from" binding ("," binding)*
//!            ("where" pred ("and" pred)*)?
//! proj    := IDENT ("." IDENT)*
//! binding := IDENT "in" source
//! source  := IDENT ("." IDENT)*          -- a database variable (root),
//!                                        -- a type extent, or a path from
//!                                        -- an earlier variable
//! pred    := proj op literal
//! op      := "=" | "!=" | "<" | "<=" | ">" | ">="
//! literal := STRING | NUMBER | "true" | "false" | "NULL"
//! ```
//!
//! ```
//! use asr_oql::execute;
//! use asr_workload::company_database;
//!
//! let ex = company_database();
//! let result = execute(
//!     &ex.db,
//!     r#"select d.Name
//!        from d in Mercedes,
//!             b in d.Manufactures.Composition
//!        where b.Name = "Door""#,
//! ).unwrap();
//! assert_eq!(result.rows.len(), 2); // Auto and Truck
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod route;

pub use analyze::{explain_analyze, AnalyzeReport, OperatorReport};
pub use ast::{Binding, Comparison, Literal, PathRef, Predicate, Query};
pub use error::{OqlError, Result};
pub use exec::{
    execute, execute_profiled, execute_query, execute_routed, ExecProfile, OpIo, ResultSet,
};
pub use parser::parse;
pub use plan::{explain, Plan};
pub use route::{LocalRouter, SpanRouter};
