//! Span-query routing: the executor's pluggable navigation backend.
//!
//! Every page the executor touches flows through two primitives — a
//! forward span navigation (bindings, projections, unindexed predicates)
//! and a backward span query (indexed predicates).  [`SpanRouter`]
//! abstracts those two calls so the same plan runs single-node (the
//! default [`LocalRouter`] delegates straight to the [`Database`]) or
//! scattered across placement shards (a coordinator implements the trait
//! by broadcasting partition probes and unioning fragments; see
//! `asr-server`'s `ShardedDatabase`).

use asr_core::{AsrId, Cell, Database};
use asr_gom::{Oid, PathExpression};

/// Where span queries execute.  `db` is the planning/catalog database —
/// local routers navigate it directly; remote routers use it only for
/// metadata (ASR configs, naive fallback over the object base).
pub trait SpanRouter {
    /// Forward span navigation `Q_{i,j}(fw)` with automatic ASR routing.
    fn forward_span(
        &mut self,
        db: &Database,
        path: &PathExpression,
        i: usize,
        j: usize,
        start: Oid,
    ) -> asr_core::Result<Vec<Cell>>;

    /// Backward span query `Q_{i,j}(bw)` through the planned ASR.
    fn backward_span(
        &mut self,
        db: &Database,
        asr: AsrId,
        i: usize,
        j: usize,
        target: &Cell,
    ) -> asr_core::Result<Vec<Oid>>;
}

/// The single-node router: spans run on the local database.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalRouter;

impl SpanRouter for LocalRouter {
    fn forward_span(
        &mut self,
        db: &Database,
        path: &PathExpression,
        i: usize,
        j: usize,
        start: Oid,
    ) -> asr_core::Result<Vec<Cell>> {
        db.navigate_forward(path, i, j, start)
    }

    fn backward_span(
        &mut self,
        db: &Database,
        asr: AsrId,
        i: usize,
        j: usize,
        target: &Cell,
    ) -> asr_core::Result<Vec<Oid>> {
        db.backward(asr, i, j, target)
    }
}
