//! Error type for the query language.

use std::fmt;

use asr_core::AsrError;
use asr_gom::GomError;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, OqlError>;

/// Errors raised while lexing, parsing, analyzing or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum OqlError {
    /// Lexical error: unexpected character or unterminated string.
    Lex {
        /// Byte offset in the query text.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Syntax error: unexpected token.
    Parse {
        /// Byte offset of the offending token.
        offset: usize,
        /// What was expected / found.
        message: String,
    },
    /// Semantic error: unknown variable, collection, attribute, bad
    /// comparison, …
    Semantic(String),
    /// The underlying object model rejected something.
    Gom(GomError),
    /// The underlying access-support machinery rejected something.
    Asr(AsrError),
}

impl fmt::Display for OqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OqlError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            OqlError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            OqlError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            OqlError::Gom(e) => write!(f, "object model error: {e}"),
            OqlError::Asr(e) => write!(f, "access support error: {e}"),
        }
    }
}

impl std::error::Error for OqlError {}

impl From<GomError> for OqlError {
    fn from(e: GomError) -> Self {
        OqlError::Gom(e)
    }
}

impl From<AsrError> for OqlError {
    fn from(e: AsrError) -> Self {
        OqlError::Asr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = OqlError::Parse {
            offset: 12,
            message: "expected `from`".into(),
        };
        assert!(e.to_string().contains("byte 12"));
        let e: OqlError = GomError::UnknownVariable("X".into()).into();
        assert!(e.to_string().contains("object model"));
    }
}
