//! Shared test fixtures (compiled only for tests).

use asr_gom::{ObjectBase, PathExpression, Schema, Value};

/// Rebuild the paper's Figure 2 Company extension (OIDs renumbered by
/// creation order) and return it with the example path
/// `Division.Manufactures.Composition.Name`.
pub(crate) fn figure2_base() -> (ObjectBase, PathExpression) {
    let mut s = Schema::new();
    s.define_set("Company", "Division").unwrap();
    s.define_tuple(
        "Division",
        [("Name", "STRING"), ("Manufactures", "ProdSET")],
    )
    .unwrap();
    s.define_set("ProdSET", "Product").unwrap();
    s.define_tuple(
        "Product",
        [("Name", "STRING"), ("Composition", "BasePartSET")],
    )
    .unwrap();
    s.define_set("BasePartSET", "BasePart").unwrap();
    s.define_tuple("BasePart", [("Name", "STRING"), ("Price", "DECIMAL")])
        .unwrap();
    s.validate().unwrap();
    let path = PathExpression::parse(&s, "Division.Manufactures.Composition.Name").unwrap();
    let mut base = ObjectBase::new(s);

    // Figure 2 of the paper.
    let i0 = base.instantiate("Company").unwrap();
    let i1 = base.instantiate("Division").unwrap();
    let i2 = base.instantiate("Division").unwrap();
    let i3 = base.instantiate("Division").unwrap();
    let i4 = base.instantiate("ProdSET").unwrap();
    let i5 = base.instantiate("ProdSET").unwrap();
    let i6 = base.instantiate("Product").unwrap();
    let i7 = base.instantiate("BasePartSET").unwrap();
    let i8 = base.instantiate("BasePart").unwrap();
    let i9 = base.instantiate("Product").unwrap();
    let _i10 = base.instantiate("BasePartSET").unwrap();
    let i11 = base.instantiate("Product").unwrap();
    let i13 = base.instantiate("BasePartSET").unwrap();
    let i14 = base.instantiate("BasePart").unwrap();

    for d in [i1, i2, i3] {
        base.insert_into_set(i0, Value::Ref(d)).unwrap();
    }
    base.set_attribute(i1, "Name", Value::string("Auto"))
        .unwrap();
    base.set_attribute(i1, "Manufactures", Value::Ref(i4))
        .unwrap();
    base.set_attribute(i2, "Name", Value::string("Truck"))
        .unwrap();
    base.set_attribute(i2, "Manufactures", Value::Ref(i5))
        .unwrap();
    base.set_attribute(i3, "Name", Value::string("Space"))
        .unwrap();
    // i3.Manufactures stays NULL.
    base.insert_into_set(i4, Value::Ref(i6)).unwrap();
    base.insert_into_set(i5, Value::Ref(i6)).unwrap();
    base.insert_into_set(i5, Value::Ref(i9)).unwrap();
    base.set_attribute(i6, "Name", Value::string("560 SEC"))
        .unwrap();
    base.set_attribute(i6, "Composition", Value::Ref(i7))
        .unwrap();
    base.set_attribute(i9, "Name", Value::string("MB Trak"))
        .unwrap();
    // i9.Composition stays NULL.
    base.set_attribute(i11, "Name", Value::string("Sausage"))
        .unwrap();
    base.set_attribute(i11, "Composition", Value::Ref(i13))
        .unwrap();
    base.insert_into_set(i7, Value::Ref(i8)).unwrap();
    base.insert_into_set(i13, Value::Ref(i14)).unwrap();
    base.set_attribute(i8, "Name", Value::string("Door"))
        .unwrap();
    base.set_attribute(i8, "Price", Value::decimal(1205, 50))
        .unwrap();
    base.set_attribute(i14, "Name", Value::string("Pepper"))
        .unwrap();
    base.set_attribute(i14, "Price", Value::decimal(0, 12))
        .unwrap();
    base.bind_variable("Mercedes", Value::Ref(i0));

    (base, path)
}
