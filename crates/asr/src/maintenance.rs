//! Incremental maintenance of access support relations under object
//! updates (Section 6 of the paper).
//!
//! Every structural update decomposes into **edge events** at a path step
//! `p`: an edge `owner →_{A_p} target` is *added* or *removed*, or a
//! set-valued attribute transitions to/from the empty set (a **marker**
//! event, Definition 3.3's `(id(o_{j-1}), id(o'_j), NULL)` tuple).
//!
//! For each event the maintenance algorithm materializes the paper's two
//! auxiliary relations:
//!
//! * `I_l` — the maximal **prefixes** ending at `owner` (columns
//!   `0 … c_{p-1}`), and
//! * `I_r` — the maximal **suffixes** starting at `target` (columns
//!   `c_p … m`),
//!
//! and derives the delta rows `I_l × edge × I_r`.  *Where* the prefixes and
//! suffixes come from is exactly the extension-specific economics of
//! formula (36):
//!
//! | extension | prefixes `I_l`            | suffixes `I_r`            |
//! |-----------|---------------------------|---------------------------|
//! | full      | ASR lookup                | ASR lookup                |
//! | left      | ASR lookup                | forward search in data    |
//! | right     | backward search (scans)   | ASR lookup                |
//! | canonical | backward search (scans)   | forward search in data    |
//!
//! with the paper's conditioning: the expensive search is skipped whenever
//! the cheap side already proves no admitted row can change (e.g. for the
//! right-complete extension nothing changes unless `target` reaches `t_n`).
//!
//! Removals are guarded by the manager's logical row mirror, making every
//! delta idempotent: removing a row that is not in the extension is a
//! no-op.  Property tests verify `incremental ≡ rebuild` over random
//! update sequences.

use asr_gom::{ObjectBase, Oid};

use crate::cell::Cell;
use crate::error::Result;
use crate::extension::Extension;
use crate::manager::AccessSupportRelation;
use crate::naive;
use crate::query;
use crate::row::Row;
use crate::store::ObjectStore;

/// One edge event at path step `step` (1-based).
#[derive(Debug, Clone)]
pub struct EdgeEvent {
    /// The step `p` whose attribute `A_p` changed.
    pub step: usize,
    /// The object `o_{p-1}` owning the attribute.
    pub owner: Oid,
    /// The set instance traversed, for set occurrences.
    pub set: Option<Oid>,
    /// The referenced target (OID or terminal value); `None` for a marker
    /// event (empty-set attach/detach).
    pub target: Option<Cell>,
}

/// Context needed to decide extension membership of candidate rows.
struct Admission<'a> {
    ext: Extension,
    m: usize,
    base: &'a ObjectBase,
    path: &'a asr_gom::PathExpression,
    keep: bool,
}

impl Admission<'_> {
    /// Does `row` belong to the extension?
    ///
    /// These characterizations follow the *mechanical* join definitions
    /// (Definitions 3.4–3.7), including their subtle corner: an empty-set
    /// **marker** tuple in the last auxiliary relation `E_{n-1}` survives
    /// both the natural-join chain (canonical) and the right-outer fold
    /// (right-complete) with a NULL final column.  In the set-OID-free
    /// form a marker row and a row that merely *stops* at `t_{n-1}`
    /// (undefined attribute) have the same shape, so the decision consults
    /// the object base: the row counts as a marker iff the position-`n−1`
    /// object's last attribute is defined (an attached-but-empty set).
    fn admitted(&self, row: &Row) -> bool {
        if row.is_all_null() {
            return false;
        }
        let m = self.m;
        match self.ext {
            Extension::Full => true,
            Extension::LeftComplete => row.cell(0).is_some(),
            Extension::Canonical => {
                (0..m).all(|c| row.cell(c).is_some())
                    && (row.cell(m).is_some() || self.last_stop_is_marker(row))
            }
            Extension::RightComplete => {
                row.cell(m).is_some()
                    || (row.cell(m.saturating_sub(1)).is_some() && self.last_stop_is_marker(row))
            }
        }
    }

    /// For a row with a NULL final column whose defined region reaches
    /// column `m−1`: did the path stop in an *empty set* at the last step
    /// (auxiliary marker tuple ⇒ row exists) or at an undefined attribute
    /// (⇒ row does not exist)?
    fn last_stop_is_marker(&self, row: &Row) -> bool {
        let n = self.path.len();
        let last_step = &self.path.steps()[n - 1];
        if !last_step.is_set_occurrence() {
            return false; // single-valued: no marker tuples exist
        }
        if self.keep {
            // The set-OID column disambiguates structurally.
            return row.cell(self.m - 1).is_some();
        }
        let owner_col = self.path.column_of(n - 1, self.keep);
        let Some(crate::cell::Cell::Oid(owner)) = row.cell(owner_col) else {
            return false;
        };
        self.base
            .get_attribute(*owner, &last_step.attr)
            .map(|v| !v.is_null())
            .unwrap_or(false)
    }
}

/// `prefix` covers columns `0 ..= cl`; `tail` covers `cl+1 ..= m`.
fn assemble(prefix: &Row, tail: &[Option<Cell>]) -> Row {
    let mut cells = prefix.cells().to_vec();
    cells.extend_from_slice(tail);
    Row::new(cells)
}

/// A NULL-prefixed row from a suffix covering columns `ce ..= m`.
fn null_prefixed(suffix: &Row, ce: usize) -> Row {
    let mut cells = vec![None; ce];
    cells.extend_from_slice(suffix.cells());
    Row::new(cells)
}

/// Apply one edge event to an access support relation.
///
/// `owner_bare_before` / `owner_bare_after` report whether the owner's
/// `A_p` attribute was / is entirely undefined (`NULL`) around this event —
/// the state in which the extension holds rows *ending bare* at the owner.
/// Marker (empty-set) states are communicated through explicit marker
/// events instead (`target = None`).
#[allow(clippy::too_many_arguments)]
pub fn maintain_edge(
    asr: &mut AccessSupportRelation,
    base: &ObjectBase,
    store: &ObjectStore,
    event: &EdgeEvent,
    added: bool,
    owner_bare_before: bool,
    owner_bare_after: bool,
) -> Result<()> {
    let ext = asr.config().extension;
    let keep = asr.config().keep_set_oids;
    let path = asr.path().clone();
    let dec = asr.config().decomposition.clone();
    let n = path.len();
    let p = event.step;
    debug_assert!((1..=n).contains(&p));
    let cl = path.column_of(p - 1, keep);
    let ce = path.column_of(p, keep);
    let m = path.arity(keep) - 1;
    let adm = Admission {
        ext,
        m,
        base,
        path: &path,
        keep,
    };

    // Marker events at *interior* steps never reach the canonical /
    // right-complete extensions (the NULL breaks every later join).  A
    // marker at the **last** step, however, survives both (see
    // [`admitted`]) and must be maintained.
    if event.target.is_none()
        && p < n
        && matches!(ext, Extension::Canonical | Extension::RightComplete)
    {
        return Ok(());
    }

    // ------------------------------------------------------------------
    // Gather I_l (prefixes) and I_r (suffixes), in the cost-conditioned
    // order of formula (36).
    // ------------------------------------------------------------------
    let owner_cell = Cell::Oid(event.owner);

    let prefixes_from_asr = |asr: &AccessSupportRelation| {
        query::collect_prefixes(asr.partitions(), &dec, cl, &owner_cell)
    };
    let suffixes_from_asr = |asr: &AccessSupportRelation, t: &Cell| {
        query::collect_suffixes(asr.partitions(), &dec, ce, t)
    };

    let (p_rows, s_rows): (Vec<Row>, Vec<Row>) = match ext {
        Extension::Full => {
            let mut pr = prefixes_from_asr(asr);
            if pr.is_empty() {
                // The owner appears in no stored row: its only maximal
                // prefix is the trivial one.
                let mut cells = vec![None; cl];
                cells.push(Some(owner_cell.clone()));
                pr.push(Row::new(cells));
            }
            let sr = match &event.target {
                Some(t) => {
                    let mut sr = suffixes_from_asr(asr, t);
                    if sr.is_empty() {
                        let mut cells = vec![Some(t.clone())];
                        cells.resize(m - ce + 1, None);
                        sr.push(Row::new(cells));
                    }
                    sr
                }
                None => Vec::new(),
            };
            (pr, sr)
        }
        Extension::LeftComplete => {
            // Cheap side first: if the owner is unreachable from t_0, no
            // anchored row can change and the forward search is skipped.
            let pr: Vec<Row> = prefixes_from_asr(asr)
                .into_iter()
                .filter(|r| r.cell(0).is_some())
                .collect();
            if pr.is_empty() {
                return Ok(());
            }
            let sr = match &event.target {
                Some(t) => naive::forward_suffixes(base, store, &path, p, t, keep)?,
                None => Vec::new(),
            };
            (pr, sr)
        }
        Extension::RightComplete => {
            // Cheap side first: if the target does not reach t_n, no
            // admitted row can change and the extent scans are skipped.
            // (Markers here are at the last step — `admitted` accepts
            // them with no suffix at all.)
            let sr: Vec<Row> = match &event.target {
                Some(t) => {
                    let sr: Vec<Row> = suffixes_from_asr(asr, t)
                        .into_iter()
                        .filter(|r| {
                            r.last().is_some()
                                || (r.arity() >= 2 && r.cell(r.arity() - 2).is_some())
                        })
                        .collect();
                    if sr.is_empty() {
                        return Ok(());
                    }
                    sr
                }
                None => Vec::new(),
            };
            let pr = naive::backward_prefixes(base, store, &path, p - 1, event.owner, keep)?;
            (pr, sr)
        }
        Extension::Canonical => {
            // Forward search first (it is cheaper than the backward scan).
            let sr: Vec<Row> = match &event.target {
                Some(t) => {
                    let sr: Vec<Row> = naive::forward_suffixes(base, store, &path, p, t, keep)?
                        .into_iter()
                        .filter(|r| {
                            r.last().is_some()
                                || (r.arity() >= 2 && r.cell(r.arity() - 2).is_some())
                        })
                        .collect();
                    if sr.is_empty() {
                        return Ok(());
                    }
                    sr
                }
                None => Vec::new(),
            };
            let pr: Vec<Row> =
                naive::backward_prefixes(base, store, &path, p - 1, event.owner, keep)?
                    .into_iter()
                    .filter(|r| r.cell(0).is_some())
                    .collect();
            if pr.is_empty() {
                return Ok(());
            }
            (pr, sr)
        }
    };

    // ------------------------------------------------------------------
    // Construct the delta rows.
    // ------------------------------------------------------------------

    // The edge's mid cells covering columns cl+1 ..= ce.
    let mut mid: Vec<Option<Cell>> = Vec::new();
    if keep && path.steps()[p - 1].is_set_occurrence() {
        mid.push(event.set.map(Cell::Oid));
    }
    mid.push(event.target.clone());

    // Rows carried by the edge itself.
    let edge_rows: Vec<Row> = match &event.target {
        Some(_) => {
            // mid minus its final cell: the suffix provides column ce.
            let mid_head = &mid[..mid.len() - 1];
            let mut rows = Vec::with_capacity(p_rows.len() * s_rows.len());
            for pr in &p_rows {
                for sr in &s_rows {
                    let mut cells = pr.cells().to_vec();
                    cells.extend_from_slice(mid_head);
                    cells.extend_from_slice(sr.cells());
                    rows.push(Row::new(cells));
                }
            }
            rows
        }
        None => {
            // Marker rows: prefix ++ [set?, NULL] ++ NULL padding.
            let mut tail = mid.clone();
            tail.resize(m - cl, None);
            p_rows.iter().map(|pr| assemble(pr, &tail)).collect()
        }
    };
    let edge_rows: Vec<Row> = edge_rows.into_iter().filter(|r| adm.admitted(r)).collect();

    // Bare rows: prefix ++ all-NULL tail.
    let bare_tail = vec![None; m - cl];
    let bare_rows = |trivial_skip: bool| -> Vec<Row> {
        p_rows
            .iter()
            .filter(|pr| !(trivial_skip && pr.first_defined() == Some(cl)))
            .map(|pr| assemble(pr, &bare_tail))
            .filter(|r| adm.admitted(r))
            .collect()
    };

    // Target-side left-maximal rows: NULL prefix ++ suffix.
    let target_stale_rows: Vec<Row> = s_rows
        .iter()
        .map(|sr| null_prefixed(sr, ce))
        .filter(|r| adm.admitted(r))
        .collect();

    // ------------------------------------------------------------------
    // Apply.
    // ------------------------------------------------------------------
    if added {
        // The owner's bare rows and the target's left-maximal rows become
        // non-maximal; removals are mirror-guarded no-ops when such rows
        // never existed.
        if owner_bare_before {
            for r in bare_rows(false) {
                asr.remove_full_row(&r)?;
            }
        }
        for r in &target_stale_rows {
            asr.remove_full_row(r)?;
        }
        for r in edge_rows {
            asr.insert_full_row(r)?;
        }
    } else {
        for r in &edge_rows {
            asr.remove_full_row(r)?;
        }
        if owner_bare_after {
            // Rows ending bare at the owner reappear — except the trivial
            // one (a bare, unreferenced owner is in no auxiliary relation).
            for r in bare_rows(true) {
                asr.insert_full_row(r)?;
            }
        }
        if let Some(t) = &event.target {
            if matches!(ext, Extension::Full | Extension::RightComplete) {
                // If nothing references the target at column ce any more,
                // its suffixes resurface as left-maximal rows.
                let still_referenced = query::collect_prefixes(asr.partitions(), &dec, ce, t)
                    .iter()
                    .any(|r| r.cell(ce - 1).is_some());
                if !still_referenced {
                    let target_in_tail = target_participates_beyond(base, store, &path, p, t)?;
                    for sr in &s_rows {
                        let trivial = sr.cells()[1..].iter().all(Option::is_none);
                        if trivial && !target_in_tail {
                            continue;
                        }
                        let row = null_prefixed(sr, ce);
                        if adm.admitted(&row) {
                            asr.insert_full_row(row)?;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Does `target` itself participate in an auxiliary relation beyond column
/// `c_p` — i.e. is its own `A_{p+1}` attribute defined?  Distinguishes a
/// target that merely lost its last referencer (which keeps its suffix
/// rows) from one that vanishes from the extension entirely.
fn target_participates_beyond(
    base: &ObjectBase,
    store: &ObjectStore,
    path: &asr_gom::PathExpression,
    p: usize,
    target: &Cell,
) -> Result<bool> {
    if p >= path.len() {
        return Ok(false);
    }
    let Some(oid) = target.as_oid() else {
        return Ok(false);
    };
    store.charge_read(base.type_of(oid)?, oid);
    let step = &path.steps()[p];
    Ok(!base.get_attribute(oid, &step.attr)?.is_null())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::Decomposition;
    use crate::manager::AsrConfig;
    use asr_gom::Value;
    use asr_pagesim::IoStats;
    use std::rc::Rc;

    fn oid_of(base: &ObjectBase, name: &str) -> Oid {
        base.objects()
            .find(|o| o.attribute("Name") == &Value::string(name))
            .map(|o| o.oid)
            .unwrap()
    }

    /// Drive a set-element insertion through both base and ASR, then check
    /// against a rebuilt reference copy.
    fn insert_and_check(ext: Extension, dec_cuts: Option<Vec<usize>>, keep: bool) {
        let (mut base, path) = crate::testutil::figure2_base();
        let m = path.arity(keep) - 1;
        let dec = match dec_cuts {
            Some(c) => Decomposition::new(c).unwrap(),
            None => Decomposition::binary(m),
        };
        let config = AsrConfig {
            extension: ext,
            decomposition: dec,
            keep_set_oids: keep,
        };
        let stats = IoStats::new_handle();
        let mut asr =
            AccessSupportRelation::build(&base, path.clone(), config.clone(), Rc::clone(&stats))
                .unwrap();
        let store = {
            let mut s = ObjectStore::new(Rc::clone(&stats));
            s.sync_with_base(&base).unwrap();
            s
        };

        // ins_2 in the paper's notation: insert Pepper into 560 SEC's
        // Composition set (i7), giving the Door chain a second member.
        let sec = oid_of(&base, "560 SEC");
        let pepper = oid_of(&base, "Pepper");
        let set = base
            .get_attribute(sec, "Composition")
            .unwrap()
            .as_ref_oid()
            .unwrap();
        assert!(base.insert_into_set(set, Value::Ref(pepper)).unwrap());
        let event = EdgeEvent {
            step: 2,
            owner: sec,
            set: Some(set),
            target: Some(Cell::Oid(pepper)),
        };
        maintain_edge(&mut asr, &base, &store, &event, true, false, false).unwrap();
        asr.check_consistency().unwrap();

        let reference =
            AccessSupportRelation::build(&base, path, config, IoStats::new_handle()).unwrap();
        let got: Vec<Row> = asr.full_rows().cloned().collect();
        let want: Vec<Row> = reference.full_rows().cloned().collect();
        assert_eq!(got, want, "{ext} incremental != rebuild");
    }

    #[test]
    fn set_insert_maintains_all_extensions_binary() {
        for ext in Extension::ALL {
            insert_and_check(ext, None, false);
        }
    }

    #[test]
    fn set_insert_maintains_all_extensions_non_decomposed() {
        for ext in Extension::ALL {
            insert_and_check(ext, Some(vec![0, 3]), false);
        }
    }

    #[test]
    fn set_insert_maintains_with_set_oids() {
        for ext in Extension::ALL {
            insert_and_check(ext, None, true);
        }
    }

    #[test]
    fn remove_then_reinsert_round_trips() {
        let (mut base, path) = crate::testutil::figure2_base();
        for ext in Extension::ALL {
            let config = AsrConfig {
                extension: ext,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            };
            let stats = IoStats::new_handle();
            let mut asr = AccessSupportRelation::build(
                &base,
                path.clone(),
                config.clone(),
                Rc::clone(&stats),
            )
            .unwrap();
            let mut store = ObjectStore::new(Rc::clone(&stats));
            store.sync_with_base(&base).unwrap();
            let before: Vec<Row> = asr.full_rows().cloned().collect();

            // Remove Door from i7 (560 SEC's only base part), then put it back.
            let sec = oid_of(&base, "560 SEC");
            let door = oid_of(&base, "Door");
            let set = base
                .get_attribute(sec, "Composition")
                .unwrap()
                .as_ref_oid()
                .unwrap();
            assert!(base.remove_from_set(set, &Value::Ref(door)).unwrap());
            let ev = EdgeEvent {
                step: 2,
                owner: sec,
                set: Some(set),
                target: Some(Cell::Oid(door)),
            };
            // The set becomes empty: the marker rows appear first (they
            // need the owner's prefixes, which live in the rows about to
            // be retracted), then the edge rows are removed.
            let marker = EdgeEvent {
                step: 2,
                owner: sec,
                set: Some(set),
                target: None,
            };
            maintain_edge(&mut asr, &base, &store, &marker, true, false, false).unwrap();
            maintain_edge(&mut asr, &base, &store, &ev, false, false, false).unwrap();
            asr.check_consistency().unwrap();
            let reference = AccessSupportRelation::build(
                &base,
                path.clone(),
                config.clone(),
                IoStats::new_handle(),
            )
            .unwrap();
            assert_eq!(
                asr.full_rows().cloned().collect::<Vec<_>>(),
                reference.full_rows().cloned().collect::<Vec<_>>(),
                "{ext} after removal"
            );

            // Reinsert: edge returns first, then the marker disappears.
            assert!(base.insert_into_set(set, Value::Ref(door)).unwrap());
            maintain_edge(&mut asr, &base, &store, &ev, true, false, false).unwrap();
            maintain_edge(&mut asr, &base, &store, &marker, false, false, false).unwrap();
            asr.check_consistency().unwrap();
            assert_eq!(
                asr.full_rows().cloned().collect::<Vec<_>>(),
                before,
                "{ext} round trip"
            );
        }
    }

    #[test]
    fn search_costs_differ_by_extension() {
        // The signature economics of formula (36): full never searches the
        // object representation; right/canonical pay extent scans.
        let (mut base, path) = crate::testutil::figure2_base();
        let mut costs = std::collections::HashMap::new();
        for ext in Extension::ALL {
            let config = AsrConfig {
                extension: ext,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            };
            let asr_stats = IoStats::new_handle();
            let mut asr =
                AccessSupportRelation::build(&base, path.clone(), config, Rc::clone(&asr_stats))
                    .unwrap();
            // Separate store stats isolate object-representation accesses.
            let store_stats = IoStats::new_handle();
            let mut store = ObjectStore::new(Rc::clone(&store_stats));
            store.set_default_size(400);
            store.sync_with_base(&base).unwrap();

            let sec = oid_of(&base, "560 SEC");
            let pepper = oid_of(&base, "Pepper");
            let set = base
                .get_attribute(sec, "Composition")
                .unwrap()
                .as_ref_oid()
                .unwrap();
            base.insert_into_set(set, Value::Ref(pepper)).unwrap();
            let ev = EdgeEvent {
                step: 2,
                owner: sec,
                set: Some(set),
                target: Some(Cell::Oid(pepper)),
            };
            store_stats.reset();
            maintain_edge(&mut asr, &base, &store, &ev, true, false, false).unwrap();
            costs.insert(ext.name(), store_stats.accesses());
            // Undo for the next extension.
            base.remove_from_set(set, &Value::Ref(pepper)).unwrap();
        }
        assert_eq!(costs["full"], 0, "full extension needs no data search");
        assert!(costs["canonical"] > 0, "canonical searches both directions");
        assert!(costs["right"] > 0, "right-complete scans for prefixes");
        assert!(
            costs["canonical"] >= costs["left"],
            "canonical pays at least the forward search"
        );
    }
}
