//! Whole-database persistence: a layered, versioned snapshot pipeline.
//!
//! The `ASRDB 2` format stacks three sections:
//!
//! 1. **Design** — clustered type sizes (`S`) and access-support-relation
//!    configurations (`A`), unchanged from v1;
//! 2. **Physical** — every stored partition's row mirror (`P`/`R`) and
//!    page-faithful images of its two clustering B+ trees (`T`/`N`):
//!    node layout, separator keys, row ids, witness counts, leaf sibling
//!    links, free list and tree geometry;
//! 3. **Base** — the GOM object snapshot after `--BASE--`.
//!
//! ```text
//! ASRDB 2
//! S ROBOT 500
//! A ROBOT.Arm.MountedTool.ManufacturedBy.Location canonical 0,1,2,3,4 0
//! P <asr#> <part#> <from> <to> <next_rowid> <nrows>
//! R <rowid> <count> <cell> <cell> …
//! T <asr#> <part#> f|b <root> <height> <len> <pages> <free-csv|->
//! N f|b <page#> I <children-csv> <cell>=<rowid> …
//! N f|b <page#> L <next|-> <rowid-csv|->
//! --BASE--
//! GOMSNAP 1
//! …
//! ```
//!
//! Loading a v2 snapshot restores each ASR **physically**: both trees are
//! re-registered under their original `(kind, label)` structure ids and
//! re-attached page by page (one charged read per live node) — no
//! extension join runs.  Leaf keys are not stored; they are re-derived
//! from the row mirror as `(row.first|last, rowid)`, an invariant of the
//! maintenance engine.  Version negotiation: the loader accepts `ASRDB 1`
//! (ASRs rebuilt from their configuration, as before) and `ASRDB 2`; the
//! writer emits v2.  A corrupt physical section degrades per ASR to the
//! v1 rebuild path with a recorded reason — never a panic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;

use asr_gom::{snapshot, PathExpression, TypeRef, Value};

use crate::cell::Cell;
use crate::database::{AsrId, Database};
use crate::decomposition::Decomposition;
use crate::error::{AsrError, Result};
use crate::extension::Extension;
use crate::manager::{AccessSupportRelation, AsrConfig};
use crate::partition::{PartitionImage, RawNode, RawTreeImage, StoredPartition};
use crate::row::Row;
use crate::store::ObjectStore;

const MAGIC_V1: &str = "ASRDB 1";
const MAGIC_V2: &str = "ASRDB 2";
const BASE_MARKER: &str = "--BASE--";

/// How one access support relation came back from a snapshot load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsrLoadMode {
    /// Physically restored by adopting its partitions' B+-tree page
    /// images (`ASRDB 2`).
    Physical,
    /// Rebuilt from its configuration via the extension join — a v1
    /// snapshot, or a per-ASR fallback for the given reason.
    Rebuilt(String),
}

impl AsrLoadMode {
    /// `true` for [`AsrLoadMode::Physical`].
    pub fn is_physical(&self) -> bool {
        matches!(self, AsrLoadMode::Physical)
    }
}

/// What a snapshot load did — returned by
/// [`Database::load_from_string_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Snapshot format version (1 or 2).
    pub version: u32,
    /// Per-ASR outcome, in registration order.
    pub asrs: Vec<(AsrId, AsrLoadMode)>,
    /// Bytes of physical-section lines (newlines included) belonging to
    /// physically restored ASRs.  The durability layer subtracts these
    /// from its whole-file read charge: those bytes are the trees' page
    /// images, and their reads are charged by the restore itself.
    pub physical_bytes: usize,
}

impl Database {
    /// Serialize the database — schema, objects, variables, physical
    /// design *and* the physical state of every ASR partition — to the
    /// `ASRDB 2` snapshot format.
    pub fn save_to_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC_V2}");
        self.write_design(&mut out);
        self.write_physical(&mut out);
        let _ = writeln!(out, "{BASE_MARKER}");
        out.push_str(&snapshot::write_base(self.base()));
        out
    }

    /// Serialize to the legacy `ASRDB 1` format (no physical section;
    /// ASRs rebuild on load).  Kept for format-compat tests and for
    /// benchmarking the physical restore against the rebuild path.
    pub fn save_to_string_v1(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC_V1}");
        self.write_design(&mut out);
        let _ = writeln!(out, "{BASE_MARKER}");
        out.push_str(&snapshot::write_base(self.base()));
        out
    }

    /// The design section shared by both format versions: `S` lines
    /// (clustered sizes) and `A` lines (ASR configurations).
    fn write_design(&self, out: &mut String) {
        let mut sizes: Vec<(String, usize)> = self
            .store()
            .configured_sizes()
            .map(|(ty, size)| (self.base().schema().name(ty).to_string(), size))
            .collect();
        sizes.sort();
        for (name, size) in sizes {
            let _ = writeln!(out, "S {name} {size}");
        }
        for (_, asr) in self.asrs() {
            let cuts: Vec<String> = asr
                .config()
                .decomposition
                .cuts()
                .iter()
                .map(|c| c.to_string())
                .collect();
            let _ = writeln!(
                out,
                "A {} {} {} {}",
                asr.path(),
                asr.config().extension.name(),
                cuts.join(","),
                u8::from(asr.config().keep_set_oids)
            );
        }
    }

    /// The v2 physical section: per partition, the row mirror and both
    /// tree images.  ASRs are numbered by their `A`-line ordinal.
    fn write_physical(&self, out: &mut String) {
        for (ordinal, (_, asr)) in self.asrs().enumerate() {
            for (pidx, part) in asr.partitions().iter().enumerate() {
                let img = part.dump();
                let _ = writeln!(
                    out,
                    "P {ordinal} {pidx} {} {} {} {}",
                    img.from,
                    img.to,
                    img.next_rowid,
                    img.rows.len()
                );
                for (row, rowid, count) in &img.rows {
                    let _ = write!(out, "R {rowid} {count}");
                    for cell in row.cells() {
                        let _ = write!(out, " {}", cell_token(cell));
                    }
                    out.push('\n');
                }
                write_tree(out, ordinal, pidx, 'f', &img.fwd);
                write_tree(out, ordinal, pidx, 'b', &img.bwd);
            }
        }
    }

    /// Restore a database from snapshot text: objects keep their OIDs,
    /// clustered files are sized as configured, and access support
    /// relations come back physically (v2) or by rebuild (v1/fallback).
    pub fn load_from_string(text: &str) -> Result<Database> {
        Ok(Self::load_from_string_report(text)?.0)
    }

    /// [`Database::load_from_string`] plus a [`LoadReport`] describing
    /// the format version and how each ASR was restored.
    pub fn load_from_string_report(text: &str) -> Result<(Database, LoadReport)> {
        let bad = |msg: String| AsrError::Snapshot(msg);
        let (head, base_text) = text
            .split_once(&format!("{BASE_MARKER}\n"))
            .ok_or_else(|| bad("missing --BASE-- marker".into()))?;
        let mut lines = head.lines();
        let first = lines.next().ok_or_else(|| bad("empty snapshot".into()))?;
        let version: u32 = match first.trim() {
            MAGIC_V1 => 1,
            MAGIC_V2 => 2,
            other => return Err(bad(format!("bad magic `{other}`"))),
        };
        let base = snapshot::read_base(base_text)?;

        let stats = asr_pagesim::IoStats::new_handle();
        let mut store = ObjectStore::new(Rc::clone(&stats));
        let mut asr_lines: Vec<&str> = Vec::new();
        let mut phys = PhysParser::default();
        for line in lines {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.split(' ').next() {
                Some("S") => {
                    let mut parts = line.splitn(3, ' ');
                    let _s = parts.next();
                    let name = parts.next().ok_or_else(|| bad("S: missing type".into()))?;
                    let size: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("S: bad size".into()))?;
                    let ty = base.schema().require(name)?;
                    store.set_type_size(ty, size);
                }
                Some("A") => asr_lines.push(line),
                Some("P" | "R" | "T" | "N") if version == 2 => phys.feed(line)?,
                other => return Err(bad(format!("unknown record `{other:?}`"))),
            }
        }
        phys.finish();
        if let Some(&k) = phys
            .done
            .keys()
            .chain(phys.poisoned.keys())
            .find(|&&k| k >= asr_lines.len())
        {
            return Err(bad(format!(
                "physical section references ASR {k} but only {} declared",
                asr_lines.len()
            )));
        }
        store.sync_with_base(&base)?;
        let mut db = Database::from_parts(base, store, stats);

        let mut report = LoadReport {
            version,
            asrs: Vec::new(),
            physical_bytes: 0,
        };
        for (ordinal, line) in asr_lines.into_iter().enumerate() {
            let (path, config) = parse_a_line(&db, line)?;
            let outcome: std::result::Result<AsrId, String> = if version == 1 {
                Err("v1 snapshot".into())
            } else if let Some(reason) = phys.poisoned.get(&ordinal) {
                Err(reason.clone())
            } else if let Some(images) = phys.done.remove(&ordinal) {
                try_physical(&mut db, &path, &config, images).map_err(|e| e.to_string())
            } else {
                Err("no physical section for this ASR".into())
            };
            match outcome {
                Ok(id) => {
                    report.physical_bytes += phys.bytes.get(&ordinal).copied().unwrap_or(0);
                    report.asrs.push((id, AsrLoadMode::Physical));
                }
                Err(reason) => {
                    // Rebuild from configuration.  A cold recovery has to
                    // read every extent along the path to recompute the
                    // extension, so charge those scans explicitly.
                    charge_path_scans(&db, &path);
                    let id = db.create_asr(path, config)?;
                    report.asrs.push((id, AsrLoadMode::Rebuilt(reason)));
                }
            }
        }
        Ok((db, report))
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.save_to_string())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Database> {
        Ok(Database::load_report(path)?.0)
    }

    /// Load from a file, also returning how each ASR was brought back
    /// (physically from page images, or rebuilt from the base).
    pub fn load_report(path: impl AsRef<Path>) -> Result<(Database, LoadReport)> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| AsrError::Snapshot(format!("cannot read file: {e}")))?;
        Database::load_from_string_report(&text)
    }
}

/// Encode an optional cell as a single space-free token (the GOM value
/// codec escapes spaces and `=`).
fn cell_token(cell: &Option<Cell>) -> String {
    match cell {
        None => snapshot::encode_value(&Value::Null),
        Some(Cell::Oid(oid)) => snapshot::encode_value(&Value::Ref(*oid)),
        Some(Cell::Value(v)) => snapshot::encode_value(v),
    }
}

/// Decode a [`cell_token`] back to an optional cell.
fn parse_cell(tok: &str) -> Result<Option<Cell>> {
    Ok(Cell::from_gom(&snapshot::decode_value(tok)?))
}

/// Emit one tree image as a `T` header plus one `N` line per live page.
fn write_tree(out: &mut String, ordinal: usize, pidx: usize, dir: char, tree: &RawTreeImage) {
    let free = if tree.free.is_empty() {
        "-".to_string()
    } else {
        tree.free
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(
        out,
        "T {ordinal} {pidx} {dir} {} {} {} {} {free}",
        tree.root,
        tree.height,
        tree.len,
        tree.nodes.len()
    );
    for (id, node) in tree.nodes.iter().enumerate() {
        match node {
            RawNode::Free => {}
            RawNode::Inner { keys, children } => {
                let kids = children
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = write!(out, "N {dir} {id} I {kids}");
                for (cell, rowid) in keys {
                    let _ = write!(out, " {}={rowid}", cell_token(cell));
                }
                out.push('\n');
            }
            RawNode::Leaf { rowids, next } => {
                let next = next.map_or("-".to_string(), |n| n.to_string());
                let ids = if rowids.is_empty() {
                    "-".to_string()
                } else {
                    rowids
                        .iter()
                        .map(|r| r.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let _ = writeln!(out, "N {dir} {id} L {next} {ids}");
            }
        }
    }
}

/// Parse one `A` line into a path and configuration.
fn parse_a_line(db: &Database, line: &str) -> Result<(PathExpression, AsrConfig)> {
    let bad = |msg: String| AsrError::Snapshot(msg);
    let mut parts = line.split(' ');
    let _a = parts.next();
    let dotted = parts.next().ok_or_else(|| bad("A: missing path".into()))?;
    let ext_name = parts
        .next()
        .ok_or_else(|| bad("A: missing extension".into()))?;
    let cuts_str = parts.next().ok_or_else(|| bad("A: missing cuts".into()))?;
    let keep = parts.next().ok_or_else(|| bad("A: missing flag".into()))? == "1";
    let extension = Extension::ALL
        .into_iter()
        .find(|e| e.name() == ext_name)
        .ok_or_else(|| bad(format!("unknown extension `{ext_name}`")))?;
    let cuts: Vec<usize> = cuts_str
        .split(',')
        .map(|c| c.parse().map_err(|_| bad(format!("bad cut `{c}`"))))
        .collect::<Result<_>>()?;
    let path = PathExpression::parse(db.base().schema(), dotted)?;
    Ok((
        path,
        AsrConfig {
            extension,
            decomposition: Decomposition::new(cuts)?,
            keep_set_oids: keep,
        },
    ))
}

/// Charge a full extent scan for every named type along `path` — the cost
/// a cold recovery pays to recompute the extension before a rebuild.
fn charge_path_scans(db: &Database, path: &PathExpression) {
    for i in 0..=path.len() {
        if let TypeRef::Named(ty) = path.type_at(i) {
            db.store().charge_scan(ty);
        }
    }
}

/// Physically restore one ASR from its partition images: tag + adopt both
/// trees of every partition and attach the ASR.  No extension join runs —
/// the logical mirror derives lazily on first maintenance use.
fn try_physical(
    db: &mut Database,
    path: &PathExpression,
    config: &AsrConfig,
    images: Vec<PartitionImage>,
) -> Result<AsrId> {
    let stats = Rc::clone(db.stats());
    let mut parts = Vec::with_capacity(images.len());
    for img in images {
        let label = format!("asr[{path}].{}-{}", img.from, img.to);
        parts.push(StoredPartition::restore(img, Rc::clone(&stats), &label)?);
    }
    let asr = AccessSupportRelation::from_restored(path.clone(), config.clone(), parts, stats)?;
    Ok(db.attach_asr(asr))
}

/// Stateful parser for the v2 physical section.  A malformed line poisons
/// the ASR it belongs to — that ASR falls back to a rebuild with the
/// recorded reason — instead of failing the whole load; only lines with
/// no attributable ASR context abort.
#[derive(Default)]
struct PhysParser {
    /// Completed partition images per `A`-line ordinal.
    done: BTreeMap<usize, Vec<PartitionImage>>,
    /// Physical-section bytes per ordinal (newlines included).
    bytes: BTreeMap<usize, usize>,
    /// Poison reason per ordinal (first error wins).
    poisoned: BTreeMap<usize, String>,
    /// Partition currently being assembled.
    current: Option<PartBuilder>,
    /// Skip body lines until the next `P` record (after a poisoning).
    skipping: bool,
    /// Ordinal of the most recent `P` record.
    last_asr: Option<usize>,
}

/// A partition image under construction.
struct PartBuilder {
    asr: usize,
    from: usize,
    to: usize,
    next_rowid: u64,
    nrows: usize,
    rows: Vec<(Row, u64, u64)>,
    /// Serialized bytes of the shared row payload (`P` + `R` lines) —
    /// split between the two trees for restore-read pricing.
    row_bytes: usize,
    fwd: Option<TreeBuilder>,
    bwd: Option<TreeBuilder>,
}

/// A tree image under construction; `assigned` guards duplicate `N`
/// lines (everything else is validated by the adopting tree).
struct TreeBuilder {
    tree: RawTreeImage,
    assigned: Vec<bool>,
    /// Serialized bytes of this tree's `T`/`N` lines.
    bytes: usize,
}

impl PhysParser {
    fn feed(&mut self, line: &str) -> Result<()> {
        let tag = line.split(' ').next().unwrap_or("");
        if tag == "P" {
            self.finalize_current();
            match self.parse_p(line) {
                Ok(pb) => {
                    self.skipping = false;
                    self.last_asr = Some(pb.asr);
                    *self.bytes.entry(pb.asr).or_default() += line.len() + 1;
                    self.current = Some(pb);
                }
                Err(e) => match self.last_asr {
                    Some(asr) => self.poison(asr, e),
                    None => {
                        return Err(AsrError::Snapshot(format!(
                            "first P record unreadable: {e}"
                        )))
                    }
                },
            }
            return Ok(());
        }
        let Some(asr) = self.last_asr else {
            return Err(AsrError::Snapshot(format!(
                "physical record `{tag}` before any P record"
            )));
        };
        *self.bytes.entry(asr).or_default() += line.len() + 1;
        if self.skipping {
            return Ok(());
        }
        if let Err(e) = self.body_line(tag, line) {
            self.poison(asr, e);
        }
        Ok(())
    }

    /// Close the physical section: finalize the trailing partition.
    fn finish(&mut self) {
        self.finalize_current();
    }

    fn poison(&mut self, asr: usize, reason: String) {
        self.poisoned.entry(asr).or_insert(reason);
        self.current = None;
        self.skipping = true;
    }

    fn finalize_current(&mut self) {
        let Some(pb) = self.current.take() else {
            return;
        };
        if pb.rows.len() != pb.nrows {
            return self.poison(
                pb.asr,
                format!(
                    "partition has {} R rows, expected {}",
                    pb.rows.len(),
                    pb.nrows
                ),
            );
        }
        let (Some(fwd), Some(bwd)) = (pb.fwd, pb.bwd) else {
            return self.poison(pb.asr, "partition is missing a tree image".into());
        };
        // The row payload is each tree's leaf content, stored once for
        // both: split it evenly for per-tree restore pricing.
        let half = pb.row_bytes / 2;
        self.done.entry(pb.asr).or_default().push(PartitionImage {
            from: pb.from,
            to: pb.to,
            next_rowid: pb.next_rowid,
            rows: pb.rows,
            fwd_bytes: fwd.bytes + half,
            bwd_bytes: bwd.bytes + (pb.row_bytes - half),
            fwd: fwd.tree,
            bwd: bwd.tree,
        });
    }

    fn parse_p(&self, line: &str) -> std::result::Result<PartBuilder, String> {
        let t: Vec<&str> = line.split(' ').collect();
        if t.len() != 7 {
            return Err(format!("P record has {} fields, expected 7", t.len()));
        }
        let num = |s: &str| s.parse::<usize>().map_err(|_| format!("bad number `{s}`"));
        let asr = num(t[1])?;
        let pidx = num(t[2])?;
        let expected = self.done.get(&asr).map_or(0, Vec::len);
        if pidx != expected {
            return Err(format!(
                "partition {pidx} out of order (expected {expected})"
            ));
        }
        Ok(PartBuilder {
            asr,
            from: num(t[3])?,
            to: num(t[4])?,
            next_rowid: t[5].parse().map_err(|_| format!("bad number `{}`", t[5]))?,
            nrows: num(t[6])?,
            rows: Vec::new(),
            row_bytes: line.len() + 1,
            fwd: None,
            bwd: None,
        })
    }

    fn body_line(&mut self, tag: &str, line: &str) -> std::result::Result<(), String> {
        let Some(pb) = self.current.as_mut() else {
            return Err(format!("`{tag}` record outside a partition"));
        };
        match tag {
            "R" => {
                let mut it = line.split(' ');
                it.next();
                let rowid: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("R: bad row id")?;
                let count: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("R: bad witness count")?;
                let cells: Vec<Option<Cell>> = it
                    .map(|tok| parse_cell(tok).map_err(|e| e.to_string()))
                    .collect::<std::result::Result<_, _>>()?;
                let arity = pb.to - pb.from + 1;
                if cells.len() != arity {
                    return Err(format!("R: {} cells for arity {arity}", cells.len()));
                }
                pb.rows.push((Row::new(cells), rowid, count));
                pb.row_bytes += line.len() + 1;
                Ok(())
            }
            "T" => {
                let t: Vec<&str> = line.split(' ').collect();
                if t.len() != 9 {
                    return Err(format!("T record has {} fields, expected 9", t.len()));
                }
                let num = |s: &str| s.parse::<usize>().map_err(|_| format!("bad number `{s}`"));
                let free: Vec<usize> = if t[8] == "-" {
                    Vec::new()
                } else {
                    t[8].split(',')
                        .map(num)
                        .collect::<std::result::Result<_, _>>()?
                };
                let (root, height, len, pages) = (num(t[4])?, num(t[5])?, num(t[6])?, num(t[7])?);
                // Bound the slab allocation before trusting the field: a
                // legal tree has at most ~2·len live pages plus its free
                // slots.
                if pages > 2 * len + free.len() + 8 {
                    return Err(format!("implausible page count {pages} for {len} entries"));
                }
                let builder = TreeBuilder {
                    assigned: vec![false; pages],
                    bytes: line.len() + 1,
                    tree: RawTreeImage {
                        root,
                        height,
                        len,
                        free,
                        nodes: vec![RawNode::Free; pages],
                    },
                };
                match t[3] {
                    "f" if pb.fwd.is_none() => pb.fwd = Some(builder),
                    "b" if pb.bwd.is_none() => pb.bwd = Some(builder),
                    "f" | "b" => return Err(format!("duplicate {} tree", t[3])),
                    other => return Err(format!("bad tree direction `{other}`")),
                }
                Ok(())
            }
            "N" => {
                let t: Vec<&str> = line.split(' ').collect();
                if t.len() < 5 {
                    return Err("N record too short".into());
                }
                let builder = match t[1] {
                    "f" => pb.fwd.as_mut(),
                    "b" => pb.bwd.as_mut(),
                    other => return Err(format!("bad tree direction `{other}`")),
                }
                .ok_or("N record before its T header")?;
                builder.bytes += line.len() + 1;
                let id: usize = t[2]
                    .parse()
                    .map_err(|_| format!("bad page id `{}`", t[2]))?;
                if id >= builder.tree.nodes.len() {
                    return Err(format!("page id {id} out of bounds"));
                }
                if builder.assigned[id] {
                    return Err(format!("page {id} written twice"));
                }
                builder.assigned[id] = true;
                builder.tree.nodes[id] = match t[3] {
                    "I" => {
                        let children: Vec<usize> = t[4]
                            .split(',')
                            .map(|s| s.parse().map_err(|_| format!("bad child `{s}`")))
                            .collect::<std::result::Result<_, _>>()?;
                        let keys: Vec<(Option<Cell>, u64)> = t[5..]
                            .iter()
                            .map(|tok| {
                                let (cell, rowid) = tok
                                    .rsplit_once('=')
                                    .ok_or_else(|| format!("bad key `{tok}`"))?;
                                let rowid: u64 = rowid
                                    .parse()
                                    .map_err(|_| format!("bad key row id `{rowid}`"))?;
                                let cell = parse_cell(cell).map_err(|e| e.to_string())?;
                                Ok((cell, rowid))
                            })
                            .collect::<std::result::Result<_, String>>()?;
                        RawNode::Inner { keys, children }
                    }
                    "L" => {
                        if t.len() != 6 {
                            return Err(format!("N L record has {} fields, expected 6", t.len()));
                        }
                        let next = if t[4] == "-" {
                            None
                        } else {
                            Some(
                                t[4].parse()
                                    .map_err(|_| format!("bad sibling `{}`", t[4]))?,
                            )
                        };
                        let rowids: Vec<u64> = if t[5] == "-" {
                            Vec::new()
                        } else {
                            t[5].split(',')
                                .map(|s| s.parse().map_err(|_| format!("bad row id `{s}`")))
                                .collect::<std::result::Result<_, _>>()?
                        };
                        RawNode::Leaf { rowids, next }
                    }
                    other => return Err(format!("bad page kind `{other}`")),
                };
                Ok(())
            }
            other => Err(format!("unknown physical record `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use asr_gom::Value;

    fn sample_db() -> Database {
        let (base, path) = crate::testutil::figure2_base();
        let mut db = Database::from_base(base);
        let div_ty = db.base().schema().resolve("Division").unwrap();
        db.set_type_size(div_ty, 500);
        db.create_asr(path.clone(), AsrConfig::binary(Extension::Full, &path))
            .unwrap();
        db.create_asr(
            path,
            AsrConfig {
                extension: Extension::Canonical,
                decomposition: Decomposition::new(vec![0, 2, 3]).unwrap(),
                keep_set_oids: false,
            },
        )
        .unwrap();
        db
    }

    #[test]
    fn save_load_round_trip() {
        let db = sample_db();
        let text = db.save_to_string();
        let (restored, report) = Database::load_from_string_report(&text).unwrap();
        assert_eq!(restored.base().object_count(), db.base().object_count());
        assert_eq!(restored.asrs().count(), 2);
        assert_eq!(report.version, 2);
        assert!(
            report.asrs.iter().all(|(_, mode)| mode.is_physical()),
            "{report:?}"
        );
        assert!(report.physical_bytes > 0);
        // The restored ASRs answer identically.
        for (id, asr) in restored.asrs() {
            if asr.supports(0, 3) {
                let hits = restored
                    .backward(id, 0, 3, &Cell::Value(Value::string("Door")))
                    .unwrap();
                assert_eq!(hits.len(), 2, "{}", asr.config().extension);
            }
            asr.check_consistency().unwrap();
        }
        // Serialization reaches a fixed point after one load (type-id
        // assignment follows file order from then on; the physical
        // section is restored page-for-page).
        let text2 = restored.save_to_string();
        let restored2 = Database::load_from_string(&text2).unwrap();
        assert_eq!(restored2.save_to_string(), text2);
    }

    #[test]
    fn v1_snapshots_still_load_by_rebuilding() {
        let db = sample_db();
        let text = db.save_to_string_v1();
        assert!(text.starts_with("ASRDB 1\n"));
        let (restored, report) = Database::load_from_string_report(&text).unwrap();
        assert_eq!(report.version, 1);
        assert_eq!(report.physical_bytes, 0);
        assert!(report
            .asrs
            .iter()
            .all(|(_, mode)| matches!(mode, AsrLoadMode::Rebuilt(r) if r == "v1 snapshot")));
        for (id, asr) in restored.asrs() {
            asr.check_consistency().unwrap();
            if asr.supports(0, 3) {
                let hits = restored
                    .backward(id, 0, 3, &Cell::Value(Value::string("Door")))
                    .unwrap();
                assert_eq!(hits.len(), 2);
            }
        }
        // The v1 rebuild load charges the extents it has to scan; the v2
        // physical load of the same database does not touch them.
        let loaded = Database::load_from_string(&text).unwrap();
        assert!(loaded.stats().reads() > 0, "rebuild load scans extents");
    }

    #[test]
    fn physical_restore_charges_reads_to_the_restored_trees() {
        let db = sample_db();
        let (restored, report) = Database::load_from_string_report(&db.save_to_string()).unwrap();
        assert!(report.asrs.iter().all(|(_, m)| m.is_physical()));
        let by_label = restored.stats().structures();
        let mut tree_labels: Vec<&str> = by_label
            .iter()
            .filter(|s| s.label.ends_with(".fwd") || s.label.ends_with(".bwd"))
            .map(|s| s.label.as_str())
            .collect();
        tree_labels.sort();
        // Two ASRs over the 4-ary Figure-2 path: full/binary has spans
        // 0-1, 1-2, 2-3 and canonical/{0,2,3} has 0-2, 2-3; the shared
        // 2-3 label dedups to one (kind, label) id — 8 distinct labels.
        assert_eq!(tree_labels.len(), 8, "{tree_labels:?}");
        for s in by_label
            .iter()
            .filter(|s| s.label.ends_with(".fwd") || s.label.ends_with(".bwd"))
        {
            assert!(s.reads > 0, "restore reads must attribute to {}", s.label);
            assert_eq!(s.writes, 0, "physical restore writes nothing: {}", s.label);
        }
    }

    #[test]
    fn restored_database_keeps_maintaining() {
        let db = sample_db();
        let mut restored = Database::load_from_string(&db.save_to_string()).unwrap();
        // Apply a maintained update post-restore.
        let pepper = restored
            .base()
            .objects()
            .find(|o| o.attribute("Name") == &Value::string("Pepper"))
            .map(|o| o.oid)
            .unwrap();
        let sec_set = restored
            .base()
            .objects()
            .find(|o| o.attribute("Name") == &Value::string("560 SEC"))
            .and_then(|o| o.attribute("Composition").as_ref_oid())
            .unwrap();
        restored
            .insert_into_set(sec_set, Value::Ref(pepper))
            .unwrap();
        for (id, asr) in restored.asrs() {
            asr.check_consistency().unwrap();
            if asr.supports(0, 3) {
                let hits = restored
                    .backward(id, 0, 3, &Cell::Value(Value::string("Pepper")))
                    .unwrap();
                assert_eq!(hits.len(), 2, "Auto and Truck reach Pepper now ({id})");
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("asr_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("db.snap");
        db.save(&file).unwrap();
        let restored = Database::load(&file).unwrap();
        assert_eq!(restored.base().object_count(), db.base().object_count());
        std::fs::remove_file(file).ok();
    }

    #[test]
    fn malformed_headers_rejected() {
        assert!(Database::load_from_string("").is_err());
        assert!(Database::load_from_string("ASRDB 2\nno marker").is_err());
        assert!(Database::load_from_string("WRONG\n--BASE--\nGOMSNAP 1\n").is_err());
        let db = sample_db();
        let text = db.save_to_string().replace("A Division", "A Nowhere");
        assert!(Database::load_from_string(&text).is_err());
        let text = db.save_to_string().replace(" full ", " bogus ");
        assert!(Database::load_from_string(&text).is_err());
    }

    /// Every way of mangling a snapshot must yield a descriptive
    /// [`AsrError`] — never a panic.  (The durability layer feeds
    /// recovered checkpoint bytes straight into this parser, so torn or
    /// bit-flipped files are an expected input, not a programming error.)
    #[test]
    fn corrupt_snapshots_error_descriptively() {
        let good = sample_db().save_to_string();

        // Truncation at every line boundary: either a valid (possibly
        // degraded) database or a clean error, never a panic.
        let lines: Vec<&str> = good.lines().collect();
        for k in 0..lines.len() {
            let truncated = lines[..k].join("\n");
            let _ = Database::load_from_string(&truncated);
        }
        // Truncation at every raw byte offset (may split UTF-8-safe
        // ASCII lines mid-token).
        for k in (0..good.len()).step_by(7) {
            let _ = Database::load_from_string(&good[..k]);
        }

        // Missing --BASE-- marker names the marker in the error.
        let no_marker = good.replace("--BASE--\n", "");
        let err = Database::load_from_string(&no_marker).unwrap_err();
        assert!(matches!(err, AsrError::Snapshot(_)), "{err}");
        assert!(err.to_string().contains("--BASE--"), "{err}");

        // Mangled magic header.
        let bad_magic = good.replace("ASRDB 2", "ASRDB 999");
        let err = Database::load_from_string(&bad_magic).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Bad A-lines: missing fields, unparsable cuts, unknown record tag.
        for mangled in [
            good.replace(" canonical ", " "),
            good.replace("0,2,3", "0,x,3"),
            good.replace("\nA ", "\nZ "),
            good.replace("S Division 500", "S Division many"),
            good.replace("S Division 500", "S Nothing 500"),
        ] {
            let err = Database::load_from_string(&mangled).unwrap_err();
            assert!(!err.to_string().is_empty());
        }

        // Garbled base section (bit-flip style corruption of a value).
        let garbled = good.replace("S:Door", "S:%zzDoor");
        assert!(Database::load_from_string(&garbled).is_err());

        // load() on a missing file reports the path problem.
        let err = Database::load("/nonexistent/dir/db.snap").unwrap_err();
        assert!(matches!(err, AsrError::Snapshot(_)), "{err}");
        assert!(err.to_string().contains("cannot read file"), "{err}");
    }

    /// Corruption confined to the physical section degrades per ASR to a
    /// rebuild — the load still succeeds and answers identically.
    #[test]
    fn corrupt_physical_section_falls_back_to_rebuild() {
        let db = sample_db();
        let good = db.save_to_string();
        let door = Cell::Value(Value::string("Door"));
        let expect: Vec<_> = {
            let (clean, _) = Database::load_from_string_report(&good).unwrap();
            clean.backward(0, 0, 3, &door).unwrap()
        };

        // A bit-flipped page id, a mangled tree header, a truncated R row
        // count, an out-of-range child: each must fall back cleanly.
        let first_n = good
            .lines()
            .find(|l| l.starts_with("N f"))
            .unwrap()
            .to_string();
        let first_t = good
            .lines()
            .find(|l| l.starts_with("T 0"))
            .unwrap()
            .to_string();
        for mangled in [
            good.replace(&first_n, &first_n.replace(" L ", " X ")),
            good.replace(&first_t, "T 0 0 f 999999 1 1 1 -"),
            good.replace(&first_n, ""),
            good.replacen("R 0 ", "R 999999 ", 1),
        ] {
            let (loaded, report) = Database::load_from_string_report(&mangled)
                .unwrap_or_else(|e| panic!("must fall back, got {e}"));
            assert!(
                report
                    .asrs
                    .iter()
                    .any(|(_, m)| matches!(m, AsrLoadMode::Rebuilt(_))),
                "{report:?}"
            );
            assert_eq!(loaded.backward(0, 0, 3, &door).unwrap(), expect);
            for (_, asr) in loaded.asrs() {
                asr.check_consistency().unwrap();
            }
        }

        // Physical section stripped entirely: every ASR rebuilds.  Only
        // head lines are filtered — the GOM base section has its own
        // records that may share these leading letters.
        let (head, base) = good.split_once("--BASE--\n").unwrap();
        let stripped: String = head
            .lines()
            .filter(|l| {
                !(l.starts_with("P ")
                    || l.starts_with("R ")
                    || l.starts_with("T ")
                    || l.starts_with("N "))
            })
            .map(|l| format!("{l}\n"))
            .collect::<String>()
            + "--BASE--\n"
            + base;
        let (loaded, report) = Database::load_from_string_report(&stripped).unwrap();
        assert!(report
            .asrs
            .iter()
            .all(|(_, m)| matches!(m, AsrLoadMode::Rebuilt(r) if r.contains("no physical"))));
        assert_eq!(loaded.backward(0, 0, 3, &door).unwrap(), expect);
    }

    #[test]
    fn type_sizes_survive() {
        let db = sample_db();
        let restored = Database::load_from_string(&db.save_to_string()).unwrap();
        let div_ty = restored.base().schema().resolve("Division").unwrap();
        assert_eq!(restored.store().type_size(div_ty), 500);
    }
}
