//! Whole-database persistence: the GOM snapshot plus the physical design
//! (clustered sizes and access-support-relation configurations).
//!
//! ```text
//! ASRDB 1
//! S ROBOT 500
//! A ROBOT.Arm.MountedTool.ManufacturedBy.Location canonical 0,1,2,3,4 0
//! --BASE--
//! GOMSNAP 1
//! …
//! ```
//!
//! Access relations are *rebuilt* on load (they are derived data; the
//! snapshot stores only their configuration — exactly how a production
//! system would recover secondary indexes).

use std::fmt::Write as _;
use std::path::Path;

use asr_gom::{snapshot, PathExpression};

use crate::database::Database;
use crate::decomposition::Decomposition;
use crate::error::{AsrError, Result};
use crate::extension::Extension;
use crate::manager::AsrConfig;
use crate::store::ObjectStore;

const MAGIC: &str = "ASRDB 1";
const BASE_MARKER: &str = "--BASE--";

impl Database {
    /// Serialize the database (schema, objects, variables, physical
    /// design) to the snapshot text format.
    pub fn save_to_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let mut sizes: Vec<(String, usize)> = self
            .store()
            .configured_sizes()
            .map(|(ty, size)| (self.base().schema().name(ty).to_string(), size))
            .collect();
        sizes.sort();
        for (name, size) in sizes {
            let _ = writeln!(out, "S {name} {size}");
        }
        for (_, asr) in self.asrs() {
            let cuts: Vec<String> = asr
                .config()
                .decomposition
                .cuts()
                .iter()
                .map(|c| c.to_string())
                .collect();
            let _ = writeln!(
                out,
                "A {} {} {} {}",
                asr.path(),
                asr.config().extension.name(),
                cuts.join(","),
                u8::from(asr.config().keep_set_oids)
            );
        }
        let _ = writeln!(out, "{BASE_MARKER}");
        out.push_str(&snapshot::write_base(self.base()));
        out
    }

    /// Restore a database from snapshot text: objects keep their OIDs,
    /// clustered files are sized as configured, and every access support
    /// relation is rebuilt.
    pub fn load_from_string(text: &str) -> Result<Database> {
        let bad = |msg: String| AsrError::Snapshot(msg);
        let (head, base_text) = text
            .split_once(&format!("{BASE_MARKER}\n"))
            .ok_or_else(|| bad("missing --BASE-- marker".into()))?;
        let mut lines = head.lines();
        let first = lines.next().ok_or_else(|| bad("empty snapshot".into()))?;
        if first.trim() != MAGIC {
            return Err(bad(format!("bad magic `{first}`")));
        }
        let base = snapshot::read_base(base_text)?;

        let stats = asr_pagesim::IoStats::new_handle();
        let mut store = ObjectStore::new(std::rc::Rc::clone(&stats));
        let mut asr_lines: Vec<&str> = Vec::new();
        for line in lines {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.split(' ').next() {
                Some("S") => {
                    let mut parts = line.splitn(3, ' ');
                    let _s = parts.next();
                    let name = parts.next().ok_or_else(|| bad("S: missing type".into()))?;
                    let size: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("S: bad size".into()))?;
                    let ty = base.schema().require(name)?;
                    store.set_type_size(ty, size);
                }
                Some("A") => asr_lines.push(line),
                other => return Err(bad(format!("unknown record `{other:?}`"))),
            }
        }
        store.sync_with_base(&base)?;
        let mut db = Database::from_parts(base, store, stats);

        for line in asr_lines {
            let mut parts = line.split(' ');
            let _a = parts.next();
            let dotted = parts.next().ok_or_else(|| bad("A: missing path".into()))?;
            let ext_name = parts
                .next()
                .ok_or_else(|| bad("A: missing extension".into()))?;
            let cuts_str = parts.next().ok_or_else(|| bad("A: missing cuts".into()))?;
            let keep = parts.next().ok_or_else(|| bad("A: missing flag".into()))? == "1";
            let extension = Extension::ALL
                .into_iter()
                .find(|e| e.name() == ext_name)
                .ok_or_else(|| bad(format!("unknown extension `{ext_name}`")))?;
            let cuts: Vec<usize> = cuts_str
                .split(',')
                .map(|c| c.parse().map_err(|_| bad(format!("bad cut `{c}`"))))
                .collect::<Result<_>>()?;
            let path = PathExpression::parse(db.base().schema(), dotted)?;
            db.create_asr(
                path,
                AsrConfig {
                    extension,
                    decomposition: Decomposition::new(cuts)?,
                    keep_set_oids: keep,
                },
            )?;
        }
        Ok(db)
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.save_to_string())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Database> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| AsrError::Snapshot(format!("cannot read file: {e}")))?;
        Database::load_from_string(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use asr_gom::Value;

    fn sample_db() -> Database {
        let (base, path) = crate::testutil::figure2_base();
        let mut db = Database::from_base(base);
        let div_ty = db.base().schema().resolve("Division").unwrap();
        db.set_type_size(div_ty, 500);
        db.create_asr(path.clone(), AsrConfig::binary(Extension::Full, &path))
            .unwrap();
        db.create_asr(
            path,
            AsrConfig {
                extension: Extension::Canonical,
                decomposition: Decomposition::new(vec![0, 2, 3]).unwrap(),
                keep_set_oids: false,
            },
        )
        .unwrap();
        db
    }

    #[test]
    fn save_load_round_trip() {
        let db = sample_db();
        let text = db.save_to_string();
        let restored = Database::load_from_string(&text).unwrap();
        assert_eq!(restored.base().object_count(), db.base().object_count());
        assert_eq!(restored.asrs().count(), 2);
        // The rebuilt ASRs answer identically.
        for (id, asr) in restored.asrs() {
            if asr.supports(0, 3) {
                let hits = restored
                    .backward(id, 0, 3, &Cell::Value(Value::string("Door")))
                    .unwrap();
                assert_eq!(hits.len(), 2, "{}", asr.config().extension);
            }
            asr.check_consistency().unwrap();
        }
        // Serialization reaches a fixed point after one load (type-id
        // assignment follows file order from then on).
        let text2 = restored.save_to_string();
        let restored2 = Database::load_from_string(&text2).unwrap();
        assert_eq!(restored2.save_to_string(), text2);
    }

    #[test]
    fn restored_database_keeps_maintaining() {
        let db = sample_db();
        let mut restored = Database::load_from_string(&db.save_to_string()).unwrap();
        // Apply a maintained update post-restore.
        let pepper = restored
            .base()
            .objects()
            .find(|o| o.attribute("Name") == &Value::string("Pepper"))
            .map(|o| o.oid)
            .unwrap();
        let sec_set = restored
            .base()
            .objects()
            .find(|o| o.attribute("Name") == &Value::string("560 SEC"))
            .and_then(|o| o.attribute("Composition").as_ref_oid())
            .unwrap();
        restored
            .insert_into_set(sec_set, Value::Ref(pepper))
            .unwrap();
        for (id, asr) in restored.asrs() {
            asr.check_consistency().unwrap();
            if asr.supports(0, 3) {
                let hits = restored
                    .backward(id, 0, 3, &Cell::Value(Value::string("Pepper")))
                    .unwrap();
                assert_eq!(hits.len(), 2, "Auto and Truck reach Pepper now ({id})");
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("asr_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("db.snap");
        db.save(&file).unwrap();
        let restored = Database::load(&file).unwrap();
        assert_eq!(restored.base().object_count(), db.base().object_count());
        std::fs::remove_file(file).ok();
    }

    #[test]
    fn malformed_headers_rejected() {
        assert!(Database::load_from_string("").is_err());
        assert!(Database::load_from_string("ASRDB 1\nno marker").is_err());
        assert!(Database::load_from_string("WRONG\n--BASE--\nGOMSNAP 1\n").is_err());
        let db = sample_db();
        let text = db.save_to_string().replace("A Division", "A Nowhere");
        assert!(Database::load_from_string(&text).is_err());
        let text = db.save_to_string().replace(" full ", " bogus ");
        assert!(Database::load_from_string(&text).is_err());
    }

    /// Every way of mangling a snapshot must yield a descriptive
    /// [`AsrError`] — never a panic.  (The durability layer feeds
    /// recovered checkpoint bytes straight into this parser, so torn or
    /// bit-flipped files are an expected input, not a programming error.)
    #[test]
    fn corrupt_snapshots_error_descriptively() {
        let good = sample_db().save_to_string();

        // Truncation at every line boundary: either a valid (possibly
        // empty-config) database or a clean error, never a panic.
        let lines: Vec<&str> = good.lines().collect();
        for k in 0..lines.len() {
            let truncated = lines[..k].join("\n");
            let _ = Database::load_from_string(&truncated);
        }
        // Truncation at every raw byte offset (may split UTF-8-safe
        // ASCII lines mid-token).
        for k in (0..good.len()).step_by(7) {
            let _ = Database::load_from_string(&good[..k]);
        }

        // Missing --BASE-- marker names the marker in the error.
        let no_marker = good.replace("--BASE--\n", "");
        let err = Database::load_from_string(&no_marker).unwrap_err();
        assert!(matches!(err, AsrError::Snapshot(_)), "{err}");
        assert!(err.to_string().contains("--BASE--"), "{err}");

        // Mangled magic header.
        let bad_magic = good.replace("ASRDB 1", "ASRDB 999");
        let err = Database::load_from_string(&bad_magic).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Bad A-lines: missing fields, unparsable cuts, unknown record tag.
        for mangled in [
            good.replace(" canonical ", " "),
            good.replace("0,2,3", "0,x,3"),
            good.replace("\nA ", "\nZ "),
            good.replace("S Division 500", "S Division many"),
            good.replace("S Division 500", "S Nothing 500"),
        ] {
            let err = Database::load_from_string(&mangled).unwrap_err();
            assert!(!err.to_string().is_empty());
        }

        // Garbled base section (bit-flip style corruption of a value).
        let garbled = good.replace("S:Door", "S:%zzDoor");
        assert!(Database::load_from_string(&garbled).is_err());

        // load() on a missing file reports the path problem.
        let err = Database::load("/nonexistent/dir/db.snap").unwrap_err();
        assert!(matches!(err, AsrError::Snapshot(_)), "{err}");
        assert!(err.to_string().contains("cannot read file"), "{err}");
    }

    #[test]
    fn type_sizes_survive() {
        let db = sample_db();
        let restored = Database::load_from_string(&db.save_to_string()).unwrap();
        let div_ty = restored.base().schema().resolve("Division").unwrap();
        assert_eq!(restored.store().type_size(div_ty), 500);
    }
}
