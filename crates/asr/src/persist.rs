//! Whole-database persistence: a layered, versioned snapshot pipeline.
//!
//! The `ASRDB 2` format stacks three sections:
//!
//! 1. **Design** — clustered type sizes (`S`) and access-support-relation
//!    configurations (`A`), unchanged from v1;
//! 2. **Physical** — every stored partition's row mirror (`P`/`R`) and
//!    page-faithful images of its two clustering B+ trees (`T`/`N`):
//!    node layout, separator keys, row ids, witness counts, leaf sibling
//!    links, free list and tree geometry;
//! 3. **Base** — the GOM object snapshot after `--BASE--`.
//!
//! ```text
//! ASRDB 2
//! S ROBOT 500
//! A ROBOT.Arm.MountedTool.ManufacturedBy.Location canonical 0,1,2,3,4 0
//! P <asr#> <part#> <from> <to> <next_rowid> <nrows>
//! R <rowid> <count> <cell> <cell> …
//! T <asr#> <part#> f|b <root> <height> <len> <pages> <free-csv|->
//! N f|b <page#> I <children-csv> <cell>=<rowid> …
//! N f|b <page#> L <next|-> <rowid-csv|->
//! --BASE--
//! GOMSNAP 1
//! …
//! ```
//!
//! Loading a v2 snapshot restores each ASR **physically**: both trees are
//! re-registered under their original `(kind, label)` structure ids and
//! re-attached page by page (one charged read per live node) — no
//! extension join runs.  Leaf keys are not stored; they are re-derived
//! from the row mirror as `(row.first|last, rowid)`, an invariant of the
//! maintenance engine.  Version negotiation: the loader accepts `ASRDB 1`
//! (ASRs rebuilt from their configuration, as before) and `ASRDB 2`; the
//! writer emits v2.  A corrupt physical section degrades per ASR to the
//! v1 rebuild path with a recorded reason — never a panic.
//!
//! ## `ASRDB 3` — delta snapshots
//!
//! A v3 document is not self-contained: it carries only what changed since
//! a named **base** checkpoint and is applied on top of a database holding
//! that base's state ([`Database::apply_delta_from_string_report`]):
//!
//! ```text
//! ASRDB 3
//! DELTA <base-id>
//! S … / A …                                  (design, must match the base)
//! D <asr#> <part#> <from> <to> <next_rowid> <nrows> <nupserts>
//! R <rowid> <count> <cell> …                 (changed/new mirror rows)
//! X <rowid-csv|->                            (rows physically removed)
//! U <asr#> <part#> f|b <root> <height> <len> <total-pages> <npages> <free-csv|->
//! N f|b <page#> I|L …                        (pages stamped since the fence)
//! N f|b <page#> F                            (pages freed since the fence)
//! --BASE--
//! GOMDELTA 1 <object-count>
//! X i<oid-csv>|-                             (objects deleted)
//! O …                                        (objects changed, GOMSNAP syntax)
//! V …                                        (variables rebound)
//! --END--
//! ```
//!
//! A per-ASR section degrades to the full v2 grammar (`P`/`R`/`T`/`N`)
//! whenever the delta would exceed [`DELTA_FULL_FRACTION`] of the full
//! section — rebuilt or freshly created ASRs therefore ship full even
//! inside a delta document.  The writer refuses entirely (returns `None`)
//! when the physical design changed since the fence.  Applying patches the
//! base's partition page images and text-merges the object section, then
//! reloads through the v2 restore machinery, so every structural invariant
//! is re-validated; the input database is never modified.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;

use asr_gom::{snapshot, ObjectBase, Oid, PathExpression, TypeRef, Value};

use crate::cell::Cell;
use crate::database::{AsrId, Database};
use crate::decomposition::Decomposition;
use crate::error::{AsrError, Result};
use crate::extension::Extension;
use crate::manager::{AccessSupportRelation, AsrConfig};
use crate::partition::{
    PartitionDelta, PartitionImage, RawNode, RawTreeDelta, RawTreeImage, StoredPartition,
};
use crate::row::Row;
use crate::snapshot::Snapshot;
use crate::store::ObjectStore;

const MAGIC_V1: &str = "ASRDB 1";
const MAGIC_V2: &str = "ASRDB 2";
const MAGIC_V3: &str = "ASRDB 3";
const BASE_MARKER: &str = "--BASE--";
/// Trailer closing an `ASRDB 3` document.  A delta's base section has no
/// inherent length (`O`/`V` upserts are optional), so without an explicit
/// end marker a truncated document could apply "successfully" while
/// silently dropping tail records.
const END_MARKER: &str = "--END--";

/// A per-ASR delta section is only worth shipping when it is at most this
/// fraction of the equivalent full section; otherwise the writer falls
/// back to full physical for that ASR.
pub const DELTA_FULL_FRACTION: f64 = 0.5;

/// How one access support relation came back from a snapshot load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsrLoadMode {
    /// Physically restored by adopting its partitions' B+-tree page
    /// images (`ASRDB 2`).
    Physical,
    /// Physically restored by patching the base checkpoint's page images
    /// with an `ASRDB 3` delta section that shipped `pages` changed pages.
    Delta {
        /// Changed tree pages carried by the delta section.
        pages: usize,
    },
    /// Rebuilt from its configuration via the extension join — a v1
    /// snapshot, or a per-ASR fallback for the given reason.
    Rebuilt(String),
}

impl AsrLoadMode {
    /// `true` for [`AsrLoadMode::Physical`].
    pub fn is_physical(&self) -> bool {
        matches!(self, AsrLoadMode::Physical)
    }

    /// `true` for [`AsrLoadMode::Delta`].
    pub fn is_delta(&self) -> bool {
        matches!(self, AsrLoadMode::Delta { .. })
    }
}

/// What a snapshot load did — returned by
/// [`Database::load_from_string_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Snapshot format version (1, 2, or 3 for a delta application).
    pub version: u32,
    /// Per-ASR outcome, in registration order.  After a chain load this
    /// reflects the final application.
    pub asrs: Vec<(AsrId, AsrLoadMode)>,
    /// Bytes of physical-section lines (newlines included) belonging to
    /// physically restored ASRs.  The durability layer subtracts these
    /// from its whole-file read charge: those bytes are the trees' page
    /// images, and their reads are charged by the restore itself.
    pub physical_bytes: usize,
    /// Number of `ASRDB 3` deltas applied on top of the base snapshot
    /// (0 for a plain full load).
    pub delta_chain: usize,
}

impl Database {
    /// Serialize the database — schema, objects, variables, physical
    /// design *and* the physical state of every ASR partition — to the
    /// `ASRDB 2` snapshot format.
    pub fn save_to_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC_V2}");
        self.write_design(&mut out);
        self.write_physical(&mut out);
        let _ = writeln!(out, "{BASE_MARKER}");
        out.push_str(&snapshot::write_base(self.base()));
        out
    }

    /// Serialize to the legacy `ASRDB 1` format (no physical section;
    /// ASRs rebuild on load).  Kept for format-compat tests and for
    /// benchmarking the physical restore against the rebuild path.
    pub fn save_to_string_v1(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC_V1}");
        self.write_design(&mut out);
        let _ = writeln!(out, "{BASE_MARKER}");
        out.push_str(&snapshot::write_base(self.base()));
        out
    }

    /// Serialize only what changed since the last
    /// [`Database::mark_clean`] fence as an `ASRDB 3` delta on top of the
    /// checkpoint identified by `base_id` (an opaque caller token — the
    /// durability layer uses the base checkpoint's LSN).
    ///
    /// Returns `None` when the physical design (ASRs, type sizes) changed
    /// since the fence: deltas never span design changes, so the caller
    /// must take a full checkpoint instead.  Individual ASRs whose delta
    /// would exceed [`DELTA_FULL_FRACTION`] of their full section are
    /// embedded in full v2 form.
    pub fn save_delta_to_string(&self, base_id: u64) -> Option<String> {
        if self.is_design_dirty() {
            return None;
        }
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC_V3}");
        let _ = writeln!(out, "DELTA {base_id}");
        self.write_design(&mut out);
        for (ordinal, (_, asr)) in self.asrs().enumerate() {
            let mut delta = String::new();
            write_asr_delta(&mut delta, ordinal, asr);
            // An unchanged ASR always ships as an (empty) delta — the size
            // fraction only arbitrates when there is real change to carry.
            if asr.changed_rows() == 0 {
                out.push_str(&delta);
                continue;
            }
            let mut full = String::new();
            write_asr_physical(&mut full, ordinal, asr);
            if (delta.len() as f64) <= (full.len() as f64) * DELTA_FULL_FRACTION {
                out.push_str(&delta);
            } else {
                out.push_str(&full);
            }
        }
        let _ = writeln!(out, "{BASE_MARKER}");
        self.write_base_delta(&mut out);
        Some(out)
    }

    /// The `GOMDELTA 1` section: the snapshot lines of every object
    /// changed since the fence (exact `GOMSNAP` syntax, filtered from a
    /// full serialization so the merge on the other side reproduces the
    /// canonical text byte-for-byte), the deleted OIDs, and rebound
    /// variables.
    fn write_base_delta(&self, out: &mut String) {
        write_base_delta_from(
            out,
            self.base(),
            self.dead_oids(),
            self.dirty_oids(),
            self.dirty_vars(),
        );
    }

    /// The base-checkpoint id named by an `ASRDB 3` document's `DELTA`
    /// header — how chain loaders resolve lineage without applying.
    pub fn delta_base_id(text: &str) -> Result<u64> {
        let bad = |msg: String| AsrError::Snapshot(msg);
        let mut lines = text.lines();
        let first = lines.next().ok_or_else(|| bad("empty delta".into()))?;
        if first.trim() != MAGIC_V3 {
            return Err(bad(format!("bad magic `{first}` (expected `{MAGIC_V3}`)")));
        }
        let second = lines
            .next()
            .ok_or_else(|| bad("missing DELTA header".into()))?;
        second
            .strip_prefix("DELTA ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(format!("bad DELTA header `{second}`")))
    }

    /// `true` when `text` is an `ASRDB 3` delta document.
    pub fn is_delta_snapshot(text: &str) -> bool {
        text.lines().next().map(str::trim) == Some(MAGIC_V3)
    }

    /// Apply an `ASRDB 3` delta on top of this database's state, which
    /// must hold the delta's base checkpoint (the caller verifies lineage
    /// via [`Database::delta_base_id`]).  Strict: any inconsistency is an
    /// error — the replication path NACKs instead of silently rebuilding.
    pub fn apply_delta_from_string(&self, text: &str) -> Result<Database> {
        Ok(self.apply_delta_from_string_report(text, true)?.0)
    }

    /// [`Database::apply_delta_from_string`] with a [`LoadReport`] and a
    /// strictness switch: when `strict` is false (crash recovery), an ASR
    /// whose images cannot be patched falls back to a charged rebuild from
    /// the merged base instead of failing the whole application.
    ///
    /// `self` is never modified — on error the caller still holds the
    /// base state.
    pub fn apply_delta_from_string_report(
        &self,
        text: &str,
        strict: bool,
    ) -> Result<(Database, LoadReport)> {
        let doc = parse_delta_doc(text)?;
        let mut want_design = String::new();
        self.write_design(&mut want_design);
        if doc.design != want_design {
            return Err(AsrError::Snapshot(
                "delta design section does not match the base database".into(),
            ));
        }

        // ---- base section: canonical text merge --------------------
        let full = snapshot::write_base(self.base());
        let mut schema_lines: Vec<&str> = Vec::new();
        let mut objects: BTreeMap<u64, &str> = BTreeMap::new();
        let mut vars: BTreeMap<String, &str> = BTreeMap::new();
        for line in full.lines().skip(1) {
            if let Some(oid) = parse_o_line_oid(line) {
                objects.insert(oid.as_raw(), line);
            } else if let Some(name) = parse_v_line_name(line) {
                vars.insert(name, line);
            } else {
                schema_lines.push(line);
            }
        }
        for oid in &doc.dead_oids {
            // Rows deleted after the base may never have shipped: tolerate.
            objects.remove(oid);
        }
        for (oid, line) in &doc.o_upserts {
            objects.insert(*oid, *line);
        }
        for (name, line) in &doc.v_upserts {
            vars.insert(name.clone(), *line);
        }
        if objects.len() != doc.object_count {
            return Err(AsrError::Snapshot(format!(
                "patched base has {} objects, delta expects {}",
                objects.len(),
                doc.object_count
            )));
        }
        let mut merged = String::from("GOMSNAP 1\n");
        for line in schema_lines {
            let _ = writeln!(merged, "{line}");
        }
        for line in objects.values() {
            let _ = writeln!(merged, "{line}");
        }
        for line in vars.values() {
            let _ = writeln!(merged, "{line}");
        }
        let base = snapshot::read_base(&merged)?;

        // ---- reassemble, mirroring the v2 load tail ----------------
        let stats = asr_pagesim::IoStats::new_handle();
        let mut store = ObjectStore::new(Rc::clone(&stats));
        for line in doc.design.lines() {
            if let Some(rest) = line.strip_prefix("S ") {
                let (name, size) = rest
                    .split_once(' ')
                    .and_then(|(n, s)| s.parse::<usize>().ok().map(|s| (n, s)))
                    .ok_or_else(|| AsrError::Snapshot(format!("bad S line `{line}`")))?;
                store.set_type_size(base.schema().require(name)?, size);
            }
        }
        store.sync_with_base(&base)?;
        let mut db = Database::from_parts(base, store, stats);

        let mut report = LoadReport {
            version: 3,
            asrs: Vec::new(),
            physical_bytes: 0,
            delta_chain: 1,
        };
        let mut sections = doc.sections;
        for (ordinal, (_, old_asr)) in self.asrs().enumerate() {
            let path = old_asr.path().clone();
            let config = old_asr.config().clone();
            let outcome: std::result::Result<(AsrId, AsrLoadMode, usize), String> =
                match sections.remove(&ordinal) {
                    Some((DeltaSection::Full(images), bytes)) => {
                        try_physical(&mut db, &path, &config, images)
                            .map(|id| (id, AsrLoadMode::Physical, bytes))
                            .map_err(|e| e.to_string())
                    }
                    Some((DeltaSection::Delta(deltas), bytes)) => {
                        patch_and_restore(&mut db, old_asr, &deltas)
                            .map(|(id, pages)| (id, AsrLoadMode::Delta { pages }, bytes))
                            .map_err(|e| e.to_string())
                    }
                    None => Err("no delta section for this ASR".into()),
                };
            match outcome {
                Ok((id, mode, bytes)) => {
                    report.physical_bytes += bytes;
                    report.asrs.push((id, mode));
                }
                Err(reason) if strict => {
                    return Err(AsrError::Snapshot(format!(
                        "delta section for ASR {ordinal} ({path}): {reason}"
                    )));
                }
                Err(reason) => {
                    charge_path_scans(&db, &path);
                    let id = db.create_asr(path, config)?;
                    report.asrs.push((id, AsrLoadMode::Rebuilt(reason)));
                }
            }
        }
        if let Some((&ordinal, _)) = sections.iter().next() {
            return Err(AsrError::Snapshot(format!(
                "delta section references ASR {ordinal} but the base has only {}",
                self.asrs().count()
            )));
        }
        db.mark_clean();
        Ok((db, report))
    }

    /// Load a full snapshot plus a chain of deltas, each applied on top of
    /// the previous state (crash recovery: lenient per-ASR fallback).  The
    /// report aggregates the chain: `asrs` reflects the final application,
    /// `physical_bytes` sums every link.
    pub fn load_from_chain_report(base: &str, deltas: &[&str]) -> Result<(Database, LoadReport)> {
        let (mut db, mut report) = Database::load_from_string_report(base)?;
        for text in deltas {
            let (next, step) = db.apply_delta_from_string_report(text, false)?;
            db = next;
            report.asrs = step.asrs;
            report.physical_bytes += step.physical_bytes;
            report.delta_chain += 1;
        }
        Ok((db, report))
    }

    /// The design section shared by both format versions: `S` lines
    /// (clustered sizes) and `A` lines (ASR configurations).
    fn write_design(&self, out: &mut String) {
        let mut sizes: Vec<(String, usize)> = self
            .store()
            .configured_sizes()
            .map(|(ty, size)| (self.base().schema().name(ty).to_string(), size))
            .collect();
        sizes.sort();
        for (name, size) in sizes {
            let _ = writeln!(out, "S {name} {size}");
        }
        for (_, asr) in self.asrs() {
            let cuts: Vec<String> = asr
                .config()
                .decomposition
                .cuts()
                .iter()
                .map(|c| c.to_string())
                .collect();
            let _ = writeln!(
                out,
                "A {} {} {} {}",
                asr.path(),
                asr.config().extension.name(),
                cuts.join(","),
                u8::from(asr.config().keep_set_oids)
            );
        }
    }

    /// The v2 physical section: per partition, the row mirror and both
    /// tree images.  ASRs are numbered by their `A`-line ordinal.
    fn write_physical(&self, out: &mut String) {
        for (ordinal, (_, asr)) in self.asrs().enumerate() {
            write_asr_physical(out, ordinal, asr);
        }
    }

    /// Restore a database from snapshot text: objects keep their OIDs,
    /// clustered files are sized as configured, and access support
    /// relations come back physically (v2) or by rebuild (v1/fallback).
    pub fn load_from_string(text: &str) -> Result<Database> {
        Ok(Self::load_from_string_report(text)?.0)
    }

    /// [`Database::load_from_string`] plus a [`LoadReport`] describing
    /// the format version and how each ASR was restored.
    pub fn load_from_string_report(text: &str) -> Result<(Database, LoadReport)> {
        let bad = |msg: String| AsrError::Snapshot(msg);
        let (head, base_text) = text
            .split_once(&format!("{BASE_MARKER}\n"))
            .ok_or_else(|| bad("missing --BASE-- marker".into()))?;
        let mut lines = head.lines();
        let first = lines.next().ok_or_else(|| bad("empty snapshot".into()))?;
        let version: u32 = match first.trim() {
            MAGIC_V1 => 1,
            MAGIC_V2 => 2,
            other => return Err(bad(format!("bad magic `{other}`"))),
        };
        let base = snapshot::read_base(base_text)?;

        let stats = asr_pagesim::IoStats::new_handle();
        let mut store = ObjectStore::new(Rc::clone(&stats));
        let mut asr_lines: Vec<&str> = Vec::new();
        let mut phys = PhysParser::default();
        for line in lines {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.split(' ').next() {
                Some("S") => {
                    let mut parts = line.splitn(3, ' ');
                    let _s = parts.next();
                    let name = parts.next().ok_or_else(|| bad("S: missing type".into()))?;
                    let size: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("S: bad size".into()))?;
                    let ty = base.schema().require(name)?;
                    store.set_type_size(ty, size);
                }
                Some("A") => asr_lines.push(line),
                Some("P" | "R" | "T" | "N") if version == 2 => phys.feed(line)?,
                other => return Err(bad(format!("unknown record `{other:?}`"))),
            }
        }
        phys.finish();
        if let Some(&k) = phys
            .done
            .keys()
            .chain(phys.poisoned.keys())
            .find(|&&k| k >= asr_lines.len())
        {
            return Err(bad(format!(
                "physical section references ASR {k} but only {} declared",
                asr_lines.len()
            )));
        }
        store.sync_with_base(&base)?;
        let mut db = Database::from_parts(base, store, stats);

        let mut report = LoadReport {
            version,
            asrs: Vec::new(),
            physical_bytes: 0,
            delta_chain: 0,
        };
        for (ordinal, line) in asr_lines.into_iter().enumerate() {
            let (path, config) = parse_a_line(&db, line)?;
            let outcome: std::result::Result<AsrId, String> = if version == 1 {
                Err("v1 snapshot".into())
            } else if let Some(reason) = phys.poisoned.get(&ordinal) {
                Err(reason.clone())
            } else if let Some(images) = phys.done.remove(&ordinal) {
                try_physical(&mut db, &path, &config, images).map_err(|e| e.to_string())
            } else {
                Err("no physical section for this ASR".into())
            };
            match outcome {
                Ok(id) => {
                    report.physical_bytes += phys.bytes.get(&ordinal).copied().unwrap_or(0);
                    report.asrs.push((id, AsrLoadMode::Physical));
                }
                Err(reason) => {
                    // Rebuild from configuration.  A cold recovery has to
                    // read every extent along the path to recompute the
                    // extension, so charge those scans explicitly.
                    charge_path_scans(&db, &path);
                    let id = db.create_asr(path, config)?;
                    report.asrs.push((id, AsrLoadMode::Rebuilt(reason)));
                }
            }
        }
        // The loaded snapshot is the fence the next delta checkpoint is
        // measured against.
        db.mark_clean();
        Ok((db, report))
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.save_to_string())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Database> {
        Ok(Database::load_report(path)?.0)
    }

    /// Load from a file, also returning how each ASR was brought back
    /// (physically from page images, or rebuilt from the base).
    pub fn load_report(path: impl AsRef<Path>) -> Result<(Database, LoadReport)> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| AsrError::Snapshot(format!("cannot read file: {e}")))?;
        Database::load_from_string_report(&text)
    }

    /// Begin a fuzzy checkpoint: capture everything the serializers need
    /// — a pinned [`Snapshot`] (partition images ride its published
    /// versions), the design section, per-ASR change deltas and the base
    /// dirty sets — then advance the change-tracking fence
    /// ([`Database::mark_clean`]).
    ///
    /// The returned [`CheckpointSource`] renders the `ASRDB 2` / `ASRDB 3`
    /// documents **byte-identical** to what [`Database::save_to_string`] /
    /// [`Database::save_delta_to_string`] would have produced at this
    /// instant, but without holding the database: the session keeps
    /// mutating (and serving snapshot readers) while the checkpoint text
    /// is composed and written out.
    pub fn begin_checkpoint(&mut self) -> CheckpointSource {
        let snap = self.snapshot();
        let mut design = String::new();
        self.write_design(&mut design);
        let asrs = self
            .asrs()
            .map(|(_, asr)| AsrCheckpoint {
                deltas: asr
                    .partitions()
                    .iter()
                    .map(StoredPartition::dump_delta)
                    .collect(),
                changed_rows: asr.changed_rows(),
            })
            .collect();
        let source = CheckpointSource {
            snapshot: snap,
            design,
            design_dirty: self.is_design_dirty(),
            asrs,
            dead_oids: self.dead_oids().clone(),
            dirty_oids: self.dirty_oids().clone(),
            dirty_vars: self.dirty_vars().clone(),
        };
        self.mark_clean();
        source
    }
}

/// One ASR's change payload captured at [`Database::begin_checkpoint`]:
/// the per-partition deltas since the previous fence, plus how many
/// mirror rows they carry (the full-vs-delta arbitration input).
#[derive(Debug)]
struct AsrCheckpoint {
    deltas: Vec<PartitionDelta>,
    changed_rows: usize,
}

/// Everything needed to serialize a checkpoint **after** the fence: a
/// pinned [`Snapshot`] (immutable partition images + object base) and the
/// change-tracking state that was current when the fence advanced.
///
/// Produced by [`Database::begin_checkpoint`]; consumed by the durability
/// layer, which composes the document and writes it out while the live
/// session keeps executing.  Holding a `CheckpointSource` pins its epoch
/// like any other snapshot reader.
#[derive(Debug)]
pub struct CheckpointSource {
    snapshot: Snapshot,
    /// The design section verbatim (`S`/`A` lines, newline-terminated).
    design: String,
    design_dirty: bool,
    /// Per `A`-line ordinal, matching the snapshot's ASR order.
    asrs: Vec<AsrCheckpoint>,
    dead_oids: BTreeSet<Oid>,
    dirty_oids: BTreeSet<Oid>,
    dirty_vars: BTreeSet<String>,
}

impl CheckpointSource {
    /// The pinned snapshot backing this checkpoint — also answers reads
    /// that overlap the checkpoint write.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// `true` when the physical design changed since the previous fence —
    /// [`CheckpointSource::save_delta`] will refuse and the caller must
    /// take a full checkpoint.
    pub fn is_design_dirty(&self) -> bool {
        self.design_dirty
    }

    /// `true` when nothing changed since the previous fence: a delta
    /// rendered from this source would carry no rows, pages, objects or
    /// variables.
    pub fn is_noop_delta(&self) -> bool {
        !self.design_dirty
            && self.dead_oids.is_empty()
            && self.dirty_oids.is_empty()
            && self.dirty_vars.is_empty()
            && self.asrs.iter().all(|a| a.changed_rows == 0)
    }

    /// Render the full `ASRDB 2` document from the captured state —
    /// byte-identical to [`Database::save_to_string`] at the fence.
    pub fn save_full(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC_V2}");
        out.push_str(&self.design);
        for (ordinal, images) in self.snapshot.asr_images().iter().enumerate() {
            for (pidx, img) in images.iter().enumerate() {
                write_partition_image(&mut out, ordinal, pidx, img);
            }
        }
        let _ = writeln!(out, "{BASE_MARKER}");
        out.push_str(&snapshot::write_base(self.snapshot.base()));
        out
    }

    /// Render the `ASRDB 3` delta document on top of `base_id` — byte-
    /// identical to [`Database::save_delta_to_string`] at the fence.
    /// `None` when the design changed since the previous fence.
    pub fn save_delta(&self, base_id: u64) -> Option<String> {
        if self.design_dirty {
            return None;
        }
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC_V3}");
        let _ = writeln!(out, "DELTA {base_id}");
        out.push_str(&self.design);
        let images = self.snapshot.asr_images();
        for (ordinal, asr) in self.asrs.iter().enumerate() {
            let mut delta = String::new();
            for (pidx, d) in asr.deltas.iter().enumerate() {
                write_partition_delta(&mut delta, ordinal, pidx, d);
            }
            // Same arbitration as the live writer: unchanged ASRs always
            // ship as (empty) deltas; otherwise size decides.
            if asr.changed_rows == 0 {
                out.push_str(&delta);
                continue;
            }
            let mut full = String::new();
            for (pidx, img) in images[ordinal].iter().enumerate() {
                write_partition_image(&mut full, ordinal, pidx, img);
            }
            if (delta.len() as f64) <= (full.len() as f64) * DELTA_FULL_FRACTION {
                out.push_str(&delta);
            } else {
                out.push_str(&full);
            }
        }
        let _ = writeln!(out, "{BASE_MARKER}");
        write_base_delta_from(
            &mut out,
            self.snapshot.base(),
            &self.dead_oids,
            &self.dirty_oids,
            &self.dirty_vars,
        );
        Some(out)
    }
}

/// Encode an optional cell as a single space-free token (the GOM value
/// codec escapes spaces and `=`).
fn cell_token(cell: &Option<Cell>) -> String {
    match cell {
        None => snapshot::encode_value(&Value::Null),
        Some(Cell::Oid(oid)) => snapshot::encode_value(&Value::Ref(*oid)),
        Some(Cell::Value(v)) => snapshot::encode_value(v),
    }
}

/// Decode a [`cell_token`] back to an optional cell.
fn parse_cell(tok: &str) -> Result<Option<Cell>> {
    Ok(Cell::from_gom(&snapshot::decode_value(tok)?))
}

/// Emit one tree image as a `T` header plus one `N` line per live page.
fn write_tree(out: &mut String, ordinal: usize, pidx: usize, dir: char, tree: &RawTreeImage) {
    let free = if tree.free.is_empty() {
        "-".to_string()
    } else {
        tree.free
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(
        out,
        "T {ordinal} {pidx} {dir} {} {} {} {} {free}",
        tree.root,
        tree.height,
        tree.len,
        tree.nodes.len()
    );
    for (id, node) in tree.nodes.iter().enumerate() {
        write_node_line(out, dir, id, node, false);
    }
}

/// Emit one page as an `N` line.  Free pages are skipped in full images
/// (restore pre-fills the slab with `Free`) but named explicitly in delta
/// sections when `emit_free` — a patch must overwrite released pages.
fn write_node_line(out: &mut String, dir: char, id: usize, node: &RawNode, emit_free: bool) {
    match node {
        RawNode::Free => {
            if emit_free {
                let _ = writeln!(out, "N {dir} {id} F");
            }
        }
        RawNode::Inner { keys, children } => {
            let kids = children
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(out, "N {dir} {id} I {kids}");
            for (cell, rowid) in keys {
                let _ = write!(out, " {}={rowid}", cell_token(cell));
            }
            out.push('\n');
        }
        RawNode::Leaf { rowids, next } => {
            let next = next.map_or("-".to_string(), |n| n.to_string());
            let ids = csv_or_dash(rowids.iter());
            let _ = writeln!(out, "N {dir} {id} L {next} {ids}");
        }
    }
}

/// `a,b,c` or `-` when empty.
fn csv_or_dash<T: std::fmt::Display>(items: impl ExactSizeIterator<Item = T>) -> String {
    if items.len() == 0 {
        "-".to_string()
    } else {
        items.map(|x| x.to_string()).collect::<Vec<_>>().join(",")
    }
}

/// One ASR's full physical section in the v2 grammar (`P`/`R`/`T`/`N`) —
/// the whole-snapshot writer and the per-ASR fallback inside v3 deltas.
fn write_asr_physical(out: &mut String, ordinal: usize, asr: &AccessSupportRelation) {
    for (pidx, part) in asr.partitions().iter().enumerate() {
        write_partition_image(out, ordinal, pidx, &part.dump());
    }
}

/// One partition's `P`/`R`/`T`/`N` lines from an already-captured image —
/// shared by the live writer and checkpoint-from-snapshot serialization.
fn write_partition_image(out: &mut String, ordinal: usize, pidx: usize, img: &PartitionImage) {
    let _ = writeln!(
        out,
        "P {ordinal} {pidx} {} {} {} {}",
        img.from,
        img.to,
        img.next_rowid,
        img.rows.len()
    );
    for (row, rowid, count) in &img.rows {
        let _ = write!(out, "R {rowid} {count}");
        for cell in row.cells() {
            let _ = write!(out, " {}", cell_token(cell));
        }
        out.push('\n');
    }
    write_tree(out, ordinal, pidx, 'f', &img.fwd);
    write_tree(out, ordinal, pidx, 'b', &img.bwd);
}

/// One ASR's delta section (`D`/`R`/`X`/`U`/`N`): rows changed since the
/// fence, rows physically removed, and the pages each tree stamped.
fn write_asr_delta(out: &mut String, ordinal: usize, asr: &AccessSupportRelation) {
    for (pidx, part) in asr.partitions().iter().enumerate() {
        write_partition_delta(out, ordinal, pidx, &part.dump_delta());
    }
}

/// One partition's `D`/`R`/`X`/`U`/`N` lines from an already-captured
/// delta — shared by the live writer and checkpoint-from-snapshot
/// serialization.
fn write_partition_delta(out: &mut String, ordinal: usize, pidx: usize, d: &PartitionDelta) {
    let _ = writeln!(
        out,
        "D {ordinal} {pidx} {} {} {} {} {}",
        d.from,
        d.to,
        d.next_rowid,
        d.nrows,
        d.upserts.len()
    );
    for (row, rowid, count) in &d.upserts {
        let _ = write!(out, "R {rowid} {count}");
        for cell in row.cells() {
            let _ = write!(out, " {}", cell_token(cell));
        }
        out.push('\n');
    }
    let _ = writeln!(out, "X {}", csv_or_dash(d.deletes.iter()));
    write_tree_delta(out, ordinal, pidx, 'f', &d.fwd);
    write_tree_delta(out, ordinal, pidx, 'b', &d.bwd);
}

/// Emit one tree delta as a `U` header plus one `N` line per changed page
/// (freed pages included, as kind `F`).
fn write_tree_delta(out: &mut String, ordinal: usize, pidx: usize, dir: char, d: &RawTreeDelta) {
    let _ = writeln!(
        out,
        "U {ordinal} {pidx} {dir} {} {} {} {} {} {}",
        d.root,
        d.height,
        d.len,
        d.total_nodes,
        d.pages.len(),
        csv_or_dash(d.free.iter())
    );
    for (id, node) in &d.pages {
        write_node_line(out, dir, *id, node, true);
    }
}

/// The `GOMDELTA 1` section from captured state: deleted OIDs, changed
/// objects and rebound variables filtered out of a full serialization of
/// `base` (exact `GOMSNAP` syntax, so the merge on the other side
/// reproduces the canonical text byte-for-byte).
fn write_base_delta_from(
    out: &mut String,
    base: &ObjectBase,
    dead_oids: &BTreeSet<Oid>,
    dirty_oids: &BTreeSet<Oid>,
    dirty_vars: &BTreeSet<String>,
) {
    let _ = writeln!(out, "GOMDELTA 1 {}", base.object_count());
    if dead_oids.is_empty() {
        let _ = writeln!(out, "X -");
    } else {
        let csv: Vec<String> = dead_oids
            .iter()
            .map(|o| format!("i{}", o.as_raw()))
            .collect();
        let _ = writeln!(out, "X {}", csv.join(","));
    }
    let full = snapshot::write_base(base);
    for line in full.lines() {
        if let Some(oid) = parse_o_line_oid(line) {
            if dirty_oids.contains(&oid) {
                let _ = writeln!(out, "{line}");
            }
        } else if let Some(name) = parse_v_line_name(line) {
            if dirty_vars.contains(&name) {
                let _ = writeln!(out, "{line}");
            }
        }
    }
    let _ = writeln!(out, "{END_MARKER}");
}

/// Parse one `A` line into a path and configuration.
fn parse_a_line(db: &Database, line: &str) -> Result<(PathExpression, AsrConfig)> {
    let bad = |msg: String| AsrError::Snapshot(msg);
    let mut parts = line.split(' ');
    let _a = parts.next();
    let dotted = parts.next().ok_or_else(|| bad("A: missing path".into()))?;
    let ext_name = parts
        .next()
        .ok_or_else(|| bad("A: missing extension".into()))?;
    let cuts_str = parts.next().ok_or_else(|| bad("A: missing cuts".into()))?;
    let keep = parts.next().ok_or_else(|| bad("A: missing flag".into()))? == "1";
    let extension = Extension::ALL
        .into_iter()
        .find(|e| e.name() == ext_name)
        .ok_or_else(|| bad(format!("unknown extension `{ext_name}`")))?;
    let cuts: Vec<usize> = cuts_str
        .split(',')
        .map(|c| c.parse().map_err(|_| bad(format!("bad cut `{c}`"))))
        .collect::<Result<_>>()?;
    let path = PathExpression::parse(db.base().schema(), dotted)?;
    Ok((
        path,
        AsrConfig {
            extension,
            decomposition: Decomposition::new(cuts)?,
            keep_set_oids: keep,
        },
    ))
}

/// Charge a full extent scan for every named type along `path` — the cost
/// a cold recovery pays to recompute the extension before a rebuild.
fn charge_path_scans(db: &Database, path: &PathExpression) {
    for i in 0..=path.len() {
        if let TypeRef::Named(ty) = path.type_at(i) {
            db.store().charge_scan(ty);
        }
    }
}

/// Physically restore one ASR from its partition images: tag + adopt both
/// trees of every partition and attach the ASR.  No extension join runs —
/// the logical mirror derives lazily on first maintenance use.
fn try_physical(
    db: &mut Database,
    path: &PathExpression,
    config: &AsrConfig,
    images: Vec<PartitionImage>,
) -> Result<AsrId> {
    let stats = Rc::clone(db.stats());
    let mut parts = Vec::with_capacity(images.len());
    for img in images {
        let label = format!("asr[{path}].{}-{}", img.from, img.to);
        parts.push(StoredPartition::restore(img, Rc::clone(&stats), &label)?);
    }
    let asr = AccessSupportRelation::from_restored(path.clone(), config.clone(), parts, stats)?;
    Ok(db.attach_asr(asr))
}

/// Patch one ASR's base images with its delta section and restore the
/// result — the v3 counterpart of [`try_physical`].  Returns the new id
/// and the number of tree pages the delta carried.
fn patch_and_restore(
    db: &mut Database,
    base_asr: &AccessSupportRelation,
    deltas: &[PartitionDelta],
) -> Result<(AsrId, usize)> {
    let parts = base_asr.partitions();
    if deltas.len() != parts.len() {
        return Err(AsrError::Snapshot(format!(
            "delta has {} partitions, base has {}",
            deltas.len(),
            parts.len()
        )));
    }
    let mut pages = 0;
    let mut images = Vec::with_capacity(deltas.len());
    for (part, d) in parts.iter().zip(deltas) {
        pages += d.fwd.pages.len() + d.bwd.pages.len();
        images.push(part.dump().apply_delta(d)?);
    }
    let id = try_physical(db, base_asr.path(), base_asr.config(), images)?;
    Ok((id, pages))
}

/// Parse an `R` line into a `(row, rowid, witness count)` triple for a
/// partition spanning `arity` columns.
fn parse_r_line(line: &str, arity: usize) -> std::result::Result<(Row, u64, u64), String> {
    let mut it = line.split(' ');
    it.next();
    let rowid: u64 = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("R: bad row id")?;
    let count: u64 = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("R: bad witness count")?;
    let cells: Vec<Option<Cell>> = it
        .map(|tok| parse_cell(tok).map_err(|e| e.to_string()))
        .collect::<std::result::Result<_, _>>()?;
    if cells.len() != arity {
        return Err(format!("R: {} cells for arity {arity}", cells.len()));
    }
    Ok((Row::new(cells), rowid, count))
}

/// Parse the page payload of an `N` line (whole token slice, kind at
/// `t[3]`).  Kind `F` — an explicitly freed page — only occurs in delta
/// sections.
fn parse_node_body(t: &[&str]) -> std::result::Result<RawNode, String> {
    match t[3] {
        "F" => {
            if t.len() != 4 {
                return Err(format!("N F record has {} fields, expected 4", t.len()));
            }
            Ok(RawNode::Free)
        }
        "I" => {
            if t.len() < 5 {
                return Err("N I record too short".into());
            }
            let children: Vec<usize> = t[4]
                .split(',')
                .map(|s| s.parse().map_err(|_| format!("bad child `{s}`")))
                .collect::<std::result::Result<_, _>>()?;
            let keys: Vec<(Option<Cell>, u64)> = t[5..]
                .iter()
                .map(|tok| {
                    let (cell, rowid) = tok
                        .rsplit_once('=')
                        .ok_or_else(|| format!("bad key `{tok}`"))?;
                    let rowid: u64 = rowid
                        .parse()
                        .map_err(|_| format!("bad key row id `{rowid}`"))?;
                    let cell = parse_cell(cell).map_err(|e| e.to_string())?;
                    Ok((cell, rowid))
                })
                .collect::<std::result::Result<_, String>>()?;
            Ok(RawNode::Inner { keys, children })
        }
        "L" => {
            if t.len() != 6 {
                return Err(format!("N L record has {} fields, expected 6", t.len()));
            }
            let next = if t[4] == "-" {
                None
            } else {
                Some(
                    t[4].parse()
                        .map_err(|_| format!("bad sibling `{}`", t[4]))?,
                )
            };
            let rowids: Vec<u64> = if t[5] == "-" {
                Vec::new()
            } else {
                t[5].split(',')
                    .map(|s| s.parse().map_err(|_| format!("bad row id `{s}`")))
                    .collect::<std::result::Result<_, _>>()?
            };
            Ok(RawNode::Leaf { rowids, next })
        }
        other => Err(format!("bad page kind `{other}`")),
    }
}

/// The OID named by a `GOMSNAP` object line (`O i<oid> …`), if `line` is
/// one.
fn parse_o_line_oid(line: &str) -> Option<Oid> {
    let rest = line.strip_prefix("O i")?;
    let (num, _) = rest.split_once(' ')?;
    num.parse::<u64>().ok().map(Oid::from_raw)
}

/// The (unescaped) variable name bound by a `GOMSNAP` variable line
/// (`V <name> <value>`), if `line` is one.
fn parse_v_line_name(line: &str) -> Option<String> {
    let rest = line.strip_prefix("V ")?;
    let (name, _) = rest.split_once(' ')?;
    snapshot::unescape(name).ok()
}

/// One ASR's physical payload inside a v3 document.
enum DeltaSection {
    /// Full v2 `P`/`R`/`T`/`N` fallback — the delta was not worth it.
    Full(Vec<PartitionImage>),
    /// True `D`/`R`/`X`/`U`/`N` delta, one entry per partition.
    Delta(Vec<PartitionDelta>),
}

/// A parsed, not-yet-applied `ASRDB 3` document.
struct DeltaDoc<'a> {
    /// The design section verbatim (newline-terminated `S`/`A` lines),
    /// compared byte-wise against the base database's own design.
    design: String,
    /// Physical payload and serialized byte count per `A`-line ordinal.
    sections: BTreeMap<usize, (DeltaSection, usize)>,
    /// Expected object count after patching the base section.
    object_count: usize,
    /// Raw OIDs deleted since the base checkpoint.
    dead_oids: Vec<u64>,
    /// Changed objects: `(raw oid, full O line)`.
    o_upserts: Vec<(u64, &'a str)>,
    /// Rebound variables: `(name, full V line)`.
    v_upserts: Vec<(String, &'a str)>,
}

/// Parse a v3 document.  Unlike the v2 loader there is no per-ASR poison
/// pool: a delta that cannot be parsed in full is rejected outright, and
/// the *apply* step decides between failing (strict) and rebuilding
/// (lenient).
fn parse_delta_doc(text: &str) -> Result<DeltaDoc<'_>> {
    let bad = |msg: String| AsrError::Snapshot(msg);
    let (head, base_text) = text
        .split_once(&format!("{BASE_MARKER}\n"))
        .ok_or_else(|| bad("missing --BASE-- marker".into()))?;
    let mut lines = head.lines();
    let first = lines.next().ok_or_else(|| bad("empty delta".into()))?;
    if first.trim() != MAGIC_V3 {
        return Err(bad(format!("bad magic `{first}` (expected `{MAGIC_V3}`)")));
    }
    let second = lines
        .next()
        .ok_or_else(|| bad("missing DELTA header".into()))?;
    let _base_id: u64 = second
        .strip_prefix("DELTA ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad(format!("bad DELTA header `{second}`")))?;

    let mut design = String::new();
    let mut phys = PhysParser::default();
    let mut deltas: BTreeMap<usize, Vec<PartitionDelta>> = BTreeMap::new();
    let mut delta_bytes: BTreeMap<usize, usize> = BTreeMap::new();
    let mut current: Option<DeltaPartBuilder> = None;
    // Which grammar the shared `R`/`N` tags currently belong to.
    let mut in_full = false;
    let finalize = |cur: &mut Option<DeltaPartBuilder>,
                    deltas: &mut BTreeMap<usize, Vec<PartitionDelta>>|
     -> Result<()> {
        if let Some(pb) = cur.take() {
            let (asr, delta) = pb.finish().map_err(AsrError::Snapshot)?;
            deltas.entry(asr).or_default().push(delta);
        }
        Ok(())
    };
    for line in lines {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tag = line.split(' ').next().unwrap_or("");
        match tag {
            "S" | "A" => {
                let _ = writeln!(design, "{line}");
            }
            "P" => {
                finalize(&mut current, &mut deltas)?;
                in_full = true;
                phys.feed(line)?;
            }
            "D" => {
                phys.finish();
                finalize(&mut current, &mut deltas)?;
                in_full = false;
                let pb = DeltaPartBuilder::parse(line, &deltas).map_err(AsrError::Snapshot)?;
                *delta_bytes.entry(pb.asr).or_default() += line.len() + 1;
                current = Some(pb);
            }
            "R" | "N" if in_full => phys.feed(line)?,
            "T" => {
                if !in_full {
                    return Err(bad("T record outside a full section".into()));
                }
                phys.feed(line)?;
            }
            "R" | "N" | "X" | "U" => {
                let pb = current
                    .as_mut()
                    .ok_or_else(|| bad(format!("`{tag}` record outside a delta partition")))?;
                *delta_bytes.entry(pb.asr).or_default() += line.len() + 1;
                pb.body_line(tag, line).map_err(AsrError::Snapshot)?;
            }
            other => return Err(bad(format!("unknown record `{other}`"))),
        }
    }
    phys.finish();
    finalize(&mut current, &mut deltas)?;
    if let Some((ordinal, reason)) = phys.poisoned.iter().next() {
        // v3 full fallbacks get no second chance at parse time: strictness
        // is decided at apply.
        return Err(bad(format!("full section for ASR {ordinal}: {reason}")));
    }

    let mut sections: BTreeMap<usize, (DeltaSection, usize)> = BTreeMap::new();
    let phys_bytes = phys.bytes;
    for (ordinal, images) in phys.done {
        let bytes = phys_bytes.get(&ordinal).copied().unwrap_or(0);
        sections.insert(ordinal, (DeltaSection::Full(images), bytes));
    }
    for (ordinal, parts) in deltas {
        if sections.contains_key(&ordinal) {
            return Err(bad(format!(
                "ASR {ordinal} has both a full and a delta section"
            )));
        }
        let bytes = delta_bytes.get(&ordinal).copied().unwrap_or(0);
        sections.insert(ordinal, (DeltaSection::Delta(parts), bytes));
    }

    // ---- base section ----------------------------------------------
    let mut blines = base_text.lines();
    let header = blines
        .next()
        .ok_or_else(|| bad("missing GOMDELTA header".into()))?;
    let object_count: usize = header
        .strip_prefix("GOMDELTA 1 ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad(format!("bad GOMDELTA header `{header}`")))?;
    let xline = blines
        .next()
        .ok_or_else(|| bad("missing deleted-OID record".into()))?;
    let rest = xline
        .strip_prefix("X ")
        .ok_or_else(|| bad(format!("bad deleted-OID record `{xline}`")))?;
    let mut dead_oids = Vec::new();
    if rest != "-" {
        for tok in rest.split(',') {
            let oid: u64 = tok
                .strip_prefix('i')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(format!("bad deleted OID `{tok}`")))?;
            dead_oids.push(oid);
        }
    }
    let mut o_upserts = Vec::new();
    let mut v_upserts = Vec::new();
    let mut ended = false;
    for line in blines {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if ended {
            return Err(bad(format!("record after {END_MARKER}: `{line}`")));
        }
        if line == END_MARKER {
            ended = true;
        } else if let Some(oid) = parse_o_line_oid(line) {
            o_upserts.push((oid.as_raw(), line));
        } else if let Some(name) = parse_v_line_name(line) {
            v_upserts.push((name, line));
        } else {
            return Err(bad(format!("unknown base delta record `{line}`")));
        }
    }
    if !ended {
        return Err(bad(format!("truncated delta: missing {END_MARKER}")));
    }
    Ok(DeltaDoc {
        design,
        sections,
        object_count,
        dead_oids,
        o_upserts,
        v_upserts,
    })
}

/// A delta partition section under construction.
struct DeltaPartBuilder {
    asr: usize,
    from: usize,
    to: usize,
    next_rowid: u64,
    nrows: usize,
    nupserts: usize,
    upserts: Vec<(Row, u64, u64)>,
    deletes: Vec<u64>,
    seen_x: bool,
    /// Bytes of the shared row payload (`D`/`R`/`X` lines), split between
    /// the trees at finish like the v2 parser does.
    row_bytes: usize,
    fwd: Option<DeltaTreeBuilder>,
    bwd: Option<DeltaTreeBuilder>,
}

/// One tree delta under construction; `assigned` guards duplicate pages.
struct DeltaTreeBuilder {
    delta: RawTreeDelta,
    expected_pages: usize,
    assigned: Vec<bool>,
    bytes: usize,
}

impl DeltaPartBuilder {
    fn parse(
        line: &str,
        done: &BTreeMap<usize, Vec<PartitionDelta>>,
    ) -> std::result::Result<DeltaPartBuilder, String> {
        let t: Vec<&str> = line.split(' ').collect();
        if t.len() != 8 {
            return Err(format!("D record has {} fields, expected 8", t.len()));
        }
        let num = |s: &str| s.parse::<usize>().map_err(|_| format!("bad number `{s}`"));
        let asr = num(t[1])?;
        let pidx = num(t[2])?;
        let expected = done.get(&asr).map_or(0, Vec::len);
        if pidx != expected {
            return Err(format!(
                "delta partition {pidx} out of order (expected {expected})"
            ));
        }
        Ok(DeltaPartBuilder {
            asr,
            from: num(t[3])?,
            to: num(t[4])?,
            next_rowid: t[5].parse().map_err(|_| format!("bad number `{}`", t[5]))?,
            nrows: num(t[6])?,
            nupserts: num(t[7])?,
            upserts: Vec::new(),
            deletes: Vec::new(),
            seen_x: false,
            row_bytes: line.len() + 1,
            fwd: None,
            bwd: None,
        })
    }

    fn body_line(&mut self, tag: &str, line: &str) -> std::result::Result<(), String> {
        match tag {
            "R" => {
                let arity = self.to - self.from + 1;
                self.upserts.push(parse_r_line(line, arity)?);
                self.row_bytes += line.len() + 1;
                Ok(())
            }
            "X" => {
                if self.seen_x {
                    return Err("duplicate X record".into());
                }
                self.seen_x = true;
                self.row_bytes += line.len() + 1;
                let rest = line.strip_prefix("X ").ok_or("bad X record")?;
                if rest != "-" {
                    for tok in rest.split(',') {
                        self.deletes
                            .push(tok.parse().map_err(|_| format!("bad row id `{tok}`"))?);
                    }
                }
                Ok(())
            }
            "U" => {
                let t: Vec<&str> = line.split(' ').collect();
                if t.len() != 10 {
                    return Err(format!("U record has {} fields, expected 10", t.len()));
                }
                let num = |s: &str| s.parse::<usize>().map_err(|_| format!("bad number `{s}`"));
                let free: Vec<usize> = if t[9] == "-" {
                    Vec::new()
                } else {
                    t[9].split(',')
                        .map(num)
                        .collect::<std::result::Result<_, _>>()?
                };
                let (root, height, len) = (num(t[4])?, num(t[5])?, num(t[6])?);
                let (total, npages) = (num(t[7])?, num(t[8])?);
                // Same slab-size plausibility bound as the v2 `T` record.
                if total > 2 * len + free.len() + 8 {
                    return Err(format!("implausible page count {total} for {len} entries"));
                }
                if npages > total {
                    return Err(format!("delta ships {npages} of {total} pages"));
                }
                let builder = DeltaTreeBuilder {
                    expected_pages: npages,
                    assigned: vec![false; total],
                    bytes: line.len() + 1,
                    delta: RawTreeDelta {
                        root,
                        height,
                        len,
                        free,
                        total_nodes: total,
                        pages: Vec::new(),
                    },
                };
                match t[3] {
                    "f" if self.fwd.is_none() => self.fwd = Some(builder),
                    "b" if self.bwd.is_none() => self.bwd = Some(builder),
                    "f" | "b" => return Err(format!("duplicate {} tree delta", t[3])),
                    other => return Err(format!("bad tree direction `{other}`")),
                }
                Ok(())
            }
            "N" => {
                let t: Vec<&str> = line.split(' ').collect();
                if t.len() < 4 {
                    return Err("N record too short".into());
                }
                let builder = match t[1] {
                    "f" => self.fwd.as_mut(),
                    "b" => self.bwd.as_mut(),
                    other => return Err(format!("bad tree direction `{other}`")),
                }
                .ok_or("N record before its U header")?;
                builder.bytes += line.len() + 1;
                let id: usize = t[2]
                    .parse()
                    .map_err(|_| format!("bad page id `{}`", t[2]))?;
                if id >= builder.delta.total_nodes {
                    return Err(format!("page id {id} out of bounds"));
                }
                if builder.assigned[id] {
                    return Err(format!("page {id} written twice"));
                }
                builder.assigned[id] = true;
                builder.delta.pages.push((id, parse_node_body(&t)?));
                Ok(())
            }
            other => Err(format!("unknown delta record `{other}`")),
        }
    }

    fn finish(self) -> std::result::Result<(usize, PartitionDelta), String> {
        if self.upserts.len() != self.nupserts {
            return Err(format!(
                "delta partition has {} R rows, expected {}",
                self.upserts.len(),
                self.nupserts
            ));
        }
        if !self.seen_x {
            return Err("delta partition is missing its X record".into());
        }
        let (Some(fwd), Some(bwd)) = (self.fwd, self.bwd) else {
            return Err("delta partition is missing a tree delta".into());
        };
        if fwd.delta.pages.len() != fwd.expected_pages
            || bwd.delta.pages.len() != bwd.expected_pages
        {
            return Err("tree delta page count does not match its U header".into());
        }
        let half = self.row_bytes / 2;
        Ok((
            self.asr,
            PartitionDelta {
                from: self.from,
                to: self.to,
                next_rowid: self.next_rowid,
                nrows: self.nrows,
                upserts: self.upserts,
                deletes: self.deletes,
                fwd_bytes: fwd.bytes + half,
                bwd_bytes: bwd.bytes + (self.row_bytes - half),
                fwd: fwd.delta,
                bwd: bwd.delta,
            },
        ))
    }
}

/// Stateful parser for the v2 physical section.  A malformed line poisons
/// the ASR it belongs to — that ASR falls back to a rebuild with the
/// recorded reason — instead of failing the whole load; only lines with
/// no attributable ASR context abort.
#[derive(Default)]
struct PhysParser {
    /// Completed partition images per `A`-line ordinal.
    done: BTreeMap<usize, Vec<PartitionImage>>,
    /// Physical-section bytes per ordinal (newlines included).
    bytes: BTreeMap<usize, usize>,
    /// Poison reason per ordinal (first error wins).
    poisoned: BTreeMap<usize, String>,
    /// Partition currently being assembled.
    current: Option<PartBuilder>,
    /// Skip body lines until the next `P` record (after a poisoning).
    skipping: bool,
    /// Ordinal of the most recent `P` record.
    last_asr: Option<usize>,
}

/// A partition image under construction.
struct PartBuilder {
    asr: usize,
    from: usize,
    to: usize,
    next_rowid: u64,
    nrows: usize,
    rows: Vec<(Row, u64, u64)>,
    /// Serialized bytes of the shared row payload (`P` + `R` lines) —
    /// split between the two trees for restore-read pricing.
    row_bytes: usize,
    fwd: Option<TreeBuilder>,
    bwd: Option<TreeBuilder>,
}

/// A tree image under construction; `assigned` guards duplicate `N`
/// lines (everything else is validated by the adopting tree).
struct TreeBuilder {
    tree: RawTreeImage,
    assigned: Vec<bool>,
    /// Serialized bytes of this tree's `T`/`N` lines.
    bytes: usize,
}

impl PhysParser {
    fn feed(&mut self, line: &str) -> Result<()> {
        let tag = line.split(' ').next().unwrap_or("");
        if tag == "P" {
            self.finalize_current();
            match self.parse_p(line) {
                Ok(pb) => {
                    self.skipping = false;
                    self.last_asr = Some(pb.asr);
                    *self.bytes.entry(pb.asr).or_default() += line.len() + 1;
                    self.current = Some(pb);
                }
                Err(e) => match self.last_asr {
                    Some(asr) => self.poison(asr, e),
                    None => {
                        return Err(AsrError::Snapshot(format!(
                            "first P record unreadable: {e}"
                        )))
                    }
                },
            }
            return Ok(());
        }
        let Some(asr) = self.last_asr else {
            return Err(AsrError::Snapshot(format!(
                "physical record `{tag}` before any P record"
            )));
        };
        *self.bytes.entry(asr).or_default() += line.len() + 1;
        if self.skipping {
            return Ok(());
        }
        if let Err(e) = self.body_line(tag, line) {
            self.poison(asr, e);
        }
        Ok(())
    }

    /// Close the physical section: finalize the trailing partition.
    fn finish(&mut self) {
        self.finalize_current();
    }

    fn poison(&mut self, asr: usize, reason: String) {
        self.poisoned.entry(asr).or_insert(reason);
        self.current = None;
        self.skipping = true;
    }

    fn finalize_current(&mut self) {
        let Some(pb) = self.current.take() else {
            return;
        };
        if pb.rows.len() != pb.nrows {
            return self.poison(
                pb.asr,
                format!(
                    "partition has {} R rows, expected {}",
                    pb.rows.len(),
                    pb.nrows
                ),
            );
        }
        let (Some(fwd), Some(bwd)) = (pb.fwd, pb.bwd) else {
            return self.poison(pb.asr, "partition is missing a tree image".into());
        };
        // The row payload is each tree's leaf content, stored once for
        // both: split it evenly for per-tree restore pricing.
        let half = pb.row_bytes / 2;
        self.done.entry(pb.asr).or_default().push(PartitionImage {
            from: pb.from,
            to: pb.to,
            next_rowid: pb.next_rowid,
            rows: pb.rows,
            fwd_bytes: fwd.bytes + half,
            bwd_bytes: bwd.bytes + (pb.row_bytes - half),
            fwd: fwd.tree,
            bwd: bwd.tree,
        });
    }

    fn parse_p(&self, line: &str) -> std::result::Result<PartBuilder, String> {
        let t: Vec<&str> = line.split(' ').collect();
        if t.len() != 7 {
            return Err(format!("P record has {} fields, expected 7", t.len()));
        }
        let num = |s: &str| s.parse::<usize>().map_err(|_| format!("bad number `{s}`"));
        let asr = num(t[1])?;
        let pidx = num(t[2])?;
        let expected = self.done.get(&asr).map_or(0, Vec::len);
        if pidx != expected {
            return Err(format!(
                "partition {pidx} out of order (expected {expected})"
            ));
        }
        Ok(PartBuilder {
            asr,
            from: num(t[3])?,
            to: num(t[4])?,
            next_rowid: t[5].parse().map_err(|_| format!("bad number `{}`", t[5]))?,
            nrows: num(t[6])?,
            rows: Vec::new(),
            row_bytes: line.len() + 1,
            fwd: None,
            bwd: None,
        })
    }

    fn body_line(&mut self, tag: &str, line: &str) -> std::result::Result<(), String> {
        let Some(pb) = self.current.as_mut() else {
            return Err(format!("`{tag}` record outside a partition"));
        };
        match tag {
            "R" => {
                let arity = pb.to - pb.from + 1;
                pb.rows.push(parse_r_line(line, arity)?);
                pb.row_bytes += line.len() + 1;
                Ok(())
            }
            "T" => {
                let t: Vec<&str> = line.split(' ').collect();
                if t.len() != 9 {
                    return Err(format!("T record has {} fields, expected 9", t.len()));
                }
                let num = |s: &str| s.parse::<usize>().map_err(|_| format!("bad number `{s}`"));
                let free: Vec<usize> = if t[8] == "-" {
                    Vec::new()
                } else {
                    t[8].split(',')
                        .map(num)
                        .collect::<std::result::Result<_, _>>()?
                };
                let (root, height, len, pages) = (num(t[4])?, num(t[5])?, num(t[6])?, num(t[7])?);
                // Bound the slab allocation before trusting the field: a
                // legal tree has at most ~2·len live pages plus its free
                // slots.
                if pages > 2 * len + free.len() + 8 {
                    return Err(format!("implausible page count {pages} for {len} entries"));
                }
                let builder = TreeBuilder {
                    assigned: vec![false; pages],
                    bytes: line.len() + 1,
                    tree: RawTreeImage {
                        root,
                        height,
                        len,
                        free,
                        nodes: vec![RawNode::Free; pages],
                    },
                };
                match t[3] {
                    "f" if pb.fwd.is_none() => pb.fwd = Some(builder),
                    "b" if pb.bwd.is_none() => pb.bwd = Some(builder),
                    "f" | "b" => return Err(format!("duplicate {} tree", t[3])),
                    other => return Err(format!("bad tree direction `{other}`")),
                }
                Ok(())
            }
            "N" => {
                let t: Vec<&str> = line.split(' ').collect();
                if t.len() < 5 {
                    return Err("N record too short".into());
                }
                let builder = match t[1] {
                    "f" => pb.fwd.as_mut(),
                    "b" => pb.bwd.as_mut(),
                    other => return Err(format!("bad tree direction `{other}`")),
                }
                .ok_or("N record before its T header")?;
                builder.bytes += line.len() + 1;
                let id: usize = t[2]
                    .parse()
                    .map_err(|_| format!("bad page id `{}`", t[2]))?;
                if id >= builder.tree.nodes.len() {
                    return Err(format!("page id {id} out of bounds"));
                }
                if builder.assigned[id] {
                    return Err(format!("page {id} written twice"));
                }
                builder.assigned[id] = true;
                builder.tree.nodes[id] = parse_node_body(&t)?;
                Ok(())
            }
            other => Err(format!("unknown physical record `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use asr_gom::Value;

    fn sample_db() -> Database {
        let (base, path) = crate::testutil::figure2_base();
        let mut db = Database::from_base(base);
        let div_ty = db.base().schema().resolve("Division").unwrap();
        db.set_type_size(div_ty, 500);
        db.create_asr(path.clone(), AsrConfig::binary(Extension::Full, &path))
            .unwrap();
        db.create_asr(
            path,
            AsrConfig {
                extension: Extension::Canonical,
                decomposition: Decomposition::new(vec![0, 2, 3]).unwrap(),
                keep_set_oids: false,
            },
        )
        .unwrap();
        db
    }

    #[test]
    fn save_load_round_trip() {
        let db = sample_db();
        let text = db.save_to_string();
        let (restored, report) = Database::load_from_string_report(&text).unwrap();
        assert_eq!(restored.base().object_count(), db.base().object_count());
        assert_eq!(restored.asrs().count(), 2);
        assert_eq!(report.version, 2);
        assert!(
            report.asrs.iter().all(|(_, mode)| mode.is_physical()),
            "{report:?}"
        );
        assert!(report.physical_bytes > 0);
        // The restored ASRs answer identically.
        for (id, asr) in restored.asrs() {
            if asr.supports(0, 3) {
                let hits = restored
                    .backward(id, 0, 3, &Cell::Value(Value::string("Door")))
                    .unwrap();
                assert_eq!(hits.len(), 2, "{}", asr.config().extension);
            }
            asr.check_consistency().unwrap();
        }
        // Serialization reaches a fixed point after one load (type-id
        // assignment follows file order from then on; the physical
        // section is restored page-for-page).
        let text2 = restored.save_to_string();
        let restored2 = Database::load_from_string(&text2).unwrap();
        assert_eq!(restored2.save_to_string(), text2);
    }

    #[test]
    fn v1_snapshots_still_load_by_rebuilding() {
        let db = sample_db();
        let text = db.save_to_string_v1();
        assert!(text.starts_with("ASRDB 1\n"));
        let (restored, report) = Database::load_from_string_report(&text).unwrap();
        assert_eq!(report.version, 1);
        assert_eq!(report.physical_bytes, 0);
        assert!(report
            .asrs
            .iter()
            .all(|(_, mode)| matches!(mode, AsrLoadMode::Rebuilt(r) if r == "v1 snapshot")));
        for (id, asr) in restored.asrs() {
            asr.check_consistency().unwrap();
            if asr.supports(0, 3) {
                let hits = restored
                    .backward(id, 0, 3, &Cell::Value(Value::string("Door")))
                    .unwrap();
                assert_eq!(hits.len(), 2);
            }
        }
        // The v1 rebuild load charges the extents it has to scan; the v2
        // physical load of the same database does not touch them.
        let loaded = Database::load_from_string(&text).unwrap();
        assert!(loaded.stats().reads() > 0, "rebuild load scans extents");
    }

    #[test]
    fn physical_restore_charges_reads_to_the_restored_trees() {
        let db = sample_db();
        let (restored, report) = Database::load_from_string_report(&db.save_to_string()).unwrap();
        assert!(report.asrs.iter().all(|(_, m)| m.is_physical()));
        let by_label = restored.stats().structures();
        let mut tree_labels: Vec<&str> = by_label
            .iter()
            .filter(|s| s.label.ends_with(".fwd") || s.label.ends_with(".bwd"))
            .map(|s| s.label.as_str())
            .collect();
        tree_labels.sort();
        // Two ASRs over the 4-ary Figure-2 path: full/binary has spans
        // 0-1, 1-2, 2-3 and canonical/{0,2,3} has 0-2, 2-3; the shared
        // 2-3 label dedups to one (kind, label) id — 8 distinct labels.
        assert_eq!(tree_labels.len(), 8, "{tree_labels:?}");
        for s in by_label
            .iter()
            .filter(|s| s.label.ends_with(".fwd") || s.label.ends_with(".bwd"))
        {
            assert!(s.reads > 0, "restore reads must attribute to {}", s.label);
            assert_eq!(s.writes, 0, "physical restore writes nothing: {}", s.label);
        }
    }

    #[test]
    fn restored_database_keeps_maintaining() {
        let db = sample_db();
        let mut restored = Database::load_from_string(&db.save_to_string()).unwrap();
        // Apply a maintained update post-restore.
        let pepper = restored
            .base()
            .objects()
            .find(|o| o.attribute("Name") == &Value::string("Pepper"))
            .map(|o| o.oid)
            .unwrap();
        let sec_set = restored
            .base()
            .objects()
            .find(|o| o.attribute("Name") == &Value::string("560 SEC"))
            .and_then(|o| o.attribute("Composition").as_ref_oid())
            .unwrap();
        restored
            .insert_into_set(sec_set, Value::Ref(pepper))
            .unwrap();
        for (id, asr) in restored.asrs() {
            asr.check_consistency().unwrap();
            if asr.supports(0, 3) {
                let hits = restored
                    .backward(id, 0, 3, &Cell::Value(Value::string("Pepper")))
                    .unwrap();
                assert_eq!(hits.len(), 2, "Auto and Truck reach Pepper now ({id})");
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("asr_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("db.snap");
        db.save(&file).unwrap();
        let restored = Database::load(&file).unwrap();
        assert_eq!(restored.base().object_count(), db.base().object_count());
        std::fs::remove_file(file).ok();
    }

    #[test]
    fn malformed_headers_rejected() {
        assert!(Database::load_from_string("").is_err());
        assert!(Database::load_from_string("ASRDB 2\nno marker").is_err());
        assert!(Database::load_from_string("WRONG\n--BASE--\nGOMSNAP 1\n").is_err());
        let db = sample_db();
        let text = db.save_to_string().replace("A Division", "A Nowhere");
        assert!(Database::load_from_string(&text).is_err());
        let text = db.save_to_string().replace(" full ", " bogus ");
        assert!(Database::load_from_string(&text).is_err());
    }

    /// Every way of mangling a snapshot must yield a descriptive
    /// [`AsrError`] — never a panic.  (The durability layer feeds
    /// recovered checkpoint bytes straight into this parser, so torn or
    /// bit-flipped files are an expected input, not a programming error.)
    #[test]
    fn corrupt_snapshots_error_descriptively() {
        let good = sample_db().save_to_string();

        // Truncation at every line boundary: either a valid (possibly
        // degraded) database or a clean error, never a panic.
        let lines: Vec<&str> = good.lines().collect();
        for k in 0..lines.len() {
            let truncated = lines[..k].join("\n");
            let _ = Database::load_from_string(&truncated);
        }
        // Truncation at every raw byte offset (may split UTF-8-safe
        // ASCII lines mid-token).
        for k in (0..good.len()).step_by(7) {
            let _ = Database::load_from_string(&good[..k]);
        }

        // Missing --BASE-- marker names the marker in the error.
        let no_marker = good.replace("--BASE--\n", "");
        let err = Database::load_from_string(&no_marker).unwrap_err();
        assert!(matches!(err, AsrError::Snapshot(_)), "{err}");
        assert!(err.to_string().contains("--BASE--"), "{err}");

        // Mangled magic header.
        let bad_magic = good.replace("ASRDB 2", "ASRDB 999");
        let err = Database::load_from_string(&bad_magic).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Bad A-lines: missing fields, unparsable cuts, unknown record tag.
        for mangled in [
            good.replace(" canonical ", " "),
            good.replace("0,2,3", "0,x,3"),
            good.replace("\nA ", "\nZ "),
            good.replace("S Division 500", "S Division many"),
            good.replace("S Division 500", "S Nothing 500"),
        ] {
            let err = Database::load_from_string(&mangled).unwrap_err();
            assert!(!err.to_string().is_empty());
        }

        // Garbled base section (bit-flip style corruption of a value).
        let garbled = good.replace("S:Door", "S:%zzDoor");
        assert!(Database::load_from_string(&garbled).is_err());

        // load() on a missing file reports the path problem.
        let err = Database::load("/nonexistent/dir/db.snap").unwrap_err();
        assert!(matches!(err, AsrError::Snapshot(_)), "{err}");
        assert!(err.to_string().contains("cannot read file"), "{err}");
    }

    /// Corruption confined to the physical section degrades per ASR to a
    /// rebuild — the load still succeeds and answers identically.
    #[test]
    fn corrupt_physical_section_falls_back_to_rebuild() {
        let db = sample_db();
        let good = db.save_to_string();
        let door = Cell::Value(Value::string("Door"));
        let expect: Vec<_> = {
            let (clean, _) = Database::load_from_string_report(&good).unwrap();
            clean.backward(0, 0, 3, &door).unwrap()
        };

        // A bit-flipped page id, a mangled tree header, a truncated R row
        // count, an out-of-range child: each must fall back cleanly.
        let first_n = good
            .lines()
            .find(|l| l.starts_with("N f"))
            .unwrap()
            .to_string();
        let first_t = good
            .lines()
            .find(|l| l.starts_with("T 0"))
            .unwrap()
            .to_string();
        for mangled in [
            good.replace(&first_n, &first_n.replace(" L ", " X ")),
            good.replace(&first_t, "T 0 0 f 999999 1 1 1 -"),
            good.replace(&first_n, ""),
            good.replacen("R 0 ", "R 999999 ", 1),
        ] {
            let (loaded, report) = Database::load_from_string_report(&mangled)
                .unwrap_or_else(|e| panic!("must fall back, got {e}"));
            assert!(
                report
                    .asrs
                    .iter()
                    .any(|(_, m)| matches!(m, AsrLoadMode::Rebuilt(_))),
                "{report:?}"
            );
            assert_eq!(loaded.backward(0, 0, 3, &door).unwrap(), expect);
            for (_, asr) in loaded.asrs() {
                asr.check_consistency().unwrap();
            }
        }

        // Physical section stripped entirely: every ASR rebuilds.  Only
        // head lines are filtered — the GOM base section has its own
        // records that may share these leading letters.
        let (head, base) = good.split_once("--BASE--\n").unwrap();
        let stripped: String = head
            .lines()
            .filter(|l| {
                !(l.starts_with("P ")
                    || l.starts_with("R ")
                    || l.starts_with("T ")
                    || l.starts_with("N "))
            })
            .map(|l| format!("{l}\n"))
            .collect::<String>()
            + "--BASE--\n"
            + base;
        let (loaded, report) = Database::load_from_string_report(&stripped).unwrap();
        assert!(report
            .asrs
            .iter()
            .all(|(_, m)| matches!(m, AsrLoadMode::Rebuilt(r) if r.contains("no physical"))));
        assert_eq!(loaded.backward(0, 0, 3, &door).unwrap(), expect);
    }

    #[test]
    fn type_sizes_survive() {
        let db = sample_db();
        let restored = Database::load_from_string(&db.save_to_string()).unwrap();
        let div_ty = restored.base().schema().resolve("Division").unwrap();
        assert_eq!(restored.store().type_size(div_ty), 500);
    }

    // ---- ASRDB 3 delta snapshots -----------------------------------

    /// A clean database at its serialization fixed point: `db.save ==
    /// text` exactly, and every dirty set is fenced.
    fn settled(db: Database) -> (Database, String) {
        let db = Database::load_from_string(&db.save_to_string()).unwrap();
        let text = db.save_to_string();
        (Database::load_from_string(&text).unwrap(), text)
    }

    /// The `BasePartSET` behind the 560 SEC product — the deepest set on
    /// the Figure-2 path, so inserts there flow into every ASR.
    fn sec_composition(db: &Database) -> (Oid, Oid) {
        let pepper = db
            .base()
            .objects()
            .find(|o| o.attribute("Name") == &Value::string("Pepper"))
            .map(|o| o.oid)
            .unwrap();
        let set = db
            .base()
            .objects()
            .find(|o| o.attribute("Name") == &Value::string("560 SEC"))
            .and_then(|o| o.attribute("Composition").as_ref_oid())
            .unwrap();
        (set, pepper)
    }

    /// Figure 2 grown by `extra` additional base parts in the 560 SEC
    /// composition — big enough that one more insert touches only a few
    /// tree pages.
    fn bulk_db(extra: usize) -> Database {
        let (base, path) = crate::testutil::figure2_base();
        let mut db = Database::from_base(base);
        db.create_asr(path.clone(), AsrConfig::binary(Extension::Full, &path))
            .unwrap();
        let (set, _) = sec_composition(&db);
        for k in 0..extra {
            let p = db.instantiate("BasePart").unwrap();
            db.set_attribute(p, "Name", Value::string(format!("Part{k}")))
                .unwrap();
            db.insert_into_set(set, Value::Ref(p)).unwrap();
        }
        db
    }

    #[test]
    fn delta_apply_reproduces_the_primary_byte_for_byte() {
        let (mut primary, base_text) = settled(sample_db());
        let (set, pepper) = sec_composition(&primary);
        primary.insert_into_set(set, Value::Ref(pepper)).unwrap();
        primary.bind_variable("epoch", Value::string("two"));

        let delta = primary.save_delta_to_string(41).unwrap();
        assert!(delta.starts_with("ASRDB 3\nDELTA 41\n"), "{delta}");
        assert_eq!(Database::delta_base_id(&delta).unwrap(), 41);
        assert!(Database::is_delta_snapshot(&delta));
        assert!(!Database::is_delta_snapshot(&base_text));

        let replica = Database::load_from_string(&base_text).unwrap();
        let (patched, report) = replica
            .apply_delta_from_string_report(&delta, true)
            .unwrap();
        assert_eq!(report.version, 3);
        assert_eq!(report.delta_chain, 1);
        assert!(report.physical_bytes > 0);
        assert_eq!(patched.save_to_string(), primary.save_to_string());
        for (_, asr) in patched.asrs() {
            asr.check_consistency().unwrap();
        }
        // The delta fenced the patched replica: an immediate re-delta on
        // the primary side applies cleanly on top of it.
        assert_eq!(patched.dirty_summary(), (0, 0, 0, 0));
    }

    #[test]
    fn clean_database_ships_an_empty_delta() {
        let (db, text) = settled(sample_db());
        let delta = db.save_delta_to_string(7).unwrap();
        assert!(
            delta.len() * 2 < text.len(),
            "empty delta {} vs full {}",
            delta.len(),
            text.len()
        );
        let (patched, report) = db.apply_delta_from_string_report(&delta, true).unwrap();
        assert!(
            report
                .asrs
                .iter()
                .all(|(_, m)| matches!(m, AsrLoadMode::Delta { pages: 0 })),
            "{report:?}"
        );
        assert_eq!(patched.save_to_string(), text);
    }

    #[test]
    fn small_delta_on_large_database_stays_delta_mode() {
        let (mut primary, base_text) = settled(bulk_db(400));
        let (set, _) = sec_composition(&primary);
        let p = primary.instantiate("BasePart").unwrap();
        primary
            .set_attribute(p, "Name", Value::string("Hinge"))
            .unwrap();
        primary.insert_into_set(set, Value::Ref(p)).unwrap();

        let full = primary.save_to_string();
        let delta = primary.save_delta_to_string(9).unwrap();
        assert!(
            delta.len() * 4 < full.len(),
            "delta {} vs full {}",
            delta.len(),
            full.len()
        );

        let replica = Database::load_from_string(&base_text).unwrap();
        let (patched, report) = replica
            .apply_delta_from_string_report(&delta, true)
            .unwrap();
        assert!(
            report.asrs.iter().all(|(_, m)| m.is_delta()),
            "one insert must not degrade to full sections: {report:?}"
        );
        let shipped: usize = report
            .asrs
            .iter()
            .map(|(_, m)| match m {
                AsrLoadMode::Delta { pages } => *pages,
                _ => 0,
            })
            .sum();
        assert!(shipped > 0, "a real change ships at least one page");
        assert_eq!(patched.save_to_string(), full);
        for (_, asr) in patched.asrs() {
            asr.check_consistency().unwrap();
        }
    }

    #[test]
    fn design_change_forces_a_full_checkpoint() {
        let (mut db, _) = settled(sample_db());
        assert!(db.save_delta_to_string(1).is_some());
        let div = db.base().schema().resolve("Division").unwrap();
        db.set_type_size(div, 300);
        assert!(
            db.save_delta_to_string(1).is_none(),
            "deltas never span design changes"
        );
    }

    #[test]
    fn delta_chain_replays_object_lifecycle() {
        let (mut primary, base_text) = settled(sample_db());
        let washer = primary.instantiate("BasePart").unwrap();
        primary
            .set_attribute(washer, "Name", Value::string("Washer"))
            .unwrap();
        let d1 = primary.save_delta_to_string(0).unwrap();
        primary.mark_clean();

        primary.delete_object(washer).unwrap();
        primary.bind_variable("gone", Value::string("yes"));
        let d2 = primary.save_delta_to_string(1).unwrap();
        primary.mark_clean();
        assert!(
            d2.lines().any(|l| l.starts_with("X i")),
            "the delete must ship as a dead OID: {d2}"
        );

        let (chained, report) = Database::load_from_chain_report(&base_text, &[&d1, &d2]).unwrap();
        assert_eq!(report.delta_chain, 2);
        assert_eq!(chained.save_to_string(), primary.save_to_string());
    }

    #[test]
    fn tampered_delta_nacks_strictly_and_rebuilds_leniently() {
        let (mut primary, base_text) = settled(bulk_db(400));
        let (set, pepper) = sec_composition(&primary);
        primary.insert_into_set(set, Value::Ref(pepper)).unwrap();
        let delta = primary.save_delta_to_string(3).unwrap();

        // Bump the expected row count of the first delta partition: the
        // document still parses, but the patched mirror cannot satisfy it.
        let mut tampered = String::new();
        let mut done = false;
        for line in delta.lines() {
            if !done && line.starts_with("D ") {
                let mut t: Vec<String> = line.split(' ').map(str::to_string).collect();
                let n: usize = t[6].parse().unwrap();
                t[6] = (n + 1).to_string();
                tampered.push_str(&t.join(" "));
                done = true;
            } else {
                tampered.push_str(line);
            }
            tampered.push('\n');
        }
        assert!(done, "expected at least one delta partition: {delta}");

        let replica = Database::load_from_string(&base_text).unwrap();
        let err = replica.apply_delta_from_string(&tampered).unwrap_err();
        assert!(err.to_string().contains("delta section"), "{err}");

        // Lenient recovery rebuilds the damaged ASR from the patched base:
        // not byte-identical (fresh row ids) but query-identical.
        let (patched, report) = replica
            .apply_delta_from_string_report(&tampered, false)
            .unwrap();
        assert!(
            report
                .asrs
                .iter()
                .any(|(_, m)| matches!(m, AsrLoadMode::Rebuilt(_))),
            "{report:?}"
        );
        let door = Cell::Value(Value::string("Door"));
        for (id, asr) in patched.asrs() {
            asr.check_consistency().unwrap();
            if asr.supports(0, 3) {
                assert_eq!(
                    patched.backward(id, 0, 3, &door).unwrap(),
                    primary.backward(id, 0, 3, &door).unwrap()
                );
            }
        }
    }

    #[test]
    fn truncated_deltas_error_without_panicking() {
        let (mut primary, base_text) = settled(bulk_db(60));
        let (set, pepper) = sec_composition(&primary);
        primary.insert_into_set(set, Value::Ref(pepper)).unwrap();
        let delta = primary.save_delta_to_string(5).unwrap();
        let replica = Database::load_from_string(&base_text).unwrap();
        let full = {
            let (patched, _) = replica
                .apply_delta_from_string_report(&delta, true)
                .unwrap();
            patched.save_to_string()
        };
        // Cut the document after every line: each prefix must either be
        // rejected descriptively or (only if still complete enough to
        // parse) apply to a consistent database — never panic.
        let cuts: Vec<usize> = delta
            .char_indices()
            .filter(|&(_, c)| c == '\n')
            .map(|(i, _)| i + 1)
            .collect();
        for cut in cuts {
            match replica.apply_delta_from_string_report(&delta[..cut], true) {
                Err(e) => assert!(!e.to_string().is_empty()),
                Ok((patched, _)) => {
                    assert_eq!(patched.save_to_string(), full, "cut at {cut}");
                }
            }
        }
    }

    #[test]
    fn checkpoint_source_matches_live_serialization_byte_for_byte() {
        let (mut db, _) = settled(sample_db());
        let (set, pepper) = sec_composition(&db);
        db.insert_into_set(set, Value::Ref(pepper)).unwrap();
        db.bind_variable("epoch", Value::string("two"));

        let want_full = db.save_to_string();
        let want_delta = db.save_delta_to_string(7).unwrap();
        let source = db.begin_checkpoint();
        assert!(!source.is_noop_delta());
        assert!(!source.is_design_dirty());
        assert_eq!(source.save_full(), want_full);
        assert_eq!(source.save_delta(7).unwrap(), want_delta);

        // Fuzzy: the fence advanced and the writer moves on, but the
        // pinned source still renders the state as of the fence.
        db.set_attribute(pepper, "Name", Value::string("Salt"))
            .unwrap();
        assert_eq!(source.save_full(), want_full);
        assert_eq!(source.save_delta(7).unwrap(), want_delta);
        assert_ne!(db.save_to_string(), want_full, "the live state moved on");

        // The rendered document is a real checkpoint: it loads.
        let restored = Database::load_from_string(&source.save_full()).unwrap();
        assert_eq!(restored.base().object_count(), db.base().object_count());

        // And the fence is live: a fresh source right after one is a noop.
        drop(source);
        let idle = db.begin_checkpoint();
        assert!(!idle.is_noop_delta(), "the Salt rename is still pending");
        let idle2 = db.begin_checkpoint();
        assert!(idle2.is_noop_delta());
    }

    #[test]
    fn checkpoint_source_refuses_delta_after_design_change() {
        let (mut db, _) = settled(sample_db());
        let id = db.asrs().next().unwrap().0;
        db.drop_asr(id).unwrap();
        assert!(db.save_delta_to_string(1).is_none());
        let source = db.begin_checkpoint();
        assert!(source.is_design_dirty());
        assert!(source.save_delta(1).is_none());
        // The full document still renders and loads without the ASR.
        let restored = Database::load_from_string(&source.save_full()).unwrap();
        assert_eq!(restored.asrs().count(), db.asrs().count());
    }

    #[test]
    fn checkpoint_source_pins_an_epoch_until_dropped() {
        let (mut db, _) = settled(sample_db());
        let before = db.txn_status().active_snapshots;
        let source = db.begin_checkpoint();
        assert_eq!(db.txn_status().active_snapshots, before + 1);
        assert!(source.snapshot().asr_ids().len() == db.asrs().count());
        drop(source);
        assert_eq!(db.txn_status().active_snapshots, before);
    }
}
