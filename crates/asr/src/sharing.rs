//! Sharing of access support relations between overlapping path
//! expressions (Section 5.4 of the paper).
//!
//! When two paths contain the same middle attribute chain
//! `A_{i+1} … A_{i+j}` (over the same types), the decompositions
//! `(0, i, i+j, n)` and `(0, i′, i′+j, n′)` produce a **common partition**
//! `E^{i,i+j}` that needs to be stored only once.  In general this is only
//! possible for *full* extensions; left-complete extensions can share a
//! common prefix (both segments starting at `t_0`) and right-complete
//! extensions a common suffix (both ending at `t_n`).

use asr_gom::{PathExpression, Schema};

use crate::extension::Extension;

/// A common contiguous attribute segment of two paths, in *step* indices
/// (0-based: segment steps `start .. start+len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedSegment {
    /// Start step in the first path.
    pub start1: usize,
    /// Start step in the second path.
    pub start2: usize,
    /// Number of shared steps (`j` in the paper's notation).
    pub len: usize,
}

impl SharedSegment {
    /// Is the segment a common prefix of both paths?
    pub fn is_common_prefix(&self) -> bool {
        self.start1 == 0 && self.start2 == 0
    }

    /// Is the segment a common suffix of both paths?
    pub fn is_common_suffix(&self, p1: &PathExpression, p2: &PathExpression) -> bool {
        self.start1 + self.len == p1.len() && self.start2 + self.len == p2.len()
    }

    /// May the partition over this segment be shared when both access
    /// relations use the given extensions?  (Section 5.4's case analysis:
    /// full↔full always; left↔left only for common prefixes; right↔right
    /// only for common suffixes.)
    pub fn shareable_under(
        &self,
        e1: Extension,
        e2: Extension,
        p1: &PathExpression,
        p2: &PathExpression,
    ) -> bool {
        match (e1, e2) {
            (Extension::Full, Extension::Full) => true,
            (Extension::LeftComplete, Extension::LeftComplete) => self.is_common_prefix(),
            (Extension::RightComplete, Extension::RightComplete) => self.is_common_suffix(p1, p2),
            _ => false,
        }
    }

    /// The decomposition cut points the first path must adopt so that the
    /// shared segment becomes a stand-alone partition: `(0, i, i+j, n)`
    /// with degenerate cuts merged.  Columns are step positions (set-OID
    /// columns dropped).
    pub fn required_cuts1(&self, p1: &PathExpression) -> Vec<usize> {
        segment_cuts(self.start1, self.len, p1.len())
    }

    /// Likewise for the second path.
    pub fn required_cuts2(&self, p2: &PathExpression) -> Vec<usize> {
        segment_cuts(self.start2, self.len, p2.len())
    }
}

fn segment_cuts(start: usize, len: usize, n: usize) -> Vec<usize> {
    let mut cuts = vec![0, start, start + len, n];
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// Do two steps traverse the identical attribute (same domain type, same
/// attribute name — which in a well-formed schema implies the same range)?
fn steps_match(a: &asr_gom::PathStep, b: &asr_gom::PathStep) -> bool {
    a.domain == b.domain && a.attr == b.attr && a.set_type == b.set_type && a.range == b.range
}

/// Find all **maximal** common contiguous segments of two paths.
/// Segments of length 0 are not reported; overlapping shorter echoes of a
/// longer match are suppressed.
pub fn shared_segments(
    _schema: &Schema,
    p1: &PathExpression,
    p2: &PathExpression,
) -> Vec<SharedSegment> {
    let s1 = p1.steps();
    let s2 = p2.steps();
    let mut out: Vec<SharedSegment> = Vec::new();
    for start1 in 0..s1.len() {
        for start2 in 0..s2.len() {
            // Skip if this position continues an already-reported match.
            if start1 > 0 && start2 > 0 && steps_match(&s1[start1 - 1], &s2[start2 - 1]) {
                continue;
            }
            let mut len = 0;
            while start1 + len < s1.len()
                && start2 + len < s2.len()
                && steps_match(&s1[start1 + len], &s2[start2 + len])
            {
                len += 1;
            }
            if len > 0 {
                out.push(SharedSegment {
                    start1,
                    start2,
                    len,
                });
            }
        }
    }
    out
}

/// The storage saved (in tuple bytes of the non-redundant representation)
/// by sharing the common partition between two full-extension access
/// relations, given the partition's row count.
pub fn shared_partition_savings(rows: usize, segment_len: usize) -> u64 {
    (rows * asr_pagesim::OID_SIZE * (segment_len + 1)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two paths sharing the middle segment Product.Composition.Name:
    ///   Division.Manufactures.Composition.Name
    ///   Supplier.Delivers.Composition.Name
    fn setup() -> (Schema, PathExpression, PathExpression) {
        let mut s = Schema::new();
        s.define_tuple(
            "Division",
            [("Name", "STRING"), ("Manufactures", "ProdSET")],
        )
        .unwrap();
        s.define_tuple("Supplier", [("Name", "STRING"), ("Delivers", "ProdSET")])
            .unwrap();
        s.define_set("ProdSET", "Product").unwrap();
        s.define_tuple(
            "Product",
            [("Name", "STRING"), ("Composition", "BasePartSET")],
        )
        .unwrap();
        s.define_set("BasePartSET", "BasePart").unwrap();
        s.define_tuple("BasePart", [("Name", "STRING")]).unwrap();
        s.validate().unwrap();
        let p1 = PathExpression::parse(&s, "Division.Manufactures.Composition.Name").unwrap();
        let p2 = PathExpression::parse(&s, "Supplier.Delivers.Composition.Name").unwrap();
        (s, p1, p2)
    }

    #[test]
    fn finds_common_suffix_segment() {
        let (s, p1, p2) = setup();
        let segs = shared_segments(&s, &p1, &p2);
        assert_eq!(segs.len(), 1);
        let seg = segs[0];
        assert_eq!((seg.start1, seg.start2, seg.len), (1, 1, 2));
        assert!(!seg.is_common_prefix());
        assert!(seg.is_common_suffix(&p1, &p2));
    }

    #[test]
    fn sharing_rules_follow_section_5_4() {
        let (s, p1, p2) = setup();
        let seg = shared_segments(&s, &p1, &p2)[0];
        assert!(seg.shareable_under(Extension::Full, Extension::Full, &p1, &p2));
        assert!(
            seg.shareable_under(Extension::RightComplete, Extension::RightComplete, &p1, &p2),
            "common suffix allows right-complete sharing"
        );
        assert!(
            !seg.shareable_under(Extension::LeftComplete, Extension::LeftComplete, &p1, &p2),
            "not a common prefix"
        );
        assert!(!seg.shareable_under(Extension::Full, Extension::Canonical, &p1, &p2));
    }

    #[test]
    fn identical_paths_share_everything() {
        let (s, p1, _) = setup();
        let segs = shared_segments(&s, &p1, &p1.clone());
        // The maximal self-match covers the whole path.
        assert!(segs
            .iter()
            .any(|g| g.start1 == 0 && g.start2 == 0 && g.len == p1.len()));
        let whole = segs.iter().find(|g| g.len == p1.len()).unwrap();
        assert!(whole.is_common_prefix());
        assert!(whole.is_common_suffix(&p1, &p1));
        assert!(whole.shareable_under(Extension::LeftComplete, Extension::LeftComplete, &p1, &p1));
    }

    #[test]
    fn required_cuts_merge_degenerate_borders() {
        let (s, p1, p2) = setup();
        let seg = shared_segments(&s, &p1, &p2)[0];
        assert_eq!(seg.required_cuts1(&p1), vec![0, 1, 3]);
        assert_eq!(seg.required_cuts2(&p2), vec![0, 1, 3]);
    }

    #[test]
    fn disjoint_paths_share_nothing() {
        let mut s = Schema::new();
        s.define_tuple("A", [("x", "B")]).unwrap();
        s.define_tuple("B", [("y", "STRING")]).unwrap();
        s.define_tuple("C", [("z", "B")]).unwrap();
        s.validate().unwrap();
        let p1 = PathExpression::parse(&s, "A.x.y").unwrap();
        let p2 = PathExpression::parse(&s, "C.z.y").unwrap();
        // x (domain A) vs z (domain C) differ; only the trailing y step is
        // shared.
        let segs = shared_segments(&s, &p1, &p2);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 1);
        assert_eq!((segs[0].start1, segs[0].start2), (1, 1));
    }

    #[test]
    fn savings_formula() {
        assert_eq!(shared_partition_savings(100, 2), 100 * 8 * 3);
    }
}
