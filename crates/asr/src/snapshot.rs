//! MVCC snapshots: immutable, `Send` read-only views of a [`Database`]
//! pinned to a commit epoch.
//!
//! The paper prices ASRs as *shared* access paths; this module supplies
//! the sharing.  [`Database::snapshot`] publishes every stored partition
//! as an immutable [`PartitionVersion`] (copy-on-write: only partitions
//! mutated since their last publish are re-captured — clean ones keep
//! handing out the same `Arc`) and hands back a [`Snapshot`] that answers
//! span queries, border probes, and partition scans with results
//! bit-identical to the live database, while the single writer keeps
//! mutating its private working set.
//!
//! Lifecycle: **publish** (a snapshot pins the current commit epoch),
//! **pin** (clones share the pin; the epoch stays registered while any
//! reader holds it), **reclaim** (the last reader's drop retires the
//! epoch in the [`EpochRegistry`], visible as `txn.epochs_reclaimed`).
//!
//! Page accounting: the live database charges real modeled I/O to its
//! shared [`asr_pagesim::IoStats`].  A snapshot is detached from that
//! handle (it must be `Send`), so it meters its own reads — tree height
//! plus distinct leaves per batched probe, leaf pages per scan — on an
//! internal atomic counter exposed as [`Snapshot::pages_read`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use asr_gom::{ObjectBase, Oid, PathExpression};

use crate::cell::Cell;
use crate::database::{AsrId, Database};
use crate::error::{AsrError, Result};
use crate::manager::AsrConfig;
use crate::naive::check_span;
use crate::partition::{PartitionImage, StoredPartition};
use crate::query::{self, SpanSource};
use crate::row::Row;

// ---------------------------------------------------------------------
// Epoch registry: pin / reclaim
// ---------------------------------------------------------------------

/// Tracks which commit epochs still have live readers.  Shared between
/// the owning [`Database`] and every [`Snapshot`] it publishes; epochs
/// are reclaimed (retired from the pin table) when their last reader
/// drops.
#[derive(Debug, Default)]
pub struct EpochRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    /// epoch → live reader count.
    pins: BTreeMap<u64, usize>,
    /// Epochs fully released so far.
    reclaimed: u64,
}

impl EpochRegistry {
    fn lock(&self) -> MutexGuard<'_, RegistryInner> {
        // A reader thread that panics mid-drop must not cascade: recover
        // the guard rather than poisoning every later `\txn status`.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn pin(self: &Arc<Self>, epoch: u64) -> EpochPin {
        *self.lock().pins.entry(epoch).or_insert(0) += 1;
        EpochPin {
            epoch,
            registry: Arc::clone(self),
        }
    }

    /// Live snapshot handles across all pinned epochs.
    pub fn active(&self) -> usize {
        self.lock().pins.values().sum()
    }

    /// The oldest epoch still pinned by a reader.
    pub fn oldest(&self) -> Option<u64> {
        self.lock().pins.keys().next().copied()
    }

    /// Epochs whose last reader has dropped.
    pub fn reclaimed(&self) -> u64 {
        self.lock().reclaimed
    }
}

/// One epoch reference held by a snapshot; dropping the last clone of a
/// snapshot drops the pin and may reclaim the epoch.
#[derive(Debug)]
struct EpochPin {
    epoch: u64,
    registry: Arc<EpochRegistry>,
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        let mut inner = self.registry.lock();
        if let Some(count) = inner.pins.get_mut(&self.epoch) {
            *count -= 1;
            if *count == 0 {
                inner.pins.remove(&self.epoch);
                inner.reclaimed += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Immutable partition versions
// ---------------------------------------------------------------------

/// An immutable published version of one [`StoredPartition`]: the full
/// physical image (reused verbatim by checkpoint serialization) plus two
/// sorted access vectors standing in for the redundant clustering trees.
/// `by_first`/`by_last` order is exactly the trees' key order
/// `(cell, rowid)` with NULL first, so scans and probes reproduce the
/// live partition's row order bit for bit.
#[derive(Debug)]
pub(crate) struct PartitionVersion {
    /// `(clustering cell, rowid, index into image.rows)` sorted ascending
    /// — the forward (first-column) clustering.
    by_first: Vec<(Option<Cell>, u64, u32)>,
    /// The backward (last-column) clustering.
    by_last: Vec<(Option<Cell>, u64, u32)>,
    fwd_height: u64,
    bwd_height: u64,
    /// Tuples per leaf page (formula 14) — converts hit runs into the
    /// modeled leaf-page charge.
    leaf_capacity: u64,
    fwd_leaf_pages: u64,
    /// The page-faithful physical image ([`StoredPartition::dump`]).
    image: PartitionImage,
}

impl PartitionVersion {
    /// Capture the partition's current state as an immutable version.
    pub(crate) fn capture(part: &StoredPartition) -> Self {
        let image = part.dump();
        let order = |key: fn(&Row) -> &Option<Cell>| {
            let mut v: Vec<(Option<Cell>, u64, u32)> = image
                .rows
                .iter()
                .enumerate()
                .map(|(idx, (row, rowid, _))| (key(row).clone(), *rowid, idx as u32))
                .collect();
            v.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
            v
        };
        PartitionVersion {
            by_first: order(Row::first),
            by_last: order(Row::last),
            fwd_height: image.fwd.height as u64,
            bwd_height: image.bwd.height as u64,
            leaf_capacity: (part.forward_tree().leaf_capacity() as u64).max(1),
            fwd_leaf_pages: part.leaf_pages(),
            image,
        }
    }

    /// Columns spanned (`to − from + 1`).
    pub(crate) fn arity(&self) -> usize {
        self.image.to - self.image.from + 1
    }

    /// The captured physical image (checkpoint serialization).
    pub(crate) fn image(&self) -> &PartitionImage {
        &self.image
    }

    /// Distinct stored rows.
    pub(crate) fn len(&self) -> usize {
        self.image.rows.len()
    }

    fn row(&self, idx: u32) -> &Row {
        &self.image.rows[idx as usize].0
    }

    /// Batched clustered probe in the order `keys` arrive (ascending for
    /// frontier probes), concatenating per-key hit runs — the immutable
    /// counterpart of [`StoredPartition::lookup_first_many`].  Charges one
    /// descent plus each distinct leaf page once per batch.
    fn probe_cells<'a>(
        &self,
        forward: bool,
        keys: impl Iterator<Item = &'a Cell>,
        reads: &AtomicU64,
    ) -> Vec<Row> {
        let (list, height) = if forward {
            (&self.by_first, self.fwd_height)
        } else {
            (&self.by_last, self.bwd_height)
        };
        let mut out = Vec::new();
        let mut leaves: BTreeSet<u64> = BTreeSet::new();
        let mut probed = false;
        for cell in keys {
            probed = true;
            let key = Some(cell.clone());
            let mut at = list.partition_point(|e| (&e.0, e.1) < (&key, 0));
            while at < list.len() && list[at].0 == key {
                leaves.insert(at as u64 / self.leaf_capacity);
                out.push(self.row(list[at].2).clone());
                at += 1;
            }
        }
        if probed {
            reads.fetch_add(height + leaves.len() as u64, Ordering::Relaxed);
        }
        out
    }

    /// Exhaustive scan in forward clustering order, keeping rows whose
    /// column `offset` matches `wanted` — the immutable counterpart of
    /// [`StoredPartition::scan`].  Charges the leaf pages of one tree.
    fn scan_cells(&self, offset: usize, wanted: &BTreeSet<&Cell>, reads: &AtomicU64) -> Vec<Row> {
        reads.fetch_add(self.fwd_leaf_pages, Ordering::Relaxed);
        let mut hits = Vec::new();
        for &(_, _, idx) in &self.by_first {
            let row = self.row(idx);
            if let Some(cell) = row.cell(offset) {
                if wanted.contains(cell) {
                    hits.push(row.clone());
                }
            }
        }
        hits
    }
}

/// A partition version bound to a snapshot's read counter, so the span
/// query machinery can charge modeled I/O somewhere.
struct SnapView<'a> {
    version: &'a PartitionVersion,
    reads: &'a AtomicU64,
}

impl SpanSource for SnapView<'_> {
    fn probe_border(&self, forward: bool, frontier: &BTreeSet<Cell>) -> Vec<Row> {
        self.version
            .probe_cells(forward, frontier.iter(), self.reads)
    }

    fn scan_matching(&self, offset: usize, frontier: &BTreeSet<Cell>) -> Vec<Row> {
        let wanted: BTreeSet<&Cell> = frontier.iter().collect();
        self.version.scan_cells(offset, &wanted, self.reads)
    }
}

// ---------------------------------------------------------------------
// The snapshot
// ---------------------------------------------------------------------

/// One ASR as published into a snapshot: design (path + config) plus the
/// pinned partition versions.
#[derive(Debug)]
struct SnapAsr {
    path: PathExpression,
    config: AsrConfig,
    versions: Vec<Arc<PartitionVersion>>,
}

impl SnapAsr {
    fn supports(&self, i: usize, j: usize) -> bool {
        i < j && j <= self.path.len() && self.config.extension.supports(i, j, self.path.len())
    }

    fn column_of(&self, pos: usize) -> usize {
        self.path.column_of(pos, self.config.keep_set_oids)
    }
}

/// A read-only view of a [`Database`] pinned to a commit epoch.
///
/// Cheap to clone (clones share the pin) and `Send`: readers on other
/// threads answer supported span queries, batched border probes, and
/// partition scans against the pinned state while the writer continues.
/// There is no object store and no naive traversal here — unsupported
/// spans return [`AsrError::Unsupported`] exactly where the live ASR
/// would, and the caller decides whether to fall back on the primary.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    base: Arc<ObjectBase>,
    asrs: Vec<Option<Arc<SnapAsr>>>,
    /// Modeled page reads charged by this snapshot's queries.
    reads: Arc<AtomicU64>,
    _pin: Arc<EpochPin>,
}

impl Snapshot {
    /// The commit epoch this snapshot is pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Modeled page reads charged against this snapshot so far.
    pub fn pages_read(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// The pinned object base (variables, extents, objects as of the
    /// epoch).
    pub fn base(&self) -> &ObjectBase {
        &self.base
    }

    /// Living objects as of the epoch.
    pub fn object_count(&self) -> usize {
        self.base.object_count()
    }

    /// IDs of the ASRs registered as of the epoch.
    pub fn asr_ids(&self) -> Vec<AsrId> {
        self.asrs
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| slot.as_ref().map(|_| id))
            .collect()
    }

    fn snap_asr(&self, id: AsrId) -> Result<&SnapAsr> {
        self.asrs
            .get(id)
            .and_then(Option::as_ref)
            .map(Arc::as_ref)
            .ok_or_else(|| AsrError::InvalidDecomposition(format!("no ASR with id {id}")))
    }

    /// The path of ASR `id` as of the epoch.
    pub fn asr_path(&self, id: AsrId) -> Result<&PathExpression> {
        Ok(&self.snap_asr(id)?.path)
    }

    /// Stored partitions of ASR `id`.
    pub fn partition_count(&self, id: AsrId) -> Result<usize> {
        Ok(self.snap_asr(id)?.versions.len())
    }

    /// Columns of partition `part` of ASR `id`.
    pub fn partition_arity(&self, id: AsrId, part: usize) -> Result<usize> {
        Ok(self.partition(id, part)?.arity())
    }

    fn partition(&self, id: AsrId, part: usize) -> Result<&PartitionVersion> {
        self.snap_asr(id)?
            .versions
            .get(part)
            .map(Arc::as_ref)
            .ok_or_else(|| AsrError::InvalidDecomposition(format!("no partition {part}")))
    }

    /// Forward span query `Q_{i,j}(fw)` against the pinned versions —
    /// result bit-identical to the live ASR's supported evaluation.
    pub fn forward(&self, id: AsrId, i: usize, j: usize, start: Oid) -> Result<Vec<Cell>> {
        let asr = self.snap_asr(id)?;
        check_span(&asr.path, i, j)?;
        if !asr.supports(i, j) {
            return Err(AsrError::Unsupported {
                extension: asr.config.extension.name(),
                i,
                j,
                n: asr.path.len(),
            });
        }
        let views: Vec<SnapView<'_>> = asr
            .versions
            .iter()
            .map(|v| SnapView {
                version: v,
                reads: &self.reads,
            })
            .collect();
        Ok(query::forward_supported(
            &views,
            &asr.config.decomposition,
            asr.column_of(i),
            asr.column_of(j),
            &Cell::Oid(start),
        ))
    }

    /// Backward span query `Q_{i,j}(bw)` against the pinned versions.
    pub fn backward(&self, id: AsrId, i: usize, j: usize, target: &Cell) -> Result<Vec<Oid>> {
        let asr = self.snap_asr(id)?;
        check_span(&asr.path, i, j)?;
        if !asr.supports(i, j) {
            return Err(AsrError::Unsupported {
                extension: asr.config.extension.name(),
                i,
                j,
                n: asr.path.len(),
            });
        }
        let views: Vec<SnapView<'_>> = asr
            .versions
            .iter()
            .map(|v| SnapView {
                version: v,
                reads: &self.reads,
            })
            .collect();
        let cells = query::backward_supported(
            &views,
            &asr.config.decomposition,
            asr.column_of(i),
            asr.column_of(j),
            target,
        );
        Ok(cells.into_iter().filter_map(|c| c.as_oid()).collect())
    }

    /// Batched clustered probe of one partition in the order `keys`
    /// arrive — the snapshot counterpart of the scatter-gather
    /// `ShardProbe` request (`lookup_first_many` / `lookup_last_many`).
    pub fn probe(&self, id: AsrId, part: usize, forward: bool, keys: &[Cell]) -> Result<Vec<Row>> {
        Ok(self
            .partition(id, part)?
            .probe_cells(forward, keys.iter(), &self.reads))
    }

    /// Exhaustive scan of one partition keeping rows whose column
    /// `offset` is in `frontier` — the snapshot counterpart of the
    /// scatter-gather `ShardScan` request.
    pub fn scan_filter(
        &self,
        id: AsrId,
        part: usize,
        offset: usize,
        frontier: &[Cell],
    ) -> Result<Vec<Row>> {
        let version = self.partition(id, part)?;
        if offset >= version.arity() {
            return Err(AsrError::InvalidDecomposition(format!(
                "offset {offset} outside partition"
            )));
        }
        let wanted: BTreeSet<&Cell> = frontier.iter().collect();
        Ok(version.scan_cells(offset, &wanted, &self.reads))
    }

    /// Total distinct rows across all partitions of ASR `id`.
    pub fn total_rows(&self, id: AsrId) -> Result<usize> {
        Ok(self.snap_asr(id)?.versions.iter().map(|v| v.len()).sum())
    }

    /// The pinned partition images of every present ASR, in `A`-line
    /// ordinal order — what checkpoint serialization renders instead of
    /// re-dumping the live trees.
    pub(crate) fn asr_images(&self) -> Vec<Vec<&PartitionImage>> {
        self.asrs
            .iter()
            .flatten()
            .map(|asr| asr.versions.iter().map(|v| v.image()).collect())
            .collect()
    }
}

// Snapshots must be shareable across reader threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
    assert_send_sync::<EpochRegistry>();
};

/// Point-in-time MVCC bookkeeping for `\txn status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnStatus {
    /// Current commit epoch (bumps when a snapshot is taken after
    /// mutations).
    pub commit_epoch: u64,
    /// Live snapshot handles.
    pub active_snapshots: usize,
    /// Oldest epoch still pinned by a reader.
    pub oldest_pinned: Option<u64>,
    /// Epochs whose last reader has dropped.
    pub epochs_reclaimed: u64,
}

impl Database {
    /// Publish the current state as an immutable [`Snapshot`] pinned to
    /// the current commit epoch.
    ///
    /// Copy-on-write at partition granularity: only partitions mutated
    /// since their last publish are re-captured; repeated snapshots of an
    /// unchanged database share every version (and the epoch).  The
    /// object base travels as an `Arc` — the writer's next base mutation
    /// clones it lazily (`Arc::make_mut`), never the readers.
    pub fn snapshot(&mut self) -> Snapshot {
        if self.snap_stale {
            self.commit_epoch += 1;
            self.snap_stale = false;
        }
        let mut published = 0u64;
        let mut asrs: Vec<Option<Arc<SnapAsr>>> = Vec::with_capacity(self.asrs.len());
        for slot in self.asrs.iter_mut() {
            match slot {
                Some(asr) => {
                    let path = asr.path().clone();
                    let config = asr.config().clone();
                    let versions = asr
                        .partitions_mut()
                        .iter_mut()
                        .map(|p| {
                            let (version, fresh) = p.publish_version();
                            published += u64::from(fresh);
                            version
                        })
                        .collect();
                    asrs.push(Some(Arc::new(SnapAsr {
                        path,
                        config,
                        versions,
                    })));
                }
                None => asrs.push(None),
            }
        }
        let pin = self.epochs.pin(self.commit_epoch);
        let newly_reclaimed = self.epochs.reclaimed() - self.reclaimed_seen;
        self.reclaimed_seen += newly_reclaimed;
        let metrics = self.tracer().metrics();
        metrics.inc_counter("txn.snapshots", 1);
        metrics.inc_counter("txn.partitions_published", published);
        metrics.inc_counter("txn.epochs_reclaimed", newly_reclaimed);
        metrics.set_gauge("txn.commit_epoch", self.commit_epoch as f64);
        metrics.set_gauge("txn.active_snapshots", self.epochs.active() as f64);
        metrics.set_gauge(
            "txn.oldest_pinned_epoch",
            self.epochs.oldest().unwrap_or(self.commit_epoch) as f64,
        );
        Snapshot {
            epoch: self.commit_epoch,
            base: Arc::clone(&self.base),
            asrs,
            reads: Arc::new(AtomicU64::new(0)),
            _pin: Arc::new(pin),
        }
    }

    /// MVCC bookkeeping: epoch, live readers, oldest pin, reclamations.
    pub fn txn_status(&self) -> TxnStatus {
        TxnStatus {
            commit_epoch: self.commit_epoch,
            active_snapshots: self.epochs.active(),
            oldest_pinned: self.epochs.oldest(),
            epochs_reclaimed: self.epochs.reclaimed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::Decomposition;
    use crate::extension::Extension;
    use asr_gom::{Schema, Value};

    fn company_db() -> Database {
        let mut s = Schema::new();
        s.define_set("Company", "Division").unwrap();
        s.define_tuple(
            "Division",
            [("Name", "STRING"), ("Manufactures", "ProdSET")],
        )
        .unwrap();
        s.define_set("ProdSET", "Product").unwrap();
        s.define_tuple(
            "Product",
            [("Name", "STRING"), ("Composition", "BasePartSET")],
        )
        .unwrap();
        s.define_set("BasePartSET", "BasePart").unwrap();
        s.define_tuple("BasePart", [("Name", "STRING"), ("Price", "DECIMAL")])
            .unwrap();
        s.validate().unwrap();
        Database::new(s)
    }

    /// A small instance with one division → product → part chain.
    fn populated() -> (Database, AsrId, Oid, Oid) {
        let mut db = company_db();
        let division = db.instantiate("Division").unwrap();
        let prodset = db.instantiate("ProdSET").unwrap();
        let product = db.instantiate("Product").unwrap();
        let partset = db.instantiate("BasePartSET").unwrap();
        let part = db.instantiate("BasePart").unwrap();
        db.set_attribute(division, "Manufactures", Value::Ref(prodset))
            .unwrap();
        db.insert_into_set(prodset, Value::Ref(product)).unwrap();
        db.set_attribute(product, "Composition", Value::Ref(partset))
            .unwrap();
        db.insert_into_set(partset, Value::Ref(part)).unwrap();
        db.set_attribute(part, "Name", Value::string("Door"))
            .unwrap();
        let path =
            PathExpression::parse(db.base().schema(), "Division.Manufactures.Composition.Name")
                .unwrap();
        let config = AsrConfig {
            extension: Extension::Full,
            decomposition: Decomposition::binary(path.arity(false) - 1),
            keep_set_oids: false,
        };
        let id = db.create_asr(path, config).unwrap();
        (db, id, division, part)
    }

    #[test]
    fn snapshot_matches_live_queries() {
        let (mut db, id, division, _) = populated();
        let snap = db.snapshot();
        let n = snap.asr_path(id).unwrap().len();
        for i in 0..n {
            for j in (i + 1)..=n {
                let live = db.asr(id).unwrap().forward(i, j, division);
                let snapped = snap.forward(id, i, j, division);
                match (live, snapped) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "forward {i}..{j}"),
                    (Err(AsrError::Unsupported { .. }), Err(AsrError::Unsupported { .. })) => {}
                    (a, b) => panic!("forward {i}..{j} diverged: {a:?} vs {b:?}"),
                }
            }
        }
        let target = Cell::Value(Value::string("Door"));
        assert_eq!(
            db.asr(id).unwrap().backward(0, n, &target).unwrap(),
            snap.backward(id, 0, n, &target).unwrap()
        );
        assert!(snap.pages_read() > 0, "snapshot queries charge modeled I/O");
    }

    #[test]
    fn snapshot_isolation_and_cow_publishing() {
        let (mut db, id, division, _) = populated();
        let before = db.txn_status().commit_epoch;
        let s1 = db.snapshot();
        let s2 = db.snapshot();
        assert_eq!(s1.epoch(), s2.epoch(), "unchanged state shares the epoch");
        assert_eq!(db.txn_status().active_snapshots, 2);
        let n = s1.asr_path(id).unwrap().len();
        let old = s1.forward(id, 0, n, division).unwrap();

        // Writer moves on: a new part appears under the same product.
        let product = s1
            .forward(id, 0, 1, division)
            .unwrap()
            .first()
            .and_then(|c| c.as_oid())
            .unwrap();
        let extra = db.instantiate("BasePart").unwrap();
        db.set_attribute(extra, "Name", Value::string("Window"))
            .unwrap();
        let comp = db
            .base()
            .get_attribute(product, "Composition")
            .unwrap()
            .as_ref_oid()
            .unwrap();
        db.insert_into_set(comp, Value::Ref(extra)).unwrap();

        // Pinned readers still see the old state.
        assert_eq!(s1.forward(id, 0, n, division).unwrap(), old);
        let s3 = db.snapshot();
        assert!(s3.epoch() > before, "mutation bumps the epoch");
        assert!(
            s3.forward(id, 0, n, division).unwrap().len() > old.len(),
            "new snapshot sees the new row"
        );

        // Reclamation: dropping the readers of the old epoch retires it.
        let reclaimed = db.txn_status().epochs_reclaimed;
        drop(s1);
        drop(s2);
        let status = db.txn_status();
        assert_eq!(status.epochs_reclaimed, reclaimed + 1);
        assert_eq!(status.active_snapshots, 1);
        assert_eq!(status.oldest_pinned, Some(s3.epoch()));
    }

    #[test]
    fn probe_and_scan_match_the_live_partition() {
        let (mut db, id, division, _) = populated();
        let snap = db.snapshot();
        let asr = db.asr(id).unwrap();
        for (pidx, part) in asr.partitions().iter().enumerate() {
            // Probe on every first-column cell that exists.
            let mut firsts: BTreeSet<Cell> = BTreeSet::new();
            part.scan(|row| {
                if let Some(c) = row.first() {
                    firsts.insert(c.clone());
                }
            });
            let keys: Vec<Cell> = firsts.into_iter().collect();
            assert_eq!(
                part.lookup_first_many(keys.iter()),
                snap.probe(id, pidx, true, &keys).unwrap(),
                "forward probe partition {pidx}"
            );
            // Full scan parity at offset 0 with a frontier of everything.
            let rows_live: Vec<Row> = {
                let mut v = Vec::new();
                part.scan(|r| v.push(r.clone()));
                v
            };
            let wanted: Vec<Cell> = keys.clone();
            let scanned = snap.scan_filter(id, pidx, 0, &wanted).unwrap();
            let expect: Vec<Row> = rows_live
                .iter()
                .filter(|r| {
                    r.cell(0)
                        .as_ref()
                        .map(|c| wanted.contains(c))
                        .unwrap_or(false)
                })
                .cloned()
                .collect();
            assert_eq!(expect, scanned, "scan partition {pidx}");
        }
        let _ = division;
    }

    #[test]
    fn dropped_asr_is_absent_from_later_snapshots() {
        let (mut db, id, _, _) = populated();
        let s1 = db.snapshot();
        db.drop_asr(id).unwrap();
        let s2 = db.snapshot();
        assert!(s1.asr_ids().contains(&id));
        assert!(!s2.asr_ids().contains(&id));
        assert!(s2.forward(id, 0, 1, Oid::from_raw(0)).is_err());
    }
}
