//! NULL-aware chain joins.
//!
//! The paper writes `⋈` (natural), `⟗` (full outer), `⟕` (left outer) and
//! `⟖` (right outer) for joins **on the last column of the first relation
//! and the first column of the second relation** (Section 3, before
//! Definition 3.4).  These are the joins that assemble the four ASR
//! extensions from the auxiliary relations, and that reassemble a
//! decomposed relation (Theorem 3.9).
//!
//! `NULL` never matches `NULL`: a row whose join column is NULL can only
//! survive as an *unmatched* row of an outer join, padded with NULLs on the
//! other side.

use std::collections::HashMap;

use crate::cell::Cell;
use crate::error::{AsrError, Result};
use crate::relation::Relation;
use crate::row::Row;

/// The four join flavours used by the extension definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// `⋈` — inner join; unmatched rows of either side are dropped.
    Natural,
    /// `⟕` — keep unmatched left rows, padded with NULLs on the right.
    LeftOuter,
    /// `⟖` — keep unmatched right rows, padded with NULLs on the left.
    RightOuter,
    /// `⟗` — keep unmatched rows of both sides.
    FullOuter,
}

impl JoinKind {
    /// Does this join preserve unmatched left rows?
    pub fn keeps_left(self) -> bool {
        matches!(self, JoinKind::LeftOuter | JoinKind::FullOuter)
    }

    /// Does this join preserve unmatched right rows?
    pub fn keeps_right(self) -> bool {
        matches!(self, JoinKind::RightOuter | JoinKind::FullOuter)
    }
}

/// Join `left` and `right` on `left.last = right.first`, fusing the shared
/// column.  Result arity is `left.arity + right.arity − 1`.
pub fn chain_join(left: &Relation, right: &Relation, kind: JoinKind) -> Result<Relation> {
    let out_arity = left.arity() + right.arity() - 1;
    let mut out = Relation::new(out_arity);

    // Hash the right side on its first column (NULL keys excluded: NULL
    // never matches), remembering each row's position so outer-join
    // bookkeeping can use a plain bitmap instead of hashing whole rows —
    // which also keeps duplicate right rows distinct.
    let mut index: HashMap<&Cell, Vec<(usize, &Row)>> = HashMap::new();
    for (pos, row) in right.iter().enumerate() {
        if let Some(cell) = row.first() {
            index.entry(cell).or_default().push((pos, row));
        }
    }

    let mut right_matched = vec![false; right.len()];

    for lrow in left.iter() {
        let matches = lrow.last().as_ref().and_then(|cell| index.get(cell));
        match matches {
            Some(rrows) => {
                for &(pos, rrow) in rrows {
                    out.insert(lrow.join_concat(rrow))?;
                    if kind.keeps_right() {
                        right_matched[pos] = true;
                    }
                }
            }
            None => {
                if kind.keeps_left() {
                    out.insert(lrow.join_concat(&Row::nulls(right.arity())))?;
                }
            }
        }
    }

    if kind.keeps_right() {
        for (pos, rrow) in right.iter().enumerate() {
            if !right_matched[pos] {
                // Pad with NULLs on the left; the shared boundary column
                // keeps the right row's first cell.
                let mut cells = vec![None; left.arity() - 1];
                cells.extend_from_slice(rrow.cells());
                out.insert(Row::new(cells))?;
            }
        }
    }

    Ok(out)
}

/// Left-associative fold of [`chain_join`] over a sequence of relations:
/// `(((r0 ⊳⊲ r1) ⊳⊲ r2) …)`.  Used for the canonical, full and
/// left-complete extensions (Definitions 3.4–3.6).
pub fn fold_left(relations: &[Relation], kind: JoinKind) -> Result<Relation> {
    let (first, rest) = relations
        .split_first()
        .ok_or_else(|| AsrError::InvalidDecomposition("empty join chain".into()))?;
    let mut acc = first.clone();
    for r in rest {
        acc = chain_join(&acc, r, kind)?;
    }
    Ok(acc)
}

/// Right-associative fold: `(r0 ⊳⊲ (r1 ⊳⊲ (… ⊳⊲ r_{n-1})))`.  Used for the
/// right-complete extension (Definition 3.7).
pub fn fold_right(relations: &[Relation], kind: JoinKind) -> Result<Relation> {
    let (last, rest) = relations
        .split_last()
        .ok_or_else(|| AsrError::InvalidDecomposition("empty join chain".into()))?;
    let mut acc = last.clone();
    for r in rest.iter().rev() {
        acc = chain_join(r, &acc, kind)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::row::oid_cell as c;

    /// The paper's running example (Section 3): auxiliary relations over
    /// the Company schema extension of Figure 2.
    fn e0() -> Relation {
        // (Division, Product) — set OIDs dropped for readability.
        Relation::from_rows(2, vec![row![c(2), c(9)], row![c(1), c(6)]]).unwrap()
    }

    fn e1() -> Relation {
        // (Product, BasePart)
        Relation::from_rows(2, vec![row![c(11), c(14)], row![c(6), c(8)]]).unwrap()
    }

    #[test]
    fn natural_join_keeps_complete_paths_only() {
        let j = chain_join(&e0(), &e1(), JoinKind::Natural).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.contains(&row![c(1), c(6), c(8)]));
    }

    #[test]
    fn left_outer_keeps_left_partials() {
        let j = chain_join(&e0(), &e1(), JoinKind::LeftOuter).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.contains(&row![c(1), c(6), c(8)]));
        assert!(
            j.contains(&row![c(2), c(9), None]),
            "i2's path dangles right"
        );
    }

    #[test]
    fn right_outer_keeps_right_partials() {
        let j = chain_join(&e0(), &e1(), JoinKind::RightOuter).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.contains(&row![c(1), c(6), c(8)]));
        assert!(
            j.contains(&row![None, c(11), c(14)]),
            "i11 is not referenced by a Division"
        );
    }

    #[test]
    fn full_outer_keeps_both() {
        let j = chain_join(&e0(), &e1(), JoinKind::FullOuter).unwrap();
        assert_eq!(j.len(), 3);
        assert!(j.contains(&row![c(2), c(9), None]));
        assert!(j.contains(&row![None, c(11), c(14)]));
        assert!(j.contains(&row![c(1), c(6), c(8)]));
    }

    #[test]
    fn null_never_matches_null() {
        let left = Relation::from_rows(2, vec![row![c(0), None]]).unwrap();
        let right = Relation::from_rows(2, vec![row![None, c(5)]]).unwrap();
        let inner = chain_join(&left, &right, JoinKind::Natural).unwrap();
        assert!(inner.is_empty());
        let full = chain_join(&left, &right, JoinKind::FullOuter).unwrap();
        // Both survive as unmatched, never fused.
        assert_eq!(full.len(), 2);
        assert!(full.contains(&row![c(0), None, None]));
        assert!(full.contains(&row![None, None, c(5)]));
    }

    #[test]
    fn fanout_multiplies_rows() {
        let left = Relation::from_rows(2, vec![row![c(0), c(1)]]).unwrap();
        let right = Relation::from_rows(2, vec![row![c(1), c(2)], row![c(1), c(3)]]).unwrap();
        let j = chain_join(&left, &right, JoinKind::Natural).unwrap();
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn shared_subobject_joins_to_multiple_lefts() {
        // Two robots sharing one tool (the paper's i7 shared by i6 and i9).
        let left = Relation::from_rows(2, vec![row![c(6), c(7)], row![c(9), c(7)]]).unwrap();
        let right = Relation::from_rows(2, vec![row![c(7), c(3)]]).unwrap();
        let j = chain_join(&left, &right, JoinKind::Natural).unwrap();
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn folds_match_manual_nesting() {
        let rels = vec![
            e0(),
            e1(),
            Relation::from_rows(2, vec![row![c(8), c(99)]]).unwrap(),
        ];
        let left_fold = fold_left(&rels, JoinKind::LeftOuter).unwrap();
        let manual = chain_join(
            &chain_join(&rels[0], &rels[1], JoinKind::LeftOuter).unwrap(),
            &rels[2],
            JoinKind::LeftOuter,
        )
        .unwrap();
        assert_eq!(left_fold, manual);

        let right_fold = fold_right(&rels, JoinKind::RightOuter).unwrap();
        let manual = chain_join(
            &rels[0],
            &chain_join(&rels[1], &rels[2], JoinKind::RightOuter).unwrap(),
            JoinKind::RightOuter,
        )
        .unwrap();
        assert_eq!(right_fold, manual);
    }

    #[test]
    fn single_relation_folds_are_identity() {
        let rels = vec![e0()];
        assert_eq!(fold_left(&rels, JoinKind::Natural).unwrap(), e0());
        assert_eq!(fold_right(&rels, JoinKind::FullOuter).unwrap(), e0());
        assert!(fold_left(&[], JoinKind::Natural).is_err());
    }

    #[test]
    fn ternary_chain_through_set_columns() {
        // With set OIDs kept, auxiliary relations are ternary; the chain
        // join still fuses last-to-first.
        let e0 = Relation::from_rows(3, vec![row![c(1), c(4), c(6)]]).unwrap();
        let e1 = Relation::from_rows(3, vec![row![c(6), c(7), c(8)]]).unwrap();
        let j = chain_join(&e0, &e1, JoinKind::Natural).unwrap();
        assert_eq!(j.arity(), 5);
        assert!(j.contains(&row![c(1), c(4), c(6), c(7), c(8)]));
    }
}
