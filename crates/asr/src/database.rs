//! The database facade: one object base, its page-accounted object store,
//! and any number of maintained access support relations.
//!
//! All structural updates go through [`Database`] so that every registered
//! ASR is kept consistent incrementally (Section 6) and every page access —
//! object representation and access relations alike — lands in one shared
//! [`asr_pagesim::IoStats`] counter.

use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::Arc;

use asr_gom::{ObjectBase, Oid, PathExpression, Schema, TypeId, Value};
use asr_obs::Tracer;
use asr_pagesim::{IoStats, StatsHandle};

use crate::cell::Cell;
use crate::error::{AsrError, Result};
use crate::maintenance::{maintain_edge, EdgeEvent};
use crate::manager::{AccessSupportRelation, AsrConfig};
use crate::naive;
use crate::row::Row;
use crate::snapshot::EpochRegistry;
use crate::store::ObjectStore;

/// Identifier of a registered access support relation.
pub type AsrId = usize;

/// An object base with maintained access support relations.
#[derive(Debug)]
pub struct Database {
    /// The object base, shared with pinned MVCC snapshots.  The writer
    /// mutates through [`Database::base_mut`], which copies lazily
    /// (`Arc::make_mut`) when readers still hold the published state.
    pub(crate) base: Arc<ObjectBase>,
    store: ObjectStore,
    pub(crate) asrs: Vec<Option<AccessSupportRelation>>,
    stats: StatsHandle,
    tracer: Tracer,
    /// OIDs whose object state changed since the last checkpoint fence
    /// ([`Database::mark_clean`]) — the object half of a delta checkpoint.
    dirty_oids: BTreeSet<Oid>,
    /// OIDs deleted since the fence.
    dead_oids: BTreeSet<Oid>,
    /// Variables rebound since the fence.
    dirty_vars: BTreeSet<String>,
    /// Did the physical design (registered ASRs, type sizes, schema) change
    /// since the fence?  Delta checkpoints never span design changes.
    design_dirty: bool,
    /// MVCC commit epoch: bumped lazily by [`Database::snapshot`] when
    /// anything visible changed since the last publish.
    pub(crate) commit_epoch: u64,
    /// Did visible state change since the last published epoch?
    pub(crate) snap_stale: bool,
    /// Epoch pin table shared with every published snapshot.
    pub(crate) epochs: Arc<EpochRegistry>,
    /// Reclamation counter already reported to the metrics registry.
    pub(crate) reclaimed_seen: u64,
}

impl Database {
    /// An empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self::from_base(ObjectBase::new(schema))
    }

    /// Wrap an existing object base (its objects are registered with the
    /// store using default sizes; configure sizes first via
    /// [`Database::set_type_size`] when they matter).
    pub fn from_base(base: ObjectBase) -> Self {
        let stats = IoStats::new_handle();
        let mut store = ObjectStore::new(Rc::clone(&stats));
        store.label_from_schema(base.schema());
        store
            .sync_with_base(&base)
            .expect("fresh store sync cannot fail");
        let tracer = Tracer::with_stats(Rc::clone(&stats));
        Database {
            base: Arc::new(base),
            store,
            asrs: Vec::new(),
            stats,
            tracer,
            dirty_oids: BTreeSet::new(),
            dead_oids: BTreeSet::new(),
            dirty_vars: BTreeSet::new(),
            design_dirty: true,
            commit_epoch: 0,
            snap_stale: true,
            epochs: Arc::new(EpochRegistry::default()),
            reclaimed_seen: 0,
        }
    }

    /// Assemble a database from a pre-built base and an already configured
    /// (and synced) object store sharing `stats`.  Used by workload
    /// generators that size the clustered files per type before syncing.
    pub fn from_parts(base: ObjectBase, mut store: ObjectStore, stats: StatsHandle) -> Self {
        store.label_from_schema(base.schema());
        let tracer = Tracer::with_stats(Rc::clone(&stats));
        Database {
            base: Arc::new(base),
            store,
            asrs: Vec::new(),
            stats,
            tracer,
            dirty_oids: BTreeSet::new(),
            dead_oids: BTreeSet::new(),
            dirty_vars: BTreeSet::new(),
            design_dirty: true,
            commit_epoch: 0,
            snap_stale: true,
            epochs: Arc::new(EpochRegistry::default()),
            reclaimed_seen: 0,
        }
    }

    /// The underlying object base (read-only; use the update methods).
    pub fn base(&self) -> &ObjectBase {
        &self.base
    }

    /// Mutable access to the object base.  Marks the published MVCC state
    /// stale and copies the base lazily when live snapshots still pin it
    /// (copy-on-write: readers keep the old `Arc`, the writer gets a
    /// private clone).
    fn base_mut(&mut self) -> &mut ObjectBase {
        self.snap_stale = true;
        Arc::make_mut(&mut self.base)
    }

    /// The page-accounted object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The shared page-access counter (object store and all ASRs).
    pub fn stats(&self) -> &StatsHandle {
        &self.stats
    }

    /// The tracing/metrics context.  Spans opened here capture I/O deltas
    /// from [`Database::stats`]; its [`asr_obs::MetricsRegistry`] carries
    /// query and maintenance counters (e.g. `asr.rebuild_fallback`).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Replace this database's tracer with `tracer`, re-binding span I/O
    /// capture to this database's own stats handle.  Coordinators that
    /// rebuild their catalog from a fresh snapshot use this to carry
    /// accumulated metrics and attached sinks across the rebuild.
    pub fn adopt_tracer(&mut self, tracer: Tracer) {
        tracer.attach_stats(Rc::clone(&self.stats));
        self.tracer = tracer;
    }

    /// Configure the clustered size `size_i` for a type's objects.
    /// Only affects objects registered afterwards.
    pub fn set_type_size(&mut self, ty: TypeId, size: usize) {
        self.design_dirty = true;
        self.store.set_type_size(ty, size);
    }

    /// Enable LRU buffering: `object_pages` per clustered object file and
    /// `asr_pages` per access-relation B+ tree (0 = unbuffered, the
    /// paper's cost-model assumption).  Used by the buffering ablation.
    pub fn enable_buffering(&mut self, object_pages: usize, asr_pages: usize) {
        self.store.enable_buffering(object_pages);
        for asr in self.asrs.iter_mut().flatten() {
            asr.enable_buffering(asr_pages);
        }
    }

    // ------------------------------------------------------------------
    // ASR management
    // ------------------------------------------------------------------

    /// Build and register an access support relation.
    pub fn create_asr(&mut self, path: PathExpression, config: AsrConfig) -> Result<AsrId> {
        let asr = AccessSupportRelation::build(&self.base, path, config, Rc::clone(&self.stats))?;
        self.design_dirty = true;
        self.snap_stale = true;
        self.asrs.push(Some(asr));
        Ok(self.asrs.len() - 1)
    }

    /// Register an already-assembled ASR (the physical restore path of
    /// `ASRDB 2` snapshots — no build runs).
    pub(crate) fn attach_asr(&mut self, asr: AccessSupportRelation) -> AsrId {
        self.snap_stale = true;
        self.asrs.push(Some(asr));
        self.asrs.len() - 1
    }

    /// Parse a dotted path and register an ASR over it.
    pub fn create_asr_on(&mut self, dotted: &str, config: AsrConfig) -> Result<AsrId> {
        let path = PathExpression::parse(self.base.schema(), dotted)?;
        self.create_asr(path, config)
    }

    /// Drop an ASR.
    pub fn drop_asr(&mut self, id: AsrId) -> Result<()> {
        match self.asrs.get_mut(id) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.design_dirty = true;
                self.snap_stale = true;
                Ok(())
            }
            _ => Err(AsrError::InvalidDecomposition(format!(
                "no ASR with id {id}"
            ))),
        }
    }

    /// Restrict one ASR's stored partitions to the rows `keep` accepts —
    /// shard placement (see
    /// [`AccessSupportRelation::retain_partition_rows`]).  Returns the
    /// number of stored rows placed here.
    pub fn retain_asr_rows(
        &mut self,
        id: AsrId,
        keep: impl FnMut(usize, &Row) -> bool,
    ) -> Result<u64> {
        let mut span = self
            .tracer
            .span_with("shard.place", &[("asr", id.to_string())]);
        let asr = match self.asrs.get_mut(id) {
            Some(Some(asr)) => asr,
            _ => {
                return Err(AsrError::InvalidDecomposition(format!(
                    "no ASR with id {id}"
                )))
            }
        };
        let placed = asr.retain_partition_rows(keep)?;
        self.snap_stale = true;
        span.set_rows(placed);
        Ok(placed)
    }

    /// Access a registered ASR.
    pub fn asr(&self, id: AsrId) -> Result<&AccessSupportRelation> {
        self.asrs
            .get(id)
            .and_then(Option::as_ref)
            .ok_or_else(|| AsrError::InvalidDecomposition(format!("no ASR with id {id}")))
    }

    /// Iterate over the live ASRs.
    pub fn asrs(&self) -> impl Iterator<Item = (AsrId, &AccessSupportRelation)> {
        self.asrs
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_ref().map(|a| (i, a)))
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Forward span query through an ASR, falling back to naive object
    /// traversal when formula (35) rules the extension out.
    pub fn forward(&self, id: AsrId, i: usize, j: usize, start: Oid) -> Result<Vec<Cell>> {
        let mut span = self.tracer.span_with(
            "query.forward",
            &[("asr", id.to_string()), ("span", format!("{i}..{j}"))],
        );
        self.tracer.metrics().inc_counter("query.forward", 1);
        let asr = self.asr(id)?;
        let before = self.stats.snapshot();
        let result = match asr.forward(i, j, start) {
            Err(AsrError::Unsupported { .. }) => {
                span.add_attr("fallback", "naive");
                self.tracer.metrics().inc_counter("query.naive_fallback", 1);
                naive::forward_naive(&self.base, &self.store, asr.path(), i, j, start)
            }
            other => other,
        };
        self.note_batch_io(&before);
        if let Ok(cells) = &result {
            span.set_rows(cells.len() as u64);
        }
        result
    }

    /// Record batched B+-tree probe activity since `before` in the metrics
    /// registry, so `EXPLAIN ANALYZE` and `\stats` can attribute savings.
    fn note_batch_io(&self, before: &asr_pagesim::IoSnapshot) {
        let after = self.stats.snapshot();
        let probes = after.batch_probes - before.batch_probes;
        if probes > 0 {
            let metrics = self.tracer.metrics();
            metrics.inc_counter("btree.batch.probes", probes);
            metrics.inc_counter(
                "btree.batch.pages_saved",
                after.batch_pages_saved - before.batch_pages_saved,
            );
        }
    }

    /// Backward span query through an ASR, with naive fallback.
    pub fn backward(&self, id: AsrId, i: usize, j: usize, target: &Cell) -> Result<Vec<Oid>> {
        let mut span = self.tracer.span_with(
            "query.backward",
            &[("asr", id.to_string()), ("span", format!("{i}..{j}"))],
        );
        self.tracer.metrics().inc_counter("query.backward", 1);
        let asr = self.asr(id)?;
        let before = self.stats.snapshot();
        let result = match asr.backward(i, j, target) {
            Err(AsrError::Unsupported { .. }) => {
                span.add_attr("fallback", "naive");
                self.tracer.metrics().inc_counter("query.naive_fallback", 1);
                naive::backward_naive(&self.base, &self.store, asr.path(), i, j, target)
            }
            other => other,
        };
        self.note_batch_io(&before);
        if let Ok(oids) = &result {
            span.set_rows(oids.len() as u64);
        }
        result
    }

    /// Find a registered ASR over exactly this path whose extension
    /// supports the span `Q_{i,j}` (formula 35).  Prefers the ASR with the
    /// fewest stored rows when several qualify.
    pub fn find_supporting_asr(&self, path: &PathExpression, i: usize, j: usize) -> Option<AsrId> {
        self.asrs()
            .filter(|(_, asr)| asr.path() == path && asr.supports(i, j))
            .min_by_key(|(_, asr)| asr.total_rows())
            .map(|(id, _)| id)
    }

    /// Forward span navigation that automatically routes through the best
    /// supporting ASR, or falls back to naive object traversal.
    pub fn navigate_forward(
        &self,
        path: &PathExpression,
        i: usize,
        j: usize,
        start: Oid,
    ) -> Result<Vec<Cell>> {
        match self.find_supporting_asr(path, i, j) {
            Some(id) => self.forward(id, i, j, start),
            None => {
                let mut span = self.tracer.span_with(
                    "query.forward",
                    &[
                        ("span", format!("{i}..{j}")),
                        ("fallback", "unindexed".to_string()),
                    ],
                );
                self.tracer.metrics().inc_counter("query.unindexed", 1);
                let result = naive::forward_naive(&self.base, &self.store, path, i, j, start);
                if let Ok(cells) = &result {
                    span.set_rows(cells.len() as u64);
                }
                result
            }
        }
    }

    /// Backward span navigation with automatic ASR routing.
    pub fn navigate_backward(
        &self,
        path: &PathExpression,
        i: usize,
        j: usize,
        target: &Cell,
    ) -> Result<Vec<Oid>> {
        match self.find_supporting_asr(path, i, j) {
            Some(id) => self.backward(id, i, j, target),
            None => {
                let mut span = self.tracer.span_with(
                    "query.backward",
                    &[
                        ("span", format!("{i}..{j}")),
                        ("fallback", "unindexed".to_string()),
                    ],
                );
                self.tracer.metrics().inc_counter("query.unindexed", 1);
                let result = naive::backward_naive(&self.base, &self.store, path, i, j, target);
                if let Ok(oids) = &result {
                    span.set_rows(oids.len() as u64);
                }
                result
            }
        }
    }

    /// Naive forward query over an arbitrary (unindexed) path.
    pub fn forward_unindexed(
        &self,
        path: &PathExpression,
        i: usize,
        j: usize,
        start: Oid,
    ) -> Result<Vec<Cell>> {
        naive::forward_naive(&self.base, &self.store, path, i, j, start)
    }

    /// Naive backward query over an arbitrary (unindexed) path.
    pub fn backward_unindexed(
        &self,
        path: &PathExpression,
        i: usize,
        j: usize,
        target: &Cell,
    ) -> Result<Vec<Oid>> {
        naive::backward_naive(&self.base, &self.store, path, i, j, target)
    }

    // ------------------------------------------------------------------
    // Updates (charged + ASR-maintained)
    // ------------------------------------------------------------------

    /// Instantiate a type (fresh objects participate in no path yet, so no
    /// ASR maintenance is required).
    pub fn instantiate(&mut self, type_name: &str) -> Result<Oid> {
        let oid = self.base_mut().instantiate(type_name)?;
        let ty = self.base.type_of(oid)?;
        self.store.register_object(ty, oid)?;
        self.dirty_oids.insert(oid);
        self.dead_oids.remove(&oid);
        Ok(oid)
    }

    /// Instantiate a type under a **known** OID — write-ahead-log replay
    /// and snapshot restoration, where object identity must survive the
    /// round trip even when the original generator had advanced past the
    /// snapshot's maximum (e.g. the newest object was deleted before the
    /// checkpoint).  Fails if the OID is already live.
    pub fn instantiate_with_oid(&mut self, type_name: &str, oid: Oid) -> Result<()> {
        self.base_mut().restore_object(oid, type_name)?;
        let ty = self.base.type_of(oid)?;
        self.store.register_object(ty, oid)?;
        self.dirty_oids.insert(oid);
        self.dead_oids.remove(&oid);
        Ok(())
    }

    /// Count one multi-position rebuild fallback (recursive-schema updates
    /// that incremental maintenance cannot handle position-by-position).
    fn note_rebuild_fallback(&self, slot: AsrId, cause: &str) {
        self.tracer.metrics().inc_counter("asr.rebuild_fallback", 1);
        self.tracer.event(
            "maintenance.rebuild_fallback",
            &[("asr", slot.to_string()), ("cause", cause.to_string())],
        );
    }

    /// Assign an attribute, maintaining every registered ASR.
    pub fn set_attribute(&mut self, owner: Oid, attr: &str, value: Value) -> Result<()> {
        let old = self.base.get_attribute(owner, attr)?;
        if old == value {
            return Ok(());
        }
        let _span = self
            .tracer
            .span_with("maintain.set_attribute", &[("attr", attr.to_string())]);
        self.base_mut().set_attribute(owner, attr, value.clone())?;
        self.dirty_oids.insert(owner);
        let owner_ty = self.base.type_of(owner)?;
        self.store.charge_update(owner_ty, owner);

        for slot in 0..self.asrs.len() {
            let Some(asr) = self.asrs[slot].as_ref() else {
                continue;
            };
            let path = asr.path().clone();
            let positions: Vec<usize> = (1..=path.len())
                .filter(|&p| {
                    let step = &path.steps()[p - 1];
                    step.attr == attr && self.base.schema().is_subtype(owner_ty, step.domain)
                })
                .collect();
            if positions.len() > 1 {
                // The update affects several positions of this path (a
                // recursive schema) — the situation the paper's Section 6
                // explicitly assumes away.  A single physical edge then
                // backs row segments at multiple columns and per-position
                // deltas are unsound; rebuild instead (page writes are
                // charged through the bulk load).
                self.note_rebuild_fallback(slot, "set_attribute");
                self.asrs[slot]
                    .as_mut()
                    .expect("slot checked above")
                    .rebuild(&self.base)?;
                continue;
            }
            for p in positions {
                let events = self.attr_events(&path, p, owner, &old, &value)?;
                let asr = self.asrs[slot].as_mut().expect("slot checked above");
                for (event, added, bare_before, bare_after) in events {
                    maintain_edge(
                        asr,
                        &self.base,
                        &self.store,
                        &event,
                        added,
                        bare_before,
                        bare_after,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Expand an attribute assignment at step `p` into edge events:
    /// `(event, added, owner_bare_before, owner_bare_after)`.
    #[allow(clippy::type_complexity)]
    fn attr_events(
        &self,
        path: &PathExpression,
        p: usize,
        owner: Oid,
        old: &Value,
        new: &Value,
    ) -> Result<Vec<(EdgeEvent, bool, bool, bool)>> {
        let step = &path.steps()[p - 1];
        let mut events = Vec::new();
        // Additions run *before* removals: the maintenance algorithm
        // collects the owner's prefixes from the access relation itself
        // (for full/left extensions), and those prefixes are only stored
        // as long as some row through the owner survives.
        if step.is_set_occurrence() {
            let new_parts = self.set_edges(p, owner, new)?;
            for (k, ev) in new_parts.into_iter().enumerate() {
                let bare_before = old.is_null() && k == 0;
                events.push((ev, true, bare_before, false));
            }
            let old_parts = self.set_edges(p, owner, old)?;
            let last = old_parts.len().saturating_sub(1);
            for (k, ev) in old_parts.into_iter().enumerate() {
                let bare_after = new.is_null() && k == last;
                events.push((ev, false, false, bare_after));
            }
        } else {
            if let Some(cell) = Cell::from_gom(new) {
                let ev = EdgeEvent {
                    step: p,
                    owner,
                    set: None,
                    target: Some(cell),
                };
                events.push((ev, true, old.is_null(), false));
            }
            if let Some(cell) = Cell::from_gom(old) {
                let ev = EdgeEvent {
                    step: p,
                    owner,
                    set: None,
                    target: Some(cell),
                };
                events.push((ev, false, false, new.is_null()));
            }
        }
        Ok(events)
    }

    /// The edge events represented by attaching `value` (a set reference or
    /// NULL) at a set occurrence: one event per member, or a marker event
    /// for an empty set, or nothing for NULL.
    fn set_edges(&self, p: usize, owner: Oid, value: &Value) -> Result<Vec<EdgeEvent>> {
        let Value::Ref(set) = value else {
            return Ok(Vec::new());
        };
        if !self.base.contains(*set) {
            return Ok(Vec::new());
        }
        let members: Vec<Cell> = self
            .base
            .object(*set)?
            .elements()
            .filter_map(Cell::from_gom)
            .filter(|c| match c {
                Cell::Oid(o) => self.base.contains(*o),
                Cell::Value(_) => true,
            })
            .collect();
        if members.is_empty() {
            return Ok(vec![EdgeEvent {
                step: p,
                owner,
                set: Some(*set),
                target: None,
            }]);
        }
        Ok(members
            .into_iter()
            .map(|cell| EdgeEvent {
                step: p,
                owner,
                set: Some(*set),
                target: Some(cell),
            })
            .collect())
    }

    /// The paper's characteristic update `ins_i`: insert `elem` into the
    /// set instance `set`.  All owners referencing the set (set sharing
    /// included) have their paths maintained.  Returns `false` when the
    /// element was already a member.
    pub fn insert_into_set(&mut self, set: Oid, elem: Value) -> Result<bool> {
        if !self.base_mut().insert_into_set(set, elem.clone())? {
            return Ok(false);
        }
        self.dirty_oids.insert(set);
        let _span = self.tracer.span("maintain.insert_into_set");
        let was_empty = self.base.object(set)?.body.len() == 1;
        self.charge_set_update(set)?;
        let elem_cell = Cell::from_gom(&elem);
        self.maintain_set_change(set, elem_cell, true, was_empty)?;
        Ok(true)
    }

    /// Remove `elem` from the set instance `set`, maintaining all ASRs.
    pub fn remove_from_set(&mut self, set: Oid, elem: &Value) -> Result<bool> {
        if !self.base_mut().remove_from_set(set, elem)? {
            return Ok(false);
        }
        self.dirty_oids.insert(set);
        let _span = self.tracer.span("maintain.remove_from_set");
        let now_empty = self.base.object(set)?.body.is_empty();
        self.charge_set_update(set)?;
        let elem_cell = Cell::from_gom(elem);
        self.maintain_set_change(set, elem_cell, false, now_empty)?;
        Ok(true)
    }

    /// Convenience matching the paper's phrasing
    /// `insert o into o_i.A_i`: resolve the owner's set attribute first.
    pub fn insert_into_attr_set(&mut self, owner: Oid, attr: &str, elem: Value) -> Result<bool> {
        let set = self
            .base
            .get_attribute(owner, attr)?
            .as_ref_oid()
            .ok_or_else(|| AsrError::BadUpdatePosition(format!("{owner}.{attr} is NULL")))?;
        self.insert_into_set(set, elem)
    }

    /// Charge the in-place update of the set (inlined with its owners; the
    /// standalone set object is charged when nothing references it).
    fn charge_set_update(&mut self, set: Oid) -> Result<()> {
        let owners = self.owners_of_set_anywhere(set)?;
        if owners.is_empty() {
            let ty = self.base.type_of(set)?;
            self.store.charge_update(ty, set);
        } else {
            // Charge each distinct owner once (the set is inlined there).
            let mut seen = std::collections::BTreeSet::new();
            for (owner, ty) in owners {
                if seen.insert(owner) {
                    self.store.charge_update(ty, owner);
                }
            }
        }
        Ok(())
    }

    /// All `(owner, owner type)` pairs whose set-valued attribute (on any
    /// registered path) references `set`.  Bookkeeping only — a real system
    /// receives the owner with the update statement.
    fn owners_of_set_anywhere(&self, set: Oid) -> Result<Vec<(Oid, TypeId)>> {
        let set_ty = self.base.type_of(set)?;
        let mut out = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for (_, asr) in self.asrs() {
            for step in asr.path().steps() {
                if step.set_type != Some(set_ty) {
                    continue;
                }
                for o in self.base.extent_closure(step.domain) {
                    if self.base.get_attribute(o, &step.attr)? == Value::Ref(set)
                        && seen.insert((o, step.attr.clone()))
                    {
                        out.push((o, self.base.type_of(o)?));
                    }
                }
            }
        }
        Ok(out)
    }

    fn maintain_set_change(
        &mut self,
        set: Oid,
        elem: Option<Cell>,
        added: bool,
        boundary_empty: bool,
    ) -> Result<()> {
        let set_ty = self.base.type_of(set)?;
        for slot in 0..self.asrs.len() {
            let Some(asr) = self.asrs[slot].as_ref() else {
                continue;
            };
            let path = asr.path().clone();
            let matching = (1..=path.len())
                .filter(|&p| path.steps()[p - 1].set_type == Some(set_ty))
                .count();
            if matching > 1 {
                // Recursive path: one set insertion affects several
                // positions — rebuild (see `set_attribute`).
                self.note_rebuild_fallback(slot, "set_change");
                self.asrs[slot]
                    .as_mut()
                    .expect("slot checked above")
                    .rebuild(&self.base)?;
                continue;
            }
            for p in 1..=path.len() {
                let step = &path.steps()[p - 1];
                if step.set_type != Some(set_ty) {
                    continue;
                }
                let attr = step.attr.clone();
                let domain = step.domain;
                let owners: Vec<Oid> = self
                    .base
                    .extent_closure(domain)
                    .into_iter()
                    .filter(|o| self.base.get_attribute(*o, &attr).ok() == Some(Value::Ref(set)))
                    .collect();
                for owner in owners {
                    let asr = self.asrs[slot].as_mut().expect("slot checked above");
                    let ev = EdgeEvent {
                        step: p,
                        owner,
                        set: Some(set),
                        target: elem.clone(),
                    };
                    let marker = EdgeEvent {
                        step: p,
                        owner,
                        set: Some(set),
                        target: None,
                    };
                    // Additions before removals (see `attr_events`): the
                    // maintenance prefixes live in the rows about to be
                    // retracted.
                    if added {
                        maintain_edge(asr, &self.base, &self.store, &ev, true, false, false)?;
                        if boundary_empty {
                            // The set was empty: retract the marker rows.
                            maintain_edge(
                                asr,
                                &self.base,
                                &self.store,
                                &marker,
                                false,
                                false,
                                false,
                            )?;
                        }
                    } else {
                        if boundary_empty {
                            // The set becomes empty: marker rows appear.
                            maintain_edge(
                                asr,
                                &self.base,
                                &self.store,
                                &marker,
                                true,
                                false,
                                false,
                            )?;
                        }
                        maintain_edge(asr, &self.base, &self.store, &ev, false, false, false)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Delete an object.  Deletion is maintained **non-incrementally**:
    /// the paper analyzes `ins_i` only, and a deleted object may be
    /// referenced from arbitrarily many places, so every registered ASR is
    /// rebuilt (documented trade-off; see DESIGN.md).
    pub fn delete_object(&mut self, oid: Oid) -> Result<()> {
        self.base_mut().delete(oid)?;
        self.dirty_oids.remove(&oid);
        self.dead_oids.insert(oid);
        for slot in self.asrs.iter_mut().flatten() {
            slot.rebuild(&self.base)?;
        }
        Ok(())
    }

    /// Bind a database variable (root).
    pub fn bind_variable(&mut self, name: &str, value: Value) {
        self.dirty_vars.insert(name.to_string());
        self.base_mut().bind_variable(name, value);
    }

    // ------------------------------------------------------------------
    // Delta-checkpoint change tracking
    // ------------------------------------------------------------------

    /// Forget all change tracking and fence every partition's page epochs:
    /// the state as of *now* becomes the base the next delta checkpoint is
    /// measured against.  Called after a checkpoint is written (full or
    /// delta) and after a snapshot/delta chain is loaded.
    pub fn mark_clean(&mut self) {
        self.dirty_oids.clear();
        self.dead_oids.clear();
        self.dirty_vars.clear();
        self.design_dirty = false;
        for asr in self.asrs.iter_mut().flatten() {
            asr.mark_clean();
        }
    }

    /// Did the physical design (registered ASRs, type sizes) change since
    /// the last [`Database::mark_clean`] fence?  Delta checkpoints refuse
    /// to span design changes — callers fall back to a full checkpoint.
    pub fn is_design_dirty(&self) -> bool {
        self.design_dirty
    }

    /// Change-tracking summary since the fence: `(dirty objects, deleted
    /// objects, rebound variables, changed partition rows)` — powers the
    /// shell's checkpoint-lineage display.
    pub fn dirty_summary(&self) -> (usize, usize, usize, usize) {
        let rows = self
            .asrs()
            .map(|(_, asr)| asr.changed_rows())
            .sum::<usize>();
        (
            self.dirty_oids.len(),
            self.dead_oids.len(),
            self.dirty_vars.len(),
            rows,
        )
    }

    pub(crate) fn dirty_oids(&self) -> &BTreeSet<Oid> {
        &self.dirty_oids
    }

    pub(crate) fn dead_oids(&self) -> &BTreeSet<Oid> {
        &self.dead_oids
    }

    pub(crate) fn dirty_vars(&self) -> &BTreeSet<String> {
        &self.dirty_vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::Decomposition;
    use crate::extension::Extension;

    fn company_db() -> Database {
        let mut s = Schema::new();
        s.define_set("Company", "Division").unwrap();
        s.define_tuple(
            "Division",
            [("Name", "STRING"), ("Manufactures", "ProdSET")],
        )
        .unwrap();
        s.define_set("ProdSET", "Product").unwrap();
        s.define_tuple(
            "Product",
            [("Name", "STRING"), ("Composition", "BasePartSET")],
        )
        .unwrap();
        s.define_set("BasePartSET", "BasePart").unwrap();
        s.define_tuple("BasePart", [("Name", "STRING"), ("Price", "DECIMAL")])
            .unwrap();
        s.validate().unwrap();
        Database::new(s)
    }

    /// Check all registered ASRs of `db` against freshly rebuilt copies.
    fn assert_all_consistent(db: &Database) {
        for (_, asr) in db.asrs() {
            asr.check_consistency().unwrap();
            let reference = AccessSupportRelation::build(
                db.base(),
                asr.path().clone(),
                asr.config().clone(),
                IoStats::new_handle(),
            )
            .unwrap();
            assert_eq!(
                asr.full_rows().cloned().collect::<Vec<_>>(),
                reference.full_rows().cloned().collect::<Vec<_>>(),
                "{} under {}",
                asr.config().extension,
                asr.config().decomposition
            );
        }
    }

    #[test]
    fn end_to_end_build_update_query() {
        let mut db = company_db();
        // Create ASRs for every extension up front, on an empty base.
        let path = "Division.Manufactures.Composition.Name";
        let mut ids = Vec::new();
        for ext in Extension::ALL {
            let p = PathExpression::parse(db.base().schema(), path).unwrap();
            let cfg = AsrConfig {
                extension: ext,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            };
            ids.push(db.create_asr(p, cfg).unwrap());
        }

        // Grow the database through maintained updates only.
        let d = db.instantiate("Division").unwrap();
        db.set_attribute(d, "Name", Value::string("Auto")).unwrap();
        let ps = db.instantiate("ProdSET").unwrap();
        db.set_attribute(d, "Manufactures", Value::Ref(ps)).unwrap();
        let prod = db.instantiate("Product").unwrap();
        db.set_attribute(prod, "Name", Value::string("560 SEC"))
            .unwrap();
        db.insert_into_set(ps, Value::Ref(prod)).unwrap();
        let bs = db.instantiate("BasePartSET").unwrap();
        db.set_attribute(prod, "Composition", Value::Ref(bs))
            .unwrap();
        let part = db.instantiate("BasePart").unwrap();
        db.set_attribute(part, "Name", Value::string("Door"))
            .unwrap();
        db.insert_into_set(bs, Value::Ref(part)).unwrap();
        assert_all_consistent(&db);

        // Full-span backward query works on every extension.
        for &id in &ids {
            let hits = db
                .backward(id, 0, 3, &Cell::Value(Value::string("Door")))
                .unwrap();
            assert_eq!(hits, vec![d], "ASR {id}");
        }
        // Partial span: supported by full, naive fallback elsewhere —
        // results agree either way.
        for &id in &ids {
            let parts = db.forward(id, 1, 2, prod).unwrap();
            assert_eq!(parts, vec![Cell::Oid(part)], "ASR {id}");
        }
    }

    #[test]
    fn updates_through_every_mutation_kind() {
        let mut db = company_db();
        for ext in Extension::ALL {
            let p =
                PathExpression::parse(db.base().schema(), "Division.Manufactures.Composition.Name")
                    .unwrap();
            db.create_asr(
                p,
                AsrConfig {
                    extension: ext,
                    decomposition: Decomposition::new(vec![0, 2, 3]).unwrap(),
                    keep_set_oids: false,
                },
            )
            .unwrap();
        }
        let d = db.instantiate("Division").unwrap();
        let ps = db.instantiate("ProdSET").unwrap();
        let prod = db.instantiate("Product").unwrap();
        let bs = db.instantiate("BasePartSET").unwrap();
        let part = db.instantiate("BasePart").unwrap();

        db.set_attribute(d, "Manufactures", Value::Ref(ps)).unwrap();
        assert_all_consistent(&db); // empty-set marker
        db.insert_into_set(ps, Value::Ref(prod)).unwrap();
        assert_all_consistent(&db); // marker -> edge
        db.set_attribute(prod, "Composition", Value::Ref(bs))
            .unwrap();
        assert_all_consistent(&db);
        db.insert_into_set(bs, Value::Ref(part)).unwrap();
        assert_all_consistent(&db);
        db.set_attribute(part, "Name", Value::string("Door"))
            .unwrap();
        assert_all_consistent(&db); // terminal value edge
        db.set_attribute(part, "Name", Value::string("Hatch"))
            .unwrap();
        assert_all_consistent(&db); // value overwrite
        db.remove_from_set(bs, &Value::Ref(part)).unwrap();
        assert_all_consistent(&db); // edge -> marker
        db.set_attribute(prod, "Composition", Value::Null).unwrap();
        assert_all_consistent(&db); // marker -> bare
        db.set_attribute(d, "Manufactures", Value::Null).unwrap();
        assert_all_consistent(&db);
    }

    #[test]
    fn shared_sets_maintain_all_owners() {
        let mut db = company_db();
        let p = PathExpression::parse(db.base().schema(), "Division.Manufactures.Composition.Name")
            .unwrap();
        db.create_asr(
            p,
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
        let d1 = db.instantiate("Division").unwrap();
        let d2 = db.instantiate("Division").unwrap();
        let shared = db.instantiate("ProdSET").unwrap();
        db.set_attribute(d1, "Manufactures", Value::Ref(shared))
            .unwrap();
        db.set_attribute(d2, "Manufactures", Value::Ref(shared))
            .unwrap();
        let prod = db.instantiate("Product").unwrap();
        db.insert_into_set(shared, Value::Ref(prod)).unwrap();
        assert_all_consistent(&db);
        db.remove_from_set(shared, &Value::Ref(prod)).unwrap();
        assert_all_consistent(&db);
    }

    #[test]
    fn delete_rebuilds() {
        let mut db = company_db();
        let p = PathExpression::parse(db.base().schema(), "Division.Manufactures.Composition.Name")
            .unwrap();
        db.create_asr(
            p,
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::none(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
        let d = db.instantiate("Division").unwrap();
        let ps = db.instantiate("ProdSET").unwrap();
        db.set_attribute(d, "Manufactures", Value::Ref(ps)).unwrap();
        db.delete_object(ps).unwrap();
        assert_all_consistent(&db);
    }

    #[test]
    fn drop_asr_frees_slot() {
        let mut db = company_db();
        let p = PathExpression::parse(db.base().schema(), "Division.Manufactures.Composition.Name")
            .unwrap();
        let id = db
            .create_asr(
                p,
                AsrConfig {
                    extension: Extension::Full,
                    decomposition: Decomposition::none(3),
                    keep_set_oids: false,
                },
            )
            .unwrap();
        assert!(db.asr(id).is_ok());
        db.drop_asr(id).unwrap();
        assert!(db.asr(id).is_err());
        assert!(db.drop_asr(id).is_err());
        assert_eq!(db.asrs().count(), 0);
    }

    #[test]
    fn navigation_routes_through_the_cheapest_supporting_asr() {
        let mut db = company_db();
        let d = db.instantiate("Division").unwrap();
        let ps = db.instantiate("ProdSET").unwrap();
        db.set_attribute(d, "Manufactures", Value::Ref(ps)).unwrap();
        let prod = db.instantiate("Product").unwrap();
        db.insert_into_set(ps, Value::Ref(prod)).unwrap();
        let p = PathExpression::parse(db.base().schema(), "Division.Manufactures.Composition.Name")
            .unwrap();
        // No ASR yet: find nothing, navigation still answers naively.
        assert!(db.find_supporting_asr(&p, 0, 3).is_none());
        let r = db.navigate_forward(&p, 0, 1, d).unwrap();
        assert_eq!(r, vec![Cell::Oid(prod)]);

        // Register canonical (whole chain only, smaller) and full.
        let can = db
            .create_asr(p.clone(), AsrConfig::binary(Extension::Canonical, &p))
            .unwrap();
        let full = db
            .create_asr(p.clone(), AsrConfig::binary(Extension::Full, &p))
            .unwrap();
        // Whole chain: both support; the smaller (canonical) is preferred.
        assert_eq!(db.find_supporting_asr(&p, 0, 3), Some(can));
        // Interior span: only full qualifies.
        assert_eq!(db.find_supporting_asr(&p, 1, 2), Some(full));
        // A different path matches nothing.
        let other =
            PathExpression::parse(db.base().schema(), "Division.Manufactures.Name").unwrap();
        assert!(db.find_supporting_asr(&other, 0, 2).is_none());
        // Auto-routed navigation agrees with the explicit calls.
        let via_auto = db.navigate_backward(&p, 0, 2, &Cell::Oid(prod)).unwrap();
        let via_naive = db.backward_unindexed(&p, 0, 2, &Cell::Oid(prod)).unwrap();
        assert_eq!(via_auto, via_naive);
    }

    #[test]
    fn idempotent_updates_charge_nothing_extra() {
        let mut db = company_db();
        let d = db.instantiate("Division").unwrap();
        db.set_attribute(d, "Name", Value::string("Auto")).unwrap();
        let before = db.stats().accesses();
        db.set_attribute(d, "Name", Value::string("Auto")).unwrap();
        assert_eq!(db.stats().accesses(), before, "no-op assignment");
    }
}
