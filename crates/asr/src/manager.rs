//! The access support relation itself: path + extension + decomposition +
//! stored partitions.

use std::rc::Rc;

use asr_gom::{ObjectBase, Oid, PathExpression};
use asr_pagesim::StatsHandle;

use crate::auxrel::build_auxiliary_relations;
use crate::cell::Cell;
use crate::decomposition::Decomposition;
use crate::error::{AsrError, Result};
use crate::extension::Extension;
use crate::naive::check_span;
use crate::partition::StoredPartition;
use crate::query;
use crate::relation::Relation;

/// The physical-design choices for one access support relation — exactly
/// the two dimensions the paper gives the database designer (Section 7):
/// extension and decomposition, plus the set-OID simplification toggle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsrConfig {
    /// Which tuples to materialize (Definitions 3.4–3.7).
    pub extension: Extension,
    /// How to partition the relation (Definition 3.8).  The cut points
    /// live in *column* space: `m = n + k` when `keep_set_oids`, else
    /// `m = n`.
    pub decomposition: Decomposition,
    /// Keep the set-object OID columns (the general Definition 3.2 form)
    /// or drop them under the paper's no-set-sharing simplification.
    pub keep_set_oids: bool,
}

impl AsrConfig {
    /// The common default used throughout the paper's experiments:
    /// the given extension, binary decomposition, set OIDs dropped.
    pub fn binary(extension: Extension, path: &PathExpression) -> Self {
        AsrConfig {
            extension,
            decomposition: Decomposition::binary(path.arity(false) - 1),
            keep_set_oids: false,
        }
    }

    /// Non-decomposed configuration.
    pub fn non_decomposed(extension: Extension, path: &PathExpression) -> Self {
        AsrConfig {
            extension,
            decomposition: Decomposition::none(path.arity(false) - 1),
            keep_set_oids: false,
        }
    }
}

/// A materialized access support relation over one path expression.
#[derive(Debug)]
pub struct AccessSupportRelation {
    path: PathExpression,
    config: AsrConfig,
    partitions: Vec<StoredPartition>,
    /// Logical mirror of the (undecomposed) extension rows.  Uncharged
    /// bookkeeping: it makes incremental maintenance exactly idempotent
    /// (removal of a row that is not in the extension is a no-op, and
    /// partition witness counts stay consistent with the number of
    /// extension rows projecting onto each partition row).
    ///
    /// Lazily populated: queries run entirely off the partitions' B+
    /// trees, so a physically restored ASR defers the reassembly join
    /// (Theorem 3.9) until the first operation that actually needs the
    /// mirror — an update, a consistency check, or an inspection.
    rows: std::cell::OnceCell<std::collections::BTreeSet<crate::row::Row>>,
    stats: StatsHandle,
}

impl AccessSupportRelation {
    /// Build the ASR from the current state of `base`, charging the page
    /// writes of the initial load to `stats`.
    pub fn build(
        base: &ObjectBase,
        path: PathExpression,
        config: AsrConfig,
        stats: StatsHandle,
    ) -> Result<Self> {
        let m = path.arity(config.keep_set_oids) - 1;
        if config.decomposition.m() != m {
            return Err(AsrError::InvalidDecomposition(format!(
                "decomposition {} does not span the relation width m = {m}",
                config.decomposition
            )));
        }
        let mut asr = AccessSupportRelation {
            path,
            config,
            partitions: Vec::new(),
            rows: std::cell::OnceCell::new(),
            stats,
        };
        asr.rebuild(base)?;
        Ok(asr)
    }

    /// Assemble an ASR from physically restored partitions — the `ASRDB 2`
    /// load path.  No extension join runs at load time: queries serve
    /// straight off the adopted trees, and the logical extension mirror is
    /// re-derived from the partitions' (uncharged) row mirrors via
    /// Theorem 3.9's lossless reassembly the first time maintenance or a
    /// consistency check needs it — so incremental maintenance composes
    /// exactly as it would on the originally built ASR.
    pub(crate) fn from_restored(
        path: PathExpression,
        config: AsrConfig,
        partitions: Vec<StoredPartition>,
        stats: StatsHandle,
    ) -> Result<Self> {
        let m = path.arity(config.keep_set_oids) - 1;
        if config.decomposition.m() != m {
            return Err(AsrError::InvalidDecomposition(format!(
                "decomposition {} does not span the relation width m = {m}",
                config.decomposition
            )));
        }
        let spans: Vec<(usize, usize)> = config.decomposition.partitions().collect();
        let got: Vec<(usize, usize)> = partitions.iter().map(StoredPartition::span).collect();
        if spans != got {
            return Err(AsrError::Snapshot(format!(
                "restored partitions span {got:?}, decomposition expects {spans:?}"
            )));
        }
        Ok(AccessSupportRelation {
            path,
            config,
            partitions,
            rows: std::cell::OnceCell::new(),
            stats,
        })
    }

    /// Reassemble the logical extension from the partition mirrors
    /// (Theorem 3.9) — the deferred half of [`Self::from_restored`].
    fn derive_rows(&self) -> Result<std::collections::BTreeSet<crate::row::Row>> {
        let parts: Vec<Relation> = self
            .partitions
            .iter()
            .map(StoredPartition::mirror_relation)
            .collect::<Result<_>>()?;
        let extension = self
            .config
            .decomposition
            .reassemble(&parts, self.config.extension)?;
        Ok(extension.iter().cloned().collect())
    }

    /// The logical extension mirror, deriving it on first use.
    fn extension_mirror(&self) -> Result<&std::collections::BTreeSet<crate::row::Row>> {
        if let Some(rows) = self.rows.get() {
            return Ok(rows);
        }
        let derived = self.derive_rows()?;
        Ok(self.rows.get_or_init(|| derived))
    }

    /// Recompute the whole ASR from scratch (used after bulk loads; unit of
    /// comparison for incremental maintenance tests).
    ///
    /// Partitions are bulk-loaded bottom-up: each distinct projected row is
    /// written once with a witness count equal to the number of extension
    /// rows projecting onto it, so subsequent incremental maintenance
    /// composes exactly.
    pub fn rebuild(&mut self, base: &ObjectBase) -> Result<()> {
        let aux = build_auxiliary_relations(base, &self.path, self.config.keep_set_oids)?;
        let extension = self.config.extension.compute(&aux)?;
        self.partitions = self
            .config
            .decomposition
            .partitions()
            .map(|(a, b)| {
                let mut counts: std::collections::BTreeMap<crate::row::Row, u64> =
                    std::collections::BTreeMap::new();
                for row in extension.iter() {
                    let proj = row.project(a, b);
                    if !proj.is_all_null() {
                        *counts.entry(proj).or_default() += 1;
                    }
                }
                let mut sp = StoredPartition::new(a, b, Rc::clone(&self.stats));
                sp.tag(&format!("asr[{}].{a}-{b}", self.path));
                sp.bulk_load(counts)?;
                Ok(sp)
            })
            .collect::<Result<_>>()?;
        let mirror = std::cell::OnceCell::new();
        let _ = mirror.set(extension.iter().cloned().collect());
        self.rows = mirror;
        Ok(())
    }

    /// Restrict every stored partition to the rows `keep` accepts — the
    /// shard-placement primitive.  `keep` sees the partition index and the
    /// stored (projected) row; surviving rows keep their witness counts.
    ///
    /// The result is a *placement slice*, not a smaller extension: span
    /// queries against a slice return exactly the slice's fragments, and a
    /// scatter-gather coordinator that broadcasts each partition probe to
    /// every slice and unions the fragments reconstructs the unrestricted
    /// answer (placement partitions each partition's row set, so the union
    /// over slices is the original partition content).  Incremental
    /// maintenance is **not** supported on a slice — the extension mirror
    /// is dropped so nothing silently reassembles cross-slice rows;
    /// mutations flow through the primary and re-seed placements via the
    /// replication substrate.
    ///
    /// Returns the number of stored rows retained across all partitions.
    pub fn retain_partition_rows(
        &mut self,
        mut keep: impl FnMut(usize, &crate::row::Row) -> bool,
    ) -> Result<u64> {
        let spans: Vec<(usize, usize)> = self.config.decomposition.partitions().collect();
        let mut placed = 0u64;
        for (idx, &(a, b)) in spans.iter().enumerate() {
            let mut kept: Vec<(crate::row::Row, u64)> = Vec::new();
            {
                let old = &self.partitions[idx];
                old.scan(|row| {
                    if keep(idx, row) {
                        kept.push((row.clone(), old.witness_count(row)));
                    }
                });
            }
            placed += kept.len() as u64;
            let mut sp = StoredPartition::new(a, b, Rc::clone(&self.stats));
            sp.tag(&format!("asr[{}].{a}-{b}", self.path));
            sp.bulk_load(kept)?;
            self.partitions[idx] = sp;
        }
        self.rows = std::cell::OnceCell::new();
        Ok(placed)
    }

    /// Insert one extension row, projecting it onto every partition
    /// (each projection gains one witness).  Inserting a row already in the
    /// extension is a no-op.
    pub(crate) fn insert_full_row(&mut self, row: crate::row::Row) -> Result<bool> {
        if row.is_all_null() || self.extension_mirror()?.contains(&row) {
            return Ok(false);
        }
        for part in &mut self.partitions {
            let (a, b) = part.span();
            part.insert(row.project(a, b))?;
        }
        self.rows
            .get_mut()
            .expect("mirror just derived")
            .insert(row);
        Ok(true)
    }

    /// Remove one extension row (each partition projection loses one
    /// witness).  Removing a row not in the extension is a no-op.
    pub(crate) fn remove_full_row(&mut self, row: &crate::row::Row) -> Result<bool> {
        if !self.extension_mirror()?.contains(row) {
            return Ok(false);
        }
        self.rows
            .get_mut()
            .expect("mirror just derived")
            .remove(row);
        for part in &mut self.partitions {
            let (a, b) = part.span();
            part.remove(&row.project(a, b))?;
        }
        Ok(true)
    }

    /// Is this exact row in the (logical) extension?  Derives the
    /// extension mirror on first use; an ASR whose partitions cannot be
    /// reassembled reports `false`.
    pub fn contains_full_row(&self, row: &crate::row::Row) -> bool {
        self.extension_mirror().is_ok_and(|rows| rows.contains(row))
    }

    /// Iterate the logical extension rows (uncharged; for tests and
    /// inspection).  Derives the extension mirror on first use.
    ///
    /// # Panics
    ///
    /// If the stored partitions cannot be reassembled — impossible for
    /// any ASR that passed restore validation or was built here.
    pub fn full_rows(&self) -> impl Iterator<Item = &crate::row::Row> {
        self.extension_mirror()
            .expect("stored partitions reassemble losslessly (Theorem 3.9)")
            .iter()
    }

    /// The indexed path expression.
    pub fn path(&self) -> &PathExpression {
        &self.path
    }

    /// The physical-design configuration.
    pub fn config(&self) -> &AsrConfig {
        &self.config
    }

    /// The stored partitions, in left-to-right span order.
    pub fn partitions(&self) -> &[StoredPartition] {
        &self.partitions
    }

    /// Mutable partition access for MVCC version publishing
    /// ([`crate::Database::snapshot`]).
    pub(crate) fn partitions_mut(&mut self) -> &mut [StoredPartition] {
        &mut self.partitions
    }

    /// Fence every partition's delta change tracking (see
    /// [`StoredPartition::mark_clean`]).
    pub(crate) fn mark_clean(&mut self) {
        for p in &mut self.partitions {
            p.mark_clean();
        }
    }

    /// Distinct rows changed across all partitions since the fence.
    pub(crate) fn changed_rows(&self) -> usize {
        self.partitions
            .iter()
            .map(StoredPartition::changed_rows)
            .sum()
    }

    /// The shared page-access counter.
    pub fn stats(&self) -> &StatsHandle {
        &self.stats
    }

    /// Give every partition's trees LRU buffer pools of `pages` pages
    /// (0 restores the paper's unbuffered accounting).
    pub fn enable_buffering(&mut self, pages: usize) {
        for p in &mut self.partitions {
            p.enable_buffering(pages);
        }
    }

    /// Can this ASR evaluate `Q_{i,j}` (formula 35)?
    pub fn supports(&self, i: usize, j: usize) -> bool {
        i < j && j <= self.path.len() && self.config.extension.supports(i, j, self.path.len())
    }

    /// Total distinct rows across partitions.
    pub fn total_rows(&self) -> usize {
        self.partitions.iter().map(StoredPartition::len).sum()
    }

    /// Total tuple bytes across partitions (the paper's storage-cost
    /// measure, Section 4.3, for the non-redundant representation).
    pub fn data_bytes(&self) -> u64 {
        self.partitions
            .iter()
            .map(StoredPartition::data_bytes)
            .sum()
    }

    /// Total pages across both redundant B+ trees of every partition.
    pub fn total_pages(&self) -> u64 {
        self.partitions
            .iter()
            .map(StoredPartition::total_pages)
            .sum()
    }

    /// Map a path position to its relation column.
    pub fn column_of(&self, pos: usize) -> usize {
        self.path.column_of(pos, self.config.keep_set_oids)
    }

    /// Forward span query `Q_{i,j}(fw)` from a `t_i` object (supported
    /// evaluation; errors with [`AsrError::Unsupported`] when formula 35
    /// rules this extension out — callers fall back to naive evaluation).
    pub fn forward(&self, i: usize, j: usize, start: Oid) -> Result<Vec<Cell>> {
        check_span(&self.path, i, j)?;
        if !self.supports(i, j) {
            return Err(AsrError::Unsupported {
                extension: self.config.extension.name(),
                i,
                j,
                n: self.path.len(),
            });
        }
        Ok(query::forward_supported(
            &self.partitions,
            &self.config.decomposition,
            self.column_of(i),
            self.column_of(j),
            &Cell::Oid(start),
        ))
    }

    /// Backward span query `Q_{i,j}(bw)`: the `t_i` objects whose path
    /// reaches `target` (a `t_j` OID, or an attribute value when the path
    /// ends in one and `j = n`).
    pub fn backward(&self, i: usize, j: usize, target: &Cell) -> Result<Vec<Oid>> {
        check_span(&self.path, i, j)?;
        if !self.supports(i, j) {
            return Err(AsrError::Unsupported {
                extension: self.config.extension.name(),
                i,
                j,
                n: self.path.len(),
            });
        }
        let cells = query::backward_supported(
            &self.partitions,
            &self.config.decomposition,
            self.column_of(i),
            self.column_of(j),
            target,
        );
        Ok(cells.into_iter().filter_map(|c| c.as_oid()).collect())
    }

    /// Reassemble the full logical relation from the stored partitions
    /// (Theorem 3.9) — primarily for tests and inspection.
    pub fn to_relation(&self) -> Result<Relation> {
        let parts: Vec<Relation> = self
            .partitions
            .iter()
            .map(StoredPartition::to_relation)
            .collect::<Result<_>>()?;
        self.config
            .decomposition
            .reassemble(&parts, self.config.extension)
    }

    /// Verify partition invariants and that every partition's witness
    /// counts agree with the logical extension mirror (tests).
    pub fn check_consistency(&self) -> Result<()> {
        let rows = self.extension_mirror()?;
        for p in &self.partitions {
            p.check_consistency()?;
            let (a, b) = p.span();
            let mut counts: std::collections::HashMap<crate::row::Row, u64> =
                std::collections::HashMap::new();
            for row in rows {
                let proj = row.project(a, b);
                if !proj.is_all_null() {
                    *counts.entry(proj).or_default() += 1;
                }
            }
            if counts.len() != p.len() {
                return Err(AsrError::PageSim(
                    asr_pagesim::PageSimError::CorruptStructure(format!(
                        "partition [{a},{b}]: {} stored rows but {} distinct projections",
                        p.len(),
                        counts.len()
                    )),
                ));
            }
            for (row, want) in counts {
                let got = p.witness_count(&row);
                if got != want {
                    return Err(AsrError::PageSim(
                        asr_pagesim::PageSimError::CorruptStructure(format!(
                            "partition [{a},{b}]: row {row} has {got} witnesses, expected {want}"
                        )),
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_gom::Value;
    use asr_pagesim::IoStats;

    fn oid_of(base: &ObjectBase, name: &str) -> Oid {
        base.objects()
            .find(|o| o.attribute("Name") == &Value::string(name))
            .map(|o| o.oid)
            .unwrap()
    }

    fn build(ext: Extension, dec: Decomposition) -> (ObjectBase, AccessSupportRelation) {
        let (base, path) = crate::testutil::figure2_base();
        let config = AsrConfig {
            extension: ext,
            decomposition: dec,
            keep_set_oids: false,
        };
        let asr = AccessSupportRelation::build(&base, path, config, IoStats::new_handle()).unwrap();
        (base, asr)
    }

    #[test]
    fn canonical_full_span_queries() {
        let (base, asr) = build(Extension::Canonical, Decomposition::binary(3));
        asr.check_consistency().unwrap();
        // Query 2: which Division uses a BasePart named "Door"?
        let hits = asr
            .backward(0, 3, &Cell::Value(Value::string("Door")))
            .unwrap();
        assert_eq!(hits.len(), 2);
        // Query 3 direction: names reachable from Auto.
        let auto = oid_of(&base, "Auto");
        let names = asr.forward(0, 3, auto).unwrap();
        assert_eq!(names, vec![Cell::Value(Value::string("Door"))]);
        // Partial spans unsupported on canonical.
        assert!(matches!(
            asr.forward(0, 2, auto),
            Err(AsrError::Unsupported {
                extension: "canonical",
                ..
            })
        ));
        assert!(asr
            .backward(1, 3, &Cell::Value(Value::string("Door")))
            .is_err());
    }

    #[test]
    fn full_extension_supports_every_span() {
        let (base, asr) = build(Extension::Full, Decomposition::none(3));
        let sec = oid_of(&base, "560 SEC");
        let parts = asr.forward(1, 2, sec).unwrap();
        assert_eq!(parts, vec![Cell::Oid(oid_of(&base, "Door"))]);
        let sausage = oid_of(&base, "Sausage");
        let names = asr.forward(1, 3, sausage).unwrap();
        assert_eq!(names, vec![Cell::Value(Value::string("Pepper"))]);
        let holders = asr
            .backward(1, 2, &Cell::Oid(oid_of(&base, "Pepper")))
            .unwrap();
        assert_eq!(holders, vec![oid_of(&base, "Sausage")]);
    }

    #[test]
    fn left_complete_supports_anchored_spans_only() {
        let (base, asr) = build(Extension::LeftComplete, Decomposition::binary(3));
        let truck = oid_of(&base, "Truck");
        let products = asr.forward(0, 1, truck).unwrap();
        assert_eq!(products.len(), 2);
        assert!(asr.forward(1, 2, oid_of(&base, "560 SEC")).is_err());
        let hits = asr
            .backward(0, 2, &Cell::Oid(oid_of(&base, "Door")))
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn right_complete_supports_terminal_spans_only() {
        let (base, asr) = build(Extension::RightComplete, Decomposition::binary(3));
        let hits = asr
            .backward(1, 3, &Cell::Value(Value::string("Pepper")))
            .unwrap();
        assert_eq!(hits, vec![oid_of(&base, "Sausage")]);
        assert!(asr
            .backward(0, 2, &Cell::Oid(oid_of(&base, "Door")))
            .is_err());
        // Forward to the terminal from an interior anchor.
        let names = asr.forward(1, 3, oid_of(&base, "Sausage")).unwrap();
        assert_eq!(names, vec![Cell::Value(Value::string("Pepper"))]);
    }

    #[test]
    fn reassembled_relation_matches_direct_computation() {
        let (base, path) = crate::testutil::figure2_base();
        for ext in Extension::ALL {
            for dec in Decomposition::enumerate_all(3) {
                let config = AsrConfig {
                    extension: ext,
                    decomposition: dec,
                    keep_set_oids: false,
                };
                let asr = AccessSupportRelation::build(
                    &base,
                    path.clone(),
                    config,
                    IoStats::new_handle(),
                )
                .unwrap();
                let aux = build_auxiliary_relations(&base, &path, false).unwrap();
                let direct = ext.compute(&aux).unwrap();
                assert_eq!(asr.to_relation().unwrap(), direct, "{ext}");
            }
        }
    }

    #[test]
    fn decomposition_width_validated() {
        let (base, path) = crate::testutil::figure2_base();
        let config = AsrConfig {
            extension: Extension::Full,
            decomposition: Decomposition::binary(7),
            keep_set_oids: false,
        };
        assert!(matches!(
            AccessSupportRelation::build(&base, path, config, IoStats::new_handle()),
            Err(AsrError::InvalidDecomposition(_))
        ));
    }

    #[test]
    fn set_oid_form_queries_work() {
        let (base, path) = crate::testutil::figure2_base();
        let config = AsrConfig {
            extension: Extension::Full,
            decomposition: Decomposition::binary(path.arity(true) - 1),
            keep_set_oids: true,
        };
        let asr = AccessSupportRelation::build(&base, path, config, IoStats::new_handle()).unwrap();
        let auto = oid_of(&base, "Auto");
        let names = asr.forward(0, 3, auto).unwrap();
        assert_eq!(names, vec![Cell::Value(Value::string("Door"))]);
        let hits = asr
            .backward(0, 3, &Cell::Value(Value::string("Door")))
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn storage_metrics_nonzero() {
        let (_, asr) = build(Extension::Full, Decomposition::binary(3));
        assert!(asr.total_rows() > 0);
        assert!(asr.data_bytes() > 0);
        assert!(asr.total_pages() >= 6, "two trees per partition");
    }
}
