//! Naive (unsupported) query evaluation and charged object-base searches.
//!
//! When no access support relation applies, queries navigate the object
//! representation itself (Section 5.6 of the paper):
//!
//! * a **forward** query reads the start object and then every object on a
//!   path from it through the intermediate types (`Qnas_{i,j}(fw)`,
//!   formula 31);
//! * a **backward** query has no reverse references to follow — it scans
//!   the anchor extent exhaustively and performs the forward closure from
//!   *all* anchors (`Qnas_{i,j}(bw)`, formula 32).
//!
//! The same machinery provides the *maximal prefix/suffix searches* that
//! access-relation maintenance needs when the chosen extension does not
//! contain the required partial paths (the searches priced by formula 36).
//!
//! All object accesses are charged through the [`ObjectStore`]; in-memory
//! postprocessing (reverse reachability) is free, consistent with the
//! paper's page-access-only cost metric.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use asr_gom::{ObjectBase, Oid, PathExpression, TypeRef, Value};

use crate::cell::Cell;
use crate::error::{AsrError, Result};
use crate::row::Row;
use crate::store::ObjectStore;

/// Cell fragments of partial rows, memoized per `(object, position)`.
type FragmentMemo = HashMap<(Oid, usize), Vec<Vec<Option<Cell>>>>;

/// Reverse edges per position: target object -> `(set instance,
/// predecessor)` pairs.
type ReverseEdges = BTreeMap<Oid, Vec<(Option<Oid>, Oid)>>;

/// Validate a query span `0 ≤ i < j ≤ n`.
pub fn check_span(path: &PathExpression, i: usize, j: usize) -> Result<()> {
    if i < j && j <= path.len() {
        Ok(())
    } else {
        Err(AsrError::InvalidSpan {
            i,
            j,
            n: path.len(),
        })
    }
}

/// The navigable targets of one step from object `oid`, as
/// `(set oid if the step is a set occurrence, target cell)` pairs.
/// An empty-set attribute yields a single `(Some(set), None)` marker; an
/// undefined attribute yields nothing.
fn step_targets(
    base: &ObjectBase,
    oid: Oid,
    step: &asr_gom::PathStep,
) -> Result<Vec<(Option<Oid>, Option<Cell>)>> {
    let value = base.get_attribute(oid, &step.attr)?;
    match value {
        Value::Null => Ok(vec![]),
        Value::Ref(target) if step.is_set_occurrence() => {
            if !base.contains(target) {
                return Ok(vec![]);
            }
            let set_obj = base.object(target)?;
            let members: Vec<Option<Cell>> = set_obj
                .elements()
                .filter_map(Cell::from_gom)
                .filter(|c| match c {
                    Cell::Oid(o) => base.contains(*o),
                    Cell::Value(_) => true,
                })
                .map(Some)
                .collect();
            if members.is_empty() {
                Ok(vec![(Some(target), None)])
            } else {
                Ok(members.into_iter().map(|m| (Some(target), m)).collect())
            }
        }
        Value::Ref(target) => {
            if base.contains(target) {
                Ok(vec![(None, Some(Cell::Oid(target)))])
            } else {
                Ok(vec![])
            }
        }
        atomic => Ok(vec![(None, Cell::from_gom(&atomic))]),
    }
}

/// Forward query without access support: all `t_j` cells reachable from
/// the `t_i` object `start` (formula 31's access pattern: the start object
/// plus every distinct intermediate object, once each).
pub fn forward_naive(
    base: &ObjectBase,
    store: &ObjectStore,
    path: &PathExpression,
    i: usize,
    j: usize,
    start: Oid,
) -> Result<Vec<Cell>> {
    check_span(path, i, j)?;
    store.charge_read(base.type_of(start)?, start);
    let mut frontier: BTreeSet<Oid> = BTreeSet::from([start]);
    let mut result: BTreeSet<Cell> = BTreeSet::new();
    for l in i..j {
        let step = &path.steps()[l];
        // Levels strictly between i and j are charged per distinct object;
        // level i was charged above.
        if l > i {
            for &o in &frontier {
                store.charge_read(base.type_of(o)?, o);
            }
        }
        let mut next: BTreeSet<Oid> = BTreeSet::new();
        for &o in &frontier {
            for (_, target) in step_targets(base, o, step)? {
                match target {
                    Some(Cell::Oid(t)) if l + 1 < j => {
                        next.insert(t);
                    }
                    Some(cell) if l + 1 == j => {
                        result.insert(cell);
                    }
                    _ => {}
                }
            }
        }
        frontier = next;
    }
    Ok(result.into_iter().collect())
}

/// Backward query without access support: all `t_i` objects with a path to
/// `target` (a `t_j` OID or, when `j = n` ends in a value, an attribute
/// value).  Exhaustively scans the `t_i` extent and forward-closes through
/// the intermediate levels (formula 32's access pattern); the reverse
/// reachability is computed in memory.
pub fn backward_naive(
    base: &ObjectBase,
    store: &ObjectStore,
    path: &PathExpression,
    i: usize,
    j: usize,
    target: &Cell,
) -> Result<Vec<Oid>> {
    check_span(path, i, j)?;
    let TypeRef::Named(anchor_ty) = path.type_at(i) else {
        return Err(AsrError::InvalidSpan {
            i,
            j,
            n: path.len(),
        });
    };
    // op_i: exhaustive scan of the anchor extent (all subtype files).
    for sub in base.schema().subtype_closure(anchor_ty) {
        store.charge_scan(sub);
    }
    let mut level: BTreeSet<Oid> = base.extent_closure(anchor_ty).into_iter().collect();
    let anchors: Vec<Oid> = level.iter().copied().collect();
    // successors[l] maps each level-l object to its step targets.
    let mut successors: Vec<BTreeMap<Oid, BTreeSet<Cell>>> = Vec::new();
    for l in i..j {
        let step = &path.steps()[l];
        if l > i {
            for &o in &level {
                store.charge_read(base.type_of(o)?, o);
            }
        }
        let mut succ: BTreeMap<Oid, BTreeSet<Cell>> = BTreeMap::new();
        let mut next: BTreeSet<Oid> = BTreeSet::new();
        for &o in &level {
            let entry = succ.entry(o).or_default();
            for (_, t) in step_targets(base, o, step)? {
                if let Some(cell) = t {
                    if let Cell::Oid(t_oid) = &cell {
                        if l + 1 < j {
                            next.insert(*t_oid);
                        }
                    }
                    entry.insert(cell);
                }
            }
        }
        successors.push(succ);
        level = next;
    }
    // In-memory reverse reachability from the target.
    let mut reachable: BTreeSet<Cell> = BTreeSet::from([target.clone()]);
    for succ in successors.iter().rev() {
        let mut prev: BTreeSet<Cell> = BTreeSet::new();
        for (o, targets) in succ {
            if targets.iter().any(|t| reachable.contains(t)) {
                prev.insert(Cell::Oid(*o));
            }
        }
        reachable = prev;
    }
    Ok(anchors
        .into_iter()
        .filter(|o| reachable.contains(&Cell::Oid(*o)))
        .collect())
}

// ----------------------------------------------------------------------
// Charged searches for maintenance (Section 6.1)
// ----------------------------------------------------------------------

/// All **maximal suffix rows** starting at `start` in path position `pos`:
/// rows spanning the relation columns `col(pos) … m`, enumerating every
/// way the path continues from `start` (padded with NULLs where it stops).
///
/// This is the forward search maintenance performs to materialize the
/// paper's `I_r` relation.  Each visited object is charged once.
pub fn forward_suffixes(
    base: &ObjectBase,
    store: &ObjectStore,
    path: &PathExpression,
    pos: usize,
    start: &Cell,
    keep_set_oids: bool,
) -> Result<Vec<Row>> {
    let tail_cols = path.arity(keep_set_oids) - path.column_of(pos, keep_set_oids);
    match start {
        Cell::Value(_) => {
            // Atomic terminal: the suffix is the single value column.
            debug_assert_eq!(pos, path.len());
            Ok(vec![Row::new(vec![Some(start.clone())])])
        }
        Cell::Oid(oid) => {
            let mut memo: FragmentMemo = HashMap::new();
            let mut charged: BTreeSet<Oid> = BTreeSet::new();
            let frags = suffix_fragments(
                base,
                store,
                path,
                pos,
                *oid,
                keep_set_oids,
                &mut memo,
                &mut charged,
            )?;
            Ok(frags
                .into_iter()
                .map(|mut f| {
                    f.resize(tail_cols, None);
                    Row::new(f)
                })
                .collect())
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn suffix_fragments(
    base: &ObjectBase,
    store: &ObjectStore,
    path: &PathExpression,
    pos: usize,
    oid: Oid,
    keep_set_oids: bool,
    memo: &mut FragmentMemo,
    charged: &mut BTreeSet<Oid>,
) -> Result<Vec<Vec<Option<Cell>>>> {
    if let Some(hit) = memo.get(&(oid, pos)) {
        return Ok(hit.clone());
    }
    if pos == path.len() {
        return Ok(vec![vec![Some(Cell::Oid(oid))]]);
    }
    if charged.insert(oid) {
        store.charge_read(base.type_of(oid)?, oid);
    }
    let step = &path.steps()[pos];
    let targets = step_targets(base, oid, step)?;
    let mut out: Vec<Vec<Option<Cell>>> = Vec::new();
    if targets.is_empty() {
        out.push(vec![Some(Cell::Oid(oid))]); // path stops here; NULL-padded by caller
    } else {
        for (set, target) in targets {
            let mut head = vec![Some(Cell::Oid(oid))];
            if keep_set_oids && step.is_set_occurrence() {
                head.push(set.map(Cell::Oid));
            }
            match target {
                None => out.push(head), // empty-set marker
                Some(Cell::Oid(t)) => {
                    for tail in suffix_fragments(
                        base,
                        store,
                        path,
                        pos + 1,
                        t,
                        keep_set_oids,
                        memo,
                        charged,
                    )? {
                        let mut row = head.clone();
                        row.extend(tail);
                        out.push(row);
                    }
                }
                Some(cell @ Cell::Value(_)) => {
                    let mut row = head;
                    row.push(Some(cell));
                    out.push(row);
                }
            }
        }
    }
    memo.insert((oid, pos), out.clone());
    Ok(out)
}

/// All **maximal prefix rows** ending at `end` in path position `pos`:
/// rows spanning the relation columns `0 … col(pos)` (NULL-padded on the
/// left where the path begins), enumerating every chain of referencing
/// objects.
///
/// References are uni-directional, so this search must *scan* the extents
/// of the types `t_0 … t_{pos-1}` (the paper's `Σ op_l` term in formula 36)
/// and build the reverse edges in memory.
pub fn backward_prefixes(
    base: &ObjectBase,
    store: &ObjectStore,
    path: &PathExpression,
    pos: usize,
    end: Oid,
    keep_set_oids: bool,
) -> Result<Vec<Row>> {
    assert!(pos <= path.len());
    // Charge the scans and collect reverse edges level by level.
    // rev[l] : object at position l -> (set oid, predecessor at l-1)
    let mut rev: Vec<ReverseEdges> = vec![BTreeMap::new(); pos + 1];
    for l in 0..pos {
        let TypeRef::Named(ty) = path.type_at(l) else {
            unreachable!("interior types are named")
        };
        for sub in base.schema().subtype_closure(ty) {
            store.charge_scan(sub);
        }
        let step = &path.steps()[l];
        for &o in &base.extent_closure(ty) {
            for (set, target) in step_targets(base, o, step)? {
                if let Some(Cell::Oid(t)) = target {
                    rev[l + 1].entry(t).or_default().push((set, o));
                }
            }
        }
    }
    let mut memo: FragmentMemo = HashMap::new();
    let frags = prefix_fragments(path, pos, end, keep_set_oids, &rev, &mut memo);
    let head_cols = path.column_of(pos, keep_set_oids) + 1;
    Ok(frags
        .into_iter()
        .map(|f| {
            let mut row = vec![None; head_cols - f.len()];
            row.extend(f);
            Row::new(row)
        })
        .collect())
}

fn prefix_fragments(
    path: &PathExpression,
    pos: usize,
    oid: Oid,
    keep_set_oids: bool,
    rev: &[ReverseEdges],
    memo: &mut FragmentMemo,
) -> Vec<Vec<Option<Cell>>> {
    if let Some(hit) = memo.get(&(oid, pos)) {
        return hit.clone();
    }
    let preds = if pos == 0 { None } else { rev[pos].get(&oid) };
    let out: Vec<Vec<Option<Cell>>> = match preds {
        None => vec![vec![Some(Cell::Oid(oid))]],
        Some(preds) if preds.is_empty() => vec![vec![Some(Cell::Oid(oid))]],
        Some(preds) => {
            let step = &path.steps()[pos - 1];
            let mut out = Vec::new();
            for (set, pred) in preds {
                for mut head in prefix_fragments(path, pos - 1, *pred, keep_set_oids, rev, memo) {
                    if keep_set_oids && step.is_set_occurrence() {
                        head.push(set.map(Cell::Oid));
                    }
                    head.push(Some(Cell::Oid(oid)));
                    out.push(head);
                }
            }
            out
        }
    };
    memo.insert((oid, pos), out.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_pagesim::IoStats;
    use std::rc::Rc;

    fn setup() -> (ObjectBase, PathExpression, ObjectStore) {
        let (base, path) = crate::testutil::figure2_base();
        let stats = IoStats::new_handle();
        let mut store = ObjectStore::new(stats);
        store.sync_with_base(&base).unwrap();
        (base, path, store)
    }

    fn oid_of(base: &ObjectBase, name: &str) -> Oid {
        base.objects()
            .find(|o| o.attribute("Name") == &Value::string(name))
            .map(|o| o.oid)
            .unwrap()
    }

    #[test]
    fn forward_full_span() {
        let (base, path, store) = setup();
        let auto = oid_of(&base, "Auto");
        let names = forward_naive(&base, &store, &path, 0, 3, auto).unwrap();
        assert_eq!(names, vec![Cell::Value(Value::string("Door"))]);
    }

    #[test]
    fn forward_partial_span() {
        let (base, path, store) = setup();
        let truck = oid_of(&base, "Truck");
        let products = forward_naive(&base, &store, &path, 0, 1, truck).unwrap();
        assert_eq!(products.len(), 2, "Truck manufactures 560 SEC and MB Trak");
        let sec = oid_of(&base, "560 SEC");
        let parts = forward_naive(&base, &store, &path, 1, 2, sec).unwrap();
        assert_eq!(parts, vec![Cell::Oid(oid_of(&base, "Door"))]);
    }

    #[test]
    fn forward_charges_pages() {
        let (base, path, store) = setup();
        let auto = oid_of(&base, "Auto");
        let stats = Rc::clone(store.stats());
        stats.reset();
        forward_naive(&base, &store, &path, 0, 3, auto).unwrap();
        // Auto + 560 SEC + Door are read (sets inline).
        assert_eq!(stats.accesses(), 3);
    }

    #[test]
    fn backward_finds_divisions_using_door() {
        let (base, path, store) = setup();
        // Query 2 of the paper: which Division uses a BasePart named Door?
        let hits = backward_naive(
            &base,
            &store,
            &path,
            0,
            3,
            &Cell::Value(Value::string("Door")),
        )
        .unwrap();
        let names: Vec<_> = hits
            .iter()
            .map(|o| base.get_attribute(*o, "Name").unwrap())
            .collect();
        assert!(names.contains(&Value::string("Auto")));
        assert!(
            names.contains(&Value::string("Truck")),
            "i5 = {{i6,...}} reaches Door too"
        );
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn backward_by_oid_target() {
        let (base, path, store) = setup();
        let door = oid_of(&base, "Door");
        let hits = backward_naive(&base, &store, &path, 0, 2, &Cell::Oid(door)).unwrap();
        assert_eq!(hits.len(), 2);
        // Nobody reaches Pepper from a Division.
        let pepper = oid_of(&base, "Pepper");
        let hits = backward_naive(&base, &store, &path, 0, 2, &Cell::Oid(pepper)).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn backward_charges_extent_scan() {
        let (base, path, store) = setup();
        let stats = Rc::clone(store.stats());
        // An invalid span must not charge anything.
        assert!(backward_naive(&base, &store, &path, 1, 1, &Cell::Oid(Oid::from_raw(0))).is_err());
        assert_eq!(stats.accesses(), 0);
        backward_naive(
            &base,
            &store,
            &path,
            0,
            3,
            &Cell::Value(Value::string("Door")),
        )
        .unwrap();
        assert!(
            stats.accesses() >= store.page_count(path.anchor()),
            "at least op_0"
        );
    }

    #[test]
    fn invalid_spans_rejected() {
        let (base, path, store) = setup();
        let auto = oid_of(&base, "Auto");
        assert!(forward_naive(&base, &store, &path, 2, 2, auto).is_err());
        assert!(forward_naive(&base, &store, &path, 0, 9, auto).is_err());
        assert!(backward_naive(&base, &store, &path, 3, 1, &Cell::Oid(auto)).is_err());
    }

    #[test]
    fn suffixes_enumerate_maximal_paths() {
        let (base, path, store) = setup();
        let truck = oid_of(&base, "Truck");
        let rows = forward_suffixes(&base, &store, &path, 0, &Cell::Oid(truck), false).unwrap();
        // Truck -> 560 SEC -> Door -> "Door" and Truck -> MB Trak -> stop.
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.arity() == 4));
        assert!(rows.iter().any(|r| r.trailing_nulls() == 2));
        assert!(rows
            .iter()
            .any(|r| r.last() == &Some(Cell::Value(Value::string("Door")))));
    }

    #[test]
    fn suffixes_with_set_oids_have_wider_rows() {
        let (base, path, store) = setup();
        let truck = oid_of(&base, "Truck");
        let rows = forward_suffixes(&base, &store, &path, 0, &Cell::Oid(truck), true).unwrap();
        assert!(rows.iter().all(|r| r.arity() == 6));
    }

    #[test]
    fn prefixes_enumerate_referencing_chains() {
        let (base, path, store) = setup();
        let door = oid_of(&base, "Door");
        let rows = backward_prefixes(&base, &store, &path, 2, door, false).unwrap();
        // Door is reached from Auto and from Truck via 560 SEC.
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.arity() == 3));
        assert!(rows.iter().all(|r| r.last() == &Some(Cell::Oid(door))));
        assert!(rows.iter().all(|r| r.first().is_some()));
        // Pepper's chain stops at Sausage, which nothing references.
        let pepper = oid_of(&base, "Pepper");
        let rows = backward_prefixes(&base, &store, &path, 2, pepper, false).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].leading_nulls(), 1);
    }

    #[test]
    fn trivial_prefix_for_unreferenced_object() {
        let (base, path, store) = setup();
        let sausage = oid_of(&base, "Sausage");
        let rows = backward_prefixes(&base, &store, &path, 1, sausage, false).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], Row::new(vec![None, Some(Cell::Oid(sausage))]));
    }
}
