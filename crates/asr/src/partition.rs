//! Stored partitions: the on-"disk" form of access support relations.
//!
//! Following Valduriez' join indices, every partition `E^{i,j}_X` is stored
//! in **two redundant B+ trees** (Section 5.2): one clustered on the first
//! attribute (OIDs of `t_i` objects — fast *forward* lookups) and one on
//! the last attribute (OIDs of `t_j` — fast *backward* lookups).  Tuple and
//! key sizes follow the paper's geometry: a tuple occupies `OIDsize ·
//! (j − i + 1)` bytes (formula 13), keys occupy `OIDsize`.
//!
//! Because partitions are *projections* of the extension, several extension
//! rows may project to the same partition row; the partition therefore
//! reference-counts its rows so that incremental maintenance can remove a
//! projected row only when its last witness disappears.

use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;
use std::rc::Rc;
use std::sync::Arc;

use asr_pagesim::{
    build_bulk, BPlusTree, BulkNodes, IoStats, NodeImage, StatsHandle, TreeImage, OID_SIZE,
    PAGE_SIZE,
};

use crate::cell::Cell;
use crate::error::{AsrError, Result};
use crate::relation::Relation;
use crate::row::Row;
use crate::snapshot::PartitionVersion;

/// Tree key: clustering cell (first or last column) plus a row id making
/// the key unique.  `None` (NULL) clusters before all defined cells.
pub type PartitionKey = (Option<Cell>, u64);

/// A partition `[S_from, …, S_to]` stored in two clustered B+ trees.
#[derive(Debug)]
pub struct StoredPartition {
    from: usize,
    to: usize,
    fwd: BPlusTree<PartitionKey, Row>,
    bwd: BPlusTree<PartitionKey, Row>,
    /// Logical multiset bookkeeping: row → (row id, witness count).
    /// This mirror is not charged; the physical operations on the trees
    /// carry the page costs.
    rows: HashMap<Row, RowMeta>,
    next_rowid: u64,
    /// Row ids whose mirror entry changed (inserted, or witness count
    /// bumped) since the last [`Self::mark_clean`] fence — the row half of
    /// a delta checkpoint.
    dirty_rows: BTreeSet<u64>,
    /// Row ids physically removed since the fence.
    dead_rows: BTreeSet<u64>,
    /// Page-epoch fence of the forward tree at the last checkpoint: pages
    /// stamped at or after this epoch are part of the next delta.
    fwd_fence: u64,
    /// Page-epoch fence of the backward tree.
    bwd_fence: u64,
    /// The last published immutable MVCC version of this partition
    /// ([`Self::publish_version`]) — shared with every snapshot pinned to
    /// it.  Copy-on-write at partition granularity: any mutation marks it
    /// stale and the next publish captures a fresh version; clean
    /// partitions keep handing out the same `Arc`.
    version: Option<Arc<PartitionVersion>>,
    /// Has the partition changed since `version` was captured?
    version_stale: bool,
    stats: StatsHandle,
}

#[derive(Debug, Clone, Copy)]
struct RowMeta {
    rowid: u64,
    count: u64,
}

impl StoredPartition {
    /// Create an empty partition over the inclusive column span
    /// `[from, to]` of the host relation.
    pub fn new(from: usize, to: usize, stats: StatsHandle) -> Self {
        assert!(from < to, "partitions span at least two columns");
        let tuple_size = OID_SIZE * (to - from + 1); // formula (13)
        StoredPartition {
            from,
            to,
            fwd: BPlusTree::new(tuple_size, OID_SIZE, Rc::clone(&stats)),
            bwd: BPlusTree::new(tuple_size, OID_SIZE, Rc::clone(&stats)),
            rows: HashMap::new(),
            next_rowid: 0,
            dirty_rows: BTreeSet::new(),
            dead_rows: BTreeSet::new(),
            fwd_fence: 0,
            bwd_fence: 0,
            version: None,
            version_stale: true,
            stats,
        }
    }

    /// The current immutable version of this partition, capturing a fresh
    /// one only when the partition changed since the last publish (the
    /// copy-on-write half of [`crate::Database::snapshot`]).  Returns the
    /// version and whether it was freshly captured.
    pub(crate) fn publish_version(&mut self) -> (Arc<PartitionVersion>, bool) {
        match &self.version {
            Some(v) if !self.version_stale => (Arc::clone(v), false),
            _ => {
                let v = Arc::new(PartitionVersion::capture(self));
                self.version = Some(Arc::clone(&v));
                self.version_stale = false;
                (v, true)
            }
        }
    }

    /// The host-relation column span `(from, to)`.
    pub fn span(&self) -> (usize, usize) {
        (self.from, self.to)
    }

    /// Columns in this partition (`to − from + 1`).
    pub fn arity(&self) -> usize {
        self.to - self.from + 1
    }

    /// Number of distinct rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the partition holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Bytes of tuple data (the paper's `as^{i,j}`, formula 15).
    pub fn data_bytes(&self) -> u64 {
        (self.len() * OID_SIZE * self.arity()) as u64
    }

    /// Leaf pages of one clustering tree (the paper's `ap^{i,j}`,
    /// formula 16).
    pub fn leaf_pages(&self) -> u64 {
        self.fwd.leaf_page_count()
    }

    /// Total pages of both redundant trees.
    pub fn total_pages(&self) -> u64 {
        self.fwd.page_count() + self.bwd.page_count()
    }

    /// The forward-clustered tree (keyed on the first column).
    pub fn forward_tree(&self) -> &BPlusTree<PartitionKey, Row> {
        &self.fwd
    }

    /// The backward-clustered tree (keyed on the last column).
    pub fn backward_tree(&self) -> &BPlusTree<PartitionKey, Row> {
        &self.bwd
    }

    /// The shared page-access counter.
    pub fn stats(&self) -> &StatsHandle {
        &self.stats
    }

    /// Give both clustered trees an LRU buffer pool of `pages` pages each
    /// (0 restores unbuffered accounting).
    pub fn enable_buffering(&mut self, pages: usize) {
        let pool = |n: usize| {
            if n == 0 {
                asr_pagesim::BufferPool::unbuffered()
            } else {
                asr_pagesim::BufferPool::with_capacity(n)
            }
        };
        self.fwd.set_buffer(pool(pages));
        self.bwd.set_buffer(pool(pages));
    }

    /// Name both clustering trees for per-structure I/O attribution:
    /// `<label>.fwd` and `<label>.bwd`.
    pub fn tag(&mut self, label: &str) {
        self.fwd.tag(format!("{label}.fwd"));
        self.bwd.tag(format!("{label}.bwd"));
    }

    fn check_arity(&self, row: &Row) -> Result<()> {
        if row.arity() != self.arity() {
            return Err(AsrError::ArityMismatch {
                expected: self.arity(),
                actual: row.arity(),
            });
        }
        Ok(())
    }

    /// Insert one witness of `row`.  New rows go into both trees; repeated
    /// witnesses only bump the reference count (charged as a read/write of
    /// the resident tuple in each tree).
    ///
    /// All-NULL rows are ignored (partitions never store them).
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.check_arity(&row)?;
        if row.is_all_null() {
            return Ok(());
        }
        self.version_stale = true;
        match self.rows.get_mut(&row) {
            Some(meta) => {
                meta.count += 1;
                self.dirty_rows.insert(meta.rowid);
                // Touch the stored tuples to persist the new count.
                let fkey = (row.first().clone(), meta.rowid);
                let bkey = (row.last().clone(), meta.rowid);
                let _ = self.fwd.get(&fkey);
                self.charge_tree_write();
                let _ = self.bwd.get(&bkey);
                self.charge_tree_write();
            }
            None => {
                let rowid = self.next_rowid;
                self.next_rowid += 1;
                self.dirty_rows.insert(rowid);
                self.fwd.insert((row.first().clone(), rowid), row.clone())?;
                self.bwd.insert((row.last().clone(), rowid), row.clone())?;
                self.rows.insert(row, RowMeta { rowid, count: 1 });
            }
        }
        Ok(())
    }

    fn charge_tree_write(&self) {
        // One leaf write-back; the descent reads were just charged by get().
        self.stats.count_write();
    }

    /// Remove one witness of `row`; physically deletes it when the last
    /// witness disappears.  Removing an unknown row is a no-op (returns
    /// `false`) — incremental maintenance relies on this.
    pub fn remove(&mut self, row: &Row) -> Result<bool> {
        self.check_arity(row)?;
        let Some(meta) = self.rows.get_mut(row) else {
            return Ok(false);
        };
        self.version_stale = true;
        if meta.count > 1 {
            meta.count -= 1;
            self.dirty_rows.insert(meta.rowid);
            let fkey = (row.first().clone(), meta.rowid);
            let bkey = (row.last().clone(), meta.rowid);
            let _ = self.fwd.get(&fkey);
            self.charge_tree_write();
            let _ = self.bwd.get(&bkey);
            self.charge_tree_write();
        } else {
            let rowid = meta.rowid;
            self.rows.remove(row);
            self.dirty_rows.remove(&rowid);
            self.dead_rows.insert(rowid);
            self.fwd.remove(&(row.first().clone(), rowid));
            self.bwd.remove(&(row.last().clone(), rowid));
        }
        Ok(true)
    }

    /// All rows whose *first* column equals `cell` — a forward cluster
    /// lookup (`ht + nlp` page accesses in the paper's terms).
    pub fn lookup_first(&self, cell: &Cell) -> Vec<Row> {
        let lo = (Some(cell.clone()), 0u64);
        let hi = (Some(cell.clone()), u64::MAX);
        self.fwd
            .range_collect(&lo, &hi)
            .into_iter()
            .map(|(_, row)| row)
            .collect()
    }

    /// All rows whose *last* column equals `cell` — a backward cluster
    /// lookup on the second tree.
    pub fn lookup_last(&self, cell: &Cell) -> Vec<Row> {
        let lo = (Some(cell.clone()), 0u64);
        let hi = (Some(cell.clone()), u64::MAX);
        self.bwd
            .range_collect(&lo, &hi)
            .into_iter()
            .map(|(_, row)| row)
            .collect()
    }

    /// Batched [`Self::lookup_first`] over **ascending** `cells`
    /// (`BTreeSet` iteration order qualifies): one shared descent of the
    /// forward tree, each page charged at most once for the whole batch.
    /// Rows come back grouped per probe cell, in the same order the
    /// per-cell lookups would have produced them.
    pub fn lookup_first_grouped<'a>(
        &self,
        cells: impl IntoIterator<Item = &'a Cell>,
    ) -> Vec<Vec<Row>> {
        Self::lookup_grouped(&self.fwd, cells)
    }

    /// Batched [`Self::lookup_last`] over **ascending** `cells` — the
    /// backward-tree counterpart of [`Self::lookup_first_grouped`].
    pub fn lookup_last_grouped<'a>(
        &self,
        cells: impl IntoIterator<Item = &'a Cell>,
    ) -> Vec<Vec<Row>> {
        Self::lookup_grouped(&self.bwd, cells)
    }

    /// Flattened [`Self::lookup_first_grouped`]: the concatenation equals
    /// `cells.flat_map(|c| lookup_first(c))` bit-for-bit.
    pub fn lookup_first_many<'a>(&self, cells: impl IntoIterator<Item = &'a Cell>) -> Vec<Row> {
        self.lookup_first_grouped(cells)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Flattened [`Self::lookup_last_grouped`].
    pub fn lookup_last_many<'a>(&self, cells: impl IntoIterator<Item = &'a Cell>) -> Vec<Row> {
        self.lookup_last_grouped(cells)
            .into_iter()
            .flatten()
            .collect()
    }

    fn lookup_grouped<'a>(
        tree: &BPlusTree<PartitionKey, Row>,
        cells: impl IntoIterator<Item = &'a Cell>,
    ) -> Vec<Vec<Row>> {
        let ranges: Vec<(PartitionKey, PartitionKey)> = cells
            .into_iter()
            .map(|c| ((Some(c.clone()), 0u64), (Some(c.clone()), u64::MAX)))
            .collect();
        let mut out: Vec<Vec<Row>> = vec![Vec::new(); ranges.len()];
        tree.scan_ranges_sorted(
            ranges
                .iter()
                .map(|(lo, hi)| (Bound::Included(lo), Bound::Excluded(hi))),
            |idx, _, row| out[idx].push(row.clone()),
        );
        out
    }

    /// Exhaustively scan all rows (used when a query enters a partition in
    /// the middle — the paper's `ap^{i,j}` full-scan term in formula 33).
    pub fn scan(&self, mut visit: impl FnMut(&Row)) {
        self.fwd.scan_all(|_, row| visit(row));
    }

    /// Rebuild the partition's logical content as an in-memory relation
    /// (charges a full scan).
    pub fn to_relation(&self) -> Result<Relation> {
        let mut rel = Relation::new(self.arity());
        let mut rows = Vec::new();
        self.scan(|row| rows.push(row.clone()));
        for row in rows {
            rel.insert(row)?;
        }
        Ok(rel)
    }

    /// Bulk-load the partition from an in-memory relation, counting each
    /// row once.  (Multiplicity loading happens through [`Self::insert`].)
    pub fn load(&mut self, relation: &Relation) -> Result<()> {
        for row in relation.iter() {
            self.insert(row.clone())?;
        }
        Ok(())
    }

    /// Bulk-load distinct rows with explicit witness counts, building both
    /// clustered B+ trees bottom-up (one page write per created node —
    /// the fast path of [`crate::AccessSupportRelation::rebuild`]).
    ///
    /// The partition must be empty; all-NULL rows are skipped.
    pub fn bulk_load(&mut self, rows: impl IntoIterator<Item = (Row, u64)>) -> Result<()> {
        assert!(self.is_empty(), "bulk_load requires an empty partition");
        self.version_stale = true;
        let mut fwd_entries: Vec<(PartitionKey, Row)> = Vec::new();
        let mut bwd_entries: Vec<(PartitionKey, Row)> = Vec::new();
        for (row, count) in rows {
            self.check_arity(&row)?;
            if row.is_all_null() || count == 0 {
                continue;
            }
            let rowid = self.next_rowid;
            self.next_rowid += 1;
            self.dirty_rows.insert(rowid);
            fwd_entries.push(((row.first().clone(), rowid), row.clone()));
            bwd_entries.push(((row.last().clone(), rowid), row.clone()));
            self.rows.insert(row, RowMeta { rowid, count });
        }
        // The two redundant clustering trees are independent: sort and
        // build both node slabs (a pure, stats-free computation) on two
        // threads when the partition is large, then adopt them here on
        // the owning thread — page-write accounting stays identical to a
        // sequential fill because `adopt_bulk` charges one write per node
        // in creation order.
        let (lc, ic) = (self.fwd.leaf_capacity(), self.fwd.inner_capacity());
        let (fwd_built, bwd_built) = if fwd_entries.len() >= PARALLEL_BUILD_THRESHOLD {
            std::thread::scope(|s| {
                let bwd_handle = s.spawn(move || sort_and_build(bwd_entries, lc, ic));
                let fwd_built = sort_and_build(fwd_entries, lc, ic);
                let bwd_built = bwd_handle.join().expect("bulk-build thread panicked");
                (fwd_built, bwd_built)
            })
        } else {
            (
                sort_and_build(fwd_entries, lc, ic),
                sort_and_build(bwd_entries, lc, ic),
            )
        };
        self.fwd.adopt_bulk(fwd_built?)?;
        self.bwd.adopt_bulk(bwd_built?)?;
        Ok(())
    }

    /// Capture the partition's complete physical state for the snapshot
    /// writer: the row mirror (sorted by row id) plus page-faithful images
    /// of both clustering trees.  Charges nothing — the writer prices the
    /// bytes it emits.
    pub(crate) fn dump(&self) -> PartitionImage {
        let mut rows: Vec<(Row, u64, u64)> = self
            .rows
            .iter()
            .map(|(row, meta)| (row.clone(), meta.rowid, meta.count))
            .collect();
        rows.sort_by_key(|&(_, rowid, _)| rowid);
        PartitionImage {
            from: self.from,
            to: self.to,
            next_rowid: self.next_rowid,
            rows,
            fwd: RawTreeImage::from_tree(&self.fwd),
            bwd: RawTreeImage::from_tree(&self.bwd),
            fwd_bytes: 0,
            bwd_bytes: 0,
        }
    }

    /// Capture only what changed since the last [`Self::mark_clean`]
    /// fence: dirty/dead row-mirror entries plus the tree pages stamped at
    /// or after each tree's fence epoch.  Charges nothing — the delta
    /// writer prices the bytes it emits.
    pub(crate) fn dump_delta(&self) -> PartitionDelta {
        let mut upserts: Vec<(Row, u64, u64)> = self
            .rows
            .iter()
            .filter(|(_, meta)| self.dirty_rows.contains(&meta.rowid))
            .map(|(row, meta)| (row.clone(), meta.rowid, meta.count))
            .collect();
        upserts.sort_by_key(|&(_, rowid, _)| rowid);
        PartitionDelta {
            from: self.from,
            to: self.to,
            next_rowid: self.next_rowid,
            nrows: self.rows.len(),
            upserts,
            deletes: self.dead_rows.iter().copied().collect(),
            fwd: RawTreeDelta::from_tree(&self.fwd, self.fwd_fence),
            bwd: RawTreeDelta::from_tree(&self.bwd, self.bwd_fence),
            fwd_bytes: 0,
            bwd_bytes: 0,
        }
    }

    /// Establish a new delta fence: forget the dirty/dead row sets and
    /// advance both trees' page epochs, so the next [`Self::dump_delta`]
    /// captures exactly the changes made after this call.  Invoked when a
    /// checkpoint (full or delta) of this partition is taken or loaded.
    pub(crate) fn mark_clean(&mut self) {
        self.dirty_rows.clear();
        self.dead_rows.clear();
        self.fwd_fence = self.fwd.advance_epoch();
        self.bwd_fence = self.bwd.advance_epoch();
    }

    /// How many distinct rows changed (dirty + dead) since the fence —
    /// the shell's "pages saved" summary uses this.
    pub(crate) fn changed_rows(&self) -> usize {
        self.dirty_rows.len() + self.dead_rows.len()
    }

    /// Physically re-attach a partition from its snapshot image: register
    /// both trees under `label` (so restore reads attribute to the same
    /// `(kind, label)` structure ids as before the save), then adopt the
    /// page images — each tree charged one read per page of its share of
    /// the serialized physical section, no extension join, no bulk build.
    ///
    /// Leaf keys are not stored in the image; they are re-derived from the
    /// row mirror as `(row.first|last, rowid)` — an invariant of both
    /// [`Self::insert`] and [`Self::bulk_load`].  Any inconsistency
    /// (unknown row ids, cardinality mismatches, corrupt page layouts)
    /// yields a descriptive error and never panics.
    pub(crate) fn restore(img: PartitionImage, stats: StatsHandle, label: &str) -> Result<Self> {
        let corrupt = |msg: String| AsrError::Snapshot(format!("partition image: {msg}"));
        if img.from >= img.to {
            return Err(corrupt(format!("bad span ({}, {})", img.from, img.to)));
        }
        let mut p = StoredPartition::new(img.from, img.to, stats);
        p.tag(label);
        let arity = p.arity();
        let mut by_rowid: HashMap<u64, &Row> = HashMap::with_capacity(img.rows.len());
        for (row, rowid, count) in &img.rows {
            if row.arity() != arity {
                return Err(corrupt(format!("row {row} has arity {}", row.arity())));
            }
            if *count == 0 {
                return Err(corrupt(format!("row {row} has witness count 0")));
            }
            if *rowid >= img.next_rowid {
                return Err(corrupt(format!("row id {rowid} >= next_rowid")));
            }
            if by_rowid.insert(*rowid, row).is_some() {
                return Err(corrupt(format!("row id {rowid} appears twice")));
            }
        }
        let fwd = img.fwd.materialize(&by_rowid, Row::first)?;
        let bwd = img.bwd.materialize(&by_rowid, Row::last)?;
        p.fwd.adopt_image(fwd)?;
        p.bwd.adopt_image(bwd)?;
        if p.fwd.len() != img.rows.len() || p.bwd.len() != img.rows.len() {
            return Err(corrupt(format!(
                "tree/mirror cardinality mismatch: fwd={} bwd={} mirror={}",
                p.fwd.len(),
                p.bwd.len(),
                img.rows.len()
            )));
        }
        p.rows = img
            .rows
            .into_iter()
            .map(|(row, rowid, count)| (row, RowMeta { rowid, count }))
            .collect();
        p.next_rowid = img.next_rowid;
        // A freshly restored partition is fully dirty relative to the
        // fence-0 default; the loader calls `mark_clean` once the whole
        // database is attached, making the snapshot itself the base.
        p.dirty_rows = p.rows.values().map(|m| m.rowid).collect();
        // Price the restore: pulling each tree's serialized pages in from
        // the snapshot, attributed per tree (at least one page each).
        p.fwd.charge_restore_reads(restore_pages(img.fwd_bytes));
        p.bwd.charge_restore_reads(restore_pages(img.bwd_bytes));
        Ok(p)
    }

    /// The partition's logical content read from the uncharged row mirror
    /// — the restore path's counterpart of [`Self::to_relation`], which
    /// scans the tree and charges pages.
    pub(crate) fn mirror_relation(&self) -> Result<Relation> {
        Relation::from_rows(self.arity(), self.rows.keys().cloned())
    }

    /// Witness count of a row (0 when absent) — for tests.
    pub fn witness_count(&self, row: &Row) -> u64 {
        self.rows.get(row).map(|m| m.count).unwrap_or(0)
    }

    /// Verify the two trees and the mirror agree; used by tests.
    pub fn check_consistency(&self) -> Result<()> {
        self.fwd.check_invariants()?;
        self.bwd.check_invariants()?;
        if self.fwd.len() != self.rows.len() || self.bwd.len() != self.rows.len() {
            return Err(AsrError::PageSim(
                asr_pagesim::PageSimError::CorruptStructure(format!(
                    "tree/mirror cardinality mismatch: fwd={} bwd={} mirror={}",
                    self.fwd.len(),
                    self.bwd.len(),
                    self.rows.len()
                )),
            ));
        }
        let mut fwd_rows: Vec<Row> = Vec::new();
        self.fwd.scan_all(|_, r| fwd_rows.push(r.clone()));
        for row in &fwd_rows {
            if !self.rows.contains_key(row) {
                return Err(AsrError::PageSim(
                    asr_pagesim::PageSimError::CorruptStructure(format!(
                        "row {row} in fwd tree but not in mirror"
                    )),
                ));
            }
        }
        Ok(())
    }
}

/// The serializable physical state of one [`StoredPartition`]: the row
/// mirror with row ids and witness counts, plus raw page images of both
/// clustering trees.  Produced by `StoredPartition::dump`, consumed by
/// `StoredPartition::restore` and the `ASRDB 2` snapshot writer/reader.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PartitionImage {
    /// First spanned column of the host relation.
    pub from: usize,
    /// Last spanned column (inclusive).
    pub to: usize,
    /// Row-id allocator position (preserves future id assignment).
    pub next_rowid: u64,
    /// `(row, rowid, witness count)`, sorted by row id.
    pub rows: Vec<(Row, u64, u64)>,
    /// Page image of the forward-clustered tree.
    pub fwd: RawTreeImage,
    /// Page image of the backward-clustered tree.
    pub bwd: RawTreeImage,
    /// Serialized snapshot bytes backing the forward tree (its `T`/`N`
    /// lines plus half the shared row payload) — what its restore read
    /// charge is based on.  Zero on the write path ([`StoredPartition::dump`]).
    pub fwd_bytes: usize,
    /// Serialized snapshot bytes backing the backward tree.
    pub bwd_bytes: usize,
}

/// Pages a restored tree is charged for `bytes` of serialized image
/// (never free: at least one page read).
fn restore_pages(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(PAGE_SIZE as u64).max(1)
}

/// The incremental counterpart of [`PartitionImage`]: only the rows and
/// tree pages that changed since the partition's last clean fence, plus
/// enough geometry (root, height, free list, slab size) to patch a base
/// image into the current state.  Produced by `StoredPartition::dump_delta`,
/// consumed by the `ASRDB 3` snapshot writer and `PartitionImage::apply_delta`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PartitionDelta {
    pub from: usize,
    pub to: usize,
    pub next_rowid: u64,
    /// Expected distinct-row count *after* applying this delta (integrity
    /// check on the patched mirror).
    pub nrows: usize,
    /// `(row, rowid, witness count)` for rows inserted or re-counted since
    /// the fence, sorted by row id.
    pub upserts: Vec<(Row, u64, u64)>,
    /// Row ids physically removed since the fence (ascending).
    pub deletes: Vec<u64>,
    /// Changed pages of the forward-clustered tree.
    pub fwd: RawTreeDelta,
    /// Changed pages of the backward-clustered tree.
    pub bwd: RawTreeDelta,
    /// Serialized delta bytes attributed to each tree (set by the parser;
    /// zero on the write path) — the patched image's restore-read charge.
    pub fwd_bytes: usize,
    pub bwd_bytes: usize,
}

/// Changed pages of one clustering tree since an epoch fence, with the
/// full post-change geometry.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RawTreeDelta {
    pub root: usize,
    pub height: usize,
    pub len: usize,
    pub free: Vec<usize>,
    /// Slab size after the change — a patched base image grows (never
    /// shrinks) to this many pages.
    pub total_nodes: usize,
    /// `(page id, new content)` for every page stamped at or after the
    /// fence, including pages that became `Free`.
    pub pages: Vec<(usize, RawNode)>,
}

impl RawTreeDelta {
    fn from_tree(tree: &BPlusTree<PartitionKey, Row>, fence: u64) -> Self {
        let d = tree.dump_image_since(fence);
        RawTreeDelta {
            root: d.root,
            height: d.height,
            len: d.len,
            free: d.free,
            total_nodes: d.total_nodes,
            pages: d
                .pages
                .into_iter()
                .map(|(id, n)| (id, RawNode::from_image(n)))
                .collect(),
        }
    }
}

impl PartitionImage {
    /// Patch this (base-checkpoint) image with a delta, yielding the image
    /// the primary would have dumped at the delta's fence.  Rows are merged
    /// by row id; tree slabs grow to the delta's size and changed pages are
    /// overwritten.  Fails with a descriptive error on any inconsistency —
    /// the caller falls back to a rebuild or NACKs the delivery.
    pub(crate) fn apply_delta(self, d: &PartitionDelta) -> Result<PartitionImage> {
        let corrupt = |msg: String| AsrError::Snapshot(format!("partition delta: {msg}"));
        if (self.from, self.to) != (d.from, d.to) {
            return Err(corrupt(format!(
                "span mismatch: base ({}, {}), delta ({}, {})",
                self.from, self.to, d.from, d.to
            )));
        }
        if d.next_rowid < self.next_rowid {
            return Err(corrupt(format!(
                "next_rowid went backwards ({} -> {})",
                self.next_rowid, d.next_rowid
            )));
        }
        let mut by_rowid: std::collections::BTreeMap<u64, (Row, u64)> = self
            .rows
            .into_iter()
            .map(|(row, rowid, count)| (rowid, (row, count)))
            .collect();
        // Deleted rows may predate the base (never shipped): tolerate.
        for rowid in &d.deletes {
            by_rowid.remove(rowid);
        }
        for (row, rowid, count) in &d.upserts {
            by_rowid.insert(*rowid, (row.clone(), *count));
        }
        if by_rowid.len() != d.nrows {
            return Err(corrupt(format!(
                "patched mirror has {} rows, delta expects {}",
                by_rowid.len(),
                d.nrows
            )));
        }
        Ok(PartitionImage {
            from: d.from,
            to: d.to,
            next_rowid: d.next_rowid,
            rows: by_rowid
                .into_iter()
                .map(|(rowid, (row, count))| (row, rowid, count))
                .collect(),
            fwd: self.fwd.apply_delta(&d.fwd)?,
            bwd: self.bwd.apply_delta(&d.bwd)?,
            fwd_bytes: d.fwd_bytes,
            bwd_bytes: d.bwd_bytes,
        })
    }
}

/// A [`TreeImage`] with rows referenced by id instead of stored inline:
/// leaf entries carry only row ids (keys are re-derived on restore), while
/// inner separator keys — which may outlive the leaf keys they were copied
/// from — are kept verbatim.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RawTreeImage {
    pub root: usize,
    pub height: usize,
    pub len: usize,
    pub free: Vec<usize>,
    pub nodes: Vec<RawNode>,
}

/// One page of a [`RawTreeImage`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RawNode {
    Inner {
        keys: Vec<PartitionKey>,
        children: Vec<usize>,
    },
    Leaf {
        rowids: Vec<u64>,
        next: Option<usize>,
    },
    Free,
}

impl RawNode {
    /// Strip one page image down to its raw, id-referencing form.
    fn from_image(n: NodeImage<PartitionKey, Row>) -> Self {
        match n {
            NodeImage::Inner { keys, children } => RawNode::Inner { keys, children },
            NodeImage::Leaf { entries, next } => RawNode::Leaf {
                rowids: entries.into_iter().map(|((_, rowid), _)| rowid).collect(),
                next,
            },
            NodeImage::Free => RawNode::Free,
        }
    }
}

impl RawTreeImage {
    /// Strip a live tree's image down to its raw, id-referencing form.
    fn from_tree(tree: &BPlusTree<PartitionKey, Row>) -> Self {
        let img = tree.dump_image();
        RawTreeImage {
            root: img.root,
            height: img.height,
            len: img.len,
            free: img.free,
            nodes: img.nodes.into_iter().map(RawNode::from_image).collect(),
        }
    }

    /// Overlay a delta's changed pages onto this base image and adopt its
    /// geometry.  The slab only ever grows; changed-page ids must fall
    /// inside the delta's declared slab size.
    fn apply_delta(mut self, d: &RawTreeDelta) -> Result<RawTreeImage> {
        let corrupt = |msg: String| AsrError::Snapshot(format!("tree delta: {msg}"));
        if d.total_nodes < self.nodes.len() {
            return Err(corrupt(format!(
                "slab shrank ({} -> {} pages)",
                self.nodes.len(),
                d.total_nodes
            )));
        }
        self.nodes.resize(d.total_nodes, RawNode::Free);
        for (id, node) in &d.pages {
            let slot = self
                .nodes
                .get_mut(*id)
                .ok_or_else(|| corrupt(format!("page {id} outside slab of {}", d.total_nodes)))?;
            *slot = node.clone();
        }
        self.root = d.root;
        self.height = d.height;
        self.len = d.len;
        self.free = d.free.clone();
        Ok(self)
    }

    /// Rehydrate into a full [`TreeImage`], deriving each leaf entry's key
    /// from the referenced row via `key_cell` (`Row::first` for the
    /// forward tree, `Row::last` for the backward one).
    fn materialize(
        &self,
        by_rowid: &HashMap<u64, &Row>,
        key_cell: impl Fn(&Row) -> &Option<Cell>,
    ) -> Result<TreeImage<PartitionKey, Row>> {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for raw in &self.nodes {
            nodes.push(match raw {
                RawNode::Inner { keys, children } => NodeImage::Inner {
                    keys: keys.clone(),
                    children: children.clone(),
                },
                RawNode::Leaf { rowids, next } => {
                    let mut entries = Vec::with_capacity(rowids.len());
                    for &rowid in rowids {
                        let Some(&row) = by_rowid.get(&rowid) else {
                            return Err(AsrError::Snapshot(format!(
                                "partition image: leaf references unknown row id {rowid}"
                            )));
                        };
                        entries.push(((key_cell(row).clone(), rowid), row.clone()));
                    }
                    NodeImage::Leaf {
                        entries,
                        next: *next,
                    }
                }
                RawNode::Free => NodeImage::Free,
            });
        }
        Ok(TreeImage {
            root: self.root,
            height: self.height,
            len: self.len,
            free: self.free.clone(),
            nodes,
        })
    }
}

/// Partitions at or above this many rows bulk-load their two clustering
/// trees on concurrent threads.
const PARALLEL_BUILD_THRESHOLD: usize = 4096;

/// Sort entries by key and build a stats-free node slab — the per-tree
/// half of a (possibly parallel) dual-tree bulk load.
fn sort_and_build(
    mut entries: Vec<(PartitionKey, Row)>,
    leaf_capacity: usize,
    inner_capacity: usize,
) -> asr_pagesim::Result<BulkNodes<PartitionKey, Row>> {
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    build_bulk(entries, leaf_capacity, inner_capacity)
}

/// Convenience: a fresh stats handle.
pub fn fresh_stats() -> StatsHandle {
    IoStats::new_handle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::row::oid_cell as c;

    fn part() -> StoredPartition {
        StoredPartition::new(0, 2, fresh_stats())
    }

    #[test]
    fn insert_and_lookup_both_directions() {
        let mut p = part();
        p.insert(row![c(0), c(1), c(2)]).unwrap();
        p.insert(row![c(0), c(5), c(6)]).unwrap();
        p.insert(row![c(9), c(5), c(2)]).unwrap();
        assert_eq!(p.len(), 3);
        let fwd = p.lookup_first(&Cell::Oid(asr_gom::Oid::from_raw(0)));
        assert_eq!(fwd.len(), 2);
        let bwd = p.lookup_last(&Cell::Oid(asr_gom::Oid::from_raw(2)));
        assert_eq!(bwd.len(), 2);
        assert!(bwd.contains(&row![c(0), c(1), c(2)]));
        assert!(bwd.contains(&row![c(9), c(5), c(2)]));
        p.check_consistency().unwrap();
    }

    #[test]
    fn reference_counting_delays_physical_removal() {
        let mut p = part();
        let r = row![c(0), c(1), c(2)];
        p.insert(r.clone()).unwrap();
        p.insert(r.clone()).unwrap();
        assert_eq!(p.witness_count(&r), 2);
        assert_eq!(p.len(), 1, "physically stored once");
        assert!(p.remove(&r).unwrap());
        assert_eq!(p.witness_count(&r), 1);
        assert_eq!(
            p.lookup_first(&Cell::Oid(asr_gom::Oid::from_raw(0))).len(),
            1
        );
        assert!(p.remove(&r).unwrap());
        assert_eq!(p.witness_count(&r), 0);
        assert!(p.is_empty());
        assert!(!p.remove(&r).unwrap(), "removing an absent row is a no-op");
        p.check_consistency().unwrap();
    }

    #[test]
    fn null_boundaries_cluster_and_lookup_misses_them() {
        let mut p = part();
        p.insert(row![None, c(1), c(2)]).unwrap();
        p.insert(row![c(0), c(1), None]).unwrap();
        assert_eq!(p.len(), 2);
        // NULL-first rows are not returned by any forward cell lookup.
        assert!(p
            .lookup_first(&Cell::Oid(asr_gom::Oid::from_raw(1)))
            .is_empty());
        // But scans see everything.
        let mut n = 0;
        p.scan(|_| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn all_null_rows_ignored() {
        let mut p = part();
        p.insert(Row::nulls(3)).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn arity_checked() {
        let mut p = part();
        assert!(matches!(
            p.insert(row![c(0), c(1)]),
            Err(AsrError::ArityMismatch { .. })
        ));
        assert!(matches!(
            p.remove(&row![c(0)]),
            Err(AsrError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn geometry_matches_formulas() {
        // Partition of 3 columns: tuple = 24 bytes, atpp = 4056/24 = 169.
        let p = part();
        assert_eq!(p.forward_tree().leaf_capacity(), 169);
        assert_eq!(p.forward_tree().inner_capacity(), 338);
    }

    #[test]
    fn load_and_to_relation_round_trip() {
        let rel = Relation::from_rows(
            3,
            vec![
                row![c(0), c(1), c(2)],
                row![c(3), None, c(4)],
                row![None, c(5), c(6)],
            ],
        )
        .unwrap();
        let mut p = part();
        p.load(&rel).unwrap();
        assert_eq!(p.to_relation().unwrap(), rel);
    }

    #[test]
    fn delta_patches_base_image_to_current_state() {
        let mut p = part();
        for k in 0..3000u64 {
            p.insert(row![c(k), c(k + 10000), c(k % 7)]).unwrap();
        }
        let base = p.dump();
        p.mark_clean();
        for k in 3000..3010u64 {
            p.insert(row![c(k), c(k + 10000), c(k % 7)]).unwrap();
        }
        p.insert(row![c(5), c(10005), c(5)]).unwrap(); // witness bump
        for k in 0..4u64 {
            p.remove(&row![c(k), c(k + 10000), c(k % 7)]).unwrap();
        }
        let delta = p.dump_delta();
        assert!(
            delta.fwd.pages.len() < delta.fwd.total_nodes,
            "delta ships a strict subset of pages ({} of {})",
            delta.fwd.pages.len(),
            delta.fwd.total_nodes
        );
        let patched = base.apply_delta(&delta).unwrap();
        assert_eq!(patched, p.dump(), "patched base == freshly dumped state");
        let restored = StoredPartition::restore(patched, fresh_stats(), "t").unwrap();
        restored.check_consistency().unwrap();
        assert_eq!(restored.len(), p.len());
        assert_eq!(restored.witness_count(&row![c(5), c(10005), c(5)]), 2);
    }

    #[test]
    fn clean_partition_produces_empty_delta() {
        let mut p = part();
        for k in 0..50u64 {
            p.insert(row![c(k), c(k + 100), c(k % 3)]).unwrap();
        }
        p.mark_clean();
        let delta = p.dump_delta();
        assert!(delta.upserts.is_empty());
        assert!(delta.deletes.is_empty());
        assert!(delta.fwd.pages.is_empty());
        assert!(delta.bwd.pages.is_empty());
        let patched = p.dump().apply_delta(&delta).unwrap();
        assert_eq!(patched, p.dump(), "empty delta is the identity patch");
    }

    #[test]
    fn delta_rejects_inconsistent_geometry() {
        let mut p = part();
        for k in 0..50u64 {
            p.insert(row![c(k), c(k + 100), c(k % 3)]).unwrap();
        }
        let base = p.dump();
        p.mark_clean();
        p.insert(row![c(99), c(199), c(1)]).unwrap();
        let mut delta = p.dump_delta();
        delta.nrows += 1; // claim a row that never arrives
        assert!(base.clone().apply_delta(&delta).is_err());
        let mut delta = p.dump_delta();
        delta.fwd.total_nodes = 0; // slab cannot shrink
        assert!(base.apply_delta(&delta).is_err());
    }

    #[test]
    fn page_accounting_flows_to_stats() {
        let stats = fresh_stats();
        let mut p = StoredPartition::new(0, 2, Rc::clone(&stats));
        for k in 0..200u64 {
            p.insert(row![c(k), c(k + 1000), c(k % 7)]).unwrap();
        }
        stats.reset();
        p.lookup_first(&Cell::Oid(asr_gom::Oid::from_raw(5)));
        assert!(stats.reads() >= 1, "lookups cost page reads");
        assert_eq!(stats.writes(), 0);
        assert!(p.data_bytes() > 0);
        assert!(p.total_pages() >= 2);
    }
}
