//! In-memory relations (sets of rows) used while *building* access support
//! relations.  The stored, page-accounted form lives in
//! [`crate::partition`].

use std::collections::BTreeSet;
use std::fmt;

use crate::error::{AsrError, Result};
use crate::row::Row;

/// A relation: a set of equal-arity rows with deterministic iteration
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    rows: BTreeSet<Row>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "relations are at least unary");
        Relation {
            arity,
            rows: BTreeSet::new(),
        }
    }

    /// Build from an iterator of rows (validating arities).
    pub fn from_rows(arity: usize, rows: impl IntoIterator<Item = Row>) -> Result<Self> {
        let mut rel = Relation::new(arity);
        for row in rows {
            rel.insert(row)?;
        }
        Ok(rel)
    }

    /// Column count.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) rows — the paper's `#E`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row; all-NULL rows are silently dropped (they carry no
    /// information and the paper's extensions never contain them).
    /// Returns `true` when the row was new.
    pub fn insert(&mut self, row: Row) -> Result<bool> {
        if row.arity() != self.arity {
            return Err(AsrError::ArityMismatch {
                expected: self.arity,
                actual: row.arity(),
            });
        }
        if row.is_all_null() {
            return Ok(false);
        }
        Ok(self.rows.insert(row))
    }

    /// Remove a row; returns whether it was present.
    pub fn remove(&mut self, row: &Row) -> bool {
        self.rows.remove(row)
    }

    /// Membership test.
    pub fn contains(&self, row: &Row) -> bool {
        self.rows.contains(row)
    }

    /// Iterate rows in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Project onto the inclusive column range `[from, to]`, deduplicating
    /// and dropping all-NULL projections — exactly how Definition 3.8
    /// materializes a partition `R^{from,to}` of a decomposition.
    pub fn project(&self, from: usize, to: usize) -> Result<Relation> {
        if from >= self.arity || to >= self.arity || from > to {
            return Err(AsrError::InvalidDecomposition(format!(
                "projection [{from},{to}] out of range for arity {}",
                self.arity
            )));
        }
        let mut out = Relation::new(to - from + 1);
        for row in &self.rows {
            out.insert(row.project(from, to))?;
        }
        Ok(out)
    }

    /// Retain only rows satisfying the predicate.
    pub fn filter(&self, pred: impl Fn(&Row) -> bool) -> Relation {
        Relation {
            arity: self.arity,
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Set union with another relation of equal arity.
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        if other.arity != self.arity {
            return Err(AsrError::ArityMismatch {
                expected: self.arity,
                actual: other.arity,
            });
        }
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Ok(Relation {
            arity: self.arity,
            rows,
        })
    }

    /// Is `self` a subset of `other` (same arity assumed)?
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.rows.is_subset(&other.rows)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "relation/{} ({} rows):", self.arity, self.rows.len())?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::row::oid_cell as c;

    #[test]
    fn set_semantics() {
        let mut r = Relation::new(2);
        assert!(r.insert(row![c(0), c(1)]).unwrap());
        assert!(!r.insert(row![c(0), c(1)]).unwrap(), "duplicates collapse");
        assert_eq!(r.len(), 1);
        assert!(r.contains(&row![c(0), c(1)]));
        assert!(r.remove(&row![c(0), c(1)]));
        assert!(r.is_empty());
    }

    #[test]
    fn all_null_rows_dropped() {
        let mut r = Relation::new(3);
        assert!(!r.insert(Row::nulls(3)).unwrap());
        assert!(r.is_empty());
    }

    #[test]
    fn arity_checked() {
        let mut r = Relation::new(2);
        assert!(matches!(
            r.insert(row![c(0)]),
            Err(AsrError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn projection_dedups_and_drops_null() {
        let r = Relation::from_rows(
            3,
            vec![
                row![c(0), c(1), c(2)],
                row![c(9), c(1), c(2)],
                row![c(5), None, None],
            ],
        )
        .unwrap();
        // Projecting away the differing first column collapses two rows and
        // drops the now-all-NULL third.
        let p = r.project(1, 2).unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.contains(&row![c(1), c(2)]));
        assert!(r.project(1, 3).is_err());
        assert!(r.project(2, 1).is_err());
    }

    #[test]
    fn union_and_subset() {
        let a = Relation::from_rows(2, vec![row![c(0), c(1)]]).unwrap();
        let b = Relation::from_rows(2, vec![row![c(2), c(3)]]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
        assert!(a.is_subset_of(&u));
        assert!(!u.is_subset_of(&a));
    }

    #[test]
    fn filter_keeps_arity() {
        let r = Relation::from_rows(2, vec![row![c(0), c(1)], row![None, c(2)]]).unwrap();
        let f = r.filter(|row| row.first().is_some());
        assert_eq!(f.len(), 1);
        assert_eq!(f.arity(), 2);
    }
}
