//! Rows (tuples) of access support relations.

use std::fmt;

use crate::cell::Cell;

/// A relation tuple: a fixed-arity sequence of optional cells, where `None`
/// is the paper's `NULL`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Row(Vec<Option<Cell>>);

impl Row {
    /// Construct a row from its cells.
    pub fn new(cells: Vec<Option<Cell>>) -> Self {
        Row(cells)
    }

    /// A row of `arity` NULLs.
    pub fn nulls(arity: usize) -> Self {
        Row(vec![None; arity])
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The cell at `idx` (panics when out of range, like slice indexing).
    pub fn cell(&self, idx: usize) -> &Option<Cell> {
        &self.0[idx]
    }

    /// All cells.
    pub fn cells(&self) -> &[Option<Cell>] {
        &self.0
    }

    /// First column (`S_0`-side clustering key).
    pub fn first(&self) -> &Option<Cell> {
        self.0.first().expect("rows are never 0-ary")
    }

    /// Last column (`S_m`-side clustering key).
    pub fn last(&self) -> &Option<Cell> {
        self.0.last().expect("rows are never 0-ary")
    }

    /// `true` when every column is NULL (such rows are never stored).
    pub fn is_all_null(&self) -> bool {
        self.0.iter().all(Option::is_none)
    }

    /// Project onto the inclusive column range `[from, to]` — the paper's
    /// partition `[S_from, …, S_to]`.
    pub fn project(&self, from: usize, to: usize) -> Row {
        Row(self.0[from..=to].to_vec())
    }

    /// Concatenate with another row, fusing the shared boundary column
    /// (this row's last column equals `other`'s first): the result is
    /// `self ++ other[1..]`.
    pub fn join_concat(&self, other: &Row) -> Row {
        let mut cells = self.0.clone();
        cells.extend_from_slice(&other.0[1..]);
        Row(cells)
    }

    /// Number of leading NULL columns.
    pub fn leading_nulls(&self) -> usize {
        self.0.iter().take_while(|c| c.is_none()).count()
    }

    /// Number of trailing NULL columns.
    pub fn trailing_nulls(&self) -> usize {
        self.0.iter().rev().take_while(|c| c.is_none()).count()
    }

    /// Column index of the first non-NULL cell, if any.
    pub fn first_defined(&self) -> Option<usize> {
        self.0.iter().position(Option::is_some)
    }

    /// Column index of the last non-NULL cell, if any.
    pub fn last_defined(&self) -> Option<usize> {
        self.0.iter().rposition(Option::is_some)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match c {
                Some(cell) => write!(f, "{cell}")?,
                None => write!(f, "NULL")?,
            }
        }
        write!(f, ")")
    }
}

impl From<Vec<Option<Cell>>> for Row {
    fn from(cells: Vec<Option<Cell>>) -> Self {
        Row::new(cells)
    }
}

/// Shorthand to build rows in tests and examples: OIDs from raw numbers,
/// `None` for NULL.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        $crate::Row::new(vec![$($cell),*])
    };
}

/// Build `Some(Cell::Oid(..))` from a raw OID number (test/example helper).
pub fn oid_cell(raw: u64) -> Option<Cell> {
    Some(Cell::Oid(asr_gom::Oid::from_raw(raw)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_gom::Value;

    fn c(raw: u64) -> Option<Cell> {
        oid_cell(raw)
    }

    #[test]
    fn projection_is_inclusive() {
        let r = row![c(0), c(1), c(2), c(3), c(4)];
        assert_eq!(r.project(1, 3), row![c(1), c(2), c(3)]);
        assert_eq!(r.project(0, 4), r);
        assert_eq!(r.project(2, 2).arity(), 1);
    }

    #[test]
    fn join_concat_fuses_boundary() {
        let a = row![c(0), c(1)];
        let b = row![c(1), c(2), c(3)];
        assert_eq!(a.join_concat(&b), row![c(0), c(1), c(2), c(3)]);
    }

    #[test]
    fn null_bookkeeping() {
        let r = row![None, None, c(2), None];
        assert_eq!(r.leading_nulls(), 2);
        assert_eq!(r.trailing_nulls(), 1);
        assert_eq!(r.first_defined(), Some(2));
        assert_eq!(r.last_defined(), Some(2));
        assert!(!r.is_all_null());
        assert!(Row::nulls(3).is_all_null());
        assert_eq!(Row::nulls(3).first_defined(), None);
    }

    #[test]
    fn display_matches_paper_style() {
        let r = row![c(1), None, Some(Cell::Value(Value::string("Door")))];
        assert_eq!(r.to_string(), "(i1, NULL, \"Door\")");
    }

    #[test]
    #[allow(clippy::useless_vec)] // sort() needs a mutable collection
    fn rows_order_deterministically() {
        let mut rows = vec![row![c(2), c(0)], row![c(1), c(9)], row![None, c(5)]];
        rows.sort();
        assert_eq!(rows[0], row![None, c(5)], "NULL sorts first");
        assert_eq!(rows[1], row![c(1), c(9)]);
    }
}
