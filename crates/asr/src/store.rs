//! The object store: type-clustered files for the object representation.
//!
//! The paper assumes objects are clustered by type (Section 5.5), with a
//! configurable per-type object size `size_i`.  [`ObjectStore`] provides
//! the page accounting for navigating the object representation — the
//! *unsupported* side of every comparison the paper draws.
//!
//! Set instances are assumed to be stored inline with their owning object
//! (the dominant physical design for the paper's era and the reason its
//! cost formulas never charge separate accesses for set objects); reading
//! a set-valued attribute therefore costs only the owner's page access.

use std::collections::HashMap;
use std::rc::Rc;

use asr_gom::{ObjectBase, Oid, TypeId};
use asr_pagesim::{ClusteredFile, StatsHandle};

use crate::error::Result;

/// Default `size_i` when no per-type size is configured.
pub const DEFAULT_OBJECT_SIZE: usize = 128;

/// Type-clustered, page-accounted object files.
#[derive(Debug)]
pub struct ObjectStore {
    files: HashMap<TypeId, ClusteredFile<()>>,
    sizes: HashMap<TypeId, usize>,
    labels: HashMap<TypeId, String>,
    default_size: usize,
    buffer_pages: usize,
    stats: StatsHandle,
}

impl ObjectStore {
    /// An empty store charging to `stats`.
    pub fn new(stats: StatsHandle) -> Self {
        ObjectStore {
            files: HashMap::new(),
            sizes: HashMap::new(),
            labels: HashMap::new(),
            default_size: DEFAULT_OBJECT_SIZE,
            buffer_pages: 0,
            stats,
        }
    }

    /// Give every clustered file an LRU buffer pool of `pages` pages
    /// (0 restores the paper's unbuffered accounting).  Applies to
    /// existing and future files; resident pages are invalidated.
    pub fn enable_buffering(&mut self, pages: usize) {
        self.buffer_pages = pages;
        for file in self.files.values_mut() {
            file.set_buffer(Self::make_pool(pages));
        }
    }

    fn make_pool(pages: usize) -> asr_pagesim::BufferPool {
        if pages == 0 {
            asr_pagesim::BufferPool::unbuffered()
        } else {
            asr_pagesim::BufferPool::with_capacity(pages)
        }
    }

    /// Configure the clustered object size `size_i` for a type.  Takes
    /// effect for files created afterwards (call before
    /// [`ObjectStore::sync_with_base`]).
    pub fn set_type_size(&mut self, ty: TypeId, size: usize) {
        self.sizes.insert(ty, size.max(1));
    }

    /// Configure the fallback object size.
    pub fn set_default_size(&mut self, size: usize) {
        self.default_size = size.max(1);
    }

    /// Name a type's clustered file for per-structure I/O attribution
    /// (shown in `\stats`).  Retags an already created file; otherwise the
    /// label is applied when the file is first created.
    pub fn set_type_label(&mut self, ty: TypeId, label: impl Into<String>) {
        let label = label.into();
        if let Some(file) = self.files.get_mut(&ty) {
            file.tag(label.clone());
        }
        self.labels.insert(ty, label);
    }

    /// Label every type's clustered file after the schema's type names.
    pub fn label_from_schema(&mut self, schema: &asr_gom::Schema) {
        let labels: Vec<(TypeId, String)> = schema
            .types()
            .map(|(ty, _)| (ty, format!("objects.{}", schema.name(ty))))
            .collect();
        for (ty, label) in labels {
            self.set_type_label(ty, label);
        }
    }

    /// The configured size for a type.
    pub fn type_size(&self, ty: TypeId) -> usize {
        self.sizes.get(&ty).copied().unwrap_or(self.default_size)
    }

    /// Iterate over the explicitly configured per-type sizes (persistence).
    pub fn configured_sizes(&self) -> impl Iterator<Item = (TypeId, usize)> + '_ {
        self.sizes.iter().map(|(&ty, &size)| (ty, size))
    }

    /// Register every object of `base` that the store does not know yet.
    /// Call after bulk loading; [`ObjectStore::register_object`] keeps the
    /// store current for single creations.
    pub fn sync_with_base(&mut self, base: &ObjectBase) -> Result<()> {
        for obj in base.objects() {
            self.register(obj.ty, obj.oid)?;
        }
        Ok(())
    }

    /// Register one freshly created object.
    pub fn register_object(&mut self, ty: TypeId, oid: Oid) -> Result<()> {
        self.register(ty, oid)
    }

    fn register(&mut self, ty: TypeId, oid: Oid) -> Result<()> {
        let size = self.type_size(ty);
        let file = match self.files.entry(ty) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let mut file = ClusteredFile::new(size, Rc::clone(&self.stats))?;
                if self.buffer_pages > 0 {
                    file.set_buffer(Self::make_pool(self.buffer_pages));
                }
                let label = self
                    .labels
                    .get(&ty)
                    .cloned()
                    .unwrap_or_else(|| format!("objects.{ty}"));
                file.tag(label);
                e.insert(file)
            }
        };
        if !file.contains(oid.as_raw()) {
            file.insert(oid.as_raw(), ())?;
        }
        Ok(())
    }

    /// Charge the page access(es) for reading object `oid` of type `ty`.
    /// Unknown objects charge nothing (they occupy no page).
    pub fn charge_read(&self, ty: TypeId, oid: Oid) {
        if let Some(file) = self.files.get(&ty) {
            let _ = file.get(oid.as_raw());
        }
    }

    /// Charge read + write-back for an in-place object update — the
    /// paper's "one page access to retrieve ... one page access to write
    /// back" (Section 6).
    pub fn charge_update(&mut self, ty: TypeId, oid: Oid) {
        if let Some(file) = self.files.get_mut(&ty) {
            let _ = file.get_for_update(oid.as_raw());
        }
    }

    /// Charge an exhaustive scan of the type's extent (`op_i` page reads —
    /// the backward query's entry cost, formula 32).
    pub fn charge_scan(&self, ty: TypeId) {
        if let Some(file) = self.files.get(&ty) {
            file.scan(|_, _| {});
        }
    }

    /// Pages occupied by the type's file (the paper's `op_i`).
    pub fn page_count(&self, ty: TypeId) -> u64 {
        self.files.get(&ty).map(|f| f.page_count()).unwrap_or(0)
    }

    /// Number of registered objects of the type.
    pub fn object_count(&self, ty: TypeId) -> usize {
        self.files.get(&ty).map(|f| f.len()).unwrap_or(0)
    }

    /// The shared page-access counter.
    pub fn stats(&self) -> &StatsHandle {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_gom::Schema;
    use asr_pagesim::IoStats;

    fn base_with_robots(n: usize) -> (ObjectBase, TypeId) {
        let mut s = Schema::new();
        s.define_tuple("ROBOT", [("Name", "STRING")]).unwrap();
        let ty = s.resolve("ROBOT").unwrap();
        let mut base = ObjectBase::new(s);
        for _ in 0..n {
            base.instantiate("ROBOT").unwrap();
        }
        (base, ty)
    }

    #[test]
    fn sync_and_page_math() {
        let (base, ty) = base_with_robots(100);
        let stats = IoStats::new_handle();
        let mut store = ObjectStore::new(Rc::clone(&stats));
        store.set_type_size(ty, 500); // opp = 8 -> op = 13
        store.sync_with_base(&base).unwrap();
        assert_eq!(store.object_count(ty), 100);
        assert_eq!(store.page_count(ty), 13);
        stats.reset();
        store.charge_scan(ty);
        assert_eq!(stats.accesses(), 13);
    }

    #[test]
    fn read_and_update_charges() {
        let (base, ty) = base_with_robots(10);
        let stats = IoStats::new_handle();
        let mut store = ObjectStore::new(Rc::clone(&stats));
        store.sync_with_base(&base).unwrap();
        let oid = base.extent(ty)[0];
        stats.reset();
        store.charge_read(ty, oid);
        assert_eq!(stats.accesses(), 1);
        store.charge_update(ty, oid);
        assert_eq!(stats.accesses(), 3, "update = read + write");
    }

    #[test]
    fn sync_is_idempotent_and_incremental() {
        let (mut base, ty) = base_with_robots(5);
        let stats = IoStats::new_handle();
        let mut store = ObjectStore::new(stats);
        store.sync_with_base(&base).unwrap();
        store.sync_with_base(&base).unwrap();
        assert_eq!(store.object_count(ty), 5);
        let new = base.instantiate("ROBOT").unwrap();
        store.register_object(ty, new).unwrap();
        assert_eq!(store.object_count(ty), 6);
    }

    #[test]
    fn unknown_type_charges_nothing() {
        let stats = IoStats::new_handle();
        let store = ObjectStore::new(Rc::clone(&stats));
        store.charge_scan(TypeId::from_index(42));
        store.charge_read(TypeId::from_index(42), Oid::from_raw(1));
        assert_eq!(stats.accesses(), 0);
        assert_eq!(store.page_count(TypeId::from_index(42)), 0);
    }

    #[test]
    fn default_size_applies() {
        let (base, ty) = base_with_robots(10);
        let stats = IoStats::new_handle();
        let mut store = ObjectStore::new(stats);
        store.set_default_size(4056);
        store.sync_with_base(&base).unwrap();
        assert_eq!(store.page_count(ty), 10, "one object per page");
        assert_eq!(store.type_size(ty), 4056);
    }
}
