//! Cells: the entries of access-support-relation columns.
//!
//! Most columns of an ASR hold OIDs; the final column of a path ending in
//! an atomic attribute holds the attribute *value* instead (footnote 3 of
//! the paper: "if `t_j` is an atomic type then `id(o_j)` corresponds to the
//! value `o_{j-1}.A_j`").

use std::fmt;

use asr_gom::{Oid, Value};

/// A non-NULL relation entry: an object identifier or an atomic value.
///
/// NULL entries are represented as `Option::<Cell>::None` in [`crate::Row`],
/// keeping "no entry" distinct from any storable content.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cell {
    /// An object identifier.
    Oid(Oid),
    /// An atomic attribute value (terminal column only).
    Value(Value),
}

impl Cell {
    /// The OID, if this cell holds one.
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Cell::Oid(oid) => Some(*oid),
            Cell::Value(_) => None,
        }
    }

    /// The value, if this cell holds one.
    pub fn as_value(&self) -> Option<&Value> {
        match self {
            Cell::Value(v) => Some(v),
            Cell::Oid(_) => None,
        }
    }

    /// Convert a GOM [`Value`] to an optional cell: references become
    /// [`Cell::Oid`], `NULL` becomes `None`, everything else a
    /// [`Cell::Value`].
    pub fn from_gom(value: &Value) -> Option<Cell> {
        match value {
            Value::Null => None,
            Value::Ref(oid) => Some(Cell::Oid(*oid)),
            other => Some(Cell::Value(other.clone())),
        }
    }

    /// Stored size in bytes.  OIDs take `OIDsize = 8`; the analytical model
    /// prices every column at `OIDsize`, so values are priced identically
    /// (strings in a real system would be hashed or offloaded — noted in
    /// DESIGN.md).
    pub const fn stored_size() -> usize {
        asr_pagesim::OID_SIZE
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Oid(oid) => write!(f, "{oid}"),
            Cell::Value(v) => write!(f, "{v}"),
        }
    }
}

impl From<Oid> for Cell {
    fn from(oid: Oid) -> Self {
        Cell::Oid(oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_gom_maps_null_to_none() {
        assert_eq!(Cell::from_gom(&Value::Null), None);
        assert_eq!(
            Cell::from_gom(&Value::Ref(Oid::from_raw(3))),
            Some(Cell::Oid(Oid::from_raw(3)))
        );
        assert_eq!(
            Cell::from_gom(&Value::string("Door")),
            Some(Cell::Value(Value::string("Door")))
        );
    }

    #[test]
    fn ordering_separates_kinds() {
        // Oid < Value by enum declaration order: all OIDs sort before all values.
        let a = Cell::Oid(Oid::from_raw(999));
        let b = Cell::Value(Value::Integer(-5));
        assert!(a < b);
        let c = Cell::Oid(Oid::from_raw(1));
        assert!(c < a);
    }

    #[test]
    fn accessors() {
        let c = Cell::Oid(Oid::from_raw(7));
        assert_eq!(c.as_oid(), Some(Oid::from_raw(7)));
        assert_eq!(c.as_value(), None);
        let v = Cell::Value(Value::Integer(1));
        assert_eq!(v.as_oid(), None);
        assert_eq!(v.as_value(), Some(&Value::Integer(1)));
    }
}
