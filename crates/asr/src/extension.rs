//! The four extensions of an access support relation
//! (Definitions 3.4–3.7) and their query-applicability rules
//! (Section 5.3 / formula 35).

use std::fmt;

use crate::error::Result;
use crate::join::{fold_left, fold_right, JoinKind};
use crate::relation::Relation;

/// Which tuples an access support relation materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Extension {
    /// `E_can = E_0 ⋈ … ⋈ E_{n-1}` — complete paths from `t_0` to `t_n`
    /// only.  The minimum information supporting whole-chain queries.
    Canonical,
    /// `E_full = E_0 ⟗ … ⟗ E_{n-1}` — every (maximal) partial path,
    /// including those neither anchored in `t_0` nor reaching `t_n`.
    Full,
    /// `E_left = (…(E_0 ⟕ E_1) ⟕ …) ⟕ E_{n-1}` — all partial paths
    /// originating in `t_0` (possibly dangling on the right).
    LeftComplete,
    /// `E_right = E_0 ⟖ (… ⟖ (E_{n-2} ⟖ E_{n-1}))` — all partial paths
    /// reaching `t_n` (possibly not anchored in `t_0`).
    RightComplete,
}

impl Extension {
    /// All extensions, in the paper's presentation order.
    pub const ALL: [Extension; 4] = [
        Extension::Canonical,
        Extension::Full,
        Extension::LeftComplete,
        Extension::RightComplete,
    ];

    /// Short name used in diagnostics and experiment tables.
    pub const fn name(self) -> &'static str {
        match self {
            Extension::Canonical => "canonical",
            Extension::Full => "full",
            Extension::LeftComplete => "left",
            Extension::RightComplete => "right",
        }
    }

    /// The join flavour that assembles this extension from the auxiliary
    /// relations.
    pub const fn join_kind(self) -> JoinKind {
        match self {
            Extension::Canonical => JoinKind::Natural,
            Extension::Full => JoinKind::FullOuter,
            Extension::LeftComplete => JoinKind::LeftOuter,
            Extension::RightComplete => JoinKind::RightOuter,
        }
    }

    /// Compute the extension from the auxiliary relations `E_0 … E_{n-1}`
    /// (Definitions 3.4–3.7).  Note the association: left-complete folds
    /// left-associatively, right-complete right-associatively, exactly as
    /// the definitions parenthesize.
    pub fn compute(self, aux: &[Relation]) -> Result<Relation> {
        match self {
            Extension::RightComplete => fold_right(aux, self.join_kind()),
            _ => fold_left(aux, self.join_kind()),
        }
    }

    /// Formula (35): can this extension evaluate a span query
    /// `Q_{i,j}` (forward or backward) over a path of length `n`?
    ///
    /// * canonical — only the whole chain (`i = 0 ∧ j = n`);
    /// * full — every span;
    /// * left-complete — spans anchored at `t_0` (`i = 0`);
    /// * right-complete — spans reaching `t_n` (`j = n`).
    pub fn supports(self, i: usize, j: usize, n: usize) -> bool {
        debug_assert!(i < j && j <= n);
        match self {
            Extension::Canonical => i == 0 && j == n,
            Extension::Full => true,
            Extension::LeftComplete => i == 0,
            Extension::RightComplete => j == n,
        }
    }
}

impl fmt::Display for Extension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auxrel::build_auxiliary_relations;
    use crate::cell::Cell;
    use crate::row::Row;
    use asr_gom::{ObjectBase, Value};

    fn oid_of(base: &ObjectBase, name: &str) -> Option<Cell> {
        base.objects()
            .find(|o| o.attribute("Name") == &Value::string(name))
            .map(|o| Some(Cell::Oid(o.oid)))
            .unwrap_or_else(|| panic!("no object named {name}"))
    }

    fn val(s: &str) -> Option<Cell> {
        Some(Cell::Value(Value::string(s)))
    }

    /// All four extensions over the paper's Figure 2 extension,
    /// binary (set-OID-free) auxiliary relations.
    fn extensions() -> (ObjectBase, [Relation; 4]) {
        let (base, path) = crate::testutil::figure2_base();
        let aux = build_auxiliary_relations(&base, &path, false).unwrap();
        let e = [
            Extension::Canonical.compute(&aux).unwrap(),
            Extension::Full.compute(&aux).unwrap(),
            Extension::LeftComplete.compute(&aux).unwrap(),
            Extension::RightComplete.compute(&aux).unwrap(),
        ];
        (base, e)
    }

    #[test]
    fn canonical_contains_only_complete_paths() {
        let (base, [can, _, _, _]) = extensions();
        assert_eq!(can.len(), 2);
        let auto_row = Row::new(vec![
            oid_of(&base, "Auto"),
            oid_of(&base, "560 SEC"),
            oid_of(&base, "Door"),
            val("Door"),
        ]);
        let truck_row = Row::new(vec![
            oid_of(&base, "Truck"),
            oid_of(&base, "560 SEC"),
            oid_of(&base, "Door"),
            val("Door"),
        ]);
        assert!(
            can.contains(&auto_row),
            "the paper's example canonical tuple"
        );
        assert!(
            can.contains(&truck_row),
            "i5 = {{i6, i9}} also reaches Door"
        );
    }

    #[test]
    fn full_contains_incomplete_paths_both_ways() {
        let (base, [_, full, _, _]) = extensions();
        assert_eq!(full.len(), 4);
        // Paper's first E_full example tuple: (i2, i9, NULL, NULL) — the
        // Truck division's MB Trak has no Composition.
        let dangling_right = Row::new(vec![
            oid_of(&base, "Truck"),
            oid_of(&base, "MB Trak"),
            None,
            None,
        ]);
        // Paper's second: (NULL, i11, i14, "Pepper") — Sausage is not
        // manufactured by any Division.
        let dangling_left = Row::new(vec![
            None,
            oid_of(&base, "Sausage"),
            oid_of(&base, "Pepper"),
            val("Pepper"),
        ]);
        assert!(full.contains(&dangling_right));
        assert!(full.contains(&dangling_left));
    }

    #[test]
    fn left_complete_requires_anchor() {
        let (base, [_, _, left, _]) = extensions();
        assert_eq!(left.len(), 3);
        assert!(
            left.iter().all(|r| r.first().is_some()),
            "all rows originate in t_0"
        );
        assert!(left.contains(&Row::new(vec![
            oid_of(&base, "Truck"),
            oid_of(&base, "MB Trak"),
            None,
            None,
        ])));
    }

    #[test]
    fn right_complete_requires_terminal() {
        let (base, [_, _, _, right]) = extensions();
        assert_eq!(right.len(), 3);
        assert!(
            right.iter().all(|r| r.last().is_some()),
            "all rows reach A_n"
        );
        assert!(right.contains(&Row::new(vec![
            None,
            oid_of(&base, "Sausage"),
            oid_of(&base, "Pepper"),
            val("Pepper"),
        ])));
    }

    #[test]
    fn containment_hierarchy() {
        let (_, [can, full, left, right]) = extensions();
        assert!(can.is_subset_of(&left));
        assert!(can.is_subset_of(&right));
        assert!(left.is_subset_of(&full));
        assert!(right.is_subset_of(&full));
    }

    #[test]
    fn formula_35_support_matrix() {
        let n = 4;
        // (extension, i, j, expected)
        let cases = [
            (Extension::Canonical, 0, 4, true),
            (Extension::Canonical, 0, 3, false),
            (Extension::Canonical, 1, 4, false),
            (Extension::Full, 1, 3, true),
            (Extension::Full, 0, 4, true),
            (Extension::LeftComplete, 0, 2, true),
            (Extension::LeftComplete, 1, 4, false),
            (Extension::RightComplete, 2, 4, true),
            (Extension::RightComplete, 0, 3, false),
        ];
        for (ext, i, j, expected) in cases {
            assert_eq!(ext.supports(i, j, n), expected, "{ext} Q_{{{i},{j}}}");
        }
    }

    #[test]
    fn set_oid_form_has_wider_arity() {
        let (base, path) = crate::testutil::figure2_base();
        let aux = build_auxiliary_relations(&base, &path, true).unwrap();
        let can = Extension::Canonical.compute(&aux).unwrap();
        assert_eq!(can.arity(), 6, "n + k + 1 = 3 + 2 + 1");
        assert_eq!(can.len(), 2);
        let full = Extension::Full.compute(&aux).unwrap();
        assert_eq!(full.arity(), 6);
        assert!(full.len() >= 4);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Extension::Canonical.to_string(), "canonical");
        assert_eq!(Extension::ALL.len(), 4);
    }
}
