//! Error type for access-support-relation operations.

use std::fmt;

use asr_gom::GomError;
use asr_pagesim::PageSimError;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, AsrError>;

/// Errors raised while building, querying or maintaining access support
/// relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsrError {
    /// An underlying object-model error.
    Gom(GomError),
    /// An underlying storage error.
    PageSim(PageSimError),
    /// The requested decomposition is malformed (cut points not strictly
    /// increasing from 0 to m).
    InvalidDecomposition(String),
    /// The chosen extension cannot evaluate the requested span query
    /// (formula 35 of the paper); callers may fall back to naive
    /// evaluation.
    Unsupported {
        /// Extension name.
        extension: &'static str,
        /// Query span start `i`.
        i: usize,
        /// Query span end `j`.
        j: usize,
        /// Path length `n`.
        n: usize,
    },
    /// A query span `[i, j]` was out of range for the path.
    InvalidSpan {
        /// Span start.
        i: usize,
        /// Span end.
        j: usize,
        /// Path length.
        n: usize,
    },
    /// Arity mismatch between a row and the relation or partition it was
    /// offered to.
    ArityMismatch {
        /// What the structure expects.
        expected: usize,
        /// What the row has.
        actual: usize,
    },
    /// A maintenance operation referenced a path position that does not
    /// match the updated object's type.
    BadUpdatePosition(String),
    /// A snapshot (or WAL checkpoint) could not be parsed: truncated
    /// files, garbled headers, bad `A`-lines, a missing `--BASE--`
    /// marker.  Loading corrupt input returns this — it never panics.
    Snapshot(String),
    /// A scatter-gather shard operation failed: a shard link stayed down
    /// past its retry budget, or a shard answered with a remote error.
    Shard(String),
}

impl fmt::Display for AsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsrError::Gom(e) => write!(f, "object model error: {e}"),
            AsrError::PageSim(e) => write!(f, "storage error: {e}"),
            AsrError::InvalidDecomposition(msg) => write!(f, "invalid decomposition: {msg}"),
            AsrError::Unsupported { extension, i, j, n } => write!(
                f,
                "the {extension} extension cannot evaluate Q_{{{i},{j}}} on a path of length {n}"
            ),
            AsrError::InvalidSpan { i, j, n } => {
                write!(f, "span [{i},{j}] is invalid for a path of length {n}")
            }
            AsrError::ArityMismatch { expected, actual } => {
                write!(f, "arity mismatch: expected {expected}, got {actual}")
            }
            AsrError::BadUpdatePosition(msg) => write!(f, "bad update position: {msg}"),
            AsrError::Snapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
            AsrError::Shard(msg) => write!(f, "shard error: {msg}"),
        }
    }
}

impl std::error::Error for AsrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsrError::Gom(e) => Some(e),
            AsrError::PageSim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GomError> for AsrError {
    fn from(e: GomError) -> Self {
        AsrError::Gom(e)
    }
}

impl From<PageSimError> for AsrError {
    fn from(e: PageSimError) -> Self {
        AsrError::PageSim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AsrError = GomError::UnknownVariable("x".into()).into();
        assert!(e.to_string().contains("object model error"));
        let e: AsrError = PageSimError::NotFound("k".into()).into();
        assert!(e.to_string().contains("storage error"));
        let e = AsrError::Unsupported {
            extension: "canonical",
            i: 1,
            j: 3,
            n: 4,
        };
        assert_eq!(
            e.to_string(),
            "the canonical extension cannot evaluate Q_{1,3} on a path of length 4"
        );
    }
}
