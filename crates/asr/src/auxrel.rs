//! Auxiliary relations `E_0 … E_{n-1}` (Definition 3.3).
//!
//! For each path attribute `A_j` the auxiliary relation `E_{j-1}` captures
//! the live references:
//!
//! 1. `A_j` single-valued: binary, one tuple `(id(o_{j-1}), id(o_j))` per
//!    pair with `o_{j-1}.A_j = o_j`;
//! 2. `A_j` set-valued: ternary, one tuple `(id(o_{j-1}), id(o'_j),
//!    id(o_j))` per set member, and the special tuple `(id(o_{j-1}),
//!    id(o'_j), NULL)` when the set `o'_j` is empty.
//!
//! Objects whose `A_j` attribute is `NULL` do not appear in `E_{j-1}` at
//! all.  When the range type `t_j` is atomic, `id(o_j)` is the attribute
//! *value* (footnote 3).
//!
//! The paper's simplification "no set sharing ⇒ drop the set identifiers"
//! (after Definition 3.8) is available through `keep_set_oids = false`,
//! which projects the set column away, making every `E_{j-1}` binary.

use asr_gom::{ObjectBase, PathExpression, Value};

use crate::cell::Cell;
use crate::error::Result;
use crate::relation::Relation;
use crate::row::Row;

/// Build all auxiliary relations for `path` over the current state of
/// `base`.
///
/// Dangling references (to deleted objects) are treated as `NULL`,
/// consistent with [`ObjectBase`] navigation.
pub fn build_auxiliary_relations(
    base: &ObjectBase,
    path: &PathExpression,
    keep_set_oids: bool,
) -> Result<Vec<Relation>> {
    let mut out = Vec::with_capacity(path.len());
    for (idx, step) in path.steps().iter().enumerate() {
        let _ = idx;
        let arity = if keep_set_oids && step.is_set_occurrence() {
            3
        } else {
            2
        };
        let mut rel = Relation::new(arity);
        for &oid in &base.extent_closure(step.domain) {
            let attr_value = base.get_attribute(oid, &step.attr)?;
            match &attr_value {
                Value::Null => {} // not in E_{j-1}
                Value::Ref(target) if step.is_set_occurrence() => {
                    if !base.contains(*target) {
                        continue; // dangling set reference ≡ NULL
                    }
                    let set_obj = base.object(*target)?;
                    let members: Vec<Option<Cell>> = set_obj
                        .elements()
                        .map(Cell::from_gom)
                        .filter(|c| {
                            // Dangling member references degrade to NULL and
                            // are dropped (they carry no navigable target).
                            match c {
                                Some(Cell::Oid(o)) => base.contains(*o),
                                _ => true,
                            }
                        })
                        .collect();
                    let rows: Vec<Row> = if members.is_empty() {
                        // The empty-set marker tuple of Definition 3.3.
                        vec![make_set_row(oid, *target, None, keep_set_oids)]
                    } else {
                        members
                            .into_iter()
                            .map(|m| make_set_row(oid, *target, m, keep_set_oids))
                            .collect()
                    };
                    for row in rows {
                        rel.insert(row)?;
                    }
                }
                Value::Ref(target) => {
                    if base.contains(*target) {
                        rel.insert(Row::new(vec![
                            Some(Cell::Oid(oid)),
                            Some(Cell::Oid(*target)),
                        ]))?;
                    }
                }
                atomic => {
                    rel.insert(Row::new(vec![Some(Cell::Oid(oid)), Cell::from_gom(atomic)]))?;
                }
            }
        }
        out.push(rel);
    }
    Ok(out)
}

fn make_set_row(
    owner: asr_gom::Oid,
    set: asr_gom::Oid,
    member: Option<Cell>,
    keep_set_oids: bool,
) -> Row {
    if keep_set_oids {
        Row::new(vec![Some(Cell::Oid(owner)), Some(Cell::Oid(set)), member])
    } else {
        Row::new(vec![Some(Cell::Oid(owner)), member])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_gom::Oid;

    use crate::testutil::figure2_base;

    fn oid_of(base: &ObjectBase, name: &str) -> Oid {
        base.objects()
            .find(|o| o.attribute("Name") == &Value::string(name))
            .map(|o| o.oid)
            .unwrap_or_else(|| panic!("no object named {name}"))
    }

    #[test]
    fn e0_matches_paper_example() {
        let (base, path) = figure2_base();
        let aux = build_auxiliary_relations(&base, &path, true).unwrap();
        assert_eq!(aux.len(), 3);
        let e0 = &aux[0];
        assert_eq!(e0.arity(), 3);
        // Paper's E0: (i2,i5,i9), (i1,i4,i6), and additionally (i2,i5,i6)
        // because i5 = {i6, i9} (the paper's "..." rows).
        assert_eq!(e0.len(), 3);
        let auto = oid_of(&base, "Auto");
        let truck = oid_of(&base, "Truck");
        let sec = oid_of(&base, "560 SEC");
        let trak = oid_of(&base, "MB Trak");
        let rows: Vec<Vec<Option<Oid>>> = e0
            .iter()
            .map(|r| {
                r.cells()
                    .iter()
                    .map(|c| c.as_ref().and_then(Cell::as_oid))
                    .collect()
            })
            .collect();
        assert!(rows.iter().any(|r| r[0] == Some(auto) && r[2] == Some(sec)));
        assert!(rows
            .iter()
            .any(|r| r[0] == Some(truck) && r[2] == Some(trak)));
        assert!(rows
            .iter()
            .any(|r| r[0] == Some(truck) && r[2] == Some(sec)));
        // Space has NULL Manufactures — absent entirely.
        let space = oid_of(&base, "Space");
        assert!(rows.iter().all(|r| r[0] != Some(space)));
    }

    #[test]
    fn e2_holds_values_not_oids() {
        let (base, path) = figure2_base();
        let aux = build_auxiliary_relations(&base, &path, false).unwrap();
        let e2 = &aux[2];
        assert_eq!(e2.arity(), 2);
        let door = Row::new(vec![
            Some(Cell::Oid(oid_of(&base, "Door"))),
            Some(Cell::Value(Value::string("Door"))),
        ]);
        assert!(e2.contains(&door));
    }

    #[test]
    fn empty_set_produces_marker_tuple() {
        let (mut base, path) = figure2_base();
        // Give Space an empty ProdSET.
        let space = oid_of(&base, "Space");
        let empty = base.instantiate("ProdSET").unwrap();
        base.set_attribute(space, "Manufactures", Value::Ref(empty))
            .unwrap();
        let aux = build_auxiliary_relations(&base, &path, true).unwrap();
        let marker = Row::new(vec![Some(Cell::Oid(space)), Some(Cell::Oid(empty)), None]);
        assert!(aux[0].contains(&marker), "Definition 3.3 empty-set tuple");
        // Binary form: (space, NULL).
        let aux2 = build_auxiliary_relations(&base, &path, false).unwrap();
        assert!(aux2[0].contains(&Row::new(vec![Some(Cell::Oid(space)), None])));
    }

    #[test]
    fn dangling_references_skipped() {
        let (mut base, path) = figure2_base();
        let door = oid_of(&base, "Door");
        base.delete(door).unwrap();
        let aux = build_auxiliary_relations(&base, &path, true).unwrap();
        // E1 loses the (i6, i7, i8) member row; i7 still has no live
        // members, so the empty-set marker appears instead.
        let sec = oid_of(&base, "560 SEC");
        let e1_rows: Vec<&Row> = aux[1]
            .iter()
            .filter(|r| r.cell(0) == &Some(Cell::Oid(sec)))
            .collect();
        assert_eq!(e1_rows.len(), 1);
        assert_eq!(e1_rows[0].cell(2), &None);
        // E2 no longer mentions the deleted BasePart.
        assert!(aux[2].iter().all(|r| r.cell(0) != &Some(Cell::Oid(door))));
    }

    #[test]
    fn binary_form_dedups_shared_elements() {
        let (base, path) = figure2_base();
        let aux3 = build_auxiliary_relations(&base, &path, true).unwrap();
        let aux2 = build_auxiliary_relations(&base, &path, false).unwrap();
        // Dropping the set column can only shrink or keep the row count.
        for (a3, a2) in aux3.iter().zip(aux2.iter()) {
            assert!(a2.len() <= a3.len());
        }
    }
}
