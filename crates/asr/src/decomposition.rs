//! Decompositions of access support relations (Definition 3.8) and their
//! lossless reassembly (Theorem 3.9).
//!
//! A decomposition of an `(m+1)`-ary relation is a sequence of cut points
//! `(0, i_1, …, i_k, m)`; each adjacent pair `(i_ν, i_{ν+1})` names a
//! partition `[S_{i_ν}, …, S_{i_{ν+1}}]` materialized by projection.
//! Adjacent partitions overlap in their boundary column, which is what
//! makes every decomposition lossless: re-joining the partitions with the
//! same join flavour that defined the extension recovers the original
//! relation exactly.

use std::fmt;

use crate::error::{AsrError, Result};
use crate::extension::Extension;
use crate::join::chain_join;
use crate::relation::Relation;

/// A decomposition `(0, i_1, …, i_k, m)` of an `(m+1)`-column relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Decomposition {
    cuts: Vec<usize>,
}

impl Decomposition {
    /// The trivial decomposition `(0, m)` — no decomposition at all.
    pub fn none(m: usize) -> Self {
        assert!(m >= 1, "relations have at least two columns");
        Decomposition { cuts: vec![0, m] }
    }

    /// The binary decomposition `(0, 1, 2, …, m)`: every partition is a
    /// binary relation.
    pub fn binary(m: usize) -> Self {
        assert!(m >= 1);
        Decomposition {
            cuts: (0..=m).collect(),
        }
    }

    /// A custom decomposition from its cut points, validated to start at 0,
    /// end at `m` and be strictly increasing.
    pub fn new(cuts: impl Into<Vec<usize>>) -> Result<Self> {
        let cuts = cuts.into();
        if cuts.len() < 2 {
            return Err(AsrError::InvalidDecomposition(
                "need at least the two outer cut points".into(),
            ));
        }
        if cuts[0] != 0 {
            return Err(AsrError::InvalidDecomposition(
                "first cut point must be 0".into(),
            ));
        }
        if !cuts.windows(2).all(|w| w[0] < w[1]) {
            return Err(AsrError::InvalidDecomposition(
                "cut points must be strictly increasing".into(),
            ));
        }
        Ok(Decomposition { cuts })
    }

    /// The relation width this decomposition applies to (`m`; arity − 1).
    pub fn m(&self) -> usize {
        *self.cuts.last().expect("cuts are non-empty")
    }

    /// The cut points `(0, i_1, …, m)`.
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }

    /// The partitions as inclusive column spans `(i_ν, i_{ν+1})`.
    pub fn partitions(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.cuts.windows(2).map(|w| (w[0], w[1]))
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.cuts.len() - 1
    }

    /// Is this the binary decomposition?
    pub fn is_binary(&self) -> bool {
        self.cuts.len() == self.m() + 1
    }

    /// Is this the trivial (0, m) decomposition?
    pub fn is_none(&self) -> bool {
        self.cuts.len() == 2
    }

    /// Is `col` one of the cut points?
    pub fn has_cut(&self, col: usize) -> bool {
        self.cuts.binary_search(&col).is_ok()
    }

    /// Index of the partition whose span contains column `col`
    /// (columns at interior cut points belong to the partition that
    /// *starts* there, except `m`, which belongs to the last).
    pub fn partition_containing(&self, col: usize) -> usize {
        assert!(col <= self.m(), "column out of range");
        match self.cuts.binary_search(&col) {
            Ok(idx) => idx.min(self.partition_count() - 1),
            Err(idx) => idx - 1,
        }
    }

    /// The inclusive span of partition `idx`.
    pub fn span(&self, idx: usize) -> (usize, usize) {
        (self.cuts[idx], self.cuts[idx + 1])
    }

    /// Enumerate **all** decompositions of an `(m+1)`-ary relation —
    /// the `2^{m-1}` subsets of interior cut points.  Used by the
    /// physical-design optimizer.
    pub fn enumerate_all(m: usize) -> Vec<Decomposition> {
        assert!(m >= 1);
        let interior = m - 1;
        let mut out = Vec::with_capacity(1 << interior);
        for mask in 0u64..(1u64 << interior) {
            let mut cuts = vec![0];
            for bit in 0..interior {
                if mask & (1 << bit) != 0 {
                    cuts.push(bit + 1);
                }
            }
            cuts.push(m);
            out.push(Decomposition { cuts });
        }
        out
    }

    /// Materialize the partitions of `relation` by projection
    /// (Definition 3.8).
    pub fn decompose(&self, relation: &Relation) -> Result<Vec<Relation>> {
        if relation.arity() != self.m() + 1 {
            return Err(AsrError::ArityMismatch {
                expected: self.m() + 1,
                actual: relation.arity(),
            });
        }
        self.partitions()
            .map(|(a, b)| relation.project(a, b))
            .collect()
    }

    /// Reassemble decomposed partitions with the join flavour of the given
    /// extension.  By Theorem 3.9 this recovers the original extension
    /// exactly (property-tested in `tests/lossless.rs`).
    pub fn reassemble(&self, parts: &[Relation], extension: Extension) -> Result<Relation> {
        if parts.len() != self.partition_count() {
            return Err(AsrError::InvalidDecomposition(format!(
                "expected {} partitions, got {}",
                self.partition_count(),
                parts.len()
            )));
        }
        let kind = extension.join_kind();
        match extension {
            Extension::RightComplete => {
                let (last, rest) = parts.split_last().expect("at least one partition");
                let mut acc = last.clone();
                for p in rest.iter().rev() {
                    acc = chain_join(p, &acc, kind)?;
                }
                Ok(acc)
            }
            _ => {
                let (first, rest) = parts.split_first().expect("at least one partition");
                let mut acc = first.clone();
                for p in rest {
                    acc = chain_join(&acc, p, kind)?;
                }
                Ok(acc)
            }
        }
    }
}

impl fmt::Display for Decomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.cuts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auxrel::build_auxiliary_relations;

    #[test]
    fn constructors_and_accessors() {
        let d = Decomposition::none(5);
        assert_eq!(d.to_string(), "(0,5)");
        assert!(d.is_none() && !d.is_binary());
        assert_eq!(d.partition_count(), 1);

        let b = Decomposition::binary(5);
        assert_eq!(b.to_string(), "(0,1,2,3,4,5)");
        assert!(b.is_binary() && !b.is_none());
        assert_eq!(b.partition_count(), 5);

        let c = Decomposition::new(vec![0, 3, 4]).unwrap();
        assert_eq!(c.to_string(), "(0,3,4)");
        assert_eq!(c.partitions().collect::<Vec<_>>(), vec![(0, 3), (3, 4)]);
    }

    #[test]
    fn invalid_cut_sequences_rejected() {
        assert!(Decomposition::new(vec![0]).is_err());
        assert!(Decomposition::new(vec![1, 4]).is_err());
        assert!(Decomposition::new(vec![0, 3, 3, 5]).is_err());
        assert!(Decomposition::new(vec![0, 4, 2]).is_err());
    }

    #[test]
    fn partition_containing_respects_borders() {
        let d = Decomposition::new(vec![0, 3, 5]).unwrap();
        assert_eq!(d.partition_containing(0), 0);
        assert_eq!(d.partition_containing(2), 0);
        assert_eq!(
            d.partition_containing(3),
            1,
            "interior cut starts the next partition"
        );
        assert_eq!(d.partition_containing(5), 1);
        assert_eq!(d.span(0), (0, 3));
        assert_eq!(d.span(1), (3, 5));
        assert!(d.has_cut(3));
        assert!(!d.has_cut(2));
    }

    #[test]
    fn enumerate_all_is_exhaustive() {
        let all = Decomposition::enumerate_all(4);
        assert_eq!(all.len(), 8, "2^{{m-1}} decompositions");
        assert!(all.iter().any(|d| d.is_none()));
        assert!(all.iter().any(|d| d.is_binary()));
        // All distinct.
        let set: std::collections::HashSet<_> = all.iter().map(|d| d.cuts().to_vec()).collect();
        assert_eq!(set.len(), 8);
        assert_eq!(Decomposition::enumerate_all(1).len(), 1);
    }

    #[test]
    fn binary_decomposition_of_canonical_matches_paper_example() {
        // Section 3's closing example: five binary partitions of E_can for
        // the Division.Manufactures.Composition.Name path with set OIDs.
        let (base, path) = crate::testutil::figure2_base();
        let aux = build_auxiliary_relations(&base, &path, true).unwrap();
        let can = Extension::Canonical.compute(&aux).unwrap();
        let dec = Decomposition::binary(can.arity() - 1);
        let parts = dec.decompose(&can).unwrap();
        assert_eq!(parts.len(), 5);
        assert!(parts.iter().all(|p| p.arity() == 2));
        // Losslessness on the example.
        let back = dec.reassemble(&parts, Extension::Canonical).unwrap();
        assert_eq!(back, can);
    }

    #[test]
    fn every_decomposition_lossless_on_figure2() {
        let (base, path) = crate::testutil::figure2_base();
        for keep in [false, true] {
            let aux = build_auxiliary_relations(&base, &path, keep).unwrap();
            for ext in Extension::ALL {
                let rel = ext.compute(&aux).unwrap();
                for dec in Decomposition::enumerate_all(rel.arity() - 1) {
                    let parts = dec.decompose(&rel).unwrap();
                    let back = dec.reassemble(&parts, ext).unwrap();
                    assert_eq!(back, rel, "{ext} under {dec} (keep_set_oids={keep})");
                }
            }
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let d = Decomposition::none(3);
        let r = Relation::new(2);
        assert!(matches!(
            d.decompose(&r),
            Err(AsrError::ArityMismatch { .. })
        ));
        assert!(d.reassemble(&[], Extension::Full).is_err());
    }
}
