//! Supported query evaluation over decomposed, stored partitions
//! (Section 5.7 of the paper).
//!
//! A span query `Q_{i,j}` walks the partitions that overlap the column
//! range `[c_i, c_j]`:
//!
//! * a partition whose span *starts* at the query's entry column is probed
//!   through its clustered B+ tree (the `ht + nlp` term of formula 33);
//! * a partition that contains the entry column strictly inside must be
//!   scanned exhaustively (the `ap` term — the reason non-decomposed
//!   relations evaluate interior spans so poorly, Figure 8);
//! * subsequent partitions are probed per frontier value (the Yao terms).
//!
//! The same partition-walking machinery collects complete **prefixes** and
//! **suffixes** of stored rows, which is how incremental maintenance
//! retrieves the paper's `I_l` / `I_r` relations from the access relation
//! itself when the extension contains them (Section 6.1).

use std::collections::{BTreeMap, BTreeSet};

use crate::cell::Cell;
use crate::decomposition::Decomposition;
use crate::partition::StoredPartition;
use crate::row::Row;

/// One partition as the span-query walk sees it: batched border probes
/// through a clustering direction, and exhaustive interior scans.
/// Implemented by live [`StoredPartition`]s (page costs land on the shared
/// stats handle) and by the immutable MVCC partition versions behind
/// [`crate::Snapshot`] (modeled page costs land on the snapshot's own
/// counter), so both evaluate `Q_{i,j}` through the same machinery.
pub trait SpanSource {
    /// Batched clustered probe over an **ascending** frontier: `forward`
    /// probes the first-column clustering, otherwise the last-column one.
    /// Rows come back grouped per probe cell in frontier order, matching
    /// [`StoredPartition::lookup_first_many`] bit for bit.
    fn probe_border(&self, forward: bool, frontier: &BTreeSet<Cell>) -> Vec<Row>;

    /// Exhaustive scan keeping the rows whose column `offset` is in
    /// `frontier`, in first-column clustering order.
    fn scan_matching(&self, offset: usize, frontier: &BTreeSet<Cell>) -> Vec<Row>;
}

impl SpanSource for StoredPartition {
    fn probe_border(&self, forward: bool, frontier: &BTreeSet<Cell>) -> Vec<Row> {
        if forward {
            self.lookup_first_many(frontier.iter())
        } else {
            self.lookup_last_many(frontier.iter())
        }
    }

    fn scan_matching(&self, offset: usize, frontier: &BTreeSet<Cell>) -> Vec<Row> {
        let mut hits = Vec::new();
        self.scan(|row| {
            if let Some(cell) = row.cell(offset) {
                if frontier.contains(cell) {
                    hits.push(row.clone());
                }
            }
        });
        hits
    }
}

/// Evaluate a forward span query: all cells at column `cj` reachable from
/// `start` at column `ci` through the stored rows.
pub fn forward_supported<P: SpanSource>(
    partitions: &[P],
    dec: &Decomposition,
    ci: usize,
    cj: usize,
    start: &Cell,
) -> Vec<Cell> {
    debug_assert!(ci < cj && cj <= dec.m());
    let mut frontier: BTreeSet<Cell> = BTreeSet::from([start.clone()]);
    for (idx, (a, b)) in dec.partitions().enumerate() {
        if b <= ci {
            continue;
        }
        if a >= cj {
            break;
        }
        let part = &partitions[idx];
        let rows: Vec<Row> = if a < ci {
            // Entry column strictly inside the partition: exhaustive scan.
            part.scan_matching(ci - a, &frontier)
        } else {
            // Entry at the partition border: one batched clustered probe
            // over the whole (sorted) frontier — each tree page is read at
            // most once however many frontier cells share it.
            part.probe_border(true, &frontier)
        };
        if cj <= b {
            let offset = cj - a;
            let out: BTreeSet<Cell> = rows.iter().filter_map(|r| r.cell(offset).clone()).collect();
            return out.into_iter().collect();
        }
        frontier = rows.iter().filter_map(|r| r.last().clone()).collect();
        if frontier.is_empty() {
            return Vec::new();
        }
    }
    Vec::new()
}

/// Evaluate a backward span query: all cells at column `ci` from which the
/// stored rows reach `target` at column `cj`.
pub fn backward_supported<P: SpanSource>(
    partitions: &[P],
    dec: &Decomposition,
    ci: usize,
    cj: usize,
    target: &Cell,
) -> Vec<Cell> {
    debug_assert!(ci < cj && cj <= dec.m());
    let mut frontier: BTreeSet<Cell> = BTreeSet::from([target.clone()]);
    let spans: Vec<(usize, usize)> = dec.partitions().collect();
    for (idx, &(a, b)) in spans.iter().enumerate().rev() {
        if a >= cj {
            continue;
        }
        if b <= ci {
            break;
        }
        let part = &partitions[idx];
        let rows: Vec<Row> = if b > cj {
            // Exit column strictly inside the partition: exhaustive scan.
            part.scan_matching(cj - a, &frontier)
        } else {
            // Exit at the partition border: one batched reverse-clustered
            // probe over the whole (sorted) frontier.
            part.probe_border(false, &frontier)
        };
        if ci >= a {
            let offset = ci - a;
            let out: BTreeSet<Cell> = rows.iter().filter_map(|r| r.cell(offset).clone()).collect();
            return out.into_iter().collect();
        }
        frontier = rows.iter().filter_map(|r| r.first().clone()).collect();
        if frontier.is_empty() {
            return Vec::new();
        }
    }
    Vec::new()
}

/// The partition index whose span *ends* at column `col` (preferred for
/// leftward walks), falling back to the partition containing `col`.
fn partition_ending_at(dec: &Decomposition, col: usize) -> usize {
    if col == 0 {
        return 0;
    }
    for (idx, (_, b)) in dec.partitions().enumerate() {
        if b == col {
            return idx;
        }
        if b > col {
            return idx;
        }
    }
    dec.partition_count() - 1
}

/// Collect all stored **prefix rows** over columns `0 ..= col` whose column
/// `col` equals `cell` — the projections onto `[S_0, …, S_col]` of every
/// stored extension row passing through `cell` there.
pub fn collect_prefixes(
    partitions: &[StoredPartition],
    dec: &Decomposition,
    col: usize,
    cell: &Cell,
) -> Vec<Row> {
    if col == 0 {
        return vec![Row::new(vec![Some(cell.clone())])];
    }
    let pidx = partition_ending_at(dec, col);
    let (a, b) = dec.span(pidx);
    // Seed fragments spanning columns a ..= col.
    let mut fragments: BTreeSet<Row> = BTreeSet::new();
    if b == col {
        for row in partitions[pidx].lookup_last(cell) {
            fragments.insert(row);
        }
    } else {
        let offset = col - a;
        partitions[pidx].scan(|row| {
            if row.cell(offset).as_ref() == Some(cell) {
                fragments.insert(row.project(0, offset));
            }
        });
    }
    // Extend leftward partition by partition, probing each partition's
    // backward tree once for all distinct fragment boundaries.
    for q in (0..pidx).rev() {
        let (qa, qb) = dec.span(q);
        let by_boundary = grouped_lookup(&partitions[q], &fragments, |f| f.first(), false);
        let mut extended: BTreeSet<Row> = BTreeSet::new();
        for frag in &fragments {
            match frag.first() {
                Some(boundary) => {
                    if let Some(lefts) = by_boundary.get(boundary) {
                        for left in lefts {
                            extended.insert(left.join_concat(frag));
                        }
                    }
                }
                None => {
                    extended.insert(Row::nulls(qb - qa + 1).join_concat(frag));
                }
            }
        }
        fragments = extended;
    }
    fragments.into_iter().collect()
}

/// Probe `part` once for all distinct fragment boundaries (the cell
/// `boundary_of` selects from each fragment), returning rows grouped by
/// boundary.  `forward` picks the clustering tree: `true` probes the
/// forward tree (`lookup_first`), `false` the backward tree
/// (`lookup_last`).  The distinct boundaries form a sorted set, so the
/// whole batch descends the tree once per run of adjacent keys.
fn grouped_lookup<'a>(
    part: &StoredPartition,
    fragments: &'a BTreeSet<Row>,
    boundary_of: impl Fn(&'a Row) -> &'a Option<Cell>,
    forward: bool,
) -> BTreeMap<&'a Cell, Vec<Row>> {
    let boundaries: BTreeSet<&Cell> = fragments
        .iter()
        .filter_map(|f| boundary_of(f).as_ref())
        .collect();
    let sorted: Vec<&Cell> = boundaries.into_iter().collect();
    let grouped = if forward {
        part.lookup_first_grouped(sorted.iter().copied())
    } else {
        part.lookup_last_grouped(sorted.iter().copied())
    };
    sorted.into_iter().zip(grouped).collect()
}

/// Collect all stored **suffix rows** over columns `col ..= m` whose column
/// `col` equals `cell`.
pub fn collect_suffixes(
    partitions: &[StoredPartition],
    dec: &Decomposition,
    col: usize,
    cell: &Cell,
) -> Vec<Row> {
    let m = dec.m();
    if col == m {
        return vec![Row::new(vec![Some(cell.clone())])];
    }
    // Preferred: the partition *starting* at col.
    let pidx = dec.partition_containing(col);
    let (a, b) = dec.span(pidx);
    let mut fragments: BTreeSet<Row> = BTreeSet::new();
    if a == col {
        for row in partitions[pidx].lookup_first(cell) {
            fragments.insert(row);
        }
    } else {
        let offset = col - a;
        partitions[pidx].scan(|row| {
            if row.cell(offset).as_ref() == Some(cell) {
                fragments.insert(row.project(offset, b - a));
            }
        });
    }
    #[allow(clippy::needless_range_loop)] // q indexes dec spans and partitions in lockstep
    for q in pidx + 1..dec.partition_count() {
        let (qa, qb) = dec.span(q);
        let by_boundary = grouped_lookup(&partitions[q], &fragments, |f| f.last(), true);
        let mut extended: BTreeSet<Row> = BTreeSet::new();
        for frag in &fragments {
            match frag.last() {
                Some(boundary) => {
                    if let Some(rights) = by_boundary.get(boundary) {
                        for right in rights {
                            extended.insert(frag.join_concat(right));
                        }
                    }
                }
                None => {
                    extended.insert(frag.join_concat(&Row::nulls(qb - qa + 1)));
                }
            }
        }
        fragments = extended;
    }
    fragments.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::fresh_stats;
    use crate::relation::Relation;
    use crate::row;
    use crate::row::oid_cell as c;
    use asr_gom::Oid;
    use std::rc::Rc;

    fn cell(raw: u64) -> Cell {
        Cell::Oid(Oid::from_raw(raw))
    }

    /// A hand-built 5-column relation (m = 4) with the structure of a real
    /// full extension: each column value's continuation depends only on
    /// the value (fan-in at 20, fan-out 20 → {30, 31}, a dead end after
    /// column 1, and a left-dangling chain).
    fn sample() -> Relation {
        Relation::from_rows(
            5,
            vec![
                row![c(0), c(10), c(20), c(30), c(40)],
                row![c(0), c(10), c(20), c(31), c(41)],
                row![c(1), c(11), c(20), c(30), c(40)],
                row![c(1), c(11), c(20), c(31), c(41)],
                row![c(2), c(12), None, None, None],
                row![None, None, c(22), c(32), c(42)],
                row![c(3), c(13), c(23), c(33), c(43)],
            ],
        )
        .unwrap()
    }

    fn load(dec: &Decomposition) -> Vec<StoredPartition> {
        let rel = sample();
        let stats = fresh_stats();
        dec.decompose(&rel)
            .unwrap()
            .into_iter()
            .zip(dec.partitions())
            .map(|(p, (a, b))| {
                let mut sp = StoredPartition::new(a, b, Rc::clone(&stats));
                sp.load(&p).unwrap();
                sp
            })
            .collect()
    }

    #[test]
    fn forward_across_all_decompositions() {
        for dec in Decomposition::enumerate_all(4) {
            let parts = load(&dec);
            let r = forward_supported(&parts, &dec, 0, 4, &cell(0));
            assert_eq!(r, vec![cell(40), cell(41)], "{dec}");
            let r = forward_supported(&parts, &dec, 0, 2, &cell(1));
            assert_eq!(r, vec![cell(20)], "{dec}");
            // Fan-out at column 2: both 30 and 31 reachable from 10.
            let r = forward_supported(&parts, &dec, 1, 3, &cell(10));
            assert_eq!(r, vec![cell(30), cell(31)], "{dec}");
            let r = forward_supported(&parts, &dec, 0, 4, &cell(3));
            assert_eq!(r, vec![cell(43)], "{dec}");
            // Dead end: row 2 stops after column 1.
            let r = forward_supported(&parts, &dec, 0, 4, &cell(2));
            assert!(r.is_empty(), "{dec}");
            // Interior start on the left-dangling row.
            let r = forward_supported(&parts, &dec, 2, 4, &cell(22));
            assert_eq!(r, vec![cell(42)], "{dec}");
        }
    }

    #[test]
    fn backward_across_all_decompositions() {
        for dec in Decomposition::enumerate_all(4) {
            let parts = load(&dec);
            let r = backward_supported(&parts, &dec, 0, 4, &cell(40));
            assert_eq!(r, vec![cell(0), cell(1)], "{dec}");
            let r = backward_supported(&parts, &dec, 0, 2, &cell(20));
            assert_eq!(r, vec![cell(0), cell(1)], "{dec}");
            let r = backward_supported(&parts, &dec, 1, 4, &cell(41));
            assert_eq!(r, vec![cell(10), cell(11)], "{dec}");
            let r = backward_supported(&parts, &dec, 0, 4, &cell(42));
            assert!(
                r.is_empty(),
                "left-dangling row has no column-0 source ({dec})"
            );
            let r = backward_supported(&parts, &dec, 2, 4, &cell(42));
            assert_eq!(r, vec![cell(22)], "{dec}");
        }
    }

    #[test]
    fn prefixes_and_suffixes_match_projections() {
        let rel = sample();
        for dec in Decomposition::enumerate_all(4) {
            let parts = load(&dec);
            for col in 0..=4usize {
                // Collect the expected projections from the flat relation.
                let mut cells: BTreeSet<Cell> = BTreeSet::new();
                for row in rel.iter() {
                    if let Some(c) = row.cell(col) {
                        cells.insert(c.clone());
                    }
                }
                for cellv in cells {
                    let want_prefix: BTreeSet<Row> = rel
                        .iter()
                        .filter(|r| r.cell(col).as_ref() == Some(&cellv))
                        .map(|r| r.project(0, col))
                        .collect();
                    let got: BTreeSet<Row> = collect_prefixes(&parts, &dec, col, &cellv)
                        .into_iter()
                        .collect();
                    assert_eq!(got, want_prefix, "prefixes col={col} cell={cellv} {dec}");

                    let want_suffix: BTreeSet<Row> = rel
                        .iter()
                        .filter(|r| r.cell(col).as_ref() == Some(&cellv))
                        .map(|r| r.project(col, 4))
                        .collect();
                    let got: BTreeSet<Row> = collect_suffixes(&parts, &dec, col, &cellv)
                        .into_iter()
                        .collect();
                    assert_eq!(got, want_suffix, "suffixes col={col} cell={cellv} {dec}");
                }
            }
        }
    }

    #[test]
    fn lookups_charge_fewer_pages_than_scans() {
        // Binary decomposition: border lookups only.
        let bin = Decomposition::binary(4);
        let parts_bin = load(&bin);
        let stats_bin = Rc::clone(parts_bin[0].stats());
        stats_bin.reset();
        forward_supported(&parts_bin, &bin, 0, 4, &cell(0));
        let bin_cost = stats_bin.accesses();

        // No decomposition, interior start: full scan.
        let none = Decomposition::none(4);
        let parts_none = load(&none);
        let stats_none = Rc::clone(parts_none[0].stats());
        stats_none.reset();
        forward_supported(&parts_none, &none, 1, 3, &cell(10));
        let scan_cost = stats_none.accesses();
        assert!(bin_cost > 0 && scan_cost > 0);
    }
}
