//! # asr-core — access support relations
//!
//! The primary contribution of Kemper & Moerkotte, *"Access Support in
//! Object Bases"* (SIGMOD 1990): **access support relations (ASRs)** are
//! materialized relations, stored separately from the object
//! representation, that hold the OID chains along a path expression
//! `t0.A1.….An` so that queries navigating the path — forwards or
//! backwards — become index lookups instead of object traversals or
//! exhaustive searches.
//!
//! The crate implements, faithfully to the paper's definitions:
//!
//! * the **auxiliary relations** `E_0 … E_{n-1}` (Definition 3.3): one
//!   binary (single-valued step) or ternary (set occurrence) relation per
//!   path attribute;
//! * the four **extensions** (Definitions 3.4–3.7) — *canonical*
//!   (`E_0 ⋈ … ⋈ E_{n-1}`), *full* (full outer joins), *left-complete*
//!   and *right-complete* (one-sided outer joins) — built on NULL-aware
//!   join semantics where `NULL` never matches `NULL`;
//! * arbitrary **decompositions** (Definition 3.8) into contiguous
//!   partitions, all of which are lossless (Theorem 3.9 — property-tested);
//! * **dual-clustered storage**: each partition lives in two page-accounted
//!   B+ trees, keyed on its first and last attribute (Section 5.2);
//! * **query evaluation** for forward and backward span queries
//!   `Q_{i,j}(fw|bw)` with the extension-applicability rules of
//!   formula (35) and naive fallback evaluation (Section 5.6) charged
//!   against type-clustered object files;
//! * **incremental maintenance** under object updates (Section 6),
//!   including the extension-specific search behaviour of formula (36);
//! * **partition sharing** between overlapping path expressions
//!   (Section 5.4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod auxrel;
pub mod cell;
pub mod database;
pub mod decomposition;
pub mod error;
pub mod extension;
pub mod join;
pub mod maintenance;
pub mod manager;
pub mod naive;
pub mod partition;
pub mod persist;
pub mod query;
pub mod relation;
pub mod row;
pub mod sharing;
pub mod snapshot;
pub mod store;
#[cfg(test)]
pub(crate) mod testutil;

pub use auxrel::build_auxiliary_relations;
pub use cell::Cell;
pub use database::{AsrId, Database};
pub use decomposition::Decomposition;
pub use error::{AsrError, Result};
pub use extension::Extension;
pub use manager::{AccessSupportRelation, AsrConfig};
pub use persist::{AsrLoadMode, CheckpointSource, LoadReport};
pub use relation::Relation;
pub use row::Row;
pub use snapshot::{Snapshot, TxnStatus};
pub use store::ObjectStore;
