//! Paths over recursive schemas: the same attribute occurs at *several*
//! positions of the path expression (`EMP.Boss.Boss.Name`).
//!
//! The paper sidesteps this with a simplifying assumption ("an object
//! insertion [does not] affect different positions in a single path
//! expression", Section 6) — for good reason: one physical edge then
//! backs row segments at several columns, and per-position deltas are
//! unsound (a removed self-referential edge must disappear from *both*
//! columns at once).  `Database` therefore detects multi-position updates
//! and falls back to a (bulk-loaded, page-charged) rebuild; these tests
//! pin the result to a from-scratch reference either way.

use asr_core::{AccessSupportRelation, AsrConfig, Cell, Database, Decomposition, Extension};
use asr_gom::{Oid, PathExpression, Schema, Value};
use asr_pagesim::IoStats;

fn emp_db() -> (Database, PathExpression) {
    let mut s = Schema::new();
    s.define_tuple("EMP", [("Name", "STRING"), ("Boss", "EMP")])
        .unwrap();
    s.validate().unwrap();
    let path = PathExpression::parse(&s, "EMP.Boss.Boss.Name").unwrap();
    (Database::new(s), path)
}

fn check_all(db: &Database) {
    for (_, asr) in db.asrs() {
        asr.check_consistency().unwrap();
        let reference = AccessSupportRelation::build(
            db.base(),
            asr.path().clone(),
            asr.config().clone(),
            IoStats::new_handle(),
        )
        .unwrap();
        let got: Vec<_> = asr.full_rows().collect();
        let want: Vec<_> = reference.full_rows().collect();
        assert_eq!(
            got,
            want,
            "{} under {} diverged from rebuild",
            asr.config().extension,
            asr.config().decomposition
        );
    }
}

#[test]
fn recursive_path_maintenance_equals_rebuild() {
    let (mut db, path) = emp_db();
    for ext in Extension::ALL {
        db.create_asr(
            path.clone(),
            AsrConfig {
                extension: ext,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
    }

    // A four-level chain: worker -> lead -> manager -> director.
    let worker = db.instantiate("EMP").unwrap();
    let lead = db.instantiate("EMP").unwrap();
    let manager = db.instantiate("EMP").unwrap();
    let director = db.instantiate("EMP").unwrap();
    for (o, n) in [
        (worker, "worker"),
        (lead, "lead"),
        (manager, "manager"),
        (director, "director"),
    ] {
        db.set_attribute(o, "Name", Value::string(n)).unwrap();
        check_all(&db);
    }
    db.set_attribute(worker, "Boss", Value::Ref(lead)).unwrap();
    check_all(&db);
    db.set_attribute(lead, "Boss", Value::Ref(manager)).unwrap();
    check_all(&db);
    // This edge sits at positions 1 AND 2 of different chains.
    db.set_attribute(manager, "Boss", Value::Ref(director))
        .unwrap();
    check_all(&db);

    // Reorganization: the lead now reports to the director directly.
    db.set_attribute(lead, "Boss", Value::Ref(director))
        .unwrap();
    check_all(&db);
    // And the worker loses their boss entirely.
    db.set_attribute(worker, "Boss", Value::Null).unwrap();
    check_all(&db);
}

#[test]
fn self_loop_is_maintained() {
    let (mut db, path) = emp_db();
    let id = db
        .create_asr(
            path.clone(),
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::none(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
    // The CEO is their own boss — a genuine cycle.
    let ceo = db.instantiate("EMP").unwrap();
    db.set_attribute(ceo, "Name", Value::string("ceo")).unwrap();
    db.set_attribute(ceo, "Boss", Value::Ref(ceo)).unwrap();
    check_all(&db);
    // The chain query resolves through the loop.
    let names = db.forward(id, 0, 3, ceo).unwrap();
    assert_eq!(names, vec![Cell::Value(Value::string("ceo"))]);
    let bosses = db.backward(id, 0, 2, &Cell::Oid(ceo)).unwrap();
    assert_eq!(bosses, vec![ceo]);
    // Breaking the loop is maintained too.
    db.set_attribute(ceo, "Boss", Value::Null).unwrap();
    check_all(&db);
}

#[test]
fn rebuild_fallback_counter_fires_exactly_once_on_self_loop() {
    let (mut db, path) = emp_db();
    db.create_asr(
        path,
        AsrConfig {
            extension: Extension::Full,
            decomposition: Decomposition::none(3),
            keep_set_oids: false,
        },
    )
    .unwrap();
    let metrics = db.tracer().metrics().clone();
    let ceo = db.instantiate("EMP").unwrap();
    db.set_attribute(ceo, "Name", Value::string("ceo")).unwrap();
    assert_eq!(
        metrics.counter("asr.rebuild_fallback"),
        0,
        "a single-position update is maintained incrementally"
    );
    // The self-loop edge sits at positions 1 AND 2 of the path: per-position
    // maintenance is unsound, so the one registered ASR rebuilds — once.
    db.set_attribute(ceo, "Boss", Value::Ref(ceo)).unwrap();
    assert_eq!(metrics.counter("asr.rebuild_fallback"), 1);
    check_all(&db);
}

#[test]
fn recursive_queries_match_naive() {
    let (mut db, path) = emp_db();
    let id = db
        .create_asr(
            path.clone(),
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
    // A small org chart with shared bosses.
    let people: Vec<Oid> = (0..8).map(|_| db.instantiate("EMP").unwrap()).collect();
    for (i, &p) in people.iter().enumerate() {
        db.set_attribute(p, "Name", Value::string(format!("e{i}")))
            .unwrap();
    }
    for (sub, boss) in [
        (0usize, 4usize),
        (1, 4),
        (2, 5),
        (3, 5),
        (4, 6),
        (5, 6),
        (6, 7),
    ] {
        db.set_attribute(people[sub], "Boss", Value::Ref(people[boss]))
            .unwrap();
    }
    check_all(&db);
    for i in 0..3usize {
        for j in (i + 1)..=3 {
            for &p in &people {
                let sup = db.forward(id, i, j, p).unwrap();
                let naive = db.forward_unindexed(&path, i, j, p).unwrap();
                assert_eq!(sup, naive, "fw Q_{{{i},{j}}} from e?");
            }
        }
    }
    let target = Cell::Value(Value::string("e6"));
    let sup = db.backward(id, 0, 3, &target).unwrap();
    let naive = db.backward_unindexed(&path, 0, 3, &target).unwrap();
    assert_eq!(sup, naive);
    assert_eq!(sup.len(), 4, "e0..e3 all have e6 as boss's boss");
}

#[test]
fn recursive_set_path_maintenance_equals_rebuild() {
    // Bill-of-materials style recursion through *set* occurrences:
    // PART.Subs.Subs — an insertion can affect both positions at once.
    let mut s = Schema::new();
    s.define_tuple("PART", [("Name", "STRING"), ("Subs", "PARTSET")])
        .unwrap();
    s.define_set("PARTSET", "PART").unwrap();
    s.validate().unwrap();
    let path = PathExpression::parse(&s, "PART.Subs.Subs").unwrap();
    let mut db = Database::new(s);
    for ext in Extension::ALL {
        db.create_asr(
            path.clone(),
            AsrConfig {
                extension: ext,
                decomposition: Decomposition::binary(2),
                keep_set_oids: false,
            },
        )
        .unwrap();
    }

    let assembly = db.instantiate("PART").unwrap();
    let frame = db.instantiate("PART").unwrap();
    let bolt = db.instantiate("PART").unwrap();
    let s_top = db.instantiate("PARTSET").unwrap();
    let s_frame = db.instantiate("PARTSET").unwrap();
    db.set_attribute(assembly, "Subs", Value::Ref(s_top))
        .unwrap();
    check_all(&db);
    db.set_attribute(frame, "Subs", Value::Ref(s_frame))
        .unwrap();
    check_all(&db);
    db.insert_into_set(s_top, Value::Ref(frame)).unwrap();
    check_all(&db);
    db.insert_into_set(s_frame, Value::Ref(bolt)).unwrap();
    check_all(&db);
    // A part that contains itself as a sub-part (degenerate but legal in
    // the model): the edge affects positions 1 and 2 simultaneously.
    db.insert_into_set(s_top, Value::Ref(assembly)).unwrap();
    check_all(&db);
    db.remove_from_set(s_top, &Value::Ref(assembly)).unwrap();
    check_all(&db);
    db.remove_from_set(s_frame, &Value::Ref(bolt)).unwrap();
    check_all(&db);
}
