//! End-to-end coverage for two paper footnotes:
//!
//! * **lists** — "the access support on ordered collection, i.e., lists,
//!   is analogous to sets" (Section 2.1): paths through list-valued
//!   attributes must build, query and maintain identically;
//! * **sharing** (Section 5.4): two full-extension ASRs whose paths share
//!   a middle segment, decomposed at the dictated cut points, store the
//!   shared partition with identical content — the precondition for
//!   physical sharing.

use asr_core::sharing::{shared_partition_savings, shared_segments};
use asr_core::{AccessSupportRelation, AsrConfig, Cell, Database, Decomposition, Extension};
use asr_gom::{PathExpression, Schema, Value};
use asr_pagesim::IoStats;

// ----------------------------------------------------------------------
// Lists
// ----------------------------------------------------------------------

fn playlist_db() -> (Database, PathExpression) {
    let mut s = Schema::new();
    s.define_tuple("USER", [("Name", "STRING"), ("Playlist", "TRACKLIST")])
        .unwrap();
    s.define_list("TRACKLIST", "TRACK").unwrap();
    s.define_tuple("TRACK", [("Title", "STRING")]).unwrap();
    s.validate().unwrap();
    let path = PathExpression::parse(&s, "USER.Playlist.Title").unwrap();
    (Database::new(s), path)
}

#[test]
fn list_valued_paths_are_set_occurrences() {
    let (_, path) = playlist_db();
    assert_eq!(path.set_occurrences(), 1, "lists count as set occurrences");
    assert_eq!(path.len(), 2);
}

#[test]
fn asr_over_a_list_path_builds_and_queries() {
    // Populate through the raw object base (list pushes are a base-level
    // operation; the paper's maintained update `ins_i` is set-specific).
    let (db0, path) = playlist_db();
    let mut base = db0.base().clone();
    let alice = base.instantiate("USER").unwrap();
    base.set_attribute(alice, "Name", Value::string("Alice"))
        .unwrap();
    let list = base.instantiate("TRACKLIST").unwrap();
    base.set_attribute(alice, "Playlist", Value::Ref(list))
        .unwrap();
    let t1 = base.instantiate("TRACK").unwrap();
    base.set_attribute(t1, "Title", Value::string("Blue Train"))
        .unwrap();
    let t2 = base.instantiate("TRACK").unwrap();
    base.set_attribute(t2, "Title", Value::string("So What"))
        .unwrap();
    base.push_to_list(list, Value::Ref(t1)).unwrap();
    base.push_to_list(list, Value::Ref(t2)).unwrap();
    base.push_to_list(list, Value::Ref(t1)).unwrap(); // lists allow duplicates

    for ext in Extension::ALL {
        let asr = AccessSupportRelation::build(
            &base,
            path.clone(),
            AsrConfig::binary(ext, &path),
            IoStats::new_handle(),
        )
        .unwrap();
        asr.check_consistency().unwrap();
        if ext.supports(0, 2, 2) {
            let hits = asr
                .backward(0, 2, &Cell::Value(Value::string("Blue Train")))
                .unwrap();
            assert_eq!(hits, vec![alice], "{ext}");
        }
        // Duplicate list entries collapse under relation set semantics.
        assert_eq!(asr.full_rows().count(), 2, "{ext}");
    }
}

#[test]
fn list_reattachment_is_maintained_incrementally() {
    let (db0, path) = playlist_db();
    let mut base = db0.base().clone();
    let alice = base.instantiate("USER").unwrap();
    let list = base.instantiate("TRACKLIST").unwrap();
    let t1 = base.instantiate("TRACK").unwrap();
    base.set_attribute(t1, "Title", Value::string("Blue Train"))
        .unwrap();
    base.push_to_list(list, Value::Ref(t1)).unwrap();

    let mut db = Database::from_base(base);
    let id = db
        .create_asr(path.clone(), AsrConfig::binary(Extension::Full, &path))
        .unwrap();
    assert!(db
        .backward(id, 0, 2, &Cell::Value(Value::string("Blue Train")))
        .unwrap()
        .is_empty());

    // Attaching a (pre-populated) list is an ordinary attribute
    // assignment — fully maintained.
    db.set_attribute(alice, "Playlist", Value::Ref(list))
        .unwrap();
    let reference = AccessSupportRelation::build(
        db.base(),
        path.clone(),
        AsrConfig::binary(Extension::Full, &path),
        IoStats::new_handle(),
    )
    .unwrap();
    assert!(db.asr(id).unwrap().full_rows().eq(reference.full_rows()));
    assert_eq!(
        db.backward(id, 0, 2, &Cell::Value(Value::string("Blue Train")))
            .unwrap(),
        vec![alice]
    );
}

// ----------------------------------------------------------------------
// Sharing
// ----------------------------------------------------------------------

fn two_path_db() -> (Database, PathExpression, PathExpression) {
    let mut s = Schema::new();
    s.define_tuple(
        "Division",
        [("Name", "STRING"), ("Manufactures", "ProdSET")],
    )
    .unwrap();
    s.define_tuple("Supplier", [("Name", "STRING"), ("Delivers", "ProdSET")])
        .unwrap();
    s.define_set("ProdSET", "Product").unwrap();
    s.define_tuple(
        "Product",
        [("Name", "STRING"), ("Composition", "BasePartSET")],
    )
    .unwrap();
    s.define_set("BasePartSET", "BasePart").unwrap();
    s.define_tuple("BasePart", [("Name", "STRING")]).unwrap();
    s.validate().unwrap();
    let p1 = PathExpression::parse(&s, "Division.Manufactures.Composition.Name").unwrap();
    let p2 = PathExpression::parse(&s, "Supplier.Delivers.Composition.Name").unwrap();
    let mut db = Database::new(s);

    // One division and one supplier feeding the same product.
    let d = db.instantiate("Division").unwrap();
    db.set_attribute(d, "Name", Value::string("Auto")).unwrap();
    let sup = db.instantiate("Supplier").unwrap();
    db.set_attribute(sup, "Name", Value::string("PartsRUs"))
        .unwrap();
    let ps1 = db.instantiate("ProdSET").unwrap();
    let ps2 = db.instantiate("ProdSET").unwrap();
    db.set_attribute(d, "Manufactures", Value::Ref(ps1))
        .unwrap();
    db.set_attribute(sup, "Delivers", Value::Ref(ps2)).unwrap();
    let prod = db.instantiate("Product").unwrap();
    db.set_attribute(prod, "Name", Value::string("560 SEC"))
        .unwrap();
    db.insert_into_set(ps1, Value::Ref(prod)).unwrap();
    db.insert_into_set(ps2, Value::Ref(prod)).unwrap();
    let parts = db.instantiate("BasePartSET").unwrap();
    db.set_attribute(prod, "Composition", Value::Ref(parts))
        .unwrap();
    let door = db.instantiate("BasePart").unwrap();
    db.set_attribute(door, "Name", Value::string("Door"))
        .unwrap();
    db.insert_into_set(parts, Value::Ref(door)).unwrap();

    (db, p1, p2)
}

#[test]
fn shared_segment_partitions_have_identical_content() {
    let (mut db, p1, p2) = two_path_db();
    let segs = shared_segments(db.base().schema(), &p1, &p2);
    let seg = segs
        .iter()
        .max_by_key(|s| s.len)
        .expect("paths share the tail");
    assert_eq!(seg.len, 2, "Product.Composition.Name is shared");
    assert!(seg.shareable_under(Extension::Full, Extension::Full, &p1, &p2));

    // Decompose both at the dictated cuts so the shared segment is a
    // stand-alone partition.
    let cuts1 = seg.required_cuts1(&p1);
    let cuts2 = seg.required_cuts2(&p2);
    let a = db
        .create_asr(
            p1,
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::new(cuts1.clone()).unwrap(),
                keep_set_oids: false,
            },
        )
        .unwrap();
    let b = db
        .create_asr(
            p2,
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::new(cuts2.clone()).unwrap(),
                keep_set_oids: false,
            },
        )
        .unwrap();

    // The partitions covering the shared segment must match row for row.
    let idx1 = cuts1.iter().position(|&c| c == seg.start1).unwrap();
    let idx2 = cuts2.iter().position(|&c| c == seg.start2).unwrap();
    let asr_a = db.asr(a).unwrap();
    let asr_b = db.asr(b).unwrap();
    let part_a = &asr_a.partitions()[idx1];
    let part_b = &asr_b.partitions()[idx2];
    let rel_a = part_a.to_relation().unwrap();
    let rel_b = part_b.to_relation().unwrap();
    assert_eq!(
        rel_a, rel_b,
        "shared partition content identical — physically sharable"
    );
    assert!(!rel_a.is_empty());
    assert!(shared_partition_savings(rel_a.len(), seg.len) > 0);
}

#[test]
fn shared_content_stays_identical_under_updates() {
    let (mut db, p1, p2) = two_path_db();
    let seg = {
        let segs = shared_segments(db.base().schema(), &p1, &p2);
        *segs.iter().max_by_key(|s| s.len).unwrap()
    };
    let a = db
        .create_asr(
            p1.clone(),
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::new(seg.required_cuts1(&p1)).unwrap(),
                keep_set_oids: false,
            },
        )
        .unwrap();
    let b = db
        .create_asr(
            p2.clone(),
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::new(seg.required_cuts2(&p2)).unwrap(),
                keep_set_oids: false,
            },
        )
        .unwrap();

    // Update inside the shared segment: add a part to the product.
    let parts_set = db
        .base()
        .objects()
        .find(|o| o.attribute("Name") == &Value::string("560 SEC"))
        .and_then(|o| o.attribute("Composition").as_ref_oid())
        .unwrap();
    let hinge = db.instantiate("BasePart").unwrap();
    db.set_attribute(hinge, "Name", Value::string("Hinge"))
        .unwrap();
    db.insert_into_set(parts_set, Value::Ref(hinge)).unwrap();

    let shared_a = db.asr(a).unwrap().partitions()[1].to_relation().unwrap();
    let shared_b = db.asr(b).unwrap().partitions()[1].to_relation().unwrap();
    assert_eq!(
        shared_a, shared_b,
        "incremental maintenance keeps shared content in sync"
    );
    // And both now see the new part.
    let hits_a = db
        .backward(a, 0, 3, &Cell::Value(Value::string("Hinge")))
        .unwrap();
    let hits_b = db
        .backward(b, 0, 3, &Cell::Value(Value::string("Hinge")))
        .unwrap();
    assert_eq!(hits_a.len(), 1);
    assert_eq!(hits_b.len(), 1);
}
