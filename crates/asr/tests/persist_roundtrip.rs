//! Property test: whole-database persistence is lossless for queries.
//!
//! Random databases carrying one ASR per extension (each with a random
//! decomposition) are cycled through `save_to_string`/`load_from_string`.
//! The round-trip must be a textual fixed point, and every admissible
//! span query — forward from every anchor-side object, backward towards
//! every range-side cell — must return exactly the same answer through
//! the reloaded (rebuilt) relations as through the originals.

use asr_core::{AsrConfig, Cell, Database, Decomposition, Extension};
use asr_gom::{Oid, PathExpression, Schema, TypeRef, Value};
use proptest::prelude::*;

/// The mixed chain `T0.A1(S1 set).A2(T2).A3(S3 set).Name(STRING)`.
fn chain_schema() -> Schema {
    let mut s = Schema::new();
    s.define_tuple("T0", [("A1", "S1")]).unwrap();
    s.define_set("S1", "T1").unwrap();
    s.define_tuple("T1", [("A2", "T2")]).unwrap();
    s.define_tuple("T2", [("A3", "S3")]).unwrap();
    s.define_set("S3", "T3").unwrap();
    s.define_tuple("T3", [("Name", "STRING")]).unwrap();
    s.validate().unwrap();
    s
}

const PATH: &str = "T0.A1.A2.A3.Name";

#[derive(Debug, Clone)]
struct RandomDb {
    counts: [u8; 4],
    edges: Vec<(u8, u8, u8)>,
    names: Vec<u8>,
    attach: Vec<(u8, u8)>,
}

fn random_db_strategy() -> impl Strategy<Value = RandomDb> {
    (
        proptest::array::uniform4(1u8..5),
        proptest::collection::vec((0u8..3, 0u8..5, 0u8..5), 0..24),
        proptest::collection::vec(0u8..5, 0..5),
        proptest::collection::vec((0u8..2, 0u8..5), 0..6),
    )
        .prop_map(|(counts, edges, names, attach)| RandomDb {
            counts,
            edges,
            names,
            attach,
        })
}

/// Materialize the description through the `Database` mutation API (so a
/// later ASR creation sees a fully populated, store-synced base).
fn build_db(desc: &RandomDb) -> Database {
    let mut db = Database::new(chain_schema());
    let mut levels: Vec<Vec<Oid>> = Vec::new();
    for (l, &count) in desc.counts.iter().enumerate() {
        let mut objs = Vec::new();
        for _ in 0..count {
            objs.push(db.instantiate(&format!("T{l}")).unwrap());
        }
        levels.push(objs);
    }
    for &(kind, fi) in &desc.attach {
        let (level, attr, set_ty) = if kind == 0 {
            (0, "A1", "S1")
        } else {
            (2, "A3", "S3")
        };
        let owner = levels[level][fi as usize % levels[level].len()];
        if db.base().get_attribute(owner, attr).unwrap().is_null() {
            let set = db.instantiate(set_ty).unwrap();
            db.set_attribute(owner, attr, Value::Ref(set)).unwrap();
        }
    }
    for &(l, fi, ti) in &desc.edges {
        let owner = levels[l as usize][fi as usize % levels[l as usize].len()];
        let target = levels[l as usize + 1][ti as usize % levels[l as usize + 1].len()];
        match l {
            0 | 2 => {
                let (attr, set_ty) = if l == 0 { ("A1", "S1") } else { ("A3", "S3") };
                let set = match db.base().get_attribute(owner, attr).unwrap() {
                    Value::Ref(s) => s,
                    _ => {
                        let s = db.instantiate(set_ty).unwrap();
                        db.set_attribute(owner, attr, Value::Ref(s)).unwrap();
                        s
                    }
                };
                db.insert_into_set(set, Value::Ref(target)).unwrap();
            }
            1 => db.set_attribute(owner, "A2", Value::Ref(target)).unwrap(),
            _ => unreachable!(),
        }
    }
    for &ni in &desc.names {
        let obj = levels[3][ni as usize % levels[3].len()];
        db.set_attribute(obj, "Name", Value::string(format!("N{}", ni % 3)))
            .unwrap();
    }
    db
}

/// One random post-checkpoint mutation.  `(kind, a, b)` selects operands
/// modulo the relevant extents, so any triple is admissible on any
/// database (inapplicable ops are skipped).
fn apply_op(db: &mut Database, op: (u8, u8, u8)) {
    let resolve = |db: &Database, ty: &str| db.base().schema().resolve(ty).unwrap();
    let extent = |db: &Database, ty: &str| -> Vec<Oid> {
        db.base()
            .extent_closure(resolve(db, ty))
            .into_iter()
            .collect()
    };
    let pick = |v: &[Oid], i: u8| -> Option<Oid> {
        if v.is_empty() {
            None
        } else {
            Some(v[i as usize % v.len()])
        }
    };
    let (kind, a, b) = op;
    match kind {
        // ins_3: a fresh named T3 joins a random S3 set.
        0 => {
            if let Some(set) = pick(&extent(db, "S3"), a) {
                let t3 = db.instantiate("T3").unwrap();
                db.set_attribute(t3, "Name", Value::string(format!("D{}", b % 5)))
                    .unwrap();
                db.insert_into_set(set, Value::Ref(t3)).unwrap();
            }
        }
        // Rename an existing T3.
        1 => {
            if let Some(t3) = pick(&extent(db, "T3"), a) {
                db.set_attribute(t3, "Name", Value::string(format!("R{}", b % 5)))
                    .unwrap();
            }
        }
        // Rebind a T1's A2 reference.
        2 => {
            if let (Some(t1), Some(t2)) = (pick(&extent(db, "T1"), a), pick(&extent(db, "T2"), b)) {
                db.set_attribute(t1, "A2", Value::Ref(t2)).unwrap();
            }
        }
        // Remove a T3 from an S3 set (no-op when not a member).
        3 => {
            if let (Some(set), Some(t3)) = (pick(&extent(db, "S3"), a), pick(&extent(db, "T3"), b))
            {
                db.remove_from_set(set, &Value::Ref(t3)).unwrap();
            }
        }
        // Rebind a variable.
        _ => db.bind_variable(&format!("v{}", a % 3), Value::string(format!("x{b}"))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn save_load_preserves_every_query(
        desc in random_db_strategy(),
        dec_seed in any::<u8>(),
    ) {
        let mut db = build_db(&desc);
        let path = PathExpression::parse(db.base().schema(), PATH).unwrap();
        let n = path.len();
        let all_decs = Decomposition::enumerate_all(n);
        for (e, ext) in Extension::ALL.into_iter().enumerate() {
            let dec = all_decs[(dec_seed as usize + e) % all_decs.len()].clone();
            db.create_asr(path.clone(), AsrConfig {
                extension: ext,
                decomposition: dec,
                keep_set_oids: false,
            }).unwrap();
        }

        let text = db.save_to_string();
        let (mut reloaded, report) = Database::load_from_string_report(&text).unwrap();
        // A v2 snapshot of a healthy database restores every ASR from its
        // page images — nothing silently falls back to rebuilding.
        prop_assert_eq!(report.version, 2);
        prop_assert!(report.physical_bytes > 0);
        for (id, mode) in &report.asrs {
            prop_assert!(mode.is_physical(), "asr {} rebuilt: {:?}", id, mode);
        }
        // The round-trip is a fixed point of the snapshot format.
        prop_assert_eq!(reloaded.save_to_string(), text.clone());

        // Every admissible span query answers identically through the
        // rebuilt relations.
        for ((id, before), (rid, after)) in db.asrs().zip(reloaded.asrs()) {
            prop_assert_eq!(id, rid);
            let ext = before.config().extension;
            prop_assert_eq!(after.config().extension, ext);
            prop_assert_eq!(
                after.config().decomposition.to_string(),
                before.config().decomposition.to_string()
            );
            after.check_consistency().unwrap();
            for i in 0..n {
                for j in i + 1..=n {
                    if !ext.supports(i, j, n) {
                        continue;
                    }
                    let TypeRef::Named(ti) = path.type_at(i) else { unreachable!() };
                    for start in db.base().extent_closure(ti) {
                        prop_assert_eq!(
                            after.forward(i, j, start).unwrap(),
                            before.forward(i, j, start).unwrap(),
                            "{} fw Q_{{{},{}}} from {}", ext, i, j, start
                        );
                    }
                    let targets: Vec<Cell> = if j == n {
                        db.base()
                            .objects()
                            .filter_map(|o| Cell::from_gom(o.attribute("Name")))
                            .collect()
                    } else {
                        let TypeRef::Named(tj) = path.type_at(j) else { unreachable!() };
                        db.base().extent_closure(tj).into_iter().map(Cell::Oid).collect()
                    };
                    for target in targets {
                        prop_assert_eq!(
                            after.backward(i, j, &target).unwrap(),
                            before.backward(i, j, &target).unwrap(),
                            "{} bw Q_{{{},{}}} to {}", ext, i, j, target
                        );
                    }
                }
            }
        }

        // Maintenance composes with physical restore: identical updates
        // applied to the original and the restored database leave them in
        // identical states (witness counts and page images included),
        // because restored trees are bit-for-bit the originals.
        let resolve = |ty: &str| db.base().schema().resolve(ty).unwrap();
        let t1s: Vec<Oid> = db.base().extent_closure(resolve("T1")).into_iter().collect();
        let t2s: Vec<Oid> = db.base().extent_closure(resolve("T2")).into_iter().collect();
        let t3s: Vec<Oid> = db.base().extent_closure(resolve("T3")).into_iter().collect();
        let s3s: Vec<Oid> = db.base().extent_closure(resolve("S3")).into_iter().collect();
        if let Some(&o) = t3s.first() {
            db.set_attribute(o, "Name", Value::string("Renamed")).unwrap();
            reloaded.set_attribute(o, "Name", Value::string("Renamed")).unwrap();
        }
        if let (Some(&o), Some(&t)) = (t1s.first(), t2s.last()) {
            db.set_attribute(o, "A2", Value::Ref(t)).unwrap();
            reloaded.set_attribute(o, "A2", Value::Ref(t)).unwrap();
        }
        if let (Some(&s), Some(&m)) = (s3s.first(), t3s.last()) {
            let e1 = db.insert_into_set(s, Value::Ref(m)).unwrap();
            let e2 = reloaded.insert_into_set(s, Value::Ref(m)).unwrap();
            prop_assert_eq!(e1, e2, "insert effectiveness diverged");
            let r1 = db.remove_from_set(s, &Value::Ref(m)).unwrap();
            let r2 = reloaded.remove_from_set(s, &Value::Ref(m)).unwrap();
            prop_assert_eq!(r1, r2, "remove effectiveness diverged");
        }
        for (_, asr) in reloaded.asrs() {
            asr.check_consistency().unwrap();
        }
        prop_assert_eq!(reloaded.save_to_string(), db.save_to_string());
    }

    /// A base v2 snapshot plus a chain of `ASRDB 3` deltas loads to a
    /// database *byte-identical* to the primary's own full snapshot —
    /// for random databases, random decompositions, and random mutation
    /// batches between checkpoints.
    #[test]
    fn delta_chain_matches_full_snapshot(
        desc in random_db_strategy(),
        dec_seed in any::<u8>(),
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..5, any::<u8>(), any::<u8>()), 0..16),
            1..4,
        ),
    ) {
        let mut db = build_db(&desc);
        let path = PathExpression::parse(db.base().schema(), PATH).unwrap();
        let all_decs = Decomposition::enumerate_all(path.len());
        for (e, ext) in Extension::ALL.into_iter().enumerate() {
            let dec = all_decs[(dec_seed as usize + e) % all_decs.len()].clone();
            db.create_asr(path.clone(), AsrConfig {
                extension: ext,
                decomposition: dec,
                keep_set_oids: false,
            }).unwrap();
        }

        // Settle to the snapshot fixed point; this is the base checkpoint.
        let db = Database::load_from_string(&db.save_to_string()).unwrap();
        let base_text = db.save_to_string();
        let mut primary = Database::load_from_string(&base_text).unwrap();

        let mut deltas: Vec<String> = Vec::new();
        for batch in &batches {
            for &op in batch {
                apply_op(&mut primary, op);
            }
            let delta = primary.save_delta_to_string(deltas.len() as u64).unwrap();
            prop_assert_eq!(Database::delta_base_id(&delta).unwrap(), deltas.len() as u64);
            deltas.push(delta);
            primary.mark_clean();
        }

        let refs: Vec<&str> = deltas.iter().map(String::as_str).collect();
        let (chained, report) = Database::load_from_chain_report(&base_text, &refs).unwrap();
        prop_assert_eq!(report.delta_chain, refs.len());
        // No link of a healthy chain may degrade to a rebuild.
        for (id, mode) in &report.asrs {
            prop_assert!(
                !matches!(mode, asr_core::AsrLoadMode::Rebuilt(_)),
                "asr {} rebuilt: {:?}", id, mode
            );
        }
        for (_, asr) in chained.asrs() {
            asr.check_consistency().unwrap();
        }
        prop_assert_eq!(chained.save_to_string(), primary.save_to_string());
    }
}
