//! Batched sorted-probe properties:
//!
//! * **equivalence** — `lookup_first_many` / `lookup_last_many` return
//!   exactly the concatenation of the per-cell lookups, and
//!   `forward_supported` / `backward_supported` (which batch their
//!   frontier probes) are bit-identical to per-cell reference
//!   evaluations across every decomposition;
//! * **accounting** — a batch never charges more page reads than the
//!   per-cell probes it replaces, and charges strictly fewer as soon as
//!   two probe keys share a leaf page.

use std::collections::BTreeSet;
use std::rc::Rc;

use asr_core::cell::Cell;
use asr_core::partition::{fresh_stats, StoredPartition};
use asr_core::query::{backward_supported, forward_supported};
use asr_core::row::Row;
use asr_core::{Decomposition, Relation};
use asr_gom::Oid;
use proptest::prelude::*;

fn cell(raw: u64) -> Cell {
    Cell::Oid(Oid::from_raw(raw))
}

/// Build the stored partitions of `rel` under `dec`, sharing one stats
/// handle.
fn load(rel: &Relation, dec: &Decomposition) -> Vec<StoredPartition> {
    let stats = fresh_stats();
    dec.decompose(rel)
        .unwrap()
        .into_iter()
        .zip(dec.partitions())
        .map(|(p, (a, b))| {
            let mut sp = StoredPartition::new(a, b, Rc::clone(&stats));
            sp.load(&p).unwrap();
            sp
        })
        .collect()
}

/// Per-cell reference of the border-probe arm of `forward_supported`:
/// identical walk, but every frontier cell descends the tree on its own.
fn forward_per_cell(
    partitions: &[StoredPartition],
    dec: &Decomposition,
    ci: usize,
    cj: usize,
    start: &Cell,
) -> Vec<Cell> {
    let mut frontier: BTreeSet<Cell> = BTreeSet::from([start.clone()]);
    for (idx, (a, b)) in dec.partitions().enumerate() {
        if b <= ci {
            continue;
        }
        if a >= cj {
            break;
        }
        let part = &partitions[idx];
        let rows: Vec<Row> = if a < ci {
            let offset = ci - a;
            let mut hits = Vec::new();
            part.scan(|row| {
                if let Some(cell) = row.cell(offset) {
                    if frontier.contains(cell) {
                        hits.push(row.clone());
                    }
                }
            });
            hits
        } else {
            frontier.iter().flat_map(|c| part.lookup_first(c)).collect()
        };
        if cj <= b {
            let offset = cj - a;
            let out: BTreeSet<Cell> = rows.iter().filter_map(|r| r.cell(offset).clone()).collect();
            return out.into_iter().collect();
        }
        frontier = rows.iter().filter_map(|r| r.last().clone()).collect();
        if frontier.is_empty() {
            return Vec::new();
        }
    }
    Vec::new()
}

/// Per-cell reference of `backward_supported`.
fn backward_per_cell(
    partitions: &[StoredPartition],
    dec: &Decomposition,
    ci: usize,
    cj: usize,
    target: &Cell,
) -> Vec<Cell> {
    let mut frontier: BTreeSet<Cell> = BTreeSet::from([target.clone()]);
    let spans: Vec<(usize, usize)> = dec.partitions().collect();
    for (idx, &(a, b)) in spans.iter().enumerate().rev() {
        if a >= cj {
            continue;
        }
        if b <= ci {
            break;
        }
        let part = &partitions[idx];
        let rows: Vec<Row> = if b > cj {
            let offset = cj - a;
            let mut hits = Vec::new();
            part.scan(|row| {
                if let Some(cell) = row.cell(offset) {
                    if frontier.contains(cell) {
                        hits.push(row.clone());
                    }
                }
            });
            hits
        } else {
            frontier.iter().flat_map(|c| part.lookup_last(c)).collect()
        };
        if ci >= a {
            let offset = ci - a;
            let out: BTreeSet<Cell> = rows.iter().filter_map(|r| r.cell(offset).clone()).collect();
            return out.into_iter().collect();
        }
        frontier = rows.iter().filter_map(|r| r.first().clone()).collect();
        if frontier.is_empty() {
            return Vec::new();
        }
    }
    Vec::new()
}

/// Random 5-column relations whose cells are namespaced per column
/// (column `c` holds values `100·c …`), so rows chain through shared
/// values exactly like a real extension.
fn relation_strategy() -> impl Strategy<Value = Relation> {
    // Column values draw from 0..7, where 6 encodes NULL.
    proptest::collection::btree_set((0u8..7, 0u8..7, 0u8..7, 0u8..7, 0u8..7), 1..32).prop_map(
        |rows| {
            let rows: Vec<Row> = rows
                .into_iter()
                .map(|(a, b, c0, d, e)| {
                    let cols = [a, b, c0, d, e];
                    Row::new(
                        cols.iter()
                            .enumerate()
                            .map(|(c, &v)| (v < 6).then(|| cell(100 * c as u64 + v as u64)))
                            .collect(),
                    )
                })
                .filter(|r| !r.is_all_null())
                .collect();
            Relation::from_rows(5, rows).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched frontier probes leave span-query results bit-identical to
    /// per-cell evaluation, for every decomposition and span.
    #[test]
    fn span_queries_match_per_cell_reference(rel in relation_strategy()) {
        for dec in Decomposition::enumerate_all(4) {
            let parts = load(&rel, &dec);
            for (ci, cj) in [(0, 4), (0, 2), (1, 3), (2, 4), (1, 4), (0, 1)] {
                for v in 0..6u64 {
                    let start = cell(100 * ci as u64 + v);
                    prop_assert_eq!(
                        forward_supported(&parts, &dec, ci, cj, &start),
                        forward_per_cell(&parts, &dec, ci, cj, &start),
                        "forward {}..{} from {:?} under {}", ci, cj, start, dec
                    );
                    let target = cell(100 * cj as u64 + v);
                    prop_assert_eq!(
                        backward_supported(&parts, &dec, ci, cj, &target),
                        backward_per_cell(&parts, &dec, ci, cj, &target),
                        "backward {}..{} to {:?} under {}", ci, cj, target, dec
                    );
                }
            }
        }
    }

    /// `lookup_*_many` equals the concatenated per-cell lookups and never
    /// charges more page reads; with ≥2 probes into a single-leaf tree it
    /// charges strictly fewer.
    #[test]
    fn lookup_many_equivalence_and_accounting(
        firsts in proptest::collection::vec(0u8..40, 1..120),
        probes in proptest::collection::btree_set(0u8..40, 1..20),
    ) {
        let stats = fresh_stats();
        let mut part = StoredPartition::new(0, 2, Rc::clone(&stats));
        for (i, &f) in firsts.iter().enumerate() {
            part.insert(Row::new(vec![
                Some(cell(f as u64)),
                Some(cell(1000 + i as u64)),
                Some(cell(2000 + (f as u64 % 5))),
            ]))
            .unwrap();
        }
        let cells: Vec<Cell> = probes.iter().map(|&p| cell(p as u64)).collect();

        for forward in [true, false] {
            let lookup_one = |c: &Cell| -> Vec<Row> {
                if forward { part.lookup_first(c) } else { part.lookup_last(c) }
            };
            // The backward tree clusters on column 2 (values 2000..2005);
            // probe those cells instead so both directions get hits.
            let cells: Vec<Cell> = if forward {
                cells.clone()
            } else {
                probes.iter().map(|&p| cell(2000 + p as u64 % 5)).collect::<BTreeSet<_>>()
                    .into_iter().collect()
            };

            stats.reset();
            let batched = if forward {
                part.lookup_first_many(cells.iter())
            } else {
                part.lookup_last_many(cells.iter())
            };
            let batched_reads = stats.reads();

            stats.reset();
            let per_cell: Vec<Row> = cells.iter().flat_map(lookup_one).collect();
            let per_cell_reads = stats.reads();

            prop_assert_eq!(&batched, &per_cell, "forward={}", forward);
            prop_assert!(
                batched_reads <= per_cell_reads,
                "batch charged {} > per-cell {} (forward={})",
                batched_reads, per_cell_reads, forward
            );
            let tree = if forward { part.forward_tree() } else { part.backward_tree() };
            if cells.len() >= 2 && tree.leaf_page_count() == 1 {
                // ≥2 probes into the same (single) leaf: the batch reads
                // the page once, per-cell probes read it once each.
                prop_assert!(
                    batched_reads < per_cell_reads,
                    "shared leaf must save reads: batch {} vs per-cell {} (forward={})",
                    batched_reads, per_cell_reads, forward
                );
            }
        }
    }
}

/// Deterministic shared-leaf saving: many adjacent probes over a large
/// partition charge strictly fewer reads batched than per-cell, and the
/// global stats counters record the saving.
#[test]
fn adjacent_probes_save_reads_and_count_them() {
    let stats = fresh_stats();
    let mut part = StoredPartition::new(0, 2, Rc::clone(&stats));
    for k in 0..600u64 {
        part.insert(Row::new(vec![
            Some(cell(k)),
            Some(cell(10_000 + k)),
            Some(cell(20_000 + k / 3)),
        ]))
        .unwrap();
    }
    let cells: Vec<Cell> = (100..140).map(cell).collect();

    stats.reset();
    let batched = part.lookup_first_many(cells.iter());
    let batched_reads = stats.reads();
    let probes = stats.batch_probes();
    let saved = stats.batch_pages_saved();

    stats.reset();
    let per_cell: Vec<Row> = cells.iter().flat_map(|c| part.lookup_first(c)).collect();
    let per_cell_reads = stats.reads();

    assert_eq!(batched, per_cell);
    assert_eq!(probes, cells.len() as u64);
    assert!(
        batched_reads < per_cell_reads,
        "40 adjacent probes must share pages: batch {batched_reads} vs per-cell {per_cell_reads}"
    );
    assert!(saved > 0, "the saving is recorded in IoStats");
    assert_eq!(
        batched_reads + saved,
        per_cell_reads,
        "pages_saved accounts exactly for the per-cell difference"
    );
}
