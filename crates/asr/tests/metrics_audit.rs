//! Metric-coverage audit for the core engine, mirroring the durable and
//! server layers': every metric emitted anywhere in `crates/asr`'s
//! sources must be declared in the registry below, and every registered
//! metric must actually show up in the rendered `\stats` table and the
//! Prometheus exposition after a workload that walks the query,
//! maintenance, and MVCC paths.

use asr_core::{AsrConfig, Cell, Database, Decomposition, Extension};
use asr_gom::{PathExpression, Schema, Value};

const COUNTERS: &[&str] = &[
    "query.forward",
    "query.backward",
    "query.naive_fallback",
    "query.unindexed",
    "btree.batch.probes",
    "btree.batch.pages_saved",
    "asr.rebuild_fallback",
    "txn.snapshots",
    "txn.partitions_published",
    "txn.epochs_reclaimed",
];
const GAUGES: &[&str] = &[
    "txn.commit_epoch",
    "txn.active_snapshots",
    "txn.oldest_pinned_epoch",
];

/// Extract the first string literal argument of every `method(` call in
/// `source` (computed names are skipped by construction).
fn emitted_names(source: &str, method: &str) -> Vec<String> {
    let needle = format!("{method}(");
    let mut out = Vec::new();
    let mut rest = source;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let trimmed = rest.trim_start();
        if let Some(lit) = trimmed.strip_prefix('"') {
            if let Some(end) = lit.find('"') {
                out.push(lit[..end].to_string());
            }
        }
    }
    out
}

#[test]
fn registry_matches_every_emit_site_in_the_sources() {
    let sources = concat!(
        include_str!("../src/auxrel.rs"),
        include_str!("../src/cell.rs"),
        include_str!("../src/database.rs"),
        include_str!("../src/decomposition.rs"),
        include_str!("../src/error.rs"),
        include_str!("../src/extension.rs"),
        include_str!("../src/join.rs"),
        include_str!("../src/lib.rs"),
        include_str!("../src/maintenance.rs"),
        include_str!("../src/manager.rs"),
        include_str!("../src/naive.rs"),
        include_str!("../src/partition.rs"),
        include_str!("../src/persist.rs"),
        include_str!("../src/query.rs"),
        include_str!("../src/relation.rs"),
        include_str!("../src/row.rs"),
        include_str!("../src/sharing.rs"),
        include_str!("../src/snapshot.rs"),
        include_str!("../src/store.rs"),
        include_str!("../src/testutil.rs"),
    );
    let check = |method: &str, expected: &[&str]| {
        let mut emitted = emitted_names(sources, method);
        emitted.sort_unstable();
        emitted.dedup();
        let mut expected: Vec<String> = expected.iter().map(|s| s.to_string()).collect();
        expected.sort_unstable();
        assert_eq!(
            emitted, expected,
            "`{method}` emit sites diverged from the registry"
        );
    };
    check("inc_counter", COUNTERS);
    check("set_gauge", GAUGES);
    check("observe", &[]);
}

/// The recursive boss chain: one Full ASR answers any span, one
/// Canonical ASR only answers `(0, n)` — so an interior-span query on
/// it exercises the supported-check fallback — and the short path
/// `EMP.Boss.Name` has no ASR at all.
fn emp_db() -> (Database, PathExpression, PathExpression) {
    let mut s = Schema::new();
    s.define_tuple("EMP", [("Name", "STRING"), ("Boss", "EMP")])
        .unwrap();
    s.validate().unwrap();
    let indexed = PathExpression::parse(&s, "EMP.Boss.Boss.Name").unwrap();
    let unindexed = PathExpression::parse(&s, "EMP.Boss.Name").unwrap();
    (Database::new(s), indexed, unindexed)
}

/// Drive every registered metric at least once — spans over both ASRs,
/// the naive and unindexed fallbacks, a rebuild-triggering recursive
/// update, and a snapshot pin/drop/reclaim cycle — then check each name
/// is visible in both renderings.
#[test]
fn every_registered_metric_is_exposed_after_a_workload() {
    let (mut db, indexed, unindexed) = emp_db();
    let full = db
        .create_asr(
            indexed.clone(),
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
    let canon = db
        .create_asr(
            indexed,
            AsrConfig {
                extension: Extension::Canonical,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();

    // A chain of bosses plus a self-loop at the top; closing the loop
    // hits a multi-position recursive update -> asr.rebuild_fallback.
    let emps: Vec<_> = (0..4).map(|_| db.instantiate("EMP").unwrap()).collect();
    for (k, &e) in emps.iter().enumerate() {
        db.set_attribute(e, "Name", Value::string(format!("emp{k}")))
            .unwrap();
    }
    for pair in emps.windows(2) {
        db.set_attribute(pair[0], "Boss", Value::Ref(pair[1]))
            .unwrap();
    }
    let ceo = emps[3];
    db.set_attribute(ceo, "Boss", Value::Ref(ceo)).unwrap();

    // txn.*: pin a view, mutate past it, drop it, pin again so the
    // freed epoch is actually reclaimed while counters are emitted.
    let pinned = db.snapshot();
    db.set_attribute(emps[0], "Name", Value::string("renamed"))
        .unwrap();
    drop(pinned);
    let _view = db.snapshot();

    // query.forward + btree.batch.* (the frontier walk batches its
    // partition probes), then query.backward.
    let names = db.forward(full, 0, 3, emps[0]).unwrap();
    assert!(!names.is_empty());
    let sources = db
        .backward(full, 0, 3, &Cell::Value(Value::string("emp3")))
        .unwrap();
    assert!(!sources.is_empty());
    // Canonical only materializes the (0, n) span: the interior span is
    // Unsupported -> query.naive_fallback.
    db.forward(canon, 1, 3, emps[1]).unwrap();
    // No ASR covers EMP.Boss.Name -> query.unindexed.
    db.navigate_forward(&unindexed, 0, 2, emps[0]).unwrap();

    let metrics = db.tracer().metrics();
    let table = metrics.render_table();
    let prometheus = metrics.to_prometheus();
    for name in COUNTERS.iter().chain(GAUGES) {
        assert!(
            table.contains(name),
            "`{name}` missing from \\stats table:\n{table}"
        );
        assert!(
            prometheus.contains(&name.replace('.', "_")),
            "`{name}` missing from Prometheus exposition"
        );
    }
    // The reclaim cycle really happened (not just a zero-increment).
    assert!(metrics.counter("txn.epochs_reclaimed") > 0);
    assert!(metrics.counter("asr.rebuild_fallback") > 0);
    assert!(metrics.counter("btree.batch.probes") > 0);
}
