//! Seeded multi-threaded MVCC stress fuzz: one writer mutates the
//! database and publishes a snapshot after every batch while N reader
//! threads continuously re-answer span queries from randomly sampled
//! pinned snapshots.  Every published epoch must stay bit-identical
//! under concurrent writes (prefix consistency), every epoch must equal
//! the serial oracle built by replaying that prefix onto a fresh
//! database, and the final writer state must equal the full-script
//! oracle.
//!
//! Seed with `ASR_FUZZ_SEED` to reproduce a failure.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use asr_core::{AsrConfig, AsrId, Cell, Database, Decomposition, Extension, Snapshot};
use asr_gom::{Oid, PathExpression, Schema, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const BATCHES: usize = 12;
const BATCH: usize = 8;
const READERS: usize = 4;
const NAMES: [&str; 4] = ["ceo", "ant", "bee", "cat"];

fn fuzz_seed() -> u64 {
    std::env::var("ASR_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xA512_1990)
}

/// The tuple chain `T0.A1.A2.Name` — three maintained positions, no
/// sets, so every mutation is a plain attribute assignment.
fn chain_db() -> (Database, PathExpression) {
    let mut s = Schema::new();
    s.define_tuple("T0", [("A1", "T1")]).unwrap();
    s.define_tuple("T1", [("A2", "T2")]).unwrap();
    s.define_tuple("T2", [("Name", "STRING")]).unwrap();
    s.validate().unwrap();
    let path = PathExpression::parse(&s, "T0.A1.A2.Name").unwrap();
    (Database::new(s), path)
}

#[derive(Debug, Clone)]
enum Op {
    /// Instantiate a fresh object at chain level 0/1/2.
    New(usize),
    /// `pool[level][from].attr = pool[level+1][to]` (or NULL).
    Edge {
        level: usize,
        from: usize,
        to: Option<usize>,
    },
    /// Rename `pool[2][idx]`.
    Name { idx: usize, name: &'static str },
}

/// Object pools per chain level, mirrored identically by the stress
/// writer and the serial oracle.
#[derive(Default)]
struct Pools {
    levels: [Vec<Oid>; 3],
}

fn apply(db: &mut Database, pools: &mut Pools, op: &Op) {
    match op {
        Op::New(level) => {
            let oid = db.instantiate(&format!("T{level}")).unwrap();
            pools.levels[*level].push(oid);
        }
        Op::Edge { level, from, to } => {
            let owner = pools.levels[*level][*from];
            let attr = if *level == 0 { "A1" } else { "A2" };
            let value = match to {
                Some(t) => Value::Ref(pools.levels[*level + 1][*t]),
                None => Value::Null,
            };
            db.set_attribute(owner, attr, value).unwrap();
        }
        Op::Name { idx, name } => {
            let owner = pools.levels[2][*idx];
            db.set_attribute(owner, "Name", Value::string(*name))
                .unwrap();
        }
    }
}

/// A seeded script whose ops are always valid against the mirrored
/// pools (indices are generated modulo the pool size at that point).
fn make_script(seed: u64) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sizes = [0usize; 3];
    let mut script = Vec::new();
    // Seed every level so edges and renames always have targets.
    for (level, size) in sizes.iter_mut().enumerate() {
        for _ in 0..4 {
            script.push(Op::New(level));
            *size += 1;
        }
    }
    while script.len() < BATCHES * BATCH {
        let roll = rng.gen_range(0u32..10);
        let op = if roll < 3 {
            let level = rng.gen_range(0usize..3);
            sizes[level] += 1;
            Op::New(level)
        } else if roll < 8 {
            let level = rng.gen_range(0usize..2);
            Op::Edge {
                level,
                from: rng.gen_range(0..sizes[level]),
                to: if rng.gen_range(0u32..10) < 8 {
                    Some(rng.gen_range(0..sizes[level + 1]))
                } else {
                    None
                },
            }
        } else {
            Op::Name {
                idx: rng.gen_range(0..sizes[2]),
                name: NAMES[rng.gen_range(0..NAMES.len())],
            }
        };
        script.push(op);
    }
    script.truncate(BATCHES * BATCH);
    script
}

/// Everything a reader needs to re-answer one epoch bit-identically:
/// the pinned view, the query inputs valid at publish time, and the
/// writer's own answer digest.
struct Published {
    snap: Snapshot,
    starts: Vec<Oid>,
    digest: String,
}

/// Deterministic answer digest over a pinned view: row/object counts,
/// every forward chain from `starts`, every backward chain to the
/// candidate names.  Epoch is deliberately excluded so the serial
/// oracle (whose epoch counter starts fresh) can be compared.
fn digest(snap: &Snapshot, asr: AsrId, starts: &[Oid]) -> String {
    let mut out = format!(
        "objects={};rows={}",
        snap.object_count(),
        snap.total_rows(asr).unwrap()
    );
    for &start in starts {
        out.push_str(&format!(
            ";fw {start:?}={:?}",
            snap.forward(asr, 0, 3, start).unwrap()
        ));
    }
    for name in NAMES {
        out.push_str(&format!(
            ";bw {name}={:?}",
            snap.backward(asr, 0, 3, &Cell::Value(Value::string(name)))
                .unwrap()
        ));
    }
    out
}

#[test]
fn concurrent_readers_see_prefix_consistent_epochs() {
    let seed = fuzz_seed();
    let script = make_script(seed);
    let (mut db, path) = chain_db();
    let asr = db
        .create_asr(
            path.clone(),
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();

    let published: Arc<Mutex<Vec<Arc<Published>>>> = Arc::new(Mutex::new(Vec::new()));
    let done = AtomicBool::new(false);

    // `Database` is intentionally single-owner (its tracer is `Rc`-based
    // and !Send); only `Snapshot` crosses threads.  So the writer runs
    // on this thread while the spawned readers race it.
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let published_r = Arc::clone(&published);
                let done_ref = &done;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed ^ (r as u64 + 1));
                    let mut checks = 0usize;
                    // Race the writer: sample random live epochs.
                    while !done_ref.load(Ordering::SeqCst) {
                        let pick = {
                            let shelf = published_r.lock().unwrap();
                            if shelf.is_empty() {
                                None
                            } else {
                                Some(Arc::clone(&shelf[rng.gen_range(0..shelf.len())]))
                            }
                        };
                        if let Some(p) = pick {
                            assert_eq!(
                                digest(&p.snap, asr, &p.starts),
                                p.digest,
                                "reader {r}: a pinned epoch moved under concurrent writes"
                            );
                            checks += 1;
                        }
                        std::thread::yield_now();
                    }
                    // Final sweep: every epoch verified by every reader.
                    let shelf: Vec<Arc<Published>> =
                        published_r.lock().unwrap().iter().cloned().collect();
                    assert_eq!(shelf.len(), BATCHES);
                    for (k, p) in shelf.iter().enumerate() {
                        assert_eq!(
                            digest(&p.snap, asr, &p.starts),
                            p.digest,
                            "reader {r}: epoch of batch {k} drifted"
                        );
                    }
                    checks
                })
            })
            .collect();

        let mut pools = Pools::default();
        let mut last_epoch = 0;
        for (k, chunk) in script.chunks(BATCH).enumerate() {
            for op in chunk {
                apply(&mut db, &mut pools, op);
            }
            let snap = db.snapshot();
            assert!(
                snap.epoch() > last_epoch,
                "batch {k}: epochs must advance past mutations"
            );
            last_epoch = snap.epoch();
            let starts = pools.levels[0].clone();
            let d = digest(&snap, asr, &starts);
            published.lock().unwrap().push(Arc::new(Published {
                snap,
                starts,
                digest: d,
            }));
            // Give readers a slice of every epoch's lifetime.
            std::thread::yield_now();
        }
        done.store(true, Ordering::SeqCst);

        for reader in readers {
            reader.join().expect("reader panicked");
        }
    });
    let final_state = db;

    // Serial oracle: every published epoch equals a fresh replay of its
    // prefix, and the final state equals the full-script replay.
    let script = make_script(seed);
    let (mut oracle, path) = chain_db();
    let oracle_asr = oracle
        .create_asr(
            path,
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
    assert_eq!(oracle_asr, asr);
    let mut pools = Pools::default();
    let shelf = published.lock().unwrap();
    for (k, chunk) in script.chunks(BATCH).enumerate() {
        for op in chunk {
            apply(&mut oracle, &mut pools, op);
        }
        let oracle_snap = oracle.snapshot();
        assert_eq!(
            digest(&oracle_snap, asr, &pools.levels[0]),
            shelf[k].digest,
            "batch {k}: published epoch diverged from the serial prefix oracle"
        );
    }
    assert_eq!(
        final_state.save_to_string(),
        oracle.save_to_string(),
        "final writer state diverged from the serial oracle"
    );
}

/// Epoch pins actually hold memory consistent: a snapshot taken before
/// a rename keeps answering with the old name from another thread, and
/// reclamation only counts epochs whose readers are gone.
#[test]
fn pinned_epoch_survives_rename_and_reclaims_after_drop() {
    let (mut db, path) = chain_db();
    let asr = db
        .create_asr(
            path,
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
    let t0 = db.instantiate("T0").unwrap();
    let t1 = db.instantiate("T1").unwrap();
    let t2 = db.instantiate("T2").unwrap();
    db.set_attribute(t0, "A1", Value::Ref(t1)).unwrap();
    db.set_attribute(t1, "A2", Value::Ref(t2)).unwrap();
    db.set_attribute(t2, "Name", Value::string("old")).unwrap();

    let old_view = db.snapshot();
    db.set_attribute(t2, "Name", Value::string("new")).unwrap();
    let new_view = db.snapshot();
    assert!(new_view.epoch() > old_view.epoch());

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            (
                old_view.forward(asr, 0, 3, t0).unwrap(),
                new_view.forward(asr, 0, 3, t0).unwrap(),
            )
        });
        let (old_cells, new_cells) = handle.join().unwrap();
        assert_eq!(old_cells, vec![Cell::Value(Value::string("old"))]);
        assert_eq!(new_cells, vec![Cell::Value(Value::string("new"))]);
    });

    let before = db.txn_status();
    assert_eq!(before.active_snapshots, 2);
    drop(old_view);
    drop(new_view);
    let _fresh = db.snapshot();
    let after = db.txn_status();
    assert!(
        after.epochs_reclaimed > before.epochs_reclaimed,
        "dropped pins must be reclaimed"
    );
    assert_eq!(after.active_snapshots, 1);
}
