//! Cross-cutting property tests for access support relations:
//!
//! * **Theorem 3.9** — every decomposition of every extension is lossless
//!   on randomly generated object bases;
//! * **extension containment** — canonical ⊆ left, right ⊆ full;
//! * **query equivalence** — supported evaluation through any extension /
//!   decomposition that formula (35) admits returns exactly what naive
//!   object traversal returns;
//! * **maintenance equivalence** — applying random update sequences
//!   through [`asr_core::Database`] leaves every ASR identical to a
//!   from-scratch rebuild.

use asr_core::{AccessSupportRelation, AsrConfig, Cell, Database, Decomposition, Extension};
use asr_gom::{ObjectBase, Oid, PathExpression, Schema, TypeRef, Value};
use asr_pagesim::IoStats;
use proptest::prelude::*;

/// A random 4-step chain schema
/// `T0.A1(T1 set).A2(T2).A3(T3 set).Name(STRING)` mixing set occurrences
/// and single-valued steps, with a random sparse extension.
#[derive(Debug, Clone)]
struct RandomBase {
    /// Per-level object counts.
    counts: [u8; 4],
    /// Edge seeds: (level, from index, to index) candidates.
    edges: Vec<(u8, u8, u8)>,
    /// Which objects get a Name.
    names: Vec<u8>,
    /// Which set attributes get attached but remain possibly empty.
    attach: Vec<(u8, u8)>,
}

fn random_base_strategy() -> impl Strategy<Value = RandomBase> {
    (
        proptest::array::uniform4(1u8..5),
        proptest::collection::vec((0u8..3, 0u8..5, 0u8..5), 0..24),
        proptest::collection::vec(0u8..5, 0..5),
        proptest::collection::vec((0u8..2, 0u8..5), 0..6),
    )
        .prop_map(|(counts, edges, names, attach)| RandomBase {
            counts,
            edges,
            names,
            attach,
        })
}

fn chain_schema() -> Schema {
    let mut s = Schema::new();
    s.define_tuple("T0", [("A1", "S1")]).unwrap();
    s.define_set("S1", "T1").unwrap();
    s.define_tuple("T1", [("A2", "T2")]).unwrap();
    s.define_tuple("T2", [("A3", "S3")]).unwrap();
    s.define_set("S3", "T3").unwrap();
    s.define_tuple("T3", [("Name", "STRING")]).unwrap();
    s.validate().unwrap();
    s
}

const PATH: &str = "T0.A1.A2.A3.Name";

/// Materialize the random description into an object base (via plain
/// ObjectBase mutation, no ASR involved).
fn materialize(desc: &RandomBase) -> (ObjectBase, PathExpression) {
    let schema = chain_schema();
    let path = PathExpression::parse(&schema, PATH).unwrap();
    let mut base = ObjectBase::new(schema);
    let mut levels: Vec<Vec<Oid>> = Vec::new();
    for (l, &count) in desc.counts.iter().enumerate() {
        let mut objs = Vec::new();
        for _ in 0..count {
            objs.push(base.instantiate(&format!("T{l}")).unwrap());
        }
        levels.push(objs);
    }
    // Attach (possibly empty) sets first.
    for &(kind, fi) in &desc.attach {
        let (level, attr, set_ty) = if kind == 0 {
            (0, "A1", "S1")
        } else {
            (2, "A3", "S3")
        };
        let from = &levels[level];
        if from.is_empty() {
            continue;
        }
        let owner = from[fi as usize % from.len()];
        if base.get_attribute(owner, attr).unwrap().is_null() {
            let set = base.instantiate(set_ty).unwrap();
            base.set_attribute(owner, attr, Value::Ref(set)).unwrap();
        }
    }
    for &(l, fi, ti) in &desc.edges {
        let (from, to) = (&levels[l as usize], &levels[l as usize + 1]);
        if from.is_empty() || to.is_empty() {
            continue;
        }
        let owner = from[fi as usize % from.len()];
        let target = to[ti as usize % to.len()];
        match l {
            0 | 2 => {
                let (attr, set_ty) = if l == 0 { ("A1", "S1") } else { ("A3", "S3") };
                let set = match base.get_attribute(owner, attr).unwrap() {
                    Value::Ref(s) => s,
                    _ => {
                        let s = base.instantiate(set_ty).unwrap();
                        base.set_attribute(owner, attr, Value::Ref(s)).unwrap();
                        s
                    }
                };
                base.insert_into_set(set, Value::Ref(target)).unwrap();
            }
            1 => base.set_attribute(owner, "A2", Value::Ref(target)).unwrap(),
            _ => unreachable!(),
        }
    }
    for &ni in &desc.names {
        let t3 = &levels[3];
        if t3.is_empty() {
            continue;
        }
        let obj = t3[ni as usize % t3.len()];
        base.set_attribute(obj, "Name", Value::string(format!("N{}", ni % 3)))
            .unwrap();
    }
    (base, path)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 3.9 on random bases, all extensions × decompositions ×
    /// set-OID handling.
    #[test]
    fn theorem_3_9_losslessness(desc in random_base_strategy()) {
        let (base, path) = materialize(&desc);
        for keep in [false, true] {
            let aux = asr_core::build_auxiliary_relations(&base, &path, keep).unwrap();
            for ext in Extension::ALL {
                let rel = ext.compute(&aux).unwrap();
                let m = rel.arity() - 1;
                for dec in Decomposition::enumerate_all(m) {
                    let parts = dec.decompose(&rel).unwrap();
                    let back = dec.reassemble(&parts, ext).unwrap();
                    prop_assert_eq!(&back, &rel, "{} under {} keep={}", ext, dec, keep);
                }
            }
        }
    }

    /// Canonical ⊆ left ∩ right; left ∪ right ⊆ full.
    #[test]
    fn extension_containment(desc in random_base_strategy()) {
        let (base, path) = materialize(&desc);
        let aux = asr_core::build_auxiliary_relations(&base, &path, false).unwrap();
        let can = Extension::Canonical.compute(&aux).unwrap();
        let full = Extension::Full.compute(&aux).unwrap();
        let left = Extension::LeftComplete.compute(&aux).unwrap();
        let right = Extension::RightComplete.compute(&aux).unwrap();
        prop_assert!(can.is_subset_of(&left));
        prop_assert!(can.is_subset_of(&right));
        prop_assert!(left.is_subset_of(&full));
        prop_assert!(right.is_subset_of(&full));
        // Structural invariants of each extension.
        prop_assert!(can.iter().all(|r| r.first().is_some() && r.last().is_some()));
        prop_assert!(left.iter().all(|r| r.first().is_some()));
        prop_assert!(right.iter().all(|r| r.last().is_some()));
    }

    /// Supported evaluation ≡ naive evaluation for every admissible span.
    #[test]
    fn supported_queries_match_naive(desc in random_base_strategy(), cuts_seed in any::<u8>()) {
        let (base, path) = materialize(&desc);
        let stats = IoStats::new_handle();
        let mut store = asr_core::ObjectStore::new(std::rc::Rc::clone(&stats));
        store.sync_with_base(&base).unwrap();
        let n = path.len();
        let all_decs = Decomposition::enumerate_all(n);
        let dec = all_decs[cuts_seed as usize % all_decs.len()].clone();
        for ext in Extension::ALL {
            let config = AsrConfig {
                extension: ext,
                decomposition: dec.clone(),
                keep_set_oids: false,
            };
            let asr = AccessSupportRelation::build(
                &base, path.clone(), config, IoStats::new_handle(),
            ).unwrap();
            for i in 0..n {
                for j in i + 1..=n {
                    if !ext.supports(i, j, n) {
                        continue;
                    }
                    // Forward from every t_i object.
                    let TypeRef::Named(ti) = path.type_at(i) else { unreachable!() };
                    for start in base.extent_closure(ti) {
                        let sup = asr.forward(i, j, start).unwrap();
                        let naive = asr_core::naive::forward_naive(
                            &base, &store, &path, i, j, start,
                        ).unwrap();
                        prop_assert_eq!(sup, naive, "{} fw Q_{{{},{}}} from {}", ext, i, j, start);
                    }
                    // Backward towards every t_j cell present in the base.
                    let targets: Vec<Cell> = if j == n {
                        base.extent_closure(path.anchor()) // anchors irrelevant; gather names below
                            .into_iter()
                            .flat_map(|_| Vec::new())
                            .chain(
                                base.objects()
                                    .filter_map(|o| Cell::from_gom(o.attribute("Name"))),
                            )
                            .collect()
                    } else {
                        let TypeRef::Named(tj) = path.type_at(j) else { unreachable!() };
                        base.extent_closure(tj).into_iter().map(Cell::Oid).collect()
                    };
                    for target in targets {
                        let sup = asr.backward(i, j, &target).unwrap();
                        let naive = asr_core::naive::backward_naive(
                            &base, &store, &path, i, j, &target,
                        ).unwrap();
                        prop_assert_eq!(sup, naive, "{} bw Q_{{{},{}}} to {}", ext, i, j, target);
                    }
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Maintenance: incremental ≡ rebuild under random update sequences.
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Update {
    SetInsert { level: u8, fi: u8, ti: u8 },
    SetRemove { level: u8, fi: u8, ti: u8 },
    Assign { fi: u8, ti: u8 },
    ClearAssign { fi: u8 },
    AttachSet { level: u8, fi: u8 },
    DetachSet { level: u8, fi: u8 },
    Name { ni: u8 },
    ClearName { ni: u8 },
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0u8..2, any::<u8>(), any::<u8>()).prop_map(|(l, f, t)| Update::SetInsert {
            level: l,
            fi: f,
            ti: t
        }),
        (0u8..2, any::<u8>(), any::<u8>()).prop_map(|(l, f, t)| Update::SetRemove {
            level: l,
            fi: f,
            ti: t
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(f, t)| Update::Assign { fi: f, ti: t }),
        any::<u8>().prop_map(|f| Update::ClearAssign { fi: f }),
        (0u8..2, any::<u8>()).prop_map(|(l, f)| Update::AttachSet { level: l, fi: f }),
        (0u8..2, any::<u8>()).prop_map(|(l, f)| Update::DetachSet { level: l, fi: f }),
        any::<u8>().prop_map(|n| Update::Name { ni: n }),
        any::<u8>().prop_map(|n| Update::ClearName { ni: n }),
    ]
}

fn apply_update(db: &mut Database, levels: &[Vec<Oid>], u: &Update) {
    let set_info = |l: u8| {
        if l == 0 {
            (0usize, "A1", "S1")
        } else {
            (2usize, "A3", "S3")
        }
    };
    match u {
        Update::SetInsert { level, fi, ti } | Update::SetRemove { level, fi, ti } => {
            let (lvl, attr, _) = set_info(*level);
            let from = &levels[lvl];
            let to = &levels[lvl + 1];
            if from.is_empty() || to.is_empty() {
                return;
            }
            let owner = from[*fi as usize % from.len()];
            let target = to[*ti as usize % to.len()];
            let Some(set) = db.base().get_attribute(owner, attr).unwrap().as_ref_oid() else {
                return;
            };
            match u {
                Update::SetInsert { .. } => {
                    db.insert_into_set(set, Value::Ref(target)).unwrap();
                }
                _ => {
                    db.remove_from_set(set, &Value::Ref(target)).unwrap();
                }
            }
        }
        Update::Assign { fi, ti } => {
            let (from, to) = (&levels[1], &levels[2]);
            if from.is_empty() || to.is_empty() {
                return;
            }
            let owner = from[*fi as usize % from.len()];
            let target = to[*ti as usize % to.len()];
            db.set_attribute(owner, "A2", Value::Ref(target)).unwrap();
        }
        Update::ClearAssign { fi } => {
            let from = &levels[1];
            if from.is_empty() {
                return;
            }
            let owner = from[*fi as usize % from.len()];
            db.set_attribute(owner, "A2", Value::Null).unwrap();
        }
        Update::AttachSet { level, fi } => {
            let (lvl, attr, set_ty) = set_info(*level);
            let from = &levels[lvl];
            if from.is_empty() {
                return;
            }
            let owner = from[*fi as usize % from.len()];
            if db.base().get_attribute(owner, attr).unwrap().is_null() {
                let set = db.instantiate(set_ty).unwrap();
                db.set_attribute(owner, attr, Value::Ref(set)).unwrap();
            }
        }
        Update::DetachSet { level, fi } => {
            let (lvl, attr, _) = set_info(*level);
            let from = &levels[lvl];
            if from.is_empty() {
                return;
            }
            let owner = from[*fi as usize % from.len()];
            db.set_attribute(owner, attr, Value::Null).unwrap();
        }
        Update::Name { ni } => {
            let t3 = &levels[3];
            if t3.is_empty() {
                return;
            }
            let obj = t3[*ni as usize % t3.len()];
            db.set_attribute(obj, "Name", Value::string(format!("N{}", ni % 3)))
                .unwrap();
        }
        Update::ClearName { ni } => {
            let t3 = &levels[3];
            if t3.is_empty() {
                return;
            }
            let obj = t3[*ni as usize % t3.len()];
            db.set_attribute(obj, "Name", Value::Null).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_maintenance_equals_rebuild(
        counts in proptest::array::uniform4(1u8..4),
        updates in proptest::collection::vec(update_strategy(), 1..30),
        dec_seed in any::<u8>(),
        keep in any::<bool>(),
    ) {
        let schema = chain_schema();
        let path = PathExpression::parse(&schema, PATH).unwrap();
        let mut db = Database::new(schema);
        let mut levels: Vec<Vec<Oid>> = Vec::new();
        for (l, &count) in counts.iter().enumerate() {
            let mut objs = Vec::new();
            for _ in 0..count {
                objs.push(db.instantiate(&format!("T{l}")).unwrap());
            }
            levels.push(objs);
        }
        // One ASR per extension with a random decomposition each.
        let m = path.arity(keep) - 1;
        let all_decs = Decomposition::enumerate_all(m);
        for (e, ext) in Extension::ALL.into_iter().enumerate() {
            let dec = all_decs[(dec_seed as usize + e) % all_decs.len()].clone();
            db.create_asr(path.clone(), AsrConfig {
                extension: ext,
                decomposition: dec,
                keep_set_oids: keep,
            }).unwrap();
        }
        for u in &updates {
            apply_update(&mut db, &levels, u);
        }
        for (_, asr) in db.asrs() {
            asr.check_consistency().unwrap();
            let reference = AccessSupportRelation::build(
                db.base(), asr.path().clone(), asr.config().clone(), IoStats::new_handle(),
            ).unwrap();
            let got: Vec<_> = asr.full_rows().cloned().collect();
            let want: Vec<_> = reference.full_rows().cloned().collect();
            prop_assert_eq!(got, want, "{} under {} keep={} after {:?}",
                asr.config().extension, asr.config().decomposition, keep, updates);
        }
    }
}
