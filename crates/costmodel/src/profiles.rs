//! The application profiles and operation mixes used in the paper's
//! experiments, one constructor per figure.

use crate::params::{CostModel, Profile};
use crate::{Mix, Op};

/// Section 4.4.1 (Figure 4): storage comparison profile.
pub fn fig4_profile() -> CostModel {
    CostModel::new(
        Profile::new(
            vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
            vec![900.0, 4000.0, 8000.0, 20_000.0],
            vec![2.0, 2.0, 3.0, 4.0],
            // Figure 4 compares sizes only; object sizes are irrelevant
            // there, so reuse the Section 5.9.1 values.
            vec![500.0, 400.0, 300.0, 300.0, 100.0],
        )
        .unwrap(),
    )
}

/// Section 4.4.2 (Figure 5): varying `d_i` simultaneously over
/// `2500 … 10000`; `c_i = 10000`, `fan = 2`.
pub fn fig5_profile(d: f64) -> CostModel {
    CostModel::new(
        Profile::new(vec![10_000.0; 5], vec![d; 4], vec![2.0; 4], vec![120.0; 5]).unwrap(),
    )
}

/// Section 5.9.1 (Figure 6): backward query `Q_{0,4}(bw)` profile.
pub fn fig6_profile() -> CostModel {
    CostModel::new(
        Profile::new(
            vec![100.0, 500.0, 1000.0, 5000.0, 10_000.0],
            // paper: the table prints d_2 = 8000 > c_2 = 1000 — an obvious
            // typo for 800 (cf. the d_i pattern of Figures 11/13's tables,
            // where c_2 = 10000 pairs with d_2 = 8000).
            vec![90.0, 400.0, 800.0, 2000.0],
            vec![2.0, 2.0, 3.0, 4.0],
            vec![500.0, 400.0, 300.0, 300.0, 100.0],
        )
        .unwrap(),
    )
}

/// Section 5.9.2 (Figure 7): the Figure 6 population with uniform object
/// size `size ∈ 100 … 800`.
pub fn fig7_profile(size: f64) -> CostModel {
    CostModel::new(
        Profile::new(
            vec![100.0, 500.0, 1000.0, 5000.0, 10_000.0],
            vec![90.0, 400.0, 800.0, 2000.0],
            vec![2.0, 2.0, 3.0, 4.0],
            vec![size; 5],
        )
        .unwrap(),
    )
}

/// Section 5.9.3 (Figure 8): `c_i = 10^4`, `d_i ∈ 10 … 10^4`, `fan = 2`,
/// `size = 120`.
pub fn fig8_profile(d: f64) -> CostModel {
    CostModel::new(
        Profile::new(vec![10_000.0; 5], vec![d; 4], vec![2.0; 4], vec![120.0; 5]).unwrap(),
    )
}

/// Section 5.9.4 (Figure 9): 400 000 objects per type, steeply increasing
/// `d_i`, fan-out swept over `10 … 100`.
pub fn fig9_profile(fan: f64) -> CostModel {
    CostModel::new(
        Profile::new(
            vec![400_000.0; 5],
            vec![10.0, 100.0, 1000.0, 100_000.0],
            vec![fan; 4],
            vec![120.0; 5],
        )
        .unwrap(),
    )
}

/// Section 6.3.1 (Figure 11): update-cost profile (same population as
/// Figure 4).
pub fn fig11_profile() -> CostModel {
    fig4_profile()
}

/// Section 6.3.2 (Figure 12): modified fan-outs `2, 1, 1, 4`.
pub fn fig12_profile() -> CostModel {
    CostModel::new(
        Profile::new(
            vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
            vec![900.0, 4000.0, 8000.0, 20_000.0],
            vec![2.0, 1.0, 1.0, 4.0],
            vec![500.0, 400.0, 300.0, 300.0, 100.0],
        )
        .unwrap(),
    )
}

/// Section 6.3.3 (Figure 13): the Figure 11 population with uniform object
/// size `size ∈ 100 … 800`.
pub fn fig13_profile(size: f64) -> CostModel {
    CostModel::new(
        Profile::new(
            vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
            vec![900.0, 4000.0, 8000.0, 20_000.0],
            vec![2.0, 2.0, 3.0, 4.0],
            vec![size; 5],
        )
        .unwrap(),
    )
}

/// Section 6.4.2 (Figures 14/15): the mix
/// `Q = {(1/2, Q_{0,4}(bw)), (1/4, Q_{0,3}(bw)), (1/4, Q_{1,2}(fw))}`,
/// `U = {(1/2, ins_2), (1/2, ins_3)}`.
pub fn fig14_mix(p_up: f64) -> Mix {
    Mix::new(
        vec![
            (0.5, Op::bw(0, 4)),
            (0.25, Op::bw(0, 3)),
            (0.25, Op::fw(1, 2)),
        ],
        vec![(0.5, Op::ins(2)), (0.5, Op::ins(3))],
        p_up,
    )
}

/// Sections 6.4.2/6.4.3 (Figures 14/15) use the Figure 11 profile.
pub fn fig14_profile() -> CostModel {
    fig11_profile()
}

/// Section 6.4.4 (Figure 16): the n = 5 profile comparing left-complete
/// and full extensions.
pub fn fig16_profile() -> CostModel {
    CostModel::new(
        Profile::new(
            vec![1000.0, 1000.0, 5000.0, 10_000.0, 100_000.0, 100_000.0],
            vec![100.0, 1000.0, 3000.0, 8000.0, 100_000.0],
            vec![2.0, 2.0, 3.0, 4.0, 10.0],
            vec![600.0, 500.0, 400.0, 300.0, 300.0, 100.0],
        )
        .unwrap(),
    )
}

/// Figure 16's mix:
/// `Q = {(1/3, Q_{0,5}(bw)), (1/3, Q_{0,4}(bw)), (1/3, Q_{0,5}(fw))}`,
/// `U = {(1/3, ins_3), (1/3, ins_0), (1/3, ins_4)}`.
pub fn fig16_mix(p_up: f64) -> Mix {
    let w = 1.0 / 3.0;
    Mix::new(
        vec![(w, Op::bw(0, 5)), (w, Op::bw(0, 4)), (w, Op::fw(0, 5))],
        vec![(w, Op::ins(3)), (w, Op::ins(0)), (w, Op::ins(4))],
        p_up,
    )
}

/// Section 6.4.5 (Figure 17): the n = 5 profile comparing right-complete
/// and full extensions (population shrinking towards `t_n`).
pub fn fig17_profile() -> CostModel {
    CostModel::new(
        Profile::new(
            vec![100_000.0, 100_000.0, 50_000.0, 10_000.0, 1000.0, 1000.0],
            vec![100_000.0, 10_000.0, 30_000.0, 10_000.0, 100.0],
            vec![1.0, 10.0, 20.0, 4.0, 1.0],
            vec![600.0, 500.0, 400.0, 300.0, 200.0, 700.0],
        )
        .unwrap(),
    )
}

/// Figure 17's mix:
/// `Q = {(1/2, Q_{0,5}(bw)), (1/4, Q_{1,5}(bw)), (1/4, Q_{2,5}(bw))}`,
/// `U = {(1, ins_3)}`.
pub fn fig17_mix(p_up: f64) -> Mix {
    Mix::new(
        vec![
            (0.5, Op::bw(0, 5)),
            (0.25, Op::bw(1, 5)),
            (0.25, Op::bw(2, 5)),
        ],
        vec![(1.0, Op::ins(3))],
        p_up,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dec, Ext};

    #[test]
    fn all_profiles_validate() {
        fig4_profile().profile.validate().unwrap();
        fig5_profile(2500.0).profile.validate().unwrap();
        fig6_profile().profile.validate().unwrap();
        fig7_profile(100.0).profile.validate().unwrap();
        fig8_profile(10.0).profile.validate().unwrap();
        fig9_profile(10.0).profile.validate().unwrap();
        fig12_profile().profile.validate().unwrap();
        fig13_profile(800.0).profile.validate().unwrap();
        fig16_profile().profile.validate().unwrap();
        fig17_profile().profile.validate().unwrap();
    }

    #[test]
    fn n5_profiles_have_length_5() {
        assert_eq!(fig16_profile().n(), 5);
        assert_eq!(fig17_profile().n(), 5);
    }

    #[test]
    fn figure_16_shape_left_competitive_with_full() {
        // Section 6.4.4: "the update costs of the left-complete and full
        // extension are almost comparable"; for query-heavy mixes the
        // left-complete (anchored queries only) stays close to full.
        let m = fig16_profile();
        let dec = Dec::binary(5);
        let mix = fig16_mix(0.2);
        let left = m.mix_cost(Ext::Left, &dec, &mix);
        let full = m.mix_cost(Ext::Full, &dec, &mix);
        assert!(left <= full * 1.5, "left={left:.1} full={full:.1}");
    }

    #[test]
    fn figure_17_shape_right_beats_full_only_for_tiny_pup() {
        // Section 6.4.5: with decomposition (0,3,5) the right-complete
        // extension beats full only below P_up ≈ 0.005.
        let m = fig17_profile();
        let dec = Dec(vec![0, 3, 5]);
        let low = fig17_mix(0.001);
        let right = m.mix_cost(Ext::Right, &dec, &low);
        let full = m.mix_cost(Ext::Full, &dec, &low);
        assert!(right < full, "P_up=0.001: right={right:.1} full={full:.1}");
        let high = fig17_mix(0.05);
        let right = m.mix_cost(Ext::Right, &dec, &high);
        let full = m.mix_cost(Ext::Full, &dec, &high);
        assert!(full < right, "P_up=0.05: right={right:.1} full={full:.1}");
    }

    #[test]
    fn figure_17_shape_035_superior_to_binary() {
        // "It turns out that the latter decomposition (0,3,5) is always
        // superior" to binary for this profile/mix.
        let m = fig17_profile();
        let d035 = Dec(vec![0, 3, 5]);
        let dbin = Dec::binary(5);
        for p_up in [0.01, 0.1, 0.5] {
            let mix = fig17_mix(p_up);
            for ext in [Ext::Right, Ext::Full] {
                let a = m.mix_cost(ext, &d035, &mix);
                let b = m.mix_cost(ext, &dbin, &mix);
                assert!(a <= b, "{ext} P_up={p_up}: (0,3,5)={a:.1} binary={b:.1}");
            }
        }
    }
}
