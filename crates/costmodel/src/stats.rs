//! Derived reachability statistics (formulas 3–12 and 29–30).
//!
//! These quantities estimate, for a database matching the profile, how
//! many objects are connected across path positions:
//!
//! * `RefBy(i, j)` — objects in `t_j` referenced (via at least one partial
//!   path) from some object in `t_i` (formula 6); the three-argument form
//!   `RefBy(i, j, k)` restricts the sources to a `k`-element subset
//!   (formula 29);
//! * `Ref(i, j)` — objects of `t_i` having a path to some `t_j` object
//!   (formula 8); `Ref(i, j, k)` restricts the targets (formula 30);
//! * the associated probabilities `P_RefBy` (7), `P_Ref` (9), and the
//!   "left/right bound" complements `P_lb` (11) and `P_rb` (12);
//! * `path(i, j)` — the expected number of paths between `t_i` and `t_j`
//!   objects (formula 10).

use crate::params::CostModel;

impl CostModel {
    /// `RefBy(i, j)` (formula 6): objects in `t_j` referenced via at least
    /// one partial path from some object in `t_i`, `0 ≤ i < j ≤ n`.
    pub fn ref_by(&self, i: usize, j: usize) -> f64 {
        if j == i {
            return 0.0;
        }
        debug_assert!(i < j && j <= self.n());
        if j == i + 1 {
            return self.e(i + 1);
        }
        let e_j = self.e(j);
        if e_j == 0.0 {
            return 0.0;
        }
        let sources = self.ref_by(i, j - 1) * self.p_a(j - 1);
        let miss = (1.0 - self.fan(j - 1) / e_j).max(0.0); // formula (4), clamped
        e_j * (1.0 - miss.powf(sources))
    }

    /// `RefBy(i, j, k)` (formula 29): objects in `t_j` on at least one
    /// partial path emanating from a `k`-element subset of `t_i`.
    ///
    /// The base case `j = i ⇒ k` is needed by the update-cost formulas,
    /// which invoke it with coincident indices.
    pub fn ref_by_k(&self, i: usize, j: usize, k: f64) -> f64 {
        if j == i {
            return k; // paper: implicit base case for Section 6.2's calls
        }
        debug_assert!(i < j && j <= self.n());
        if j == i + 1 {
            let e = self.e(i + 1);
            if e == 0.0 {
                return 0.0;
            }
            let miss = (1.0 - self.fan(i) / e).max(0.0);
            return e * (1.0 - miss.powf(k));
        }
        let e_j = self.e(j);
        if e_j == 0.0 {
            return 0.0;
        }
        let sources = self.ref_by_k(i, j - 1, k) * self.p_a(j - 1);
        let miss = (1.0 - self.fan(j - 1) / e_j).max(0.0);
        e_j * (1.0 - miss.powf(sources))
    }

    /// `P_RefBy(i, j)` (formula 7).
    pub fn p_ref_by(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        if self.c(j) == 0.0 {
            return 0.0;
        }
        (self.ref_by(i, j) / self.c(j)).clamp(0.0, 1.0)
    }

    /// `Ref(i, j)` (formula 8): objects of `t_i` with a path to some `t_j`
    /// object.
    pub fn reaches(&self, i: usize, j: usize) -> f64 {
        if j == i {
            return 0.0;
        }
        debug_assert!(i < j && j <= self.n());
        if j == i + 1 {
            return self.d(i);
        }
        let d_i = self.d(i);
        if d_i == 0.0 {
            return 0.0;
        }
        let targets = self.reaches(i + 1, j) * self.p_h(i + 1);
        let miss = (1.0 - self.shar(i) / d_i).max(0.0);
        d_i * (1.0 - miss.powf(targets))
    }

    /// `Ref(i, j, k)` (formula 30): objects of `t_i` with a path into a
    /// `k`-element subset of `t_j`.  Base case `j = i ⇒ k`, as for
    /// [`CostModel::ref_by_k`].
    pub fn reaches_k(&self, i: usize, j: usize, k: f64) -> f64 {
        if j == i {
            return k; // paper: implicit base case for Section 6.2's calls
        }
        debug_assert!(i < j && j <= self.n());
        let d_i = self.d(i);
        if d_i == 0.0 {
            return 0.0;
        }
        let miss = (1.0 - self.shar(i) / d_i).max(0.0);
        if j == i + 1 {
            return d_i * (1.0 - miss.powf(k));
        }
        let targets = self.reaches_k(i + 1, j, k) * self.p_h(i + 1);
        d_i * (1.0 - miss.powf(targets))
    }

    /// `P_Ref(i, j)` (formula 9).
    pub fn p_ref(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        if self.c(i) == 0.0 {
            return 0.0;
        }
        (self.reaches(i, j) / self.c(i)).clamp(0.0, 1.0)
    }

    /// `P_lb(i, j)` (formula 11): probability that a particular `t_j`
    /// object is *not* hit by any path from `t_i`.
    pub fn p_lb(&self, i: usize, j: usize) -> f64 {
        if i < j {
            1.0 - self.p_ref_by(i, j)
        } else {
            1.0
        }
    }

    /// `P_rb(i, j)` (formula 12): probability that a particular `t_i`
    /// object has *no* path to `t_j`.
    pub fn p_rb(&self, i: usize, j: usize) -> f64 {
        if i < j {
            1.0 - self.p_ref(i, j)
        } else {
            1.0
        }
    }

    /// `path(i, j) = ref_i · Π_{l=i+1}^{j-1} P_{A_l} · fan_l`
    /// (formula 10): the expected number of paths between `t_i` and `t_j`.
    pub fn paths(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < j && j <= self.n());
        let mut total = self.refs(i);
        for l in i + 1..j {
            total *= self.p_a(l) * self.fan(l);
        }
        total
    }

    /// `P_NoPath(l) = 1 − P_RefBy(0, l) · P_Ref(l, n)` (formulas 37–38).
    pub fn p_no_path(&self, l: usize) -> f64 {
        1.0 - self.p_ref_by(0, l) * self.p_ref(l, self.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Profile;

    fn sample() -> CostModel {
        CostModel::new(
            Profile::new(
                vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
                vec![900.0, 4000.0, 8000.0, 20_000.0],
                vec![2.0, 2.0, 3.0, 4.0],
                vec![500.0, 400.0, 300.0, 300.0, 100.0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn ref_by_base_case_is_e() {
        let m = sample();
        assert_eq!(m.ref_by(0, 1), m.e(1));
        assert_eq!(m.ref_by(2, 3), m.e(3));
    }

    #[test]
    fn ref_by_shrinks_along_the_chain_probability() {
        let m = sample();
        for j in 1..=4 {
            let r = m.ref_by(0, j);
            assert!(r > 0.0 && r <= m.c(j), "RefBy(0,{j}) = {r}");
            let p = m.p_ref_by(0, j);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn three_arg_forms_interpolate() {
        let m = sample();
        // The k-restricted form never exceeds the all-sources form (the
        // two use different first-hop estimates — the 2-argument base case
        // is e_{i+1} by definition, the 3-argument one a Bernoulli hit
        // count — so only the inequality holds, not equality at k = d_i).
        let full = m.ref_by(0, 2);
        let restricted = m.ref_by_k(0, 2, m.d(0));
        assert!(restricted <= full * 1.001, "{full} vs {restricted}");
        assert!(restricted > 0.0);
        // Monotone in k.
        let mut prev = 0.0;
        for k in [1.0, 10.0, 100.0, 900.0] {
            let v = m.ref_by_k(0, 3, k);
            assert!(v >= prev);
            prev = v;
        }
        // Base cases.
        assert_eq!(m.ref_by_k(2, 2, 5.0), 5.0);
        assert_eq!(m.reaches_k(2, 2, 7.0), 7.0);
    }

    #[test]
    fn reaches_bounded_by_d() {
        let m = sample();
        for i in 0..4 {
            let r = m.reaches(i, 4);
            assert!(r > 0.0 && r <= m.d(i), "Ref({i},4) = {r} vs d = {}", m.d(i));
        }
        assert_eq!(m.reaches(3, 4), m.d(3), "single hop reaches all defined");
    }

    #[test]
    fn path_counts_match_hand_computation() {
        let m = sample();
        // path(0,1) = ref_0 = 1800.
        assert_eq!(m.paths(0, 1), 1800.0);
        // path(0,2) = 1800 · P_A(1)·fan(1) = 1800 · 0.8 · 2 = 2880.
        assert!((m.paths(0, 2) - 2880.0).abs() < 1e-9);
        // path(0,4) = 2880 · 0.8·3 · 0.4·4 = 11059.2.
        assert!((m.paths(0, 4) - 11059.2).abs() < 1e-6);
    }

    #[test]
    fn probability_complements() {
        let m = sample();
        assert_eq!(m.p_lb(2, 2), 1.0);
        assert_eq!(m.p_rb(3, 3), 1.0);
        assert!((m.p_lb(0, 2) - (1.0 - m.p_ref_by(0, 2))).abs() < 1e-12);
        assert!((m.p_rb(1, 4) - (1.0 - m.p_ref(1, 4))).abs() < 1e-12);
        let pnp = m.p_no_path(2);
        assert!((0.0..=1.0).contains(&pnp));
    }

    #[test]
    fn zero_population_degenerates_gracefully() {
        let m = CostModel::new(
            Profile::new(
                vec![10.0, 0.0, 10.0],
                vec![0.0, 0.0],
                vec![2.0, 2.0],
                vec![100.0, 100.0, 100.0],
            )
            .unwrap(),
        );
        assert_eq!(m.ref_by(0, 2), 0.0);
        assert_eq!(m.reaches(0, 2), 0.0);
        assert_eq!(m.p_ref_by(0, 1), 0.0);
        assert_eq!(m.paths(0, 2), 0.0);
    }
}
