//! Error type for the analytical cost model.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CostModelError>;

/// Errors raised while constructing or evaluating the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostModelError {
    /// Profile vectors have inconsistent lengths or invalid values.
    InvalidProfile(String),
    /// A span `[i, j]` or update position was out of range.
    InvalidSpan {
        /// Span start.
        i: usize,
        /// Span end.
        j: usize,
        /// Path length.
        n: usize,
    },
    /// A decomposition did not span `(0, …, n)`.
    InvalidDecomposition(String),
}

impl fmt::Display for CostModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModelError::InvalidProfile(msg) => write!(f, "invalid profile: {msg}"),
            CostModelError::InvalidSpan { i, j, n } => {
                write!(f, "span [{i},{j}] invalid for path length {n}")
            }
            CostModelError::InvalidDecomposition(msg) => {
                write!(f, "invalid decomposition: {msg}")
            }
        }
    }
}

impl std::error::Error for CostModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CostModelError::InvalidSpan { i: 2, j: 1, n: 4 }
            .to_string()
            .contains("[2,1]"));
    }
}
