//! Query evaluation costs (Section 5.6–5.8, formulas 31–35).

use crate::params::CostModel;
use crate::yao::yao;
use crate::{Dec, Ext};

impl CostModel {
    /// `Qnas_{i,j}(fw)` (formula 31): forward query without access
    /// support — one page for the start object plus every distinct
    /// intermediate object on a path from it.
    pub fn qnas_fw(&self, i: usize, j: usize) -> f64 {
        if i >= j {
            return 0.0;
        }
        let mut cost = 1.0;
        for l in i + 1..j {
            cost += yao(self.ref_by_k(i, l, 1.0).ceil(), self.op(l), self.c(l));
        }
        cost
    }

    /// `Qnas_{i,j}(bw)` (formula 32): backward query without access
    /// support — exhaustive scan of the `t_i` extent plus the forward
    /// closure from all `d_i` defined anchors.
    pub fn qnas_bw(&self, i: usize, j: usize) -> f64 {
        if i >= j {
            return 0.0;
        }
        let mut cost = self.op(i);
        for l in i + 1..j {
            cost += yao(self.ref_by_k(i, l, self.d(i)).ceil(), self.op(l), self.c(l));
        }
        cost
    }

    /// `Qsup^{i,j}_X(fw, dec)` (formula 33): supported forward query.
    pub fn qsup_fw(&self, ext: Ext, i: usize, j: usize, dec: &Dec) -> f64 {
        let fan = self.sys.bplus_fan();
        let mut cost = 0.0;
        for (a, b) in dec.partitions() {
            if a == i && i < b {
                // Entry at a partition border: one root-to-leaf descent
                // plus the leaf pages of one cluster.
                cost += self.ht(ext, a, b) + self.nlp(ext, a, b);
            } else if a < i && i < b {
                // Entry strictly inside: exhaustive partition scan.
                cost += self.ap(ext, a, b);
            } else if i < a && a < j {
                // Downstream partitions: root + the intermediate pages and
                // data pages covering the RefBy(i, a, 1) frontier values.
                let frontier = self.ref_by_k(i, a, 1.0).ceil();
                let pg = self.pg(ext, a, b);
                cost += 1.0
                    + yao(frontier, pg - 1.0, (pg - 1.0) * fan)
                    + yao(
                        frontier * self.nlp(ext, a, b),
                        self.ap(ext, a, b),
                        self.cardinality(ext, a, b),
                    );
            }
        }
        cost
    }

    /// `Qsup^{i,j}_X(bw, dec)` (formula 34): supported backward query over
    /// the reverse-clustered trees.
    pub fn qsup_bw(&self, ext: Ext, i: usize, j: usize, dec: &Dec) -> f64 {
        let fan = self.sys.bplus_fan();
        let mut cost = 0.0;
        for (a, b) in dec.partitions() {
            if a < j && j == b {
                cost += self.ht(ext, a, b) + self.rnlp(ext, a, b);
            } else if a < j && j < b {
                cost += self.ap(ext, a, b);
            } else if i < b && b < j {
                let frontier = self.reaches_k(b, j, 1.0).ceil();
                let pg = self.pg(ext, a, b);
                cost += 1.0
                    + yao(frontier, pg - 1.0, (pg - 1.0) * fan)
                    + yao(
                        frontier * self.rnlp(ext, a, b),
                        self.ap(ext, a, b),
                        self.cardinality(ext, a, b),
                    );
            }
        }
        cost
    }

    /// `Q^{i,j}_X(kind, dec)` (formula 35): the cost a system pays for the
    /// span query, using the access relation when the extension supports
    /// the span and falling back to navigation otherwise.
    pub fn q(&self, ext: Ext, kind: crate::QueryKind, i: usize, j: usize, dec: &Dec) -> f64 {
        if ext.supports(i, j, self.n()) {
            match kind {
                crate::QueryKind::Forward => self.qsup_fw(ext, i, j, dec),
                crate::QueryKind::Backward => self.qsup_bw(ext, i, j, dec),
            }
        } else {
            match kind {
                crate::QueryKind::Forward => self.qnas_fw(i, j),
                crate::QueryKind::Backward => self.qnas_bw(i, j),
            }
        }
    }

    /// The no-access-support baseline for a query.
    pub fn q_nosupport(&self, kind: crate::QueryKind, i: usize, j: usize) -> f64 {
        match kind {
            crate::QueryKind::Forward => self.qnas_fw(i, j),
            crate::QueryKind::Backward => self.qnas_bw(i, j),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Profile;
    use crate::QueryKind;

    /// Section 5.9.1's profile.
    fn fig6_model() -> CostModel {
        CostModel::new(
            Profile::new(
                vec![100.0, 500.0, 1000.0, 5000.0, 10_000.0],
                vec![90.0, 400.0, 800.0, 2000.0],
                vec![2.0, 2.0, 3.0, 4.0],
                vec![500.0, 400.0, 300.0, 300.0, 100.0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn naive_costs_scale_with_direction() {
        let m = fig6_model();
        // Backward must dominate forward: it scans the whole extent and
        // closes over all anchors.
        assert!(m.qnas_bw(0, 4) > m.qnas_fw(0, 4));
        assert!(m.qnas_fw(0, 4) >= 1.0);
        assert_eq!(m.qnas_fw(2, 2), 0.0);
    }

    #[test]
    fn figure_6_shape_supported_beats_unsupported() {
        let m = fig6_model();
        let nosup = m.qnas_bw(0, 4);
        for ext in Ext::ALL {
            for dec in [Dec::binary(4), Dec::none(4)] {
                let sup = m.qsup_bw(ext, 0, 4, &dec);
                assert!(
                    sup < nosup,
                    "{ext} {dec}: supported {sup} !< unsupported {nosup}"
                );
            }
        }
    }

    #[test]
    fn figure_6_shape_non_decomposed_beats_binary_on_full_span() {
        // Section 5.9.1: "the query costs for non-decomposed access
        // relations is lower than for binary decomposed relations" (the
        // whole-chain query needs only one partition lookup).
        let m = fig6_model();
        for ext in Ext::ALL {
            let none = m.qsup_bw(ext, 0, 4, &Dec::none(4));
            let binary = m.qsup_bw(ext, 0, 4, &Dec::binary(4));
            assert!(none <= binary, "{ext}: none={none} binary={binary}");
        }
    }

    #[test]
    fn figure_7_shape_supported_queries_independent_of_object_size() {
        let mk = |size: f64| {
            CostModel::new(
                Profile::new(
                    vec![100.0, 500.0, 1000.0, 5000.0, 10_000.0],
                    vec![90.0, 400.0, 800.0, 2000.0],
                    vec![2.0, 2.0, 3.0, 4.0],
                    vec![size; 5],
                )
                .unwrap(),
            )
        };
        let small = mk(100.0);
        let large = mk(800.0);
        let dec = Dec::binary(4);
        for ext in Ext::ALL {
            assert_eq!(
                small.qsup_bw(ext, 0, 4, &dec),
                large.qsup_bw(ext, 0, 4, &dec),
                "{ext}: supported cost must not depend on object size"
            );
        }
        assert!(
            large.qnas_bw(0, 4) > small.qnas_bw(0, 4),
            "unsupported cost grows with object size"
        );
    }

    #[test]
    fn figure_8_shape_interior_span_on_nondecomposed_can_lose() {
        // Section 5.9.3: Q_{0,3}(bw) — full/left must scan the whole
        // non-decomposed relation; with many objects that costs more than
        // no support at the dense end.
        let m = CostModel::new(
            Profile::new(
                vec![10_000.0; 5],
                vec![10_000.0; 4],
                vec![2.0; 4],
                vec![120.0; 5],
            )
            .unwrap(),
        );
        let none = Dec::none(4);
        let nosup = m.qnas_bw(0, 3);
        for ext in [Ext::Full, Ext::Left] {
            let sup = m.q(ext, QueryKind::Backward, 0, 3, &none);
            assert!(
                sup > nosup,
                "{ext}: scan {sup} must exceed no-support {nosup}"
            );
        }
        // Binary decomposition repairs it.
        for ext in [Ext::Full, Ext::Left] {
            let sup = m.q(ext, QueryKind::Backward, 0, 3, &Dec::binary(4));
            assert!(sup < nosup, "{ext} binary: {sup} vs {nosup}");
        }
        // Canonical and right cannot evaluate Q_{0,3} at all: formula 35
        // falls back to the unsupported cost.
        assert_eq!(m.q(Ext::Canonical, QueryKind::Backward, 0, 3, &none), nosup);
        assert_eq!(m.q(Ext::Right, QueryKind::Backward, 0, 3, &none), nosup);
    }

    #[test]
    fn q_dispatches_by_support() {
        let m = fig6_model();
        let dec = Dec::binary(4);
        assert_eq!(
            m.q(Ext::Canonical, QueryKind::Forward, 1, 2, &dec),
            m.qnas_fw(1, 2),
            "unsupported span falls back"
        );
        assert_eq!(
            m.q(Ext::Full, QueryKind::Forward, 1, 2, &dec),
            m.qsup_fw(Ext::Full, 1, 2, &dec)
        );
    }

    #[test]
    fn interior_entry_costs_scan_of_covering_partition() {
        let m = fig6_model();
        let dec = Dec(vec![0, 2, 4]);
        // Q_{1,4}: position 1 lies inside partition (0,2).
        let cost = m.qsup_fw(Ext::Full, 1, 4, &dec);
        assert!(
            cost >= m.ap(Ext::Full, 0, 2),
            "must include the partition scan"
        );
    }
}
