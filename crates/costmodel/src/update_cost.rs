//! Maintenance costs under the characteristic update `ins_i` —
//! `insert o into o_i.A_{i+1}` (Section 6 of the paper).
//!
//! The total cost of an update decomposes into
//!
//! 1. the object update itself (the paper prices it at 3 page accesses),
//! 2. **searching** for the partial paths `I_l` / `I_r` that the new edge
//!    connects — formula (36), whose extension-specific structure is the
//!    heart of Figures 11–13 (the full extension never searches the object
//!    representation, left-complete pays a forward search, right-complete
//!    and canonical pay backward extent scans), and
//! 3. **writing** the affected clusters of every partition's two B⁺ trees
//!    — the `aup` formula with the cluster counts `qfw` / `qbw` of
//!    Sections 6.2.1–6.2.4.

use crate::params::CostModel;
use crate::yao::yao;
use crate::{Dec, Ext};

impl CostModel {
    /// `search^i_X` (formula 36): page accesses needed to materialize the
    /// paths to connect, for an insertion at edge `(i, i+1)`.
    pub fn search_cost(&self, ext: Ext, i: usize, dec: &Dec) -> f64 {
        let n = self.n();
        debug_assert!(i < n);
        match ext {
            Ext::Canonical => {
                self.qnas_fw(i + 1, n) * self.p_no_path(i + 1)
                    + self.qsup_bw(ext, i, i + 1, dec)
                    + self.qnas_bw(0, i) * self.p_ref(i + 1, n) * self.p_no_path(i)
                    + self.qsup_fw(ext, i, i + 1, dec)
            }
            Ext::Full => self
                .qsup_fw(ext, i, i + 1, dec)
                .min(self.qsup_bw(ext, i, i + 1, dec)),
            Ext::Left => {
                self.qnas_fw(i + 1, n) * (1.0 - self.p_ref_by(0, i + 1)) * self.p_ref_by(0, i)
                    + self
                        .qsup_fw(ext, i, i + 1, dec)
                        .min(self.qsup_bw(ext, i, i + 1, dec))
            }
            Ext::Right => {
                let scan: f64 = (0..=i).map(|l| self.op(l)).sum();
                scan * (1.0 - self.p_ref(i, n)) * self.p_ref(i + 1, n)
                    + self
                        .qsup_fw(ext, i, i + 1, dec)
                        .min(self.qsup_bw(ext, i, i + 1, dec))
            }
        }
    }

    /// `qfw^i_X(i_ν, i_{ν+1})` — clusters of the forward-clustered tree of
    /// partition `(a, b)` touched by `ins_i` (Sections 6.2.1–6.2.4).
    pub fn qfw(&self, ext: Ext, i: usize, a: usize, b: usize) -> f64 {
        let n = self.n();
        match ext {
            Ext::Canonical => {
                if a <= i {
                    self.reaches_k(a, i, 1.0) * self.p_ref_by(0, a) * self.p_ref(i + 1, n)
                } else {
                    self.ref_by_k(i + 1, a, 1.0) * self.p_ref_by(0, i) * self.p_ref(a, n)
                }
            }
            Ext::Full => {
                if a <= i && i < b {
                    let mut sum = self.reaches_k(a, i, 1.0);
                    for l in a + 1..=i {
                        sum += self.p_lb(l - 1, l) * self.reaches_k(l, i, 1.0);
                    }
                    sum
                } else {
                    0.0
                }
            }
            Ext::Left => {
                if b <= i {
                    0.0
                } else if a <= i {
                    self.reaches_k(a, i, 1.0) * self.p_ref_by(0, a)
                } else {
                    self.p_lb(0, a) * self.ref_by_k(i + 1, a, 1.0) * self.p_ref_by(0, i)
                }
            }
            Ext::Right => {
                if b <= i {
                    let mut sum = self.reaches_k(a, i, 1.0);
                    for l in a + 1..b {
                        sum += self.p_lb(l - 1, l) * self.reaches_k(l, i, 1.0);
                    }
                    self.p_rb(b, n) * self.p_ref(i + 1, n) * sum
                } else if a <= i {
                    let mut sum = self.reaches_k(a, i, 1.0);
                    for l in a + 1..=i {
                        sum += self.p_lb(l - 1, l) * self.reaches_k(l, i, 1.0);
                    }
                    self.p_ref(i + 1, n) * sum
                } else {
                    0.0
                }
            }
        }
    }

    /// `qbw^i_X(i_ν, i_{ν+1})` — clusters of the backward-clustered tree.
    pub fn qbw(&self, ext: Ext, i: usize, a: usize, b: usize) -> f64 {
        let n = self.n();
        match ext {
            Ext::Canonical => {
                if b <= i {
                    self.reaches_k(b, i, 1.0) * self.p_ref_by(0, b) * self.p_ref(i + 1, n)
                } else {
                    self.ref_by_k(i + 1, b, 1.0) * self.p_ref_by(0, i) * self.p_ref(b, n)
                }
            }
            Ext::Full => {
                if a <= i && i < b {
                    let mut sum = self.ref_by_k(i + 1, b, 1.0);
                    for l in i + 2..b {
                        sum += self.p_rb(l, l + 1) * self.ref_by_k(i + 1, l, 1.0);
                    }
                    sum
                } else {
                    0.0
                }
            }
            Ext::Left => {
                if b <= i {
                    0.0
                } else if a <= i {
                    let mut sum = self.ref_by_k(i + 1, b, 1.0);
                    for l in i + 2..b {
                        sum += self.p_rb(l, l + 1) * self.ref_by_k(i + 1, l, 1.0);
                    }
                    self.p_ref_by(0, i) * sum
                } else {
                    let mut sum = self.ref_by_k(i + 1, b, 1.0);
                    for l in a + 1..b {
                        sum += self.p_rb(l, l + 1) * self.ref_by_k(i + 1, l, 1.0);
                    }
                    self.p_ref_by(0, i) * self.p_lb(0, a) * sum
                }
            }
            Ext::Right => {
                if b <= i {
                    self.p_rb(b, n) * self.reaches_k(b, i, 1.0) * self.p_ref(i + 1, n)
                } else if a <= i {
                    self.ref_by_k(i + 1, b, 1.0) * self.p_ref(b, n)
                } else {
                    0.0
                }
            }
        }
    }

    /// `aup^i_X(dec)` (Section 6.2): page accesses to rewrite the affected
    /// clusters of every partition's two trees.  Each touched cluster
    /// costs a descent through the non-leaf pages plus a read *and*
    /// write-back of its leaf pages (the ·2 factor).
    ///
    /// Partitions whose cluster count is zero contribute nothing — the
    /// paper's formula sums a flat `1 + …` per partition; we suppress the
    /// root access for partitions that are provably untouched (deviation
    /// noted in DESIGN.md).
    pub fn aup(&self, ext: Ext, i: usize, dec: &Dec) -> f64 {
        let fan = self.sys.bplus_fan();
        let mut cost = 0.0;
        for (a, b) in dec.partitions() {
            let pg = self.pg(ext, a, b);
            let ap = self.ap(ext, a, b);
            let card = self.cardinality(ext, a, b);
            let qfw = self.qfw(ext, i, a, b);
            if qfw > 0.0 {
                cost += 1.0 + yao(qfw, pg - 1.0, (pg - 1.0) * fan) + yao(qfw, ap, card) * 2.0;
            }
            let qbw = self.qbw(ext, i, a, b);
            if qbw > 0.0 {
                cost += 1.0 + yao(qbw, pg - 1.0, (pg - 1.0) * fan) + yao(qbw, ap, card) * 2.0;
            }
        }
        cost
    }

    /// Cost of updating the object representation itself: the paper prices
    /// `o_i.A_{i+1}` at 3 page accesses (Section 6).
    pub const OBJECT_UPDATE_COST: f64 = 3.0;

    /// Total cost of `ins_i` for a maintained access relation:
    /// object update + search + access-relation writes.
    pub fn update_cost(&self, ext: Ext, i: usize, dec: &Dec) -> f64 {
        Self::OBJECT_UPDATE_COST + self.search_cost(ext, i, dec) + self.aup(ext, i, dec)
    }

    /// Update cost with no access relation: just the object update.
    pub fn update_cost_nosupport(&self) -> f64 {
        Self::OBJECT_UPDATE_COST
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Profile;

    /// The Section 6.3.1 profile.
    fn fig11_model() -> CostModel {
        CostModel::new(
            Profile::new(
                vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
                vec![900.0, 4000.0, 8000.0, 20_000.0],
                vec![2.0, 2.0, 3.0, 4.0],
                vec![500.0, 400.0, 300.0, 300.0, 100.0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn full_extension_searches_nothing_in_the_data() {
        // Formula 36: full's search is entirely within the access
        // relation (a min of two supported probes).
        let m = fig11_model();
        let dec = Dec::binary(4);
        let full = m.search_cost(Ext::Full, 3, &dec);
        let qsup = m
            .qsup_fw(Ext::Full, 3, 4, &dec)
            .min(m.qsup_bw(Ext::Full, 3, 4, &dec));
        assert_eq!(full, qsup);
    }

    #[test]
    fn figure_11_shape_left_beats_right_for_ins3() {
        // Section 6.3.1: "the update is at the right-hand side of the path
        // expression, [so] the left-complete extension under binary
        // decomposition is very much superior to the right-complete".
        let m = fig11_model();
        let dec = Dec::binary(4);
        let left = m.update_cost(Ext::Left, 3, &dec);
        let right = m.update_cost(Ext::Right, 3, &dec);
        assert!(
            left * 2.0 < right,
            "left = {left:.1} should be far below right = {right:.1}"
        );
        // And canonical pays both searches.
        let can = m.update_cost(Ext::Canonical, 3, &dec);
        assert!(can > left, "canonical = {can:.1} vs left = {left:.1}");
    }

    #[test]
    fn ins0_reverses_the_ordering() {
        // Section 6.3.1: "for an update ins_0 the right-complete extension
        // would be drastically better".
        let m = fig11_model();
        let dec = Dec::binary(4);
        let left = m.update_cost(Ext::Left, 0, &dec);
        let right = m.update_cost(Ext::Right, 0, &dec);
        assert!(right < left, "right = {right:.1} vs left = {left:.1}");
    }

    #[test]
    fn figure_13_shape_object_size_hits_searching_extensions() {
        // Section 6.3.3: canonical and right-complete update costs grow
        // with object size (they search the data); left barely moves.
        let mk = |size: f64| {
            CostModel::new(
                Profile::new(
                    vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
                    vec![900.0, 4000.0, 8000.0, 20_000.0],
                    vec![2.0, 2.0, 3.0, 4.0],
                    vec![size; 5],
                )
                .unwrap(),
            )
        };
        let small = mk(100.0);
        let large = mk(800.0);
        let dec = Dec::binary(4);
        let i = 1;
        let growth = |ext: Ext| large.update_cost(ext, i, &dec) - small.update_cost(ext, i, &dec);
        assert!(growth(Ext::Canonical) > 0.0);
        assert!(growth(Ext::Right) > 0.0);
        assert!(
            growth(Ext::Canonical) > growth(Ext::Left) * 2.0,
            "canonical growth {} vs left growth {}",
            growth(Ext::Canonical),
            growth(Ext::Left)
        );
        assert_eq!(growth(Ext::Full), 0.0, "full never touches the data");
    }

    #[test]
    fn cluster_counts_are_localized_for_full() {
        // Full extension: only the partition covering (i, i+1) is updated.
        let m = fig11_model();
        let i = 2;
        for (a, b) in Dec::binary(4).partitions() {
            let qfw = m.qfw(Ext::Full, i, a, b);
            let qbw = m.qbw(Ext::Full, i, a, b);
            if a <= i && i < b {
                assert!(qfw > 0.0 && qbw > 0.0, "covering partition ({a},{b})");
            } else {
                assert_eq!(qfw, 0.0, "({a},{b})");
                assert_eq!(qbw, 0.0, "({a},{b})");
            }
        }
    }

    #[test]
    fn aup_nonnegative_and_finite_everywhere() {
        let m = fig11_model();
        for ext in Ext::ALL {
            for dec in Dec::enumerate_all(4) {
                for i in 0..4 {
                    let aup = m.aup(ext, i, &dec);
                    assert!(aup.is_finite() && aup >= 0.0, "{ext} {dec} ins_{i}: {aup}");
                    let total = m.update_cost(ext, i, &dec);
                    assert!(total >= CostModel::OBJECT_UPDATE_COST);
                }
            }
        }
    }
}
