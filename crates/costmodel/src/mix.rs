//! Operation mixes `M = (Q_mix, U_mix, P_up)` (Section 6.4.1).
//!
//! A mix is a weighted set of span queries, a weighted set of `ins_i`
//! updates, and an update probability `P_up`.  Its expected cost under a
//! given extension × decomposition is
//!
//! ```text
//! cost = (1 − P_up) · Σ w_q · Q^{i,j}_X(kind, dec)
//!        + P_up · Σ w_u · (3 + search + aup)
//! ```

use crate::params::CostModel;
use crate::{Dec, Ext};

/// Direction of a span query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// `Q_{i,j}(fw)`.
    Forward,
    /// `Q_{i,j}(bw)`.
    Backward,
}

/// One operation of a mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// A span query `Q_{i,j}(kind)`.
    Query {
        /// Direction.
        kind: QueryKind,
        /// Span start `i`.
        i: usize,
        /// Span end `j`.
        j: usize,
    },
    /// The characteristic update `ins_i`.
    Insert {
        /// Edge position `i` (the new reference goes from `t_i` to
        /// `t_{i+1}`).
        i: usize,
    },
}

impl Op {
    /// Shorthand for a backward query.
    pub fn bw(i: usize, j: usize) -> Op {
        Op::Query {
            kind: QueryKind::Backward,
            i,
            j,
        }
    }

    /// Shorthand for a forward query.
    pub fn fw(i: usize, j: usize) -> Op {
        Op::Query {
            kind: QueryKind::Forward,
            i,
            j,
        }
    }

    /// Shorthand for `ins_i`.
    pub fn ins(i: usize) -> Op {
        Op::Insert { i }
    }
}

/// An operation mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mix {
    /// Weighted queries `(w, q)`; weights should sum to 1.
    pub queries: Vec<(f64, Op)>,
    /// Weighted updates `(w, ins_i)`; weights should sum to 1.
    pub updates: Vec<(f64, Op)>,
    /// Probability that an operation is an update.
    pub p_up: f64,
}

impl Mix {
    /// Build a mix; weights are normalized defensively.
    pub fn new(queries: Vec<(f64, Op)>, updates: Vec<(f64, Op)>, p_up: f64) -> Self {
        Mix {
            queries,
            updates,
            p_up: p_up.clamp(0.0, 1.0),
        }
    }

    fn normalized(ops: &[(f64, Op)]) -> Vec<(f64, Op)> {
        let total: f64 = ops.iter().map(|(w, _)| w).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        ops.iter().map(|(w, op)| (w / total, *op)).collect()
    }
}

impl CostModel {
    /// Expected cost of one database operation from the mix under the
    /// given physical design.
    pub fn mix_cost(&self, ext: Ext, dec: &Dec, mix: &Mix) -> f64 {
        let query_cost: f64 = Mix::normalized(&mix.queries)
            .iter()
            .map(|(w, op)| match op {
                Op::Query { kind, i, j } => w * self.q(ext, *kind, *i, *j, dec),
                Op::Insert { .. } => 0.0,
            })
            .sum();
        let update_cost: f64 = Mix::normalized(&mix.updates)
            .iter()
            .map(|(w, op)| match op {
                Op::Insert { i } => w * self.update_cost(ext, *i, dec),
                Op::Query { .. } => 0.0,
            })
            .sum();
        (1.0 - mix.p_up) * query_cost + mix.p_up * update_cost
    }

    /// Expected cost of the mix with **no** access support relation:
    /// queries navigate, updates only touch the object.
    pub fn mix_cost_nosupport(&self, mix: &Mix) -> f64 {
        let query_cost: f64 = Mix::normalized(&mix.queries)
            .iter()
            .map(|(w, op)| match op {
                Op::Query { kind, i, j } => w * self.q_nosupport(*kind, *i, *j),
                Op::Insert { .. } => 0.0,
            })
            .sum();
        let update_cost = self.update_cost_nosupport();
        (1.0 - mix.p_up) * query_cost + mix.p_up * update_cost
    }

    /// Mix cost normalized against the no-support baseline (< 1 means the
    /// access relation pays off).
    pub fn mix_cost_normalized(&self, ext: Ext, dec: &Dec, mix: &Mix) -> f64 {
        let baseline = self.mix_cost_nosupport(mix);
        if baseline == 0.0 {
            return f64::INFINITY;
        }
        self.mix_cost(ext, dec, mix) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Profile;

    /// Section 6.4.2's profile and mix.
    fn fig14() -> (CostModel, Mix) {
        let model = CostModel::new(
            Profile::new(
                vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
                vec![900.0, 4000.0, 8000.0, 20_000.0],
                vec![2.0, 2.0, 3.0, 4.0],
                vec![500.0, 400.0, 300.0, 300.0, 100.0],
            )
            .unwrap(),
        );
        let mix = Mix::new(
            vec![
                (0.5, Op::bw(0, 4)),
                (0.25, Op::bw(0, 3)),
                (0.25, Op::fw(1, 2)),
            ],
            vec![(0.5, Op::ins(2)), (0.5, Op::ins(3))],
            0.5,
        );
        (model, mix)
    }

    #[test]
    fn pure_query_mix_equals_weighted_queries() {
        let (m, mut mix) = fig14();
        mix.p_up = 0.0;
        let dec = Dec::binary(4);
        let cost = m.mix_cost(Ext::Full, &dec, &mix);
        let manual = 0.5 * m.q(Ext::Full, QueryKind::Backward, 0, 4, &dec)
            + 0.25 * m.q(Ext::Full, QueryKind::Backward, 0, 3, &dec)
            + 0.25 * m.q(Ext::Full, QueryKind::Forward, 1, 2, &dec);
        assert!((cost - manual).abs() < 1e-9);
    }

    #[test]
    fn pure_update_mix_equals_weighted_updates() {
        let (m, mut mix) = fig14();
        mix.p_up = 1.0;
        let dec = Dec::binary(4);
        let cost = m.mix_cost(Ext::Left, &dec, &mix);
        let manual =
            0.5 * m.update_cost(Ext::Left, 2, &dec) + 0.5 * m.update_cost(Ext::Left, 3, &dec);
        assert!((cost - manual).abs() < 1e-9);
    }

    #[test]
    fn figure_14_shape_left_beats_full_at_low_pup() {
        // Section 6.4.2: "for an update probability less than 0.3 the
        // left-complete extension beats the full extension."  Our model
        // reproduces the query-dominated side of the figure; the relative
        // advantage of left must shrink as updates take over (the paper's
        // exact 0.3 crossover depends on unstated constants of the
        // original Lisp program — see EXPERIMENTS.md).
        let (m, mut mix) = fig14();
        let dec = Dec::binary(4);
        mix.p_up = 0.1;
        let left_low = m.mix_cost(Ext::Left, &dec, &mix);
        let full_low = m.mix_cost(Ext::Full, &dec, &mix);
        assert!(
            left_low < full_low,
            "P_up=0.1: left={left_low:.1} full={full_low:.1}"
        );
        // Both supported designs beat the same mix without support at
        // moderate update probabilities.
        for ext in [Ext::Left, Ext::Full] {
            for p_up in [0.1, 0.5] {
                mix.p_up = p_up;
                assert!(
                    m.mix_cost(ext, &dec, &mix) < m.mix_cost_nosupport(&mix),
                    "{ext} at P_up={p_up}"
                );
            }
        }
    }

    #[test]
    fn figure_14_shape_support_beats_nosupport_except_pathological_pup() {
        // The no-support break-even lies at extreme update probabilities
        // (the paper quotes 0.998 for full).
        let (m, mut mix) = fig14();
        let dec = Dec::binary(4);
        for pup in [0.1, 0.5, 0.9] {
            mix.p_up = pup;
            assert!(
                m.mix_cost(Ext::Full, &dec, &mix) < m.mix_cost_nosupport(&mix),
                "P_up={pup}"
            );
        }
        mix.p_up = 0.9999;
        assert!(
            m.mix_cost(Ext::Full, &dec, &mix) > m.mix_cost_nosupport(&mix),
            "at P_up→1 the bare object update wins"
        );
    }

    #[test]
    fn normalization_sane() {
        let (m, mix) = fig14();
        let norm = m.mix_cost_normalized(Ext::Full, &Dec::binary(4), &mix);
        assert!(
            norm > 0.0 && norm < 1.0,
            "supported mix should pay off: {norm}"
        );
    }

    #[test]
    fn weights_are_normalized_defensively() {
        let (m, _) = fig14();
        let dec = Dec::binary(4);
        let a = Mix::new(vec![(1.0, Op::bw(0, 4))], vec![(1.0, Op::ins(3))], 0.5);
        let b = Mix::new(vec![(2.0, Op::bw(0, 4))], vec![(5.0, Op::ins(3))], 0.5);
        assert!((m.mix_cost(Ext::Full, &dec, &a) - m.mix_cost(Ext::Full, &dec, &b)).abs() < 1e-9);
    }
}
