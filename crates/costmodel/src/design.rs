//! The physical-design optimizer (Section 7).
//!
//! "Based on the application characteristics the analytical model can be
//! used to compute for all (feasible) design choices the expected cost …
//! of pre-determined database usage profiles.  From this, the best suited
//! access support relation extension and decomposition can be selected."
//!
//! [`best_design`] does exactly that: it enumerates the 4 extensions ×
//! `2^{n-1}` decompositions (plus the no-support option) and returns them
//! ranked by expected mix cost.

use crate::params::CostModel;
use crate::{Dec, Ext, Mix};

/// One evaluated design choice.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignChoice {
    /// The extension, or `None` for "no access support relation".
    pub extension: Option<Ext>,
    /// The decomposition (meaningless for no-support).
    pub decomposition: Dec,
    /// Expected cost per operation of the mix (page accesses).
    pub cost: f64,
    /// Storage bytes of the non-redundant representation (0 for
    /// no-support).
    pub storage_bytes: f64,
}

impl DesignChoice {
    /// Human-readable label.
    pub fn label(&self) -> String {
        match self.extension {
            Some(ext) => format!("{ext} {}", self.decomposition),
            None => "no support".to_string(),
        }
    }
}

/// Evaluate every design choice for `mix`, cheapest first.
pub fn rank_designs(model: &CostModel, mix: &Mix) -> Vec<DesignChoice> {
    let n = model.n();
    let mut out = Vec::new();
    out.push(DesignChoice {
        extension: None,
        decomposition: Dec::none(n),
        cost: model.mix_cost_nosupport(mix),
        storage_bytes: 0.0,
    });
    for ext in Ext::ALL {
        for dec in Dec::enumerate_all(n) {
            out.push(DesignChoice {
                extension: Some(ext),
                decomposition: dec.clone(),
                cost: model.mix_cost(ext, &dec, mix),
                storage_bytes: model.total_bytes(ext, &dec),
            });
        }
    }
    out.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    out
}

/// The single cheapest design for `mix`.
pub fn best_design(model: &CostModel, mix: &Mix) -> DesignChoice {
    rank_designs(model, mix)
        .into_iter()
        .next()
        .expect("at least the no-support choice")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Profile;
    use crate::Op;

    fn model() -> CostModel {
        CostModel::new(
            Profile::new(
                vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
                vec![900.0, 4000.0, 8000.0, 20_000.0],
                vec![2.0, 2.0, 3.0, 4.0],
                vec![500.0, 400.0, 300.0, 300.0, 100.0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn enumerates_everything() {
        let m = model();
        let mix = Mix::new(vec![(1.0, Op::bw(0, 4))], vec![(1.0, Op::ins(3))], 0.3);
        let ranked = rank_designs(&m, &mix);
        assert_eq!(ranked.len(), 1 + 4 * 8);
        // Sorted ascending.
        for w in ranked.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }

    #[test]
    fn query_heavy_mix_prefers_support() {
        let m = model();
        let mix = Mix::new(vec![(1.0, Op::bw(0, 4))], vec![(1.0, Op::ins(3))], 0.05);
        let best = best_design(&m, &mix);
        assert!(
            best.extension.is_some(),
            "support must win a query-heavy mix"
        );
        assert!(best.storage_bytes > 0.0);
    }

    #[test]
    fn update_only_mix_prefers_no_support() {
        let m = model();
        let mix = Mix::new(vec![(1.0, Op::bw(0, 4))], vec![(1.0, Op::ins(3))], 1.0);
        let best = best_design(&m, &mix);
        assert_eq!(
            best.extension, None,
            "pure updates: any ASR is pure overhead"
        );
        assert_eq!(best.cost, CostModel::OBJECT_UPDATE_COST);
    }

    #[test]
    fn anchored_query_mix_prefers_left_or_canonical_family() {
        // Queries anchored at t_0 with some updates: left/canonical beat
        // right for this left-light profile.
        let m = model();
        let mix = Mix::new(
            vec![(0.6, Op::bw(0, 4)), (0.4, Op::fw(0, 4))],
            vec![(1.0, Op::ins(3))],
            0.2,
        );
        let ranked = rank_designs(&m, &mix);
        let best = &ranked[0];
        let right_best = ranked
            .iter()
            .find(|d| d.extension == Some(Ext::Right))
            .expect("right is ranked somewhere");
        assert!(best.cost < right_best.cost);
        assert_ne!(best.extension, Some(Ext::Right));
    }

    #[test]
    fn labels_render() {
        let m = model();
        let mix = Mix::new(vec![(1.0, Op::bw(0, 4))], vec![], 0.0);
        let best = best_design(&m, &mix);
        assert!(!best.label().is_empty());
    }
}
