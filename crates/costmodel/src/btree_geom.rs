//! B⁺ tree geometry of stored partitions (formulas 19–28).
//!
//! Every partition is stored in two redundant B⁺ trees (Section 5.2); the
//! model needs the tree height `ht`, the number of non-leaf pages `pg`,
//! and the expected number of leaf pages per clustering value for the
//! forward (`nlp`) and backward (`Rnlp`) clustered trees.

use crate::params::CostModel;
use crate::Ext;

impl CostModel {
    /// `ht^{i,j}_X = ⌈log_{B⁺fan}(ap)⌉` (formula 19) — tree height *not*
    /// counting the leaves, at least 1.
    pub fn ht(&self, ext: Ext, i: usize, j: usize) -> f64 {
        let ap = self.ap(ext, i, j);
        if ap <= 1.0 {
            return 1.0;
        }
        (ap.ln() / self.sys.bplus_fan().ln()).ceil().max(1.0)
    }

    /// `pg^{i,j}_X` (formula 20): non-leaf pages of the B⁺ tree.  The
    /// paper spells out the cases `ht ≤ 1` and `ht = 2`; the general form
    /// is the geometric sum `Σ_{l=1}^{ht} ⌈ap / B⁺fan^l⌉`, which
    /// specializes to both.
    pub fn pg(&self, ext: Ext, i: usize, j: usize) -> f64 {
        let ap = self.ap(ext, i, j);
        let fan = self.sys.bplus_fan();
        let ht = self.ht(ext, i, j) as usize;
        let mut pages = 0.0;
        let mut level_cap = fan;
        for _ in 0..ht {
            pages += (ap / level_cap).ceil().max(1.0);
            level_cap *= fan;
        }
        pages
    }

    /// Distinct clustering values of the *first* attribute `S_i` under
    /// extension `X` — the denominators of formulas (21)–(24).
    fn first_values(&self, ext: Ext, i: usize) -> f64 {
        match ext {
            // (21): every t_i object with a defined A_{i+1}.
            Ext::Full => self.d(i),
            // (22): as printed — d_i.
            Ext::Right => self.d(i),
            // (23): canonical rows start at objects that lie on complete
            // paths: Ref(i,n) · P_RefBy(0,i).
            // paper: writes lowercase `ref(i,n)`; `Ref(i, n)` is meant.
            Ext::Canonical => self.reaches(i, self.n()) * self.p_ref_by(0, i),
            // (24): left rows pass t_i iff reachable from t_0.
            Ext::Left => self.ref_by(0, i).max(if i == 0 { self.d(0) } else { 0.0 }),
        }
    }

    /// Distinct clustering values of the *last* attribute `S_j` — the
    /// denominators of formulas (25)–(28).
    fn last_values(&self, ext: Ext, j: usize) -> f64 {
        match ext {
            // (25): paper writes e_i; the backward tree clusters on t_j
            // values, so e_j is meant.
            Ext::Full => self.e(j),
            // (26): paper writes as_right/(PageSize·e_i); the left
            // extension's backward tree clusters t_j objects reachable
            // from t_0.
            Ext::Left => self.ref_by(0, j),
            // (27): canonical — t_j objects on complete paths.
            Ext::Canonical => self.ref_by(0, j) * self.p_ref(j, self.n()),
            // (28): right — t_j objects reaching t_n.
            Ext::Right => {
                self.reaches(j, self.n())
                    .max(if j == self.n() { self.e(j) } else { 0.0 })
            }
        }
    }

    /// `nlp^{i,j}_X` (formulas 21–24): leaf pages per value of the
    /// forward-clustered tree, `⌈as / (PageSize · #values)⌉`.
    pub fn nlp(&self, ext: Ext, i: usize, j: usize) -> f64 {
        let values = self.first_values(ext, i).max(1.0);
        (self.as_bytes(ext, i, j) / (self.sys.page_size * values))
            .ceil()
            .max(1.0)
    }

    /// `Rnlp^{i,j}_X` (formulas 25–28): leaf pages per value of the
    /// backward-clustered tree.
    pub fn rnlp(&self, ext: Ext, i: usize, j: usize) -> f64 {
        let values = self.last_values(ext, j).max(1.0);
        (self.as_bytes(ext, i, j) / (self.sys.page_size * values))
            .ceil()
            .max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Profile;

    fn sample() -> CostModel {
        CostModel::new(
            Profile::new(
                vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
                vec![900.0, 4000.0, 8000.0, 20_000.0],
                vec![2.0, 2.0, 3.0, 4.0],
                vec![500.0, 400.0, 300.0, 300.0, 100.0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn heights_are_small_and_monotone_in_pages() {
        let m = sample();
        for ext in Ext::ALL {
            let ht = m.ht(ext, 0, 4);
            assert!((1.0..=3.0).contains(&ht), "{ext}: ht = {ht}");
            // A bigger partition never has a smaller tree.
            assert!(m.ht(ext, 0, 4) >= m.ht(ext, 0, 1));
        }
    }

    #[test]
    fn pg_specializes_to_the_papers_cases() {
        let m = sample();
        for ext in Ext::ALL {
            for (a, b) in [(0, 4), (0, 1), (3, 4)] {
                let ht = m.ht(ext, a, b);
                let pg = m.pg(ext, a, b);
                let ap = m.ap(ext, a, b);
                if ht == 1.0 {
                    assert_eq!(pg, (ap / m.sys.bplus_fan()).ceil().max(1.0));
                } else if ht == 2.0 {
                    assert_eq!(pg, 1.0 + (ap / m.sys.bplus_fan()).ceil());
                }
                assert!(pg >= 1.0);
            }
        }
    }

    #[test]
    fn nlp_at_least_one_page_per_value() {
        let m = sample();
        for ext in Ext::ALL {
            for (a, b) in [(0, 4), (0, 2), (2, 4)] {
                assert!(m.nlp(ext, a, b) >= 1.0);
                assert!(m.rnlp(ext, a, b) >= 1.0);
            }
        }
    }

    #[test]
    fn dense_clusters_need_more_leaf_pages() {
        // Shrinking the value population (fewer distinct keys over the
        // same data) grows per-value leaf pages.
        let m = sample();
        // Full extension over (3,4): d_3 = 20000 values, as/PageSize tells
        // the ratio.
        let nlp = m.nlp(Ext::Full, 3, 4);
        assert!((1.0..10.0).contains(&nlp));
    }
}
