//! Storage costs for access relations (Section 4.3, formulas 13–16).

use crate::params::CostModel;
use crate::{Dec, Ext};

impl CostModel {
    /// `ats^{i,j} = OIDsize · (j − i + 1)` (formula 13): bytes per tuple of
    /// the partition `[S_i, …, S_j]`.
    pub fn ats(&self, i: usize, j: usize) -> f64 {
        self.sys.oid_size * ((j - i + 1) as f64)
    }

    /// `atpp^{i,j} = ⌊PageSize / ats⌋` (formula 14): tuples per page.
    pub fn atpp(&self, i: usize, j: usize) -> f64 {
        (self.sys.page_size / self.ats(i, j)).floor().max(1.0)
    }

    /// `as^{i,j}_X = #E · ats` (formula 15): partition bytes.
    pub fn as_bytes(&self, ext: Ext, i: usize, j: usize) -> f64 {
        self.cardinality(ext, i, j) * self.ats(i, j)
    }

    /// `ap^{i,j}_X = ⌈#E / atpp⌉` (formula 16): pages for the partition's
    /// tuples.
    pub fn ap(&self, ext: Ext, i: usize, j: usize) -> f64 {
        (self.cardinality(ext, i, j) / self.atpp(i, j)).ceil()
    }

    /// Total tuple bytes over a decomposition (the non-redundant
    /// representation plotted in Figures 4 and 5).
    pub fn total_bytes(&self, ext: Ext, dec: &Dec) -> f64 {
        dec.partitions()
            .map(|(a, b)| self.as_bytes(ext, a, b))
            .sum()
    }

    /// Total pages over a decomposition.
    pub fn total_pages(&self, ext: Ext, dec: &Dec) -> f64 {
        dec.partitions().map(|(a, b)| self.ap(ext, a, b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Profile;

    fn sample() -> CostModel {
        CostModel::new(
            Profile::new(
                vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
                vec![900.0, 4000.0, 8000.0, 20_000.0],
                vec![2.0, 2.0, 3.0, 4.0],
                vec![500.0, 400.0, 300.0, 300.0, 100.0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn tuple_geometry() {
        let m = sample();
        assert_eq!(m.ats(0, 4), 40.0);
        assert_eq!(m.atpp(0, 4), 101.0); // floor(4056/40)
        assert_eq!(m.ats(2, 3), 16.0);
        assert_eq!(m.atpp(2, 3), 253.0);
    }

    #[test]
    fn figure_4_shape_binary_decomposition_halves_storage() {
        // Section 4.4.1: "the binary decomposition reduces storage costs by
        // a factor of 2" for this profile.
        let m = sample();
        for ext in Ext::ALL {
            let none = m.total_bytes(ext, &Dec::none(4));
            let binary = m.total_bytes(ext, &Dec::binary(4));
            let factor = none / binary;
            assert!(
                (1.5..=3.0).contains(&factor),
                "{ext}: none={none:.0} binary={binary:.0} factor={factor:.2}"
            );
        }
    }

    #[test]
    fn figure_4_shape_extension_ordering() {
        // canonical < left << right < full for the Section 4.4.1 profile.
        let m = sample();
        let dec = Dec::none(4);
        let can = m.total_bytes(Ext::Canonical, &dec);
        let left = m.total_bytes(Ext::Left, &dec);
        let right = m.total_bytes(Ext::Right, &dec);
        let full = m.total_bytes(Ext::Full, &dec);
        assert!(
            can < left && left < right && right <= full,
            "can={can:.0} left={left:.0} right={right:.0} full={full:.0}"
        );
        // "drastically smaller": at least 3x between left and right here.
        assert!(right / left > 3.0, "right/left = {}", right / left);
    }

    #[test]
    fn figure_5_shape_sizes_converge_as_d_approaches_c() {
        // Section 4.4.2: as d_i -> c_i all extensions approach each other.
        let mk = |d: f64| {
            CostModel::new(
                Profile::new(vec![10_000.0; 5], vec![d; 4], vec![2.0; 4], vec![120.0; 5]).unwrap(),
            )
        };
        let sparse = mk(2500.0);
        let dense = mk(10_000.0);
        let dec = Dec::none(4);
        let spread = |m: &CostModel| {
            let sizes: Vec<f64> = Ext::ALL.iter().map(|&e| m.total_bytes(e, &dec)).collect();
            let max = sizes.iter().cloned().fold(f64::MIN, f64::max);
            let min = sizes.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        assert!(
            spread(&sparse) > spread(&dense),
            "extensions converge with density"
        );
        assert!(
            spread(&dense) < 1.6,
            "near-equal when every path is complete"
        );
        // And sizes grow with d.
        for ext in Ext::ALL {
            assert!(dense.total_bytes(ext, &dec) > sparse.total_bytes(ext, &dec));
        }
    }

    #[test]
    fn pages_round_up() {
        let m = sample();
        for ext in Ext::ALL {
            for (a, b) in Dec::binary(4).partitions() {
                let ap = m.ap(ext, a, b);
                let exact = m.cardinality(ext, a, b) / m.atpp(a, b);
                assert!(ap >= exact && ap < exact + 1.0 + 1e-9);
            }
        }
    }
}
