//! Cardinalities of access support relations (Section 4.2).
//!
//! For each extension `X` and each partition `(i, j)` of a decomposition,
//! `#E^{i,j}_X` estimates the number of tuples in the stored partition.

use crate::params::CostModel;
use crate::{Dec, Ext};

impl CostModel {
    /// `#E^{i,j}_X` — dispatch on the extension.
    pub fn cardinality(&self, ext: Ext, i: usize, j: usize) -> f64 {
        match ext {
            Ext::Canonical => self.card_canonical(i, j),
            Ext::Full => self.card_full(i, j),
            Ext::Left => self.card_left(i, j),
            Ext::Right => self.card_right(i, j),
        }
    }

    /// Canonical extension (Section 4.2.1):
    /// `#E^{i,j}_can = P_RefBy(0,i) · path(i,j) · P_Ref(j,n)`.
    /// The non-decomposed special case `#E_can = path(0,n)` falls out for
    /// `(i, j) = (0, n)`.
    pub fn card_canonical(&self, i: usize, j: usize) -> f64 {
        self.p_ref_by(0, i) * self.paths(i, j) * self.p_ref(j, self.n())
    }

    /// Full extension (Section 4.2.2):
    /// `#E^{i,j}_full = Σ_{k=1}^{j-i} Σ_{l=i}^{j-k}
    ///   P_lb(max(i,l−1), l) · path(l, l+k) · P_rb(l+k, min(j, l+k+1))`.
    pub fn card_full(&self, i: usize, j: usize) -> f64 {
        let mut total = 0.0;
        for k in 1..=(j - i) {
            for l in i..=(j - k) {
                let lb_from = if l == i { i } else { l - 1 };
                let rb_to = (l + k + 1).min(j);
                total += self.p_lb(lb_from, l) * self.paths(l, l + k) * self.p_rb(l + k, rb_to);
            }
        }
        total
    }

    /// Left-complete extension (Section 4.2.3):
    /// `#E^{i,j}_left = Σ_{k=1}^{j-i}
    ///   P_RefBy(0,i) · path(i, i+k) · P_rb(i+k, min(j, i+k+1))`.
    pub fn card_left(&self, i: usize, j: usize) -> f64 {
        let mut total = 0.0;
        for k in 1..=(j - i) {
            let rb_to = (i + k + 1).min(j);
            total += self.p_ref_by(0, i) * self.paths(i, i + k) * self.p_rb(i + k, rb_to);
        }
        total
    }

    /// Right-complete extension (Section 4.2.4):
    /// `#E^{i,j}_right = Σ_{k=1}^{j-i}
    ///   P_lb(max(i, j−k−1), j−k) · path(j−k, j) · P_Ref(j,n)`.
    pub fn card_right(&self, i: usize, j: usize) -> f64 {
        let mut total = 0.0;
        for k in 1..=(j - i) {
            let lb_from = if j > k { (j - k - 1).max(i) } else { i };
            total += self.p_lb(lb_from, j - k) * self.paths(j - k, j) * self.p_ref(j, self.n());
        }
        total
    }

    /// Total tuples across all partitions of a decomposition.
    pub fn total_cardinality(&self, ext: Ext, dec: &Dec) -> f64 {
        dec.partitions()
            .map(|(a, b)| self.cardinality(ext, a, b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Profile;

    fn sample() -> CostModel {
        CostModel::new(
            Profile::new(
                vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
                vec![900.0, 4000.0, 8000.0, 20_000.0],
                vec![2.0, 2.0, 3.0, 4.0],
                vec![500.0, 400.0, 300.0, 300.0, 100.0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn canonical_whole_chain_equals_paths_when_dense() {
        // With every object defined and connected, P_RefBy = P_Ref = 1 and
        // #E_can = path(0, n).
        let m = CostModel::new(
            Profile::new(
                vec![100.0, 100.0, 100.0],
                vec![100.0, 100.0],
                vec![1.0, 1.0],
                vec![100.0, 100.0, 100.0],
            )
            .unwrap(),
        );
        assert!((m.card_canonical(0, 2) - m.paths(0, 2)).abs() < 1e-9);
    }

    #[test]
    fn extension_size_ordering_for_the_papers_profile() {
        // Section 4.4.1: few objects on the left => canonical and left
        // drastically smaller than right and full.
        let m = sample();
        let (i, j) = (0, 4);
        let can = m.card_canonical(i, j);
        let left = m.card_left(i, j);
        let right = m.card_right(i, j);
        let full = m.card_full(i, j);
        assert!(can <= left + 1e-9, "can={can} left={left}");
        assert!(can <= right + 1e-9);
        assert!(left <= full + 1e-9, "left={left} full={full}");
        assert!(right <= full + 1e-9, "right={right} full={full}");
        assert!(
            left < right,
            "this profile favours left over right: {left} vs {right}"
        );
    }

    #[test]
    fn partition_cardinalities_are_nonnegative_and_bounded() {
        let m = sample();
        for ext in Ext::ALL {
            for dec in Dec::enumerate_all(4) {
                for (a, b) in dec.partitions() {
                    let card = m.cardinality(ext, a, b);
                    assert!(card.is_finite() && card >= 0.0, "{ext} ({a},{b}) = {card}");
                }
                assert!(m.total_cardinality(ext, &dec) >= 0.0);
            }
        }
    }

    #[test]
    fn full_partition_contains_every_sub_path_population() {
        // A single-hop partition of the full extension counts at least the
        // edges that exist there.
        let m = sample();
        let full01 = m.card_full(0, 1);
        assert!(
            full01 >= m.refs(0) * 0.99,
            "full(0,1)={full01} vs ref_0={}",
            m.refs(0)
        );
    }

    #[test]
    fn decomposition_reduces_per_partition_width_not_information() {
        // Binary decomposition has n partitions, each with positive
        // cardinality for a connected profile.
        let m = sample();
        let bin = Dec::binary(4);
        for (a, b) in bin.partitions() {
            assert!(m.cardinality(Ext::Full, a, b) > 0.0, "({a},{b})");
        }
    }
}
