//! Application and system parameters (Figure 3 of the paper).
//!
//! An application is characterized along one path expression of length `n`
//! by, for each position `i`:
//!
//! * `c_i` — total number of objects of type `t_i`,
//! * `d_i` — objects of `t_i` whose `A_{i+1}` attribute is not NULL
//!   (defined for `0 ≤ i < n`),
//! * `fan_i` — average references emanating from `A_{i+1}` of a `t_i`
//!   object (defined for `0 ≤ i < n`),
//! * `shar_i` — average number of `t_i` objects referencing the same
//!   `t_{i+1}` object; by default derived as `shar_i = d_i·fan_i /
//!   c_{i+1}`,
//! * `size_i` — average object size in bytes.
//!
//! System constants mirror `asr_pagesim`: `PageSize = 4056`, `OIDsize = 8`,
//! `PPsize = 4`, `B⁺fan = ⌊PageSize/(PPsize+OIDsize)⌋`.

use crate::error::{CostModelError, Result};

/// System-specific parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// Net page size in bytes.
    pub page_size: f64,
    /// Object identifier size in bytes.
    pub oid_size: f64,
    /// Page pointer size in bytes.
    pub pp_size: f64,
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams {
            page_size: 4056.0,
            oid_size: 8.0,
            pp_size: 4.0,
        }
    }
}

impl SystemParams {
    /// `B⁺fan = ⌊PageSize / (PPsize + OIDsize)⌋` (Figure 3).
    pub fn bplus_fan(&self) -> f64 {
        (self.page_size / (self.pp_size + self.oid_size)).floor()
    }
}

/// The application-specific characterization of one path expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Path length `n`.
    pub n: usize,
    /// `c_0 … c_n`.
    pub c: Vec<f64>,
    /// `d_0 … d_{n-1}`.
    pub d: Vec<f64>,
    /// `fan_0 … fan_{n-1}`.
    pub fan: Vec<f64>,
    /// `size_0 … size_n` (bytes).
    pub size: Vec<f64>,
    /// Optional user-supplied `shar_0 … shar_{n-1}`; derived when absent.
    pub shar: Option<Vec<f64>>,
}

impl Profile {
    /// Build and validate a profile with derived sharing.
    pub fn new(c: Vec<f64>, d: Vec<f64>, fan: Vec<f64>, size: Vec<f64>) -> Result<Self> {
        let profile = Profile {
            n: c.len().saturating_sub(1),
            c,
            d,
            fan,
            size,
            shar: None,
        };
        profile.validate()?;
        Ok(profile)
    }

    /// Validate vector lengths and value ranges.
    pub fn validate(&self) -> Result<()> {
        let n = self.n;
        if n == 0 {
            return Err(CostModelError::InvalidProfile(
                "path length must be >= 1".into(),
            ));
        }
        let check_len = |name: &str, len: usize, want: usize| {
            if len != want {
                Err(CostModelError::InvalidProfile(format!(
                    "{name} has {len} entries, expected {want}"
                )))
            } else {
                Ok(())
            }
        };
        check_len("c", self.c.len(), n + 1)?;
        check_len("d", self.d.len(), n)?;
        check_len("fan", self.fan.len(), n)?;
        check_len("size", self.size.len(), n + 1)?;
        if let Some(shar) = &self.shar {
            check_len("shar", shar.len(), n)?;
        }
        for (i, &c) in self.c.iter().enumerate() {
            if c < 0.0 || !c.is_finite() {
                return Err(CostModelError::InvalidProfile(format!("c_{i} = {c}")));
            }
        }
        for i in 0..n {
            if self.d[i] < 0.0 || self.d[i] > self.c[i] {
                return Err(CostModelError::InvalidProfile(format!(
                    "d_{i} = {} outside [0, c_{i} = {}]",
                    self.d[i], self.c[i]
                )));
            }
            if self.fan[i] < 0.0 || !self.fan[i].is_finite() {
                return Err(CostModelError::InvalidProfile(format!(
                    "fan_{i} = {}",
                    self.fan[i]
                )));
            }
        }
        for (i, &s) in self.size.iter().enumerate() {
            if s <= 0.0 || !s.is_finite() {
                return Err(CostModelError::InvalidProfile(format!("size_{i} = {s}")));
            }
        }
        Ok(())
    }
}

/// A profile bound to system parameters, with the derived quantities of
/// Figure 3 memoized on demand.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// The application profile.
    pub profile: Profile,
    /// The system parameters.
    pub sys: SystemParams,
}

impl CostModel {
    /// Bind a profile to the default system parameters.
    pub fn new(profile: Profile) -> Self {
        CostModel {
            profile,
            sys: SystemParams::default(),
        }
    }

    /// Path length `n`.
    pub fn n(&self) -> usize {
        self.profile.n
    }

    /// `c_i`.
    pub fn c(&self, i: usize) -> f64 {
        self.profile.c[i]
    }

    /// `d_i` (0 for `i = n`, where it is undefined — "—" in the paper's
    /// tables).
    pub fn d(&self, i: usize) -> f64 {
        if i < self.profile.d.len() {
            self.profile.d[i]
        } else {
            0.0
        }
    }

    /// `fan_i`.
    pub fn fan(&self, i: usize) -> f64 {
        if i < self.profile.fan.len() {
            self.profile.fan[i]
        } else {
            0.0
        }
    }

    /// `size_i`.
    pub fn size(&self, i: usize) -> f64 {
        self.profile.size[i]
    }

    /// `shar_i` — user value, or the Figure 3 default
    /// `shar_i = d_i·fan_i / c_{i+1}`.
    ///
    /// The derived value is clamped to at least 1: a referenced object is
    /// referenced by at least one object, and without the clamp the
    /// derived `e_{i+1} = d_i·fan_i / shar_i` would claim more referenced
    /// objects than there are references.
    pub fn shar(&self, i: usize) -> f64 {
        let v = match &self.profile.shar {
            Some(shar) => shar[i],
            None => {
                if self.c(i + 1) == 0.0 {
                    return 1.0;
                }
                self.d(i) * self.fan(i) / self.c(i + 1)
            }
        };
        v.max(1.0) // paper: shar_i = d_i·fan_i/c_{i+1} (may fall below 1)
    }

    /// `e_i = d_{i-1}·fan_{i-1} / shar_{i-1}` — objects of `t_i` referenced
    /// from `t_{i-1}` (Figure 3), clamped to `c_i`.
    pub fn e(&self, i: usize) -> f64 {
        if i == 0 {
            return self.c(0);
        }
        let refs = self.d(i - 1) * self.fan(i - 1);
        (refs / self.shar(i - 1)).min(self.c(i))
    }

    /// `ref_i = d_i·fan_i` — references emanating from `t_i` objects.
    pub fn refs(&self, i: usize) -> f64 {
        self.d(i) * self.fan(i)
    }

    /// `spread_i = d_i / e_{i+1}` (Figure 3).
    pub fn spread(&self, i: usize) -> f64 {
        let e = self.e(i + 1);
        if e == 0.0 {
            0.0
        } else {
            self.d(i) / e
        }
    }

    /// `P_{A_i} = d_i / c_i` (formula 1): probability that a `t_i` object
    /// has a defined `A_{i+1}`.
    pub fn p_a(&self, i: usize) -> f64 {
        if self.c(i) == 0.0 {
            0.0
        } else {
            (self.d(i) / self.c(i)).clamp(0.0, 1.0)
        }
    }

    /// `P_{H_i} = e_i / c_i` (formula 2): probability that a particular
    /// `t_i` object is hit by a reference from `t_{i-1}`.
    pub fn p_h(&self, i: usize) -> f64 {
        if self.c(i) == 0.0 {
            0.0
        } else {
            (self.e(i) / self.c(i)).clamp(0.0, 1.0)
        }
    }

    /// `opp_i = ⌊PageSize / size_i⌋` (formula 17), at least 1.
    pub fn opp(&self, i: usize) -> f64 {
        (self.sys.page_size / self.size(i)).floor().max(1.0)
    }

    /// `op_i = ⌈c_i / opp_i⌉` (formula 18): pages storing all `t_i`
    /// objects.
    pub fn op(&self, i: usize) -> f64 {
        (self.c(i) / self.opp(i)).ceil()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Section 4.4.1 profile.
    fn sample() -> CostModel {
        CostModel::new(
            Profile::new(
                vec![1000.0, 5000.0, 10_000.0, 50_000.0, 100_000.0],
                vec![900.0, 4000.0, 8000.0, 20_000.0],
                vec![2.0, 2.0, 3.0, 4.0],
                vec![500.0, 400.0, 300.0, 300.0, 100.0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn system_defaults_match_figure_3() {
        let sys = SystemParams::default();
        assert_eq!(sys.page_size, 4056.0);
        assert_eq!(sys.bplus_fan(), 338.0);
    }

    #[test]
    fn derived_quantities() {
        let m = sample();
        assert_eq!(m.n(), 4);
        assert_eq!(m.p_a(0), 0.9);
        assert_eq!(m.refs(0), 1800.0);
        // Derived shar clamps at 1 => e_1 = min(c_1, 1800).
        assert_eq!(m.e(1), 1800.0);
        assert!(m.p_h(1) > 0.0 && m.p_h(1) <= 1.0);
        // d_3·fan_3 = 80000 <= c_4 = 100000 => e_4 = 80000.
        assert_eq!(m.e(4), 80_000.0);
    }

    #[test]
    fn object_page_math() {
        let m = sample();
        assert_eq!(m.opp(0), 8.0); // 4056/500
        assert_eq!(m.op(0), 125.0); // 1000/8
        assert_eq!(m.opp(4), 40.0);
        assert_eq!(m.op(4), 2500.0);
    }

    #[test]
    fn explicit_shar_respected() {
        let mut m = sample();
        m.profile.shar = Some(vec![3.0, 1.0, 1.0, 2.0]);
        assert_eq!(m.shar(0), 3.0);
        assert_eq!(m.e(1), 600.0);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        assert!(Profile::new(vec![10.0], vec![], vec![], vec![100.0]).is_err());
        assert!(Profile::new(
            vec![10.0, 10.0],
            vec![20.0], // d_0 > c_0
            vec![1.0],
            vec![100.0, 100.0],
        )
        .is_err());
        assert!(Profile::new(
            vec![10.0, 10.0],
            vec![5.0],
            vec![1.0],
            vec![0.0, 100.0], // zero size
        )
        .is_err());
        assert!(Profile::new(
            vec![10.0, 10.0, 10.0],
            vec![5.0], // wrong length
            vec![1.0, 1.0],
            vec![100.0, 100.0, 100.0],
        )
        .is_err());
    }
}
