//! Yao's block-access estimate.
//!
//! Yao (CACM 1977) determined the expected number of pages touched when
//! retrieving `k` out of `n` records distributed over `m` pages of `n/m`
//! records each:
//!
//! ```text
//! y(k, m, n) = ⌈ m · (1 − Π_{i=1}^{k} (n·(1−1/m) − i + 1) / (n − i + 1)) ⌉
//! ```
//!
//! The paper uses this function pervasively (Section 5.6 onward).

/// Yao's function `y(k, m, n)` in pages.
///
/// Conventions for the degenerate inputs the cost formulas produce:
/// `k = 0` or `m = 0` or `n = 0` costs nothing; `k ≥ n` touches all `m`
/// pages; integer expectations are ceiled per the paper.  The cost
/// formulas routinely produce *fractional* expected record counts
/// (e.g. cluster counts weighted by probabilities), which are handled by
/// linear interpolation between the neighbouring integer `k` values —
/// without it, an expected 0.4 clusters would wrongly round to either
/// nothing or a whole page.
pub fn yao(k: f64, m: f64, n: f64) -> f64 {
    if k <= 0.0 || m <= 0.0 || n <= 0.0 {
        return 0.0;
    }
    let k = k.min(n);
    if m <= 1.0 {
        return 1.0;
    }
    let lo = k.floor();
    let hi = k.ceil();
    if lo == hi {
        return yao_int(k as u64, m, n);
    }
    let frac = k - lo;
    let y_lo = if lo == 0.0 {
        0.0
    } else {
        yao_int(lo as u64, m, n)
    };
    let y_hi = yao_int(hi as u64, m, n);
    y_lo + frac * (y_hi - y_lo)
}

/// Yao's function for integer `k ≥ 1`.
fn yao_int(k: u64, m: f64, n: f64) -> f64 {
    // Π_{i=1}^{k} (n(1 - 1/m) - i + 1) / (n - i + 1), with early exit once
    // the running product underflows (the result is then exactly m pages).
    let free = n * (1.0 - 1.0 / m);
    let mut product = 1.0f64;
    for i in 1..=k {
        let i = i as f64;
        let numer = free - i + 1.0;
        if numer <= 0.0 {
            product = 0.0;
            break;
        }
        product *= numer / (n - i + 1.0);
        if product < 1e-12 {
            product = 0.0;
            break;
        }
    }
    // The 1e-9 slack keeps exact integer expectations (e.g. k = 1 on a
    // uniform file => exactly 1 page) from ceiling up due to rounding.
    (m * (1.0 - product) - 1e-9).ceil().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_inputs() {
        assert_eq!(yao(0.0, 10.0, 100.0), 0.0);
        assert_eq!(yao(5.0, 0.0, 100.0), 0.0);
        assert_eq!(yao(5.0, 10.0, 0.0), 0.0);
        assert_eq!(
            yao(5.0, 1.0, 100.0),
            1.0,
            "a single page is always 1 access"
        );
    }

    #[test]
    fn retrieving_everything_touches_all_pages() {
        assert_eq!(yao(100.0, 10.0, 100.0), 10.0);
        assert_eq!(yao(500.0, 10.0, 100.0), 10.0, "k is clamped to n");
    }

    #[test]
    fn single_record_costs_one_page() {
        assert_eq!(yao(1.0, 13.0, 100.0), 1.0);
    }

    #[test]
    fn monotone_in_k() {
        let mut prev = 0.0;
        for k in 0..100 {
            let y = yao(k as f64, 10.0, 100.0);
            assert!(y >= prev, "y must not decrease with k");
            assert!(y <= 10.0);
            prev = y;
        }
    }

    #[test]
    fn known_value() {
        // 10 of 100 records over 10 pages of 10: expected pages
        // = 10(1 - Π (90-i+1)/(100-i+1)) ≈ 10(1 - 0.330) ≈ 6.7 -> 7.
        let y = yao(10.0, 10.0, 100.0);
        assert_eq!(y, 7.0);
    }

    #[test]
    fn sparse_selection_is_cheap() {
        // 2 of 1,000,000 records over 1000 pages: at most 2 pages.
        assert!(yao(2.0, 1000.0, 1_000_000.0) <= 2.0);
    }
}
