//! # asr-costmodel — the paper's analytical cost model
//!
//! Kemper & Moerkotte evaluate access support relations entirely
//! analytically: a cost model (originally "fully implemented as a Lisp
//! program", Section 7) that predicts storage sizes, query costs and
//! update costs in **secondary-storage page accesses**, parameterized by an
//! application profile (Figure 3).  This crate is that program,
//! reimplemented formula-by-formula:
//!
//! * derived probabilities and reachability counts `P_A, P_H, RefBy, Ref,
//!   P_RefBy, P_Ref, path, P_lb, P_rb` (formulas 1-12, 29-30) —
//!   [`stats`];
//! * Yao's block-access function `y(k, m, n)` — [`yao()`](yao());
//! * access-relation cardinalities `#E^{i,j}_X` for all four extensions
//!   under arbitrary decompositions (Section 4.2) — [`cardinality`];
//! * storage costs `ats, atpp, as, ap` (formulas 13-16) and B⁺ tree
//!   geometry `ht, pg, nlp, Rnlp` (formulas 19-28) — [`storage`] and
//!   [`btree_geom`];
//! * query costs with and without access support (formulas 31-35) —
//!   [`query_cost`];
//! * update costs: extension-specific search (formula 36), cluster counts
//!   `qfw / qbw` (Section 6.2) and the write cost `aup` — [`update_cost`];
//! * operation mixes `M = (Q_mix, U_mix, P_up)` (Section 6.4) — [`mix`];
//! * the physical-design optimizer the paper motivates in Section 7 —
//!   [`design`];
//! * every application profile used in the paper's experiments —
//!   [`profiles`].
//!
//! Deliberate repairs of typographical slips in the paper's formulas are
//! marked with `// paper:` comments at the affected lines and summarized
//! in DESIGN.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree_geom;
pub mod cardinality;
pub mod design;
pub mod error;
pub mod mix;
pub mod params;
pub mod profiles;
pub mod query_cost;
pub mod stats;
pub mod storage;
pub mod update_cost;
pub mod yao;

pub use design::{best_design, DesignChoice};
pub use error::{CostModelError, Result};
pub use mix::{Mix, Op, QueryKind};
pub use params::{CostModel, Profile, SystemParams};
pub use yao::yao;

/// The four extensions, re-exported for convenience so downstream code can
/// depend on one crate for analytical work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ext {
    /// Canonical extension (complete paths only).
    Canonical,
    /// Full extension (all partial paths).
    Full,
    /// Left-complete extension.
    Left,
    /// Right-complete extension.
    Right,
}

impl Ext {
    /// All extensions in the paper's order.
    pub const ALL: [Ext; 4] = [Ext::Canonical, Ext::Full, Ext::Left, Ext::Right];

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Ext::Canonical => "canonical",
            Ext::Full => "full",
            Ext::Left => "left",
            Ext::Right => "right",
        }
    }

    /// Formula (35): does this extension support span `Q_{i,j}` on a path
    /// of length `n`?
    pub fn supports(self, i: usize, j: usize, n: usize) -> bool {
        match self {
            Ext::Canonical => i == 0 && j == n,
            Ext::Full => true,
            Ext::Left => i == 0,
            Ext::Right => j == n,
        }
    }
}

impl std::fmt::Display for Ext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A decomposition in the analytical model: the cut points
/// `(0, i_1, …, n)` over path positions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dec(pub Vec<usize>);

impl Dec {
    /// The trivial decomposition `(0, n)`.
    pub fn none(n: usize) -> Self {
        Dec(vec![0, n])
    }

    /// The binary decomposition `(0, 1, …, n)`.
    pub fn binary(n: usize) -> Self {
        Dec((0..=n).collect())
    }

    /// Partitions `(i_ν, i_{ν+1})`.
    pub fn partitions(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.0.windows(2).map(|w| (w[0], w[1]))
    }

    /// All `2^{n-1}` decompositions of a length-`n` path.
    pub fn enumerate_all(n: usize) -> Vec<Dec> {
        let interior = n - 1;
        (0u64..(1 << interior))
            .map(|mask| {
                let mut cuts = vec![0];
                for bit in 0..interior {
                    if mask & (1 << bit) != 0 {
                        cuts.push(bit + 1);
                    }
                }
                cuts.push(n);
                Dec(cuts)
            })
            .collect()
    }
}

impl std::fmt::Display for Dec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_support_matrix() {
        assert!(Ext::Canonical.supports(0, 4, 4));
        assert!(!Ext::Canonical.supports(0, 3, 4));
        assert!(Ext::Full.supports(1, 2, 4));
        assert!(Ext::Left.supports(0, 2, 4) && !Ext::Left.supports(1, 4, 4));
        assert!(Ext::Right.supports(2, 4, 4) && !Ext::Right.supports(0, 3, 4));
    }

    #[test]
    fn dec_enumeration() {
        assert_eq!(Dec::enumerate_all(4).len(), 8);
        assert_eq!(Dec::binary(4).to_string(), "(0,1,2,3,4)");
        assert_eq!(Dec::none(4).partitions().count(), 1);
    }
}
