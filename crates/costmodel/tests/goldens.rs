//! Golden regression values for the analytical cost model.
//!
//! These numbers are the model's outputs on the paper's application
//! profiles at the time the reproduction was validated (see
//! EXPERIMENTS.md).  They are *regression anchors*: any change to a cost
//! formula that moves one of these shows up here first, so accidental
//! drift cannot silently invalidate the figure reproductions.

use asr_costmodel::{profiles, Dec, Ext, QueryKind};

fn close(actual: f64, golden: f64, what: &str) {
    let tolerance = (golden.abs() * 1e-9).max(1e-9);
    assert!(
        (actual - golden).abs() <= tolerance,
        "{what}: {actual} deviates from golden {golden}"
    );
}

#[test]
fn figure4_storage_goldens() {
    let m = profiles::fig4_profile();
    let none = Dec::none(4);
    let binary = Dec::binary(4);
    close(m.total_bytes(Ext::Canonical, &none), 442_368.0, "can/none");
    close(m.total_bytes(Ext::Left, &none), 645_696.0, "left/none");
    close(m.total_bytes(Ext::Right, &none), 3_200_000.0, "right/none");
    close(m.total_bytes(Ext::Full, &none), 3_854_400.0, "full/none");
    close(
        m.total_bytes(Ext::Canonical, &binary),
        210_437.31345846382,
        "can/binary",
    );
    close(
        m.total_bytes(Ext::Full, &binary),
        1_820_800.0,
        "full/binary",
    );
}

#[test]
fn figure6_query_goldens() {
    let m = profiles::fig6_profile();
    close(m.qnas_bw(0, 4), 371.0, "no support bw");
    close(m.qnas_fw(0, 4), 15.0, "no support fw");
    for ext in Ext::ALL {
        close(m.qsup_bw(ext, 0, 4, &Dec::binary(4)), 8.0, ext.name());
        close(m.qsup_bw(ext, 0, 4, &Dec::none(4)), 2.0, ext.name());
    }
}

#[test]
fn figure8_interior_span_goldens() {
    let m = profiles::fig8_profile(10_000.0);
    close(m.qnas_bw(0, 3), 912.0, "no support");
    close(
        m.q(Ext::Full, QueryKind::Backward, 0, 3, &Dec::none(4)),
        1585.0,
        "full/none",
    );
    close(
        m.q(Ext::Full, QueryKind::Backward, 0, 3, &Dec::binary(4)),
        10.0,
        "full/binary",
    );
}

#[test]
fn figure11_update_goldens() {
    let m = profiles::fig11_profile();
    let dec = Dec::binary(4);
    close(
        m.update_cost(Ext::Left, 3, &dec),
        7.412540161836285,
        "left ins_3",
    );
    close(m.update_cost(Ext::Full, 3, &dec), 11.0, "full ins_3");
    close(
        m.update_cost(Ext::Right, 3, &dec),
        3167.1916962966397,
        "right ins_3",
    );
    close(
        m.update_cost(Ext::Canonical, 3, &dec),
        1247.426968924084,
        "canonical ins_3",
    );
}

#[test]
fn figure14_breakeven_golden() {
    // The headline agreement with the paper: no-support break-even for the
    // full extension at P_up ≈ 0.997 (paper: 0.998).
    let m = profiles::fig14_profile();
    let dec = Dec::binary(4);
    let mut break_even = None;
    for step in 0..=1000 {
        let p_up = step as f64 / 1000.0;
        let mix = profiles::fig14_mix(p_up);
        if m.mix_cost(Ext::Full, &dec, &mix) >= m.mix_cost_nosupport(&mix) {
            break_even = Some(p_up);
            break;
        }
    }
    assert_eq!(break_even, Some(0.997));
}

#[test]
fn figure17_crossover_golden() {
    let m = profiles::fig17_profile();
    let d035 = Dec(vec![0, 3, 5]);
    let mut crossover = None;
    for step in 0..=10_000 {
        let p_up = step as f64 / 100_000.0;
        let mix = profiles::fig17_mix(p_up);
        if m.mix_cost(Ext::Right, &d035, &mix) >= m.mix_cost(Ext::Full, &d035, &mix) {
            crossover = Some(p_up);
            break;
        }
    }
    let crossover = crossover.expect("right must eventually lose");
    assert!(
        (0.01..0.05).contains(&crossover),
        "right/full crossover at {crossover} (paper's regime: ~0.005)"
    );
}

#[test]
fn reachability_goldens() {
    let m = profiles::fig4_profile();
    close(m.paths(0, 4), 11_059.2, "path(0,4)");
    close(m.ref_by(0, 2), 2_418.840_591_124_368_5, "RefBy(0,2)");
    close(m.reaches(0, 4), 593.643_312_271_072_4, "Ref(0,4)");
    close(m.e(1), 1800.0, "e_1");
    close(m.e(4), 80_000.0, "e_4");
}
