//! Deterministic, dependency-free stand-in for the subset of the `rand` 0.8
//! API this workspace uses.
//!
//! The build environment is fully offline (no registry access), so the
//! external `rand` crate is replaced by this local implementation exposing
//! the same names: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. The generator is splitmix64, which passes
//! the statistical bar needed for workload generation (the only consumer);
//! it is *not* the upstream algorithm, so seeded sequences differ from real
//! `rand`, but all in-repo consumers only rely on determinism per seed.

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A half-open range a value can be drawn from uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Map a `u64` to `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// splitmix64 — small, fast, and deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// The workspace only needs seeded reproducibility, so the "standard"
    /// generator is the same algorithm.
    pub type StdRng = SmallRng;
}

pub mod seq {
    use super::RngCore;

    /// Mirror of `rand::seq::SliceRandom`, restricted to `shuffle`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_sequences_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let a_run: Vec<usize> = (0..32).map(|_| a.gen_range(0..1000)).collect();
        let c_run: Vec<usize> = (0..32).map(|_| c.gen_range(0..1000)).collect();
        assert_ne!(a_run, c_run);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
