//! Object instances.
//!
//! An object instance is a triple `(i, v, t)` where `i` is the object
//! identifier, `v` the object value and `t` the type of the object
//! (Section 2.2 of the paper).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::oid::Oid;
use crate::types::TypeId;
use crate::value::Value;

/// The value part `v` of an object instance — structured according to the
/// outermost type constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectBody {
    /// Tuple object: a mapping from attribute names to values.  Attributes
    /// not present in the map are `NULL` (they are materialized lazily).
    Tuple(BTreeMap<String, Value>),
    /// Set object: an unordered, duplicate-free collection.
    Set(BTreeSet<Value>),
    /// List object: an ordered collection (duplicates allowed).
    List(Vec<Value>),
}

impl ObjectBody {
    /// Structure name for diagnostics ("tuple" / "set" / "list").
    pub fn structure(&self) -> &'static str {
        match self {
            ObjectBody::Tuple(_) => "tuple",
            ObjectBody::Set(_) => "set",
            ObjectBody::List(_) => "list",
        }
    }

    /// Number of elements (set/list) or non-NULL attributes (tuple).
    pub fn len(&self) -> usize {
        match self {
            ObjectBody::Tuple(m) => m.values().filter(|v| !v.is_null()).count(),
            ObjectBody::Set(s) => s.len(),
            ObjectBody::List(l) => l.len(),
        }
    }

    /// `true` when [`ObjectBody::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An object instance `(i, v, t)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// Invariant identity.
    pub oid: Oid,
    /// The type the object was instantiated from.
    pub ty: TypeId,
    /// The (mutable) value.
    pub body: ObjectBody,
}

impl Object {
    /// A fresh tuple object with all attributes `NULL`.
    pub fn new_tuple(oid: Oid, ty: TypeId) -> Self {
        Object {
            oid,
            ty,
            body: ObjectBody::Tuple(BTreeMap::new()),
        }
    }

    /// A fresh, empty set object.
    pub fn new_set(oid: Oid, ty: TypeId) -> Self {
        Object {
            oid,
            ty,
            body: ObjectBody::Set(BTreeSet::new()),
        }
    }

    /// A fresh, empty list object.
    pub fn new_list(oid: Oid, ty: TypeId) -> Self {
        Object {
            oid,
            ty,
            body: ObjectBody::List(Vec::new()),
        }
    }

    /// Attribute value, treating absent attributes as `NULL`.
    pub fn attribute(&self, name: &str) -> &Value {
        match &self.body {
            ObjectBody::Tuple(attrs) => attrs.get(name).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }

    /// Iterate over the elements of a set or list object.
    pub fn elements(&self) -> Box<dyn Iterator<Item = &Value> + '_> {
        match &self.body {
            ObjectBody::Set(s) => Box::new(s.iter()),
            ObjectBody::List(l) => Box::new(l.iter()),
            ObjectBody::Tuple(_) => Box::new(std::iter::empty()),
        }
    }

    /// All OIDs this object references directly (attribute values and
    /// set/list elements that are references).
    pub fn referenced_oids(&self) -> Vec<Oid> {
        match &self.body {
            ObjectBody::Tuple(attrs) => attrs.values().filter_map(Value::as_ref_oid).collect(),
            ObjectBody::Set(s) => s.iter().filter_map(Value::as_ref_oid).collect(),
            ObjectBody::List(l) => l.iter().filter_map(Value::as_ref_oid).collect(),
        }
    }

    /// Approximate stored size of the object's value in bytes (used as the
    /// default when no per-type `size_i` is configured in the simulator).
    pub fn stored_size(&self) -> usize {
        let payload: usize = match &self.body {
            ObjectBody::Tuple(attrs) => attrs.iter().map(|(k, v)| k.len() + v.stored_size()).sum(),
            ObjectBody::Set(s) => s.iter().map(Value::stored_size).sum(),
            ObjectBody::List(l) => l.iter().map(Value::stored_size).sum(),
        };
        // OID + type tag overhead.
        payload + 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> Oid {
        Oid::from_raw(n)
    }

    #[test]
    fn fresh_tuple_attributes_are_null() {
        let o = Object::new_tuple(oid(1), TypeId::from_index(0));
        assert!(o.attribute("anything").is_null());
        assert_eq!(o.body.len(), 0);
        assert!(o.body.is_empty());
    }

    #[test]
    fn elements_of_tuple_is_empty() {
        let o = Object::new_tuple(oid(1), TypeId::from_index(0));
        assert_eq!(o.elements().count(), 0);
    }

    #[test]
    fn referenced_oids_finds_refs_everywhere() {
        let mut o = Object::new_tuple(oid(1), TypeId::from_index(0));
        if let ObjectBody::Tuple(attrs) = &mut o.body {
            attrs.insert("a".into(), Value::Ref(oid(7)));
            attrs.insert("b".into(), Value::Integer(3));
        }
        assert_eq!(o.referenced_oids(), vec![oid(7)]);

        let mut s = Object::new_set(oid(2), TypeId::from_index(1));
        if let ObjectBody::Set(set) = &mut s.body {
            set.insert(Value::Ref(oid(8)));
            set.insert(Value::Ref(oid(9)));
        }
        assert_eq!(s.referenced_oids(), vec![oid(8), oid(9)]);
    }

    #[test]
    fn stored_size_grows_with_content() {
        let empty = Object::new_tuple(oid(1), TypeId::from_index(0));
        let mut full = empty.clone();
        if let ObjectBody::Tuple(attrs) = &mut full.body {
            attrs.insert("Name".into(), Value::string("R2D2"));
        }
        assert!(full.stored_size() > empty.stored_size());
    }

    #[test]
    fn structure_names() {
        assert_eq!(
            Object::new_tuple(oid(1), TypeId::from_index(0))
                .body
                .structure(),
            "tuple"
        );
        assert_eq!(
            Object::new_set(oid(1), TypeId::from_index(0))
                .body
                .structure(),
            "set"
        );
        assert_eq!(
            Object::new_list(oid(1), TypeId::from_index(0))
                .body
                .structure(),
            "list"
        );
    }
}
