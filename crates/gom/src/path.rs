//! Path expressions (Definition 3.1 of the paper).
//!
//! A path expression `t0.A1.….An` on an anchor type `t0` is valid iff for
//! each `1 ≤ i ≤ n` one of:
//!
//! 1. `t_{i-1}` is a tuple type with an attribute `A_i: t_i`
//!    (a *single-valued* step), or
//! 2. `t_{i-1}` has an attribute `A_i: t'_i` where `t'_i is {t_i}`
//!    (a **set occurrence** at `A_i`).
//!
//! `t_{i-1}` is the *domain* type of `A_i` and `t_i` its *range* type.
//! A path without set occurrences is called *linear*.  Power-sets (a set
//! attribute whose element type is itself a set) are not permitted.
//!
//! The access support relation for a path with `k` set occurrences has arity
//! `n + k + 1`: each set occurrence contributes an extra column holding the
//! set object's OID (the paper's `S_{i+k(i)}` indexing, Definition 3.2).

use std::fmt;

use crate::atomic::AtomicType;
use crate::error::{GomError, Result};
use crate::schema::Schema;
use crate::types::{TypeId, TypeRef};

/// One validated step `A_i` of a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// The attribute name `A_i`.
    pub attr: String,
    /// The domain type `t_{i-1}` (always a tuple type).
    pub domain: TypeId,
    /// For a set occurrence, the intermediate set type `t'_i`.
    pub set_type: Option<TypeId>,
    /// The range `t_i`: a named type, or an atomic type (only possible on
    /// the final step).
    pub range: TypeRef,
}

impl PathStep {
    /// `true` iff this step traverses a set-valued attribute.
    pub fn is_set_occurrence(&self) -> bool {
        self.set_type.is_some()
    }
}

/// What a relation column of the access support relation holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnDomain {
    /// OIDs of instances of a named type.
    Oids(TypeId),
    /// Atomic attribute values (only the last column of a value-terminated
    /// path).
    Values(AtomicType),
}

/// A validated path expression `t0.A1.….An`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathExpression {
    anchor: TypeId,
    anchor_name: String,
    steps: Vec<PathStep>,
    rendered: String,
}

impl PathExpression {
    /// Validate a path given by the anchor type name and attribute names.
    pub fn new<'a>(
        schema: &Schema,
        anchor: &str,
        attrs: impl IntoIterator<Item = &'a str>,
    ) -> Result<Self> {
        let anchor_id = schema.require(anchor)?;
        if !schema.def(anchor_id)?.kind.is_tuple() {
            return Err(GomError::InvalidPath(format!(
                "anchor type `{anchor}` must be tuple-structured"
            )));
        }
        let mut steps = Vec::new();
        let mut domain = anchor_id;
        let mut rendered = anchor.to_string();
        let mut attrs = attrs.into_iter().peekable();
        if attrs.peek().is_none() {
            return Err(GomError::InvalidPath(
                "a path needs at least one attribute".into(),
            ));
        }
        while let Some(attr) = attrs.next() {
            rendered.push('.');
            rendered.push_str(attr);
            let declared = schema.attribute_type(domain, attr)?;
            let step = match declared {
                TypeRef::Atomic(a) => {
                    if attrs.peek().is_some() {
                        return Err(GomError::InvalidPath(format!(
                            "attribute `{attr}` is atomic ({}) and cannot be navigated further",
                            a.name()
                        )));
                    }
                    PathStep {
                        attr: attr.into(),
                        domain,
                        set_type: None,
                        range: declared,
                    }
                }
                TypeRef::Named(target) => {
                    let target_def = schema.def(target)?;
                    if target_def.kind.is_tuple() {
                        PathStep {
                            attr: attr.into(),
                            domain,
                            set_type: None,
                            range: TypeRef::Named(target),
                        }
                    } else if target_def.kind.is_set() || target_def.kind.is_list() {
                        // A set occurrence at A_i.  (Lists are treated like
                        // sets for access support — Section 2.1.)
                        let element = target_def.kind.element().expect("set/list has element");
                        match element {
                            TypeRef::Named(elem_id) => {
                                let elem_def = schema.def(elem_id)?;
                                if !elem_def.kind.is_tuple() {
                                    return Err(GomError::InvalidPath(format!(
                                        "power-sets are not permitted: `{attr}` is a collection \
                                         of the non-tuple type `{}`",
                                        schema.name(elem_id)
                                    )));
                                }
                                PathStep {
                                    attr: attr.into(),
                                    domain,
                                    set_type: Some(target),
                                    range: TypeRef::Named(elem_id),
                                }
                            }
                            TypeRef::Atomic(a) => {
                                if attrs.peek().is_some() {
                                    return Err(GomError::InvalidPath(format!(
                                        "`{attr}` is a collection of atomic {} values and cannot \
                                         be navigated further",
                                        a.name()
                                    )));
                                }
                                PathStep {
                                    attr: attr.into(),
                                    domain,
                                    set_type: Some(target),
                                    range: TypeRef::Atomic(a),
                                }
                            }
                        }
                    } else {
                        unreachable!("type kinds are tuple/set/list")
                    }
                }
            };
            // Prepare the next domain.
            if attrs.peek().is_some() {
                match step.range {
                    TypeRef::Named(next) => domain = next,
                    TypeRef::Atomic(_) => unreachable!("checked above"),
                }
            }
            steps.push(step);
        }
        Ok(PathExpression {
            anchor: anchor_id,
            anchor_name: anchor.to_string(),
            steps,
            rendered,
        })
    }

    /// Parse dotted notation, e.g.
    /// `"ROBOT.Arm.MountedTool.ManufacturedBy.Location"`.
    pub fn parse(schema: &Schema, dotted: &str) -> Result<Self> {
        let mut parts = dotted.split('.');
        let anchor = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| GomError::InvalidPath("empty path".into()))?;
        let attrs: Vec<&str> = parts.collect();
        if attrs.iter().any(|a| a.is_empty()) {
            return Err(GomError::InvalidPath(format!(
                "empty attribute name in `{dotted}`"
            )));
        }
        PathExpression::new(schema, anchor, attrs)
    }

    /// The anchor type `t0`.
    pub fn anchor(&self) -> TypeId {
        self.anchor
    }

    /// The anchor type's name.
    pub fn anchor_name(&self) -> &str {
        &self.anchor_name
    }

    /// The path length `n` (number of attributes).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Paths are never empty; provided for lint symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The validated steps `A_1 … A_n`.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// Number of set occurrences `k` in the whole path.
    pub fn set_occurrences(&self) -> usize {
        self.steps.iter().filter(|s| s.is_set_occurrence()).count()
    }

    /// `k(i)`: the number of set occurrences strictly before `A_i`
    /// (at `A_j` for `j < i`); `i` is 1-based as in the paper.
    pub fn k_before(&self, i: usize) -> usize {
        assert!((1..=self.len()).contains(&i), "step index out of range");
        self.steps[..i - 1]
            .iter()
            .filter(|s| s.is_set_occurrence())
            .count()
    }

    /// A path is *linear* iff it contains no set occurrence.
    pub fn is_linear(&self) -> bool {
        self.set_occurrences() == 0
    }

    /// Does the path terminate in an atomic value (footnote 3: then the
    /// last relation column holds values rather than OIDs)?
    pub fn ends_in_value(&self) -> bool {
        matches!(self.steps.last().map(|s| s.range), Some(TypeRef::Atomic(_)))
    }

    /// The type `t_i` at position `i` (0 = anchor).  For the final position
    /// of a value-terminated path this is the atomic range.
    pub fn type_at(&self, i: usize) -> TypeRef {
        if i == 0 {
            TypeRef::Named(self.anchor)
        } else {
            self.steps[i - 1].range
        }
    }

    /// The arity of the access support relation over this path:
    /// `n + k + 1` when set-object OIDs are kept, `n + 1` otherwise
    /// (Definition 3.2 resp. the paper's simplification `m = n`).
    pub fn arity(&self, keep_set_oids: bool) -> usize {
        if keep_set_oids {
            self.len() + self.set_occurrences() + 1
        } else {
            self.len() + 1
        }
    }

    /// The column domains `S_0 … S_m` of the access support relation.
    pub fn columns(&self, keep_set_oids: bool) -> Vec<ColumnDomain> {
        let mut cols = vec![ColumnDomain::Oids(self.anchor)];
        for step in &self.steps {
            if keep_set_oids {
                if let Some(set_ty) = step.set_type {
                    cols.push(ColumnDomain::Oids(set_ty));
                }
            }
            cols.push(match step.range {
                TypeRef::Named(id) => ColumnDomain::Oids(id),
                TypeRef::Atomic(a) => ColumnDomain::Values(a),
            });
        }
        cols
    }

    /// The relation column index holding `t_i` objects: `i + k(i)` when set
    /// OIDs are kept (the paper's `S_{i+k(i)}`), plainly `i` otherwise.
    pub fn column_of(&self, i: usize, keep_set_oids: bool) -> usize {
        if !keep_set_oids || i == 0 {
            return i;
        }
        i + self.k_before(i) + usize::from(self.steps[i - 1].is_set_occurrence())
    }
}

impl fmt::Display for PathExpression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemas() -> Schema {
        let mut s = Schema::new();
        // Linear robot path.
        s.define_tuple("MANUFACTURER", [("Name", "STRING"), ("Location", "STRING")])
            .unwrap();
        s.define_tuple(
            "TOOL",
            [("Function", "STRING"), ("ManufacturedBy", "MANUFACTURER")],
        )
        .unwrap();
        s.define_tuple("ARM", [("MountedTool", "TOOL")]).unwrap();
        s.define_tuple("ROBOT", [("Name", "STRING"), ("Arm", "ARM")])
            .unwrap();
        // Company path with set occurrences.
        s.define_tuple(
            "Division",
            [("Name", "STRING"), ("Manufactures", "ProdSET")],
        )
        .unwrap();
        s.define_set("ProdSET", "Product").unwrap();
        s.define_tuple(
            "Product",
            [("Name", "STRING"), ("Composition", "BasePartSET")],
        )
        .unwrap();
        s.define_set("BasePartSET", "BasePart").unwrap();
        s.define_tuple("BasePart", [("Name", "STRING"), ("Price", "DECIMAL")])
            .unwrap();
        s.define_set("STRSET", "STRING").unwrap();
        s.define_tuple("Tagged", [("Tags", "STRSET")]).unwrap();
        s.define_set("SETSET", "ProdSET").unwrap();
        s.define_tuple("Nested", [("Sets", "SETSET")]).unwrap();
        s.validate().unwrap();
        s
    }

    #[test]
    fn linear_path_validates() {
        let s = schemas();
        let p = PathExpression::parse(&s, "ROBOT.Arm.MountedTool.ManufacturedBy.Location").unwrap();
        assert_eq!(p.len(), 4);
        assert!(p.is_linear());
        assert!(p.ends_in_value());
        assert_eq!(p.arity(true), 5);
        assert_eq!(p.arity(false), 5);
        assert_eq!(
            p.to_string(),
            "ROBOT.Arm.MountedTool.ManufacturedBy.Location"
        );
        assert_eq!(p.anchor_name(), "ROBOT");
    }

    #[test]
    fn set_occurrences_counted() {
        let s = schemas();
        let p = PathExpression::parse(&s, "Division.Manufactures.Composition.Name").unwrap();
        assert_eq!(p.len(), 3, "n = 3");
        assert_eq!(p.set_occurrences(), 2, "k = 2");
        assert!(!p.is_linear());
        // Definition 3.2: arity n + k (+1 for S_0).
        assert_eq!(p.arity(true), 6);
        assert_eq!(p.arity(false), 4);
        assert_eq!(p.k_before(1), 0);
        assert_eq!(p.k_before(2), 1);
        assert_eq!(p.k_before(3), 2);
    }

    #[test]
    fn column_layout_matches_definition_3_2() {
        let s = schemas();
        let p = PathExpression::parse(&s, "Division.Manufactures.Composition.Name").unwrap();
        let cols = p.columns(true);
        let names: Vec<String> = cols
            .iter()
            .map(|c| match c {
                ColumnDomain::Oids(id) => s.name(*id).to_string(),
                ColumnDomain::Values(a) => a.name().to_string(),
            })
            .collect();
        assert_eq!(
            names,
            vec![
                "Division",
                "ProdSET",
                "Product",
                "BasePartSET",
                "BasePart",
                "STRING"
            ]
        );
        // S_{i+k(i)}: objects of type t_1=Product live in column 1+k(1)+1 = 2.
        assert_eq!(p.column_of(0, true), 0);
        assert_eq!(p.column_of(1, true), 2);
        assert_eq!(p.column_of(2, true), 4);
        assert_eq!(p.column_of(3, true), 5);
        // Without set OIDs columns collapse to position i.
        assert_eq!(p.column_of(2, false), 2);
        let thin = p.columns(false);
        assert_eq!(thin.len(), 4);
    }

    #[test]
    fn atomic_midway_rejected() {
        let s = schemas();
        let err = PathExpression::parse(&s, "ROBOT.Name.Length").unwrap_err();
        assert!(matches!(err, GomError::InvalidPath(_)));
    }

    #[test]
    fn unknown_pieces_rejected() {
        let s = schemas();
        assert!(PathExpression::parse(&s, "DROID.Arm").is_err());
        assert!(matches!(
            PathExpression::parse(&s, "ROBOT.Wheels"),
            Err(GomError::UnknownAttribute { .. })
        ));
        assert!(
            PathExpression::parse(&s, "ROBOT").is_err(),
            "needs >= 1 attribute"
        );
        assert!(PathExpression::parse(&s, "").is_err());
        assert!(PathExpression::parse(&s, "ROBOT..Arm").is_err());
    }

    #[test]
    fn set_of_atomic_must_terminate() {
        let s = schemas();
        let p = PathExpression::parse(&s, "Tagged.Tags").unwrap();
        assert!(p.ends_in_value());
        assert_eq!(p.set_occurrences(), 1);
        assert!(PathExpression::parse(&s, "Tagged.Tags.Length").is_err());
    }

    #[test]
    fn powerset_rejected() {
        let s = schemas();
        let err = PathExpression::parse(&s, "Nested.Sets").unwrap_err();
        let GomError::InvalidPath(msg) = err else {
            panic!("wrong error kind")
        };
        assert!(msg.contains("power-set"));
    }

    #[test]
    fn anchor_must_be_tuple() {
        let s = schemas();
        assert!(PathExpression::parse(&s, "ProdSET.Name").is_err());
    }

    #[test]
    fn type_at_walks_the_chain() {
        let s = schemas();
        let p = PathExpression::parse(&s, "Division.Manufactures.Composition.Name").unwrap();
        assert_eq!(s.ref_name(p.type_at(0)), "Division");
        assert_eq!(s.ref_name(p.type_at(1)), "Product");
        assert_eq!(s.ref_name(p.type_at(2)), "BasePart");
        assert_eq!(s.ref_name(p.type_at(3)), "STRING");
    }
}
