//! Error type for all GOM operations.

use std::fmt;

use crate::oid::Oid;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GomError>;

/// Errors raised by schema definition, object manipulation and path
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GomError {
    /// A type with this name was already defined in the schema.
    DuplicateType(String),
    /// Referenced type name is not defined in the schema.
    UnknownType(String),
    /// A tuple type declared two attributes with the same name
    /// (directly or via inheritance from multiple supertypes).
    DuplicateAttribute {
        /// Type in which the clash occurs.
        ty: String,
        /// The clashing attribute name.
        attr: String,
    },
    /// Attribute lookup failed.
    UnknownAttribute {
        /// Type that was searched (including its supertypes).
        ty: String,
        /// The attribute that was not found.
        attr: String,
    },
    /// A supertype of a tuple type is not itself a tuple type.
    InvalidSupertype {
        /// The subtype being defined.
        ty: String,
        /// The offending supertype.
        supertype: String,
    },
    /// The supertype graph contains a cycle.
    InheritanceCycle(String),
    /// An object with this OID does not exist in the object base.
    UnknownObject(Oid),
    /// The object exists but has the wrong structure for the operation
    /// (e.g. `insert_into_set` on a tuple object).
    WrongStructure {
        /// The object operated on.
        oid: Oid,
        /// What the operation expected ("tuple", "set", "list").
        expected: &'static str,
    },
    /// Strong typing violation: a value was assigned whose type is not a
    /// subtype of the declared attribute/element type.
    TypeViolation {
        /// Declared upper-bound type.
        expected: String,
        /// The actual type of the offending value.
        actual: String,
    },
    /// A named database variable ("root") was not found.
    UnknownVariable(String),
    /// Path-expression syntax or semantics error (Definition 3.1).
    InvalidPath(String),
    /// The operation would instantiate an abstract construct (e.g. `ANY`).
    NotInstantiable(String),
}

impl fmt::Display for GomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GomError::DuplicateType(name) => write!(f, "type `{name}` is already defined"),
            GomError::UnknownType(name) => write!(f, "type `{name}` is not defined"),
            GomError::DuplicateAttribute { ty, attr } => {
                write!(f, "type `{ty}` declares attribute `{attr}` more than once")
            }
            GomError::UnknownAttribute { ty, attr } => {
                write!(f, "type `{ty}` has no attribute `{attr}`")
            }
            GomError::InvalidSupertype { ty, supertype } => {
                write!(f, "supertype `{supertype}` of `{ty}` is not a tuple type")
            }
            GomError::InheritanceCycle(name) => {
                write!(f, "inheritance cycle detected through type `{name}`")
            }
            GomError::UnknownObject(oid) => write!(f, "object {oid} does not exist"),
            GomError::WrongStructure { oid, expected } => {
                write!(f, "object {oid} is not a {expected} instance")
            }
            GomError::TypeViolation { expected, actual } => {
                write!(
                    f,
                    "type violation: expected (a subtype of) `{expected}`, got `{actual}`"
                )
            }
            GomError::UnknownVariable(name) => write!(f, "database variable `{name}` is not bound"),
            GomError::InvalidPath(msg) => write!(f, "invalid path expression: {msg}"),
            GomError::NotInstantiable(name) => write!(f, "type `{name}` cannot be instantiated"),
        }
    }
}

impl std::error::Error for GomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_context() {
        let err = GomError::UnknownAttribute {
            ty: "ROBOT".into(),
            attr: "Arm".into(),
        };
        assert_eq!(err.to_string(), "type `ROBOT` has no attribute `Arm`");
        let err = GomError::TypeViolation {
            expected: "TOOL".into(),
            actual: "ROBOT".into(),
        };
        assert!(err.to_string().contains("expected (a subtype of) `TOOL`"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GomError::UnknownType("X".into()),
            GomError::UnknownType("X".into())
        );
        assert_ne!(
            GomError::UnknownType("X".into()),
            GomError::DuplicateType("X".into())
        );
    }
}
