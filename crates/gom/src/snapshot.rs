//! Snapshot persistence: a versioned, line-based text format for schemas
//! and object bases.
//!
//! The format is deliberately simple and diff-friendly (one declaration
//! per line), durable across OID assignment (objects are restored with
//! their original identifiers), and self-contained:
//!
//! ```text
//! GOMSNAP 1
//! T MANUFACTURER TUPLE | Name:STRING Location:STRING
//! T ROBOT_SET SET ROBOT
//! O i3 MANUFACTURER TUPLE Name=S:RobClone Location=S:Utopia
//! O i9 ROBOT_SET SET R:i0 R:i5 R:i8
//! V OurRobots R:i9
//! ```
//!
//! Values encode as `N` (NULL), `I:<i64>`, `F:<f64 bits>`, `D:<scaled>`,
//! `S:<percent-escaped utf-8>`, `C:<char>`, `B:<0|1>`, `R:i<oid>`.

use std::fmt::Write as _;

use crate::base::ObjectBase;
use crate::error::{GomError, Result};
use crate::object::ObjectBody;
use crate::oid::Oid;
use crate::schema::Schema;
use crate::types::TypeKind;
use crate::value::Value;

const MAGIC: &str = "GOMSNAP 1";

// ----------------------------------------------------------------------
// Encoding
// ----------------------------------------------------------------------

/// Percent-escape a token so it survives the space-separated, line-based
/// snapshot format (also used by the `asr-durable` write-ahead log, which
/// shares this encoding for its record payloads).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            '=' => out.push_str("%3D"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
pub fn unescape(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| bad(format!("truncated escape in `{s}`")))?;
            let code =
                u8::from_str_radix(hex, 16).map_err(|_| bad(format!("bad escape %{hex}")))?;
            out.push(code as char);
            i += 3;
        } else {
            let c = s[i..].chars().next().expect("in-bounds char");
            out.push(c);
            i += c.len_utf8();
        }
    }
    Ok(out)
}

fn bad(msg: String) -> GomError {
    GomError::InvalidPath(format!("snapshot: {msg}"))
}

/// Encode one [`Value`] in the snapshot's tagged text form
/// (`N`, `I:<i64>`, `S:<escaped>`, `R:i<oid>`, …).
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "N".into(),
        Value::Integer(i) => format!("I:{i}"),
        Value::Float(bits) => format!("F:{bits}"),
        Value::Decimal(scaled) => format!("D:{scaled}"),
        Value::String(s) => format!("S:{}", escape(s)),
        Value::Char(c) => format!("C:{}", escape(&c.to_string())),
        Value::Bool(b) => format!("B:{}", u8::from(*b)),
        Value::Ref(oid) => format!("R:i{}", oid.as_raw()),
    }
}

/// Inverse of [`encode_value`].
pub fn decode_value(s: &str) -> Result<Value> {
    if s == "N" {
        return Ok(Value::Null);
    }
    let (tag, body) = s
        .split_once(':')
        .ok_or_else(|| bad(format!("bad value `{s}`")))?;
    let parse_i64 = |b: &str| {
        b.parse::<i64>()
            .map_err(|_| bad(format!("bad integer `{b}`")))
    };
    Ok(match tag {
        "I" => Value::Integer(parse_i64(body)?),
        "F" => Value::Float(
            body.parse()
                .map_err(|_| bad(format!("bad float `{body}`")))?,
        ),
        "D" => Value::Decimal(parse_i64(body)?),
        "S" => Value::String(unescape(body)?),
        "C" => {
            let s = unescape(body)?;
            Value::Char(s.chars().next().ok_or_else(|| bad("empty char".into()))?)
        }
        "B" => Value::Bool(body == "1"),
        "R" => {
            let raw = body
                .strip_prefix('i')
                .and_then(|r| r.parse::<u64>().ok())
                .ok_or_else(|| bad(format!("bad reference `{body}`")))?;
            Value::Ref(Oid::from_raw(raw))
        }
        other => return Err(bad(format!("unknown value tag `{other}`"))),
    })
}

// ----------------------------------------------------------------------
// Writing
// ----------------------------------------------------------------------

/// Serialize a schema to snapshot lines.
pub fn write_schema(schema: &Schema) -> String {
    let mut out = String::new();
    for (id, def) in schema.types() {
        let _ = id;
        match &def.kind {
            TypeKind::Tuple {
                supertypes,
                attributes,
            } => {
                let sups: Vec<&str> = supertypes.iter().map(|&s| schema.name(s)).collect();
                let mut line = format!("T {} TUPLE {}|", escape(&def.name), sups.join(","));
                for a in attributes {
                    let _ = write!(
                        line,
                        " {}={}",
                        escape(&a.name),
                        escape(&schema.ref_name(a.ty))
                    );
                }
                let _ = writeln!(out, "{line}");
            }
            TypeKind::Set { element } => {
                let _ = writeln!(
                    out,
                    "T {} SET {}",
                    escape(&def.name),
                    escape(&schema.ref_name(*element))
                );
            }
            TypeKind::List { element } => {
                let _ = writeln!(
                    out,
                    "T {} LIST {}",
                    escape(&def.name),
                    escape(&schema.ref_name(*element))
                );
            }
        }
    }
    out
}

/// Serialize a whole object base (schema, objects, variables).
pub fn write_base(base: &ObjectBase) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    out.push_str(&write_schema(base.schema()));
    for obj in base.objects() {
        let ty_name = escape(base.schema().name(obj.ty));
        match &obj.body {
            ObjectBody::Tuple(attrs) => {
                let mut line = format!("O i{} {} TUPLE", obj.oid.as_raw(), ty_name);
                for (k, v) in attrs {
                    let _ = write!(line, " {}={}", escape(k), encode_value(v));
                }
                let _ = writeln!(out, "{line}");
            }
            ObjectBody::Set(elems) => {
                let mut line = format!("O i{} {} SET", obj.oid.as_raw(), ty_name);
                for v in elems {
                    let _ = write!(line, " {}", encode_value(v));
                }
                let _ = writeln!(out, "{line}");
            }
            ObjectBody::List(elems) => {
                let mut line = format!("O i{} {} LIST", obj.oid.as_raw(), ty_name);
                for v in elems {
                    let _ = write!(line, " {}", encode_value(v));
                }
                let _ = writeln!(out, "{line}");
            }
        }
    }
    for (name, value) in base.variables() {
        let _ = writeln!(out, "V {} {}", escape(name), encode_value(value));
    }
    out
}

// ----------------------------------------------------------------------
// Reading
// ----------------------------------------------------------------------

/// Reconstruct an object base from snapshot text.  Objects keep their
/// original OIDs; the OID generator resumes past the maximum seen.
pub fn read_base(text: &str) -> Result<ObjectBase> {
    let mut lines = text.lines();
    let first = lines.next().ok_or_else(|| bad("empty snapshot".into()))?;
    if first.trim() != MAGIC {
        return Err(bad(format!("bad magic `{first}` (expected `{MAGIC}`)")));
    }
    let mut schema = Schema::new();
    let mut type_lines: Vec<&str> = Vec::new();
    let mut object_lines: Vec<&str> = Vec::new();
    let mut var_lines: Vec<&str> = Vec::new();
    for line in lines {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split(' ').next() {
            Some("T") => type_lines.push(line),
            Some("O") => object_lines.push(line),
            Some("V") => var_lines.push(line),
            other => return Err(bad(format!("unknown record `{other:?}`"))),
        }
    }
    // Two passes: declare every type name in file order first, so that
    // type-id assignment (and therefore re-serialization order) matches
    // the file exactly; then define structures.
    for line in &type_lines {
        let name = line
            .split(' ')
            .nth(1)
            .ok_or_else(|| bad("missing type name".into()))?;
        schema.declare(&unescape(name)?)?;
    }
    for line in &type_lines {
        read_type_line(&mut schema, line)?;
    }
    schema.validate()?;
    let mut base = ObjectBase::new(schema);

    // First pass: materialize every object shell so references resolve.
    let mut parsed: Vec<(Oid, String, &str)> = Vec::new();
    for line in &object_lines {
        let mut parts = line.splitn(4, ' ');
        let _o = parts.next();
        let oid_str = parts.next().ok_or_else(|| bad("missing oid".into()))?;
        let ty = unescape(parts.next().ok_or_else(|| bad("missing type".into()))?)?;
        let rest = parts.next().unwrap_or("");
        let raw = oid_str
            .strip_prefix('i')
            .and_then(|r| r.parse::<u64>().ok())
            .ok_or_else(|| bad(format!("bad oid `{oid_str}`")))?;
        let oid = Oid::from_raw(raw);
        base.restore_object(oid, &ty)?;
        parsed.push((oid, ty, rest));
    }
    // Second pass: contents.
    for (oid, _ty, rest) in parsed {
        let mut fields = rest.split(' ');
        let kind = fields
            .next()
            .ok_or_else(|| bad("missing structure tag".into()))?;
        match kind {
            "TUPLE" => {
                for field in fields.filter(|f| !f.is_empty()) {
                    let (attr, value) = field
                        .split_once('=')
                        .ok_or_else(|| bad(format!("bad attribute `{field}`")))?;
                    base.set_attribute(oid, &unescape(attr)?, decode_value(value)?)?;
                }
            }
            "SET" => {
                for field in fields.filter(|f| !f.is_empty()) {
                    base.insert_into_set(oid, decode_value(field)?)?;
                }
            }
            "LIST" => {
                for field in fields.filter(|f| !f.is_empty()) {
                    base.push_to_list(oid, decode_value(field)?)?;
                }
            }
            other => return Err(bad(format!("unknown structure `{other}`"))),
        }
    }
    for line in var_lines {
        let mut parts = line.splitn(3, ' ');
        let _v = parts.next();
        let name = unescape(
            parts
                .next()
                .ok_or_else(|| bad("missing variable name".into()))?,
        )?;
        let value = decode_value(
            parts
                .next()
                .ok_or_else(|| bad("missing variable value".into()))?,
        )?;
        base.bind_variable(&name, value);
    }
    Ok(base)
}

fn read_type_line(schema: &mut Schema, line: &str) -> Result<()> {
    let mut parts = line.splitn(4, ' ');
    let _t = parts.next();
    let name = unescape(
        parts
            .next()
            .ok_or_else(|| bad("missing type name".into()))?,
    )?;
    // Pin the type id to file order before resolving referenced names, so
    // a snapshot round-trips to the identical id assignment (and thus to
    // byte-identical re-serialization).
    schema.declare(&name)?;
    let kind = parts
        .next()
        .ok_or_else(|| bad("missing type kind".into()))?;
    let rest = parts.next().unwrap_or("");
    match kind {
        "TUPLE" => {
            let (sups, attrs) = rest
                .split_once('|')
                .ok_or_else(|| bad(format!("bad tuple line `{line}`")))?;
            let supertypes: Vec<String> = sups
                .split(',')
                .filter(|s| !s.is_empty())
                .map(unescape)
                .collect::<Result<_>>()?;
            let mut attributes: Vec<(String, String)> = Vec::new();
            for field in attrs.split(' ').filter(|f| !f.is_empty()) {
                let (a, t) = field
                    .split_once('=')
                    .ok_or_else(|| bad(format!("bad attribute decl `{field}`")))?;
                attributes.push((unescape(a)?, unescape(t)?));
            }
            schema.define_tuple_sub(
                &name,
                supertypes.iter().map(String::as_str),
                attributes.iter().map(|(a, t)| (a.as_str(), t.as_str())),
            )?;
        }
        "SET" => {
            schema.define_set(&name, &unescape(rest)?)?;
        }
        "LIST" => {
            schema.define_list(&name, &unescape(rest)?)?;
        }
        other => return Err(bad(format!("unknown type kind `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_base() -> ObjectBase {
        let mut s = Schema::new();
        s.define_tuple("NAMED", [("Name", "STRING")]).unwrap();
        s.define_tuple_sub(
            "PART",
            ["NAMED"],
            [
                ("Price", "DECIMAL"),
                ("Weight", "FLOAT"),
                ("Tags", "TAGS"),
                ("Serial", "INTEGER"),
            ],
        )
        .unwrap();
        s.define_set("TAGS", "STRING").unwrap();
        s.define_list("PARTLIST", "PART").unwrap();
        s.validate().unwrap();
        let mut base = ObjectBase::new(s);
        let p = base.instantiate("PART").unwrap();
        base.set_attribute(p, "Name", Value::string("Door with spaces & =% signs"))
            .unwrap();
        base.set_attribute(p, "Price", Value::decimal(1205, 50))
            .unwrap();
        base.set_attribute(p, "Weight", Value::float(-2.75))
            .unwrap();
        base.set_attribute(p, "Serial", Value::Integer(-42))
            .unwrap();
        let tags = base.instantiate("TAGS").unwrap();
        base.insert_into_set(tags, Value::string("heavy")).unwrap();
        base.insert_into_set(tags, Value::string("steel")).unwrap();
        base.set_attribute(p, "Tags", Value::Ref(tags)).unwrap();
        let list = base.instantiate("PARTLIST").unwrap();
        base.push_to_list(list, Value::Ref(p)).unwrap();
        base.push_to_list(list, Value::Ref(p)).unwrap();
        base.bind_variable("AllParts", Value::Ref(list));
        base
    }

    #[test]
    fn round_trip_preserves_everything() {
        let base = sample_base();
        let text = write_base(&base);
        let restored = read_base(&text).unwrap();
        assert_eq!(restored.object_count(), base.object_count());
        // Objects identical (same OIDs, same bodies).
        for obj in base.objects() {
            let r = restored.object(obj.oid).unwrap();
            assert_eq!(r, obj);
        }
        assert_eq!(
            restored.variable("AllParts").unwrap(),
            base.variable("AllParts").unwrap()
        );
        // Schema equivalent: same flattened attributes per type.
        for (id, def) in base.schema().types() {
            let rid = restored.schema().resolve(&def.name).unwrap();
            if def.kind.is_tuple() {
                assert_eq!(
                    base.schema().all_attributes(id).unwrap().len(),
                    restored.schema().all_attributes(rid).unwrap().len(),
                    "{}",
                    def.name
                );
            }
        }
        // A second round trip is byte-identical (canonical form).
        assert_eq!(write_base(&restored), text);
    }

    #[test]
    fn restored_base_accepts_new_objects_without_oid_collision() {
        let base = sample_base();
        let max_oid = base.objects().map(|o| o.oid.as_raw()).max().unwrap();
        let mut restored = read_base(&write_base(&base)).unwrap();
        let fresh = restored.instantiate("PART").unwrap();
        assert!(fresh.as_raw() > max_oid, "generator resumed past {max_oid}");
    }

    #[test]
    fn value_encoding_round_trips() {
        for v in [
            Value::Null,
            Value::Integer(i64::MIN),
            Value::float(f64::NAN),
            Value::decimal(-3, 7),
            Value::string("a b%c=d\ne"),
            Value::Char('%'),
            Value::Bool(true),
            Value::Ref(Oid::from_raw(u64::MAX)),
        ] {
            let enc = encode_value(&v);
            assert!(!enc.contains(' '), "encoding must be space-free: {enc}");
            let dec = decode_value(&enc).unwrap();
            assert_eq!(dec, v, "{enc}");
        }
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(read_base("").is_err());
        assert!(read_base("WRONG 9").is_err());
        assert!(read_base("GOMSNAP 1\nX junk").is_err());
        assert!(read_base("GOMSNAP 1\nO i0 MISSING TUPLE").is_err());
        assert!(read_base("GOMSNAP 1\nT A TUPLE |\nO i0 A TUPLE x").is_err());
        assert!(decode_value("Q:1").is_err());
        assert!(decode_value("R:zebra").is_err());
        assert!(unescape("%zz").is_err());
        assert!(unescape("%2").is_err());
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let mut text = write_base(&sample_base());
        text.push_str("\n# trailing comment\n\n");
        assert!(read_base(&text).is_ok());
    }
}
