//! The object base: the live extension of a schema.
//!
//! An [`ObjectBase`] owns all object instances, maintains per-type extents,
//! binds named database variables (such as `OurRobots` or `Mercedes` in the
//! paper's examples) and enforces strong typing on every update.
//!
//! References are **uni-directional** (Section 2.2): the base maintains no
//! reverse-reference index, which is exactly why backward navigation without
//! an access support relation degenerates to exhaustive search.

use std::collections::{BTreeMap, HashMap};

use crate::error::{GomError, Result};
use crate::object::{Object, ObjectBody};
use crate::oid::{Oid, OidGenerator};
use crate::schema::Schema;
use crate::types::{TypeId, TypeKind, TypeRef};
use crate::value::Value;

/// The extension of a schema: all living objects plus bookkeeping.
#[derive(Debug, Clone)]
pub struct ObjectBase {
    schema: Schema,
    objects: BTreeMap<Oid, Object>,
    extents: HashMap<TypeId, Vec<Oid>>,
    variables: HashMap<String, Value>,
    oidgen: OidGenerator,
}

impl ObjectBase {
    /// Create an empty object base over `schema`.
    pub fn new(schema: Schema) -> Self {
        ObjectBase {
            schema,
            objects: BTreeMap::new(),
            extents: HashMap::new(),
            variables: HashMap::new(),
            oidgen: OidGenerator::new(),
        }
    }

    /// The schema this base instantiates.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable schema access (for incremental schema evolution).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Total number of living objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    // ------------------------------------------------------------------
    // Instantiation
    // ------------------------------------------------------------------

    /// Instantiate the named type, yielding a fresh object.
    ///
    /// Tuple attributes start `NULL`; sets and lists start empty
    /// (Section 2, *instantiation*).
    pub fn instantiate(&mut self, type_name: &str) -> Result<Oid> {
        let ty = self.schema.require(type_name)?;
        self.instantiate_id(ty)
    }

    /// Instantiate by [`TypeId`].
    pub fn instantiate_id(&mut self, ty: TypeId) -> Result<Oid> {
        let def = self.schema.def(ty)?;
        let oid = self.oidgen.fresh();
        let object = match &def.kind {
            TypeKind::Tuple { .. } => Object::new_tuple(oid, ty),
            TypeKind::Set { .. } => Object::new_set(oid, ty),
            TypeKind::List { .. } => Object::new_list(oid, ty),
        };
        self.objects.insert(oid, object);
        self.extents.entry(ty).or_default().push(oid);
        Ok(oid)
    }

    /// Re-create an object with a **specific** OID — snapshot restoration
    /// only.  Fails when the OID is already live; advances the generator
    /// past the restored OID so future instantiations cannot collide.
    pub fn restore_object(&mut self, oid: Oid, type_name: &str) -> Result<()> {
        if self.contains(oid) {
            return Err(GomError::DuplicateType(format!(
                "object {oid} already exists"
            )));
        }
        let ty = self.schema.require(type_name)?;
        let def = self.schema.def(ty)?;
        let object = match &def.kind {
            TypeKind::Tuple { .. } => Object::new_tuple(oid, ty),
            TypeKind::Set { .. } => Object::new_set(oid, ty),
            TypeKind::List { .. } => Object::new_list(oid, ty),
        };
        self.objects.insert(oid, object);
        self.extents.entry(ty).or_default().push(oid);
        if self.oidgen.issued() <= oid.as_raw() {
            self.oidgen = OidGenerator::starting_at(oid.as_raw() + 1);
        }
        Ok(())
    }

    /// Delete an object.  References to it elsewhere become dangling (the
    /// model maintains uni-directional references only); navigation treats
    /// dangling references as `NULL`.
    pub fn delete(&mut self, oid: Oid) -> Result<()> {
        let obj = self
            .objects
            .remove(&oid)
            .ok_or(GomError::UnknownObject(oid))?;
        if let Some(extent) = self.extents.get_mut(&obj.ty) {
            extent.retain(|&o| o != oid);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Look up an object.
    pub fn object(&self, oid: Oid) -> Result<&Object> {
        self.objects.get(&oid).ok_or(GomError::UnknownObject(oid))
    }

    /// Does the object exist?
    pub fn contains(&self, oid: Oid) -> bool {
        self.objects.contains_key(&oid)
    }

    /// The type of an object.
    pub fn type_of(&self, oid: Oid) -> Result<TypeId> {
        Ok(self.object(oid)?.ty)
    }

    /// Attribute value of a tuple object (inherited attributes included).
    /// Returns `NULL` for never-assigned attributes.
    pub fn get_attribute(&self, oid: Oid, attr: &str) -> Result<Value> {
        let obj = self.object(oid)?;
        // Validate the attribute exists on the type (catches typos).
        self.schema.attribute_type(obj.ty, attr)?;
        Ok(obj.attribute(attr).clone())
    }

    /// Iterate over all objects (ascending OID order — deterministic).
    pub fn objects(&self) -> impl Iterator<Item = &Object> {
        self.objects.values()
    }

    /// The *direct* extent of a type: objects instantiated exactly from it.
    pub fn extent(&self, ty: TypeId) -> &[Oid] {
        self.extents.get(&ty).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The *deep* extent: instances of the type or any of its subtypes.
    pub fn extent_closure(&self, ty: TypeId) -> Vec<Oid> {
        let mut out = Vec::new();
        for sub in self.schema.subtype_closure(ty) {
            out.extend_from_slice(self.extent(sub));
        }
        out.sort_unstable();
        out
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Assign `value` to attribute `attr` of tuple object `oid`.
    ///
    /// Enforces strong typing: the value's type must conform to the
    /// attribute's declared upper bound.  Assigning `NULL` always succeeds.
    pub fn set_attribute(&mut self, oid: Oid, attr: &str, value: Value) -> Result<()> {
        let ty = self.type_of(oid)?;
        let declared = self.schema.attribute_type(ty, attr)?;
        self.check_conformance(&value, declared)?;
        let obj = self
            .objects
            .get_mut(&oid)
            .ok_or(GomError::UnknownObject(oid))?;
        match &mut obj.body {
            ObjectBody::Tuple(attrs) => {
                if value.is_null() {
                    attrs.remove(attr);
                } else {
                    attrs.insert(attr.to_string(), value);
                }
                Ok(())
            }
            _ => Err(GomError::WrongStructure {
                oid,
                expected: "tuple",
            }),
        }
    }

    /// Insert `value` into set object `set_oid`.  Mirrors the paper's
    /// characteristic update `ins_i := insert o into o_i.A_i` (Section 6).
    ///
    /// Returns `true` when the element was newly inserted, `false` when it
    /// was already a member.
    pub fn insert_into_set(&mut self, set_oid: Oid, value: Value) -> Result<bool> {
        let ty = self.type_of(set_oid)?;
        let element = self
            .schema
            .def(ty)?
            .kind
            .element()
            .ok_or(GomError::WrongStructure {
                oid: set_oid,
                expected: "set",
            })?;
        self.check_conformance(&value, element)?;
        let obj = self
            .objects
            .get_mut(&set_oid)
            .ok_or(GomError::UnknownObject(set_oid))?;
        match &mut obj.body {
            ObjectBody::Set(set) => Ok(set.insert(value)),
            _ => Err(GomError::WrongStructure {
                oid: set_oid,
                expected: "set",
            }),
        }
    }

    /// Remove `value` from set object `set_oid`; returns whether it was
    /// present.
    pub fn remove_from_set(&mut self, set_oid: Oid, value: &Value) -> Result<bool> {
        let obj = self
            .objects
            .get_mut(&set_oid)
            .ok_or(GomError::UnknownObject(set_oid))?;
        match &mut obj.body {
            ObjectBody::Set(set) => Ok(set.remove(value)),
            _ => Err(GomError::WrongStructure {
                oid: set_oid,
                expected: "set",
            }),
        }
    }

    /// Append `value` to list object `list_oid`.
    pub fn push_to_list(&mut self, list_oid: Oid, value: Value) -> Result<()> {
        let ty = self.type_of(list_oid)?;
        let element = self
            .schema
            .def(ty)?
            .kind
            .element()
            .ok_or(GomError::WrongStructure {
                oid: list_oid,
                expected: "list",
            })?;
        self.check_conformance(&value, element)?;
        let obj = self
            .objects
            .get_mut(&list_oid)
            .ok_or(GomError::UnknownObject(list_oid))?;
        match &mut obj.body {
            ObjectBody::List(list) => {
                list.push(value);
                Ok(())
            }
            _ => Err(GomError::WrongStructure {
                oid: list_oid,
                expected: "list",
            }),
        }
    }

    fn check_conformance(&self, value: &Value, declared: TypeRef) -> Result<()> {
        let actual = match value {
            Value::Null => return Ok(()),
            Value::Ref(oid) => TypeRef::Named(self.type_of(*oid)?),
            atomic => match atomic.atomic_type() {
                Some(a) => TypeRef::Atomic(a),
                None => unreachable!("non-atomic, non-ref, non-null value"),
            },
        };
        if self.schema.conforms(actual, declared) {
            Ok(())
        } else {
            Err(GomError::TypeViolation {
                expected: self.schema.ref_name(declared),
                actual: self.schema.ref_name(actual),
            })
        }
    }

    // ------------------------------------------------------------------
    // Database variables ("roots")
    // ------------------------------------------------------------------

    /// Bind a named database variable, e.g. `var OurRobots: ROBOT_SET`.
    pub fn bind_variable(&mut self, name: &str, value: Value) {
        self.variables.insert(name.to_string(), value);
    }

    /// Look up a database variable.
    pub fn variable(&self, name: &str) -> Result<&Value> {
        self.variables
            .get(name)
            .ok_or_else(|| GomError::UnknownVariable(name.to_string()))
    }

    /// Iterate over all bound database variables in name order.
    pub fn variables(&self) -> impl Iterator<Item = (&str, &Value)> {
        let mut items: Vec<(&str, &Value)> = self
            .variables
            .iter()
            .map(|(k, v)| (k.as_str(), v))
            .collect();
        items.sort_by_key(|(k, _)| *k);
        items.into_iter()
    }

    // ------------------------------------------------------------------
    // Navigation
    // ------------------------------------------------------------------

    /// Dereference attribute `attr` of `oid` as an object reference.
    /// `None` when the attribute is `NULL` or dangling.
    pub fn deref_attribute(&self, oid: Oid, attr: &str) -> Result<Option<Oid>> {
        let v = self.get_attribute(oid, attr)?;
        Ok(v.as_ref_oid().filter(|o| self.contains(*o)))
    }

    /// The member OIDs of a set/list object (non-reference members and
    /// dangling references skipped).
    pub fn element_oids(&self, collection: Oid) -> Result<Vec<Oid>> {
        let obj = self.object(collection)?;
        Ok(obj
            .elements()
            .filter_map(Value::as_ref_oid)
            .filter(|o| self.contains(*o))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn company_base() -> ObjectBase {
        let mut s = Schema::new();
        s.define_set("Company", "Division").unwrap();
        s.define_tuple(
            "Division",
            [("Name", "STRING"), ("Manufactures", "ProdSET")],
        )
        .unwrap();
        s.define_set("ProdSET", "Product").unwrap();
        s.define_tuple(
            "Product",
            [("Name", "STRING"), ("Composition", "BasePartSET")],
        )
        .unwrap();
        s.define_set("BasePartSET", "BasePart").unwrap();
        s.define_tuple("BasePart", [("Name", "STRING"), ("Price", "DECIMAL")])
            .unwrap();
        s.validate().unwrap();
        ObjectBase::new(s)
    }

    #[test]
    fn instantiate_and_extents() {
        let mut base = company_base();
        let d1 = base.instantiate("Division").unwrap();
        let d2 = base.instantiate("Division").unwrap();
        let div_ty = base.schema().resolve("Division").unwrap();
        assert_eq!(base.extent(div_ty), &[d1, d2]);
        assert_eq!(base.object_count(), 2);
        assert!(base.get_attribute(d1, "Name").unwrap().is_null());
    }

    #[test]
    fn strong_typing_enforced_on_attributes() {
        let mut base = company_base();
        let d = base.instantiate("Division").unwrap();
        let p = base.instantiate("Product").unwrap();
        // Name must be a STRING.
        assert!(matches!(
            base.set_attribute(d, "Name", Value::Integer(3)),
            Err(GomError::TypeViolation { .. })
        ));
        // Manufactures must be a ProdSET, not a Product.
        assert!(matches!(
            base.set_attribute(d, "Manufactures", Value::Ref(p)),
            Err(GomError::TypeViolation { .. })
        ));
        let ps = base.instantiate("ProdSET").unwrap();
        base.set_attribute(d, "Manufactures", Value::Ref(ps))
            .unwrap();
        assert_eq!(
            base.get_attribute(d, "Manufactures").unwrap(),
            Value::Ref(ps)
        );
    }

    #[test]
    fn null_assignment_clears() {
        let mut base = company_base();
        let d = base.instantiate("Division").unwrap();
        base.set_attribute(d, "Name", Value::string("Auto"))
            .unwrap();
        base.set_attribute(d, "Name", Value::Null).unwrap();
        assert!(base.get_attribute(d, "Name").unwrap().is_null());
    }

    #[test]
    fn unknown_attribute_rejected() {
        let mut base = company_base();
        let d = base.instantiate("Division").unwrap();
        assert!(matches!(
            base.set_attribute(d, "Boss", Value::string("x")),
            Err(GomError::UnknownAttribute { .. })
        ));
        assert!(base.get_attribute(d, "Boss").is_err());
    }

    #[test]
    fn set_membership_and_typing() {
        let mut base = company_base();
        let ps = base.instantiate("ProdSET").unwrap();
        let p = base.instantiate("Product").unwrap();
        let d = base.instantiate("Division").unwrap();
        assert!(base.insert_into_set(ps, Value::Ref(p)).unwrap());
        assert!(
            !base.insert_into_set(ps, Value::Ref(p)).unwrap(),
            "duplicate insert"
        );
        // Division is not a Product.
        assert!(matches!(
            base.insert_into_set(ps, Value::Ref(d)),
            Err(GomError::TypeViolation { .. })
        ));
        assert_eq!(base.element_oids(ps).unwrap(), vec![p]);
        assert!(base.remove_from_set(ps, &Value::Ref(p)).unwrap());
        assert!(!base.remove_from_set(ps, &Value::Ref(p)).unwrap());
    }

    #[test]
    fn set_operations_on_tuple_rejected() {
        let mut base = company_base();
        let d = base.instantiate("Division").unwrap();
        assert!(matches!(
            base.insert_into_set(d, Value::Integer(1)),
            Err(GomError::WrongStructure { .. })
        ));
    }

    #[test]
    fn delete_and_dangling_references() {
        let mut base = company_base();
        let d = base.instantiate("Division").unwrap();
        let ps = base.instantiate("ProdSET").unwrap();
        base.set_attribute(d, "Manufactures", Value::Ref(ps))
            .unwrap();
        base.delete(ps).unwrap();
        // The attribute still holds the raw reference...
        assert_eq!(
            base.get_attribute(d, "Manufactures").unwrap(),
            Value::Ref(ps)
        );
        // ...but navigation treats it as NULL.
        assert_eq!(base.deref_attribute(d, "Manufactures").unwrap(), None);
        let set_ty = base.schema().resolve("ProdSET").unwrap();
        assert!(base.extent(set_ty).is_empty());
        assert!(matches!(base.delete(ps), Err(GomError::UnknownObject(_))));
    }

    #[test]
    fn variables() {
        let mut base = company_base();
        let c = base.instantiate("Company").unwrap();
        base.bind_variable("Mercedes", Value::Ref(c));
        assert_eq!(base.variable("Mercedes").unwrap(), &Value::Ref(c));
        assert!(matches!(
            base.variable("BMW"),
            Err(GomError::UnknownVariable(_))
        ));
    }

    #[test]
    fn subtype_instances_conform_and_appear_in_deep_extent() {
        let mut s = Schema::new();
        s.define_tuple("TOOL", [("Function", "STRING")]).unwrap();
        s.define_tuple_sub("POWERTOOL", ["TOOL"], [("Watts", "INTEGER")])
            .unwrap();
        s.define_tuple("ARM", [("MountedTool", "TOOL")]).unwrap();
        s.validate().unwrap();
        let mut base = ObjectBase::new(s);
        let pt = base.instantiate("POWERTOOL").unwrap();
        let arm = base.instantiate("ARM").unwrap();
        // A POWERTOOL instance may stand in for a TOOL attribute.
        base.set_attribute(arm, "MountedTool", Value::Ref(pt))
            .unwrap();
        // Inherited attribute is assignable on the subtype instance.
        base.set_attribute(pt, "Function", Value::string("drilling"))
            .unwrap();
        let tool_ty = base.schema().resolve("TOOL").unwrap();
        assert!(
            base.extent(tool_ty).is_empty(),
            "direct extent excludes subtypes"
        );
        assert_eq!(base.extent_closure(tool_ty), vec![pt]);
    }

    #[test]
    fn lists_preserve_order_and_duplicates() {
        let mut s = Schema::new();
        s.define_list("NUMS", "INTEGER").unwrap();
        s.validate().unwrap();
        let mut base = ObjectBase::new(s);
        let l = base.instantiate("NUMS").unwrap();
        base.push_to_list(l, Value::Integer(2)).unwrap();
        base.push_to_list(l, Value::Integer(1)).unwrap();
        base.push_to_list(l, Value::Integer(2)).unwrap();
        let obj = base.object(l).unwrap();
        let elems: Vec<_> = obj.elements().cloned().collect();
        assert_eq!(
            elems,
            vec![Value::Integer(2), Value::Integer(1), Value::Integer(2)]
        );
        assert!(matches!(
            base.push_to_list(l, Value::string("x")),
            Err(GomError::TypeViolation { .. })
        ));
    }
}
