//! # asr-gom — the Generic Object Model
//!
//! This crate implements **GOM**, the Generic Object Model that serves as the
//! research vehicle of Kemper & Moerkotte, *"Access Support in Object Bases"*
//! (SIGMOD 1990).  GOM unites the salient features of the object-oriented
//! data models of its era in one coherent framework:
//!
//! * **object identity** — every tuple-, set- or list-structured instance
//!   carries an invariant [`Oid`]; atomic values are identified by their
//!   value (see [`Value`]),
//! * **type constructors** — tuple `[a1: t1, …, an: tn]`, set `{t}` and list
//!   `<t>` (see [`TypeKind`]),
//! * **subtyping** — single and multiple inheritance of attributes between
//!   tuple-structured types,
//! * **strong typing** — every attribute, set element and list element is
//!   constrained to a declared type which acts as an *upper bound*; a
//!   subtype instance may always stand in for a supertype,
//! * **instantiation** — freshly instantiated tuple objects have all
//!   attributes set to `NULL`; sets and lists start out empty.
//!
//! On top of the model the crate provides [`PathExpression`] (Definition 3.1
//! of the paper): a validated attribute chain `t0.A1.….An` which may contain
//! *set occurrences* and is the object the access-support-relation machinery
//! in the `asr-core` crate indexes.
//!
//! ## Quick example
//!
//! ```
//! use asr_gom::{Schema, ObjectBase, Value, PathExpression};
//!
//! let mut schema = Schema::new();
//! schema.define_tuple("MANUFACTURER", [("Name", "STRING"), ("Location", "STRING")]).unwrap();
//! schema.define_tuple("TOOL", [("Function", "STRING"), ("ManufacturedBy", "MANUFACTURER")]).unwrap();
//! schema.define_tuple("ARM", [("MountedTool", "TOOL")]).unwrap();
//! schema.define_tuple("ROBOT", [("Name", "STRING"), ("Arm", "ARM")]).unwrap();
//!
//! let path = PathExpression::parse(&schema, "ROBOT.Arm.MountedTool.ManufacturedBy.Location").unwrap();
//! assert!(path.is_linear());
//! assert_eq!(path.len(), 4);
//!
//! let mut base = ObjectBase::new(schema);
//! let robot = base.instantiate("ROBOT").unwrap();
//! base.set_attribute(robot, "Name", Value::string("R2D2")).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atomic;
pub mod base;
pub mod error;
pub mod object;
pub mod oid;
pub mod path;
pub mod schema;
pub mod snapshot;
pub mod types;
pub mod value;

pub use atomic::AtomicType;
pub use base::ObjectBase;
pub use error::{GomError, Result};
pub use object::{Object, ObjectBody};
pub use oid::{Oid, OidGenerator};
pub use path::{PathExpression, PathStep};
pub use schema::Schema;
pub use types::{AttrDef, TypeDef, TypeId, TypeKind, TypeRef};
pub use value::Value;
