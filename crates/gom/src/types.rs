//! The GOM type system: type identifiers, references and definitions.
//!
//! Section 2.1 of the paper defines three forms of (named) type
//! definitions over type symbols `s1,…,sm,s ∈ T`:
//!
//! ```text
//! type t is supertypes (s1,…,sm) [a1: t1, …, an: tn]   -- tuple
//! type t is {s}                                         -- set
//! type t is <s>                                         -- list
//! ```
//!
//! Every named type in a [`crate::Schema`] receives a dense [`TypeId`].
//! Attribute and element types are [`TypeRef`]s, which either name an
//! atomic built-in or another schema type.

use std::fmt;

use crate::atomic::AtomicType;

/// Dense index of a named type within its [`crate::Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub(crate) u32);

impl TypeId {
    /// The raw index (position in the schema's type table).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index.  Only meaningful for ids previously
    /// obtained from the same schema.
    pub const fn from_index(index: usize) -> Self {
        TypeId(index as u32)
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t#{}", self.0)
    }
}

/// A reference to a type usable as an attribute or element domain: either a
/// built-in atomic type or a named schema type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeRef {
    /// One of the built-in elementary types.
    Atomic(AtomicType),
    /// A named (tuple-, set- or list-structured) schema type.
    Named(TypeId),
}

impl TypeRef {
    /// `true` iff the reference denotes an atomic (value) type.
    pub fn is_atomic(self) -> bool {
        matches!(self, TypeRef::Atomic(_))
    }

    /// The named type id, if any.
    pub fn as_named(self) -> Option<TypeId> {
        match self {
            TypeRef::Named(id) => Some(id),
            TypeRef::Atomic(_) => None,
        }
    }
}

/// An attribute of a tuple-structured type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name (`a_i` in the paper).  Pairwise distinct per type.
    pub name: String,
    /// Declared domain (`t_i`); an upper bound under strong typing.
    pub ty: TypeRef,
}

/// The structural kind of a named type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeKind {
    /// Tuple constructor `[a1: t1, …, an: tn]` with optional supertypes.
    Tuple {
        /// Direct supertypes (`s1,…,sm`); attributes are inherited from all.
        supertypes: Vec<TypeId>,
        /// Attributes declared *directly* on this type (excluding inherited
        /// ones).  Use [`crate::Schema::all_attributes`] for the flattened
        /// view.
        attributes: Vec<AttrDef>,
    },
    /// Set constructor `{s}`.
    Set {
        /// Element type (upper bound for members).
        element: TypeRef,
    },
    /// List constructor `<s>`.
    List {
        /// Element type (upper bound for members).
        element: TypeRef,
    },
}

impl TypeKind {
    /// `true` for tuple-structured kinds.
    pub fn is_tuple(&self) -> bool {
        matches!(self, TypeKind::Tuple { .. })
    }

    /// `true` for set-structured kinds.
    pub fn is_set(&self) -> bool {
        matches!(self, TypeKind::Set { .. })
    }

    /// `true` for list-structured kinds.
    pub fn is_list(&self) -> bool {
        matches!(self, TypeKind::List { .. })
    }

    /// The element type for set/list kinds.
    pub fn element(&self) -> Option<TypeRef> {
        match self {
            TypeKind::Set { element } | TypeKind::List { element } => Some(*element),
            TypeKind::Tuple { .. } => None,
        }
    }
}

/// A named type definition: name plus structural kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDef {
    /// The type symbol `t`.
    pub name: String,
    /// Structure of the type.
    pub kind: TypeKind,
}

impl TypeDef {
    /// Direct supertypes; empty for set/list types.
    pub fn supertypes(&self) -> &[TypeId] {
        match &self.kind {
            TypeKind::Tuple { supertypes, .. } => supertypes,
            _ => &[],
        }
    }

    /// Directly declared attributes; empty for set/list types.
    pub fn own_attributes(&self) -> &[AttrDef] {
        match &self.kind {
            TypeKind::Tuple { attributes, .. } => attributes,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_ref_predicates() {
        let atomic = TypeRef::Atomic(AtomicType::String);
        let named = TypeRef::Named(TypeId::from_index(3));
        assert!(atomic.is_atomic());
        assert!(!named.is_atomic());
        assert_eq!(named.as_named(), Some(TypeId::from_index(3)));
        assert_eq!(atomic.as_named(), None);
    }

    #[test]
    fn kind_accessors() {
        let set = TypeKind::Set {
            element: TypeRef::Atomic(AtomicType::Integer),
        };
        assert!(set.is_set() && !set.is_tuple() && !set.is_list());
        assert_eq!(set.element(), Some(TypeRef::Atomic(AtomicType::Integer)));

        let tuple = TypeKind::Tuple {
            supertypes: vec![],
            attributes: vec![],
        };
        assert!(tuple.is_tuple());
        assert_eq!(tuple.element(), None);
    }

    #[test]
    fn type_id_round_trips() {
        let id = TypeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "t#42");
    }
}
