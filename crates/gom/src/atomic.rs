//! Built-in elementary (value) types.
//!
//! GOM has a built-in collection of elementary types such as `char`,
//! `string`, `integer`, …  Instances of these types do **not** possess an
//! identity; their value serves as their identity (Section 2 of the paper).

use std::fmt;

/// The built-in atomic types of GOM.
///
/// The paper's example schemas use `STRING` and `DECIMAL`; we provide the
/// full elementary collection the model sketches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AtomicType {
    /// Signed 64-bit integers (`INTEGER`).
    Integer,
    /// IEEE-754 doubles (`FLOAT`).
    Float,
    /// Fixed-point decimals (`DECIMAL`), stored as scaled integers.
    Decimal,
    /// Character strings (`STRING`).
    String,
    /// Single characters (`CHAR`).
    Char,
    /// Booleans (`BOOL`).
    Bool,
}

impl AtomicType {
    /// All atomic types, in declaration order.
    pub const ALL: [AtomicType; 6] = [
        AtomicType::Integer,
        AtomicType::Float,
        AtomicType::Decimal,
        AtomicType::String,
        AtomicType::Char,
        AtomicType::Bool,
    ];

    /// The canonical schema-level name of the type.
    pub const fn name(self) -> &'static str {
        match self {
            AtomicType::Integer => "INTEGER",
            AtomicType::Float => "FLOAT",
            AtomicType::Decimal => "DECIMAL",
            AtomicType::String => "STRING",
            AtomicType::Char => "CHAR",
            AtomicType::Bool => "BOOL",
        }
    }

    /// Resolve a schema-level name to an atomic type, if it denotes one.
    pub fn by_name(name: &str) -> Option<AtomicType> {
        AtomicType::ALL.iter().copied().find(|t| t.name() == name)
    }
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for t in AtomicType::ALL {
            assert_eq!(AtomicType::by_name(t.name()), Some(t));
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert_eq!(AtomicType::by_name("ROBOT"), None);
        assert_eq!(
            AtomicType::by_name("string"),
            None,
            "names are case-sensitive"
        );
    }
}
