//! Schema: the registry of named type definitions.
//!
//! A [`Schema`] owns all named types of a database, resolves attribute
//! lookups through the inheritance hierarchy and answers subtype questions.
//! Forward references are supported so that mutually recursive type
//! definitions (common in engineering schemas) can be entered in any order;
//! [`Schema::validate`] checks that every forward-declared type was
//! eventually defined and that the inheritance graph is acyclic.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::atomic::AtomicType;
use crate::error::{GomError, Result};
use crate::types::{AttrDef, TypeDef, TypeId, TypeKind, TypeRef};

/// The registry of named types.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    /// `None` entries are forward declarations that have not been defined.
    defs: Vec<Option<TypeDef>>,
    names: Vec<String>,
    by_name: HashMap<String, TypeId>,
}

impl Schema {
    /// An empty schema (only the built-in atomic types are nameable).
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Definition
    // ------------------------------------------------------------------

    /// Reserve a [`TypeId`] for `name` without defining its structure yet.
    ///
    /// Returns the existing id if the name is already known.  Atomic type
    /// names cannot be declared.
    pub fn declare(&mut self, name: &str) -> Result<TypeId> {
        if AtomicType::by_name(name).is_some() {
            return Err(GomError::DuplicateType(name.to_string()));
        }
        match self.by_name.entry(name.to_string()) {
            Entry::Occupied(e) => Ok(*e.get()),
            Entry::Vacant(e) => {
                let id = TypeId::from_index(self.defs.len());
                self.defs.push(None);
                self.names.push(name.to_string());
                e.insert(id);
                Ok(id)
            }
        }
    }

    /// Define a tuple type without supertypes:
    /// `type name is [a1: t1, …, an: tn]`.
    pub fn define_tuple<'a>(
        &mut self,
        name: &str,
        attrs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<TypeId> {
        self.define_tuple_sub(name, [], attrs)
    }

    /// Define a tuple type with supertypes:
    /// `type name is supertypes (s1,…,sm) [a1: t1, …, an: tn]`.
    ///
    /// Supertype names must already be declared or defined (they are
    /// auto-declared otherwise, to permit forward references); attribute
    /// type names may reference atomic types, existing types, or
    /// not-yet-defined types (auto-declared).
    pub fn define_tuple_sub<'a, 'b>(
        &mut self,
        name: &str,
        supertypes: impl IntoIterator<Item = &'b str>,
        attrs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<TypeId> {
        let supertypes: Vec<TypeId> = supertypes
            .into_iter()
            .map(|s| {
                if AtomicType::by_name(s).is_some() {
                    Err(GomError::InvalidSupertype {
                        ty: name.to_string(),
                        supertype: s.to_string(),
                    })
                } else {
                    self.declare(s)
                }
            })
            .collect::<Result<_>>()?;
        let mut attributes = Vec::new();
        for (attr, ty_name) in attrs {
            let ty = self.type_ref(ty_name)?;
            attributes.push(AttrDef {
                name: attr.to_string(),
                ty,
            });
        }
        self.install(
            name,
            TypeKind::Tuple {
                supertypes,
                attributes,
            },
        )
    }

    /// Define a set type: `type name is {element}`.
    pub fn define_set(&mut self, name: &str, element: &str) -> Result<TypeId> {
        let element = self.type_ref(element)?;
        self.install(name, TypeKind::Set { element })
    }

    /// Define a list type: `type name is <element>`.
    pub fn define_list(&mut self, name: &str, element: &str) -> Result<TypeId> {
        let element = self.type_ref(element)?;
        self.install(name, TypeKind::List { element })
    }

    fn install(&mut self, name: &str, kind: TypeKind) -> Result<TypeId> {
        let id = self.declare(name)?;
        let slot = &mut self.defs[id.index()];
        if slot.is_some() {
            return Err(GomError::DuplicateType(name.to_string()));
        }
        // Check directly-declared attribute names are pairwise distinct.
        if let TypeKind::Tuple { attributes, .. } = &kind {
            for (i, a) in attributes.iter().enumerate() {
                if attributes[..i].iter().any(|b| b.name == a.name) {
                    return Err(GomError::DuplicateAttribute {
                        ty: name.to_string(),
                        attr: a.name.clone(),
                    });
                }
            }
        }
        *slot = Some(TypeDef {
            name: name.to_string(),
            kind,
        });
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Resolve a type *name* to a [`TypeRef`] — atomic built-ins are
    /// recognized by name, anything else is (auto-declared and) named.
    pub fn type_ref(&mut self, name: &str) -> Result<TypeRef> {
        if let Some(atomic) = AtomicType::by_name(name) {
            return Ok(TypeRef::Atomic(atomic));
        }
        Ok(TypeRef::Named(self.declare(name)?))
    }

    /// Resolve a known type name to its id (no auto-declaration).
    pub fn resolve(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// Resolve a known type name, erroring when absent.
    pub fn require(&self, name: &str) -> Result<TypeId> {
        self.resolve(name)
            .ok_or_else(|| GomError::UnknownType(name.to_string()))
    }

    /// The name of a type id.
    pub fn name(&self, id: TypeId) -> &str {
        &self.names[id.index()]
    }

    /// Human-readable name of a [`TypeRef`].
    pub fn ref_name(&self, r: TypeRef) -> String {
        match r {
            TypeRef::Atomic(a) => a.name().to_string(),
            TypeRef::Named(id) => self.name(id).to_string(),
        }
    }

    /// The definition of a type; errors when only forward-declared.
    pub fn def(&self, id: TypeId) -> Result<&TypeDef> {
        self.defs
            .get(id.index())
            .and_then(|d| d.as_ref())
            .ok_or_else(|| GomError::UnknownType(self.names[id.index()].clone()))
    }

    /// Number of declared types.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// `true` when no types are declared.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterate over all *defined* types, in definition order.
    pub fn types(&self) -> impl Iterator<Item = (TypeId, &TypeDef)> {
        self.defs
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().map(|d| (TypeId::from_index(i), d)))
    }

    // ------------------------------------------------------------------
    // Inheritance
    // ------------------------------------------------------------------

    /// The flattened attribute list of a tuple type: inherited attributes
    /// (supertypes first, in declaration order, depth-first) followed by the
    /// type's own attributes.  Detects name clashes arising from multiple
    /// inheritance.
    pub fn all_attributes(&self, id: TypeId) -> Result<Vec<AttrDef>> {
        let mut out: Vec<AttrDef> = Vec::new();
        let mut visited = vec![false; self.defs.len()];
        self.collect_attributes(id, &mut out, &mut visited, &mut Vec::new())?;
        Ok(out)
    }

    fn collect_attributes(
        &self,
        id: TypeId,
        out: &mut Vec<AttrDef>,
        visited: &mut [bool],
        stack: &mut Vec<TypeId>,
    ) -> Result<()> {
        if stack.contains(&id) {
            return Err(GomError::InheritanceCycle(self.name(id).to_string()));
        }
        if visited[id.index()] {
            // Diamond inheritance: the shared supertype contributes once.
            return Ok(());
        }
        visited[id.index()] = true;
        stack.push(id);
        let def = self.def(id)?;
        for &sup in def.supertypes() {
            let sup_def = self.def(sup)?;
            if !sup_def.kind.is_tuple() {
                return Err(GomError::InvalidSupertype {
                    ty: self.name(id).to_string(),
                    supertype: self.name(sup).to_string(),
                });
            }
            self.collect_attributes(sup, out, visited, stack)?;
        }
        for attr in def.own_attributes() {
            if out.iter().any(|a| a.name == attr.name) {
                return Err(GomError::DuplicateAttribute {
                    ty: self.name(id).to_string(),
                    attr: attr.name.clone(),
                });
            }
            out.push(attr.clone());
        }
        stack.pop();
        Ok(())
    }

    /// The declared domain of attribute `attr` on tuple type `id`
    /// (searching supertypes).
    pub fn attribute_type(&self, id: TypeId, attr: &str) -> Result<TypeRef> {
        self.all_attributes(id)?
            .into_iter()
            .find(|a| a.name == attr)
            .map(|a| a.ty)
            .ok_or_else(|| GomError::UnknownAttribute {
                ty: self.name(id).to_string(),
                attr: attr.to_string(),
            })
    }

    /// Reflexive-transitive subtype test: is `sub` a subtype of `sup`?
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        if sub == sup {
            return true;
        }
        let Ok(def) = self.def(sub) else { return false };
        def.supertypes().iter().any(|&s| self.is_subtype(s, sup))
    }

    /// Does a value of type `actual` conform to declared upper bound
    /// `declared` under strong typing?
    pub fn conforms(&self, actual: TypeRef, declared: TypeRef) -> bool {
        match (actual, declared) {
            (TypeRef::Atomic(a), TypeRef::Atomic(b)) => a == b,
            (TypeRef::Named(a), TypeRef::Named(b)) => self.is_subtype(a, b),
            _ => false,
        }
    }

    /// All *direct and transitive* subtypes of `id`, including `id` itself.
    /// Used to enumerate the extension of a type (instances of subtypes are
    /// members of the supertype's extension).
    pub fn subtype_closure(&self, id: TypeId) -> Vec<TypeId> {
        self.types()
            .map(|(tid, _)| tid)
            .filter(|&tid| self.is_subtype(tid, id))
            .collect()
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Check the whole schema: every declared type is defined, supertypes
    /// are tuple types, the inheritance graph is acyclic, and flattened
    /// attribute lists are clash-free.
    pub fn validate(&self) -> Result<()> {
        for (i, def) in self.defs.iter().enumerate() {
            if def.is_none() {
                return Err(GomError::UnknownType(self.names[i].clone()));
            }
        }
        for (id, def) in self.types() {
            if def.kind.is_tuple() {
                self.all_attributes(id)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn robot_schema() -> Schema {
        let mut s = Schema::new();
        s.define_tuple("MANUFACTURER", [("Name", "STRING"), ("Location", "STRING")])
            .unwrap();
        s.define_tuple(
            "TOOL",
            [("Function", "STRING"), ("ManufacturedBy", "MANUFACTURER")],
        )
        .unwrap();
        s.define_tuple("ARM", [("MountedTool", "TOOL")]).unwrap();
        s.define_tuple("ROBOT", [("Name", "STRING"), ("Arm", "ARM")])
            .unwrap();
        s.define_set("ROBOT_SET", "ROBOT").unwrap();
        s
    }

    #[test]
    fn robot_schema_validates() {
        let s = robot_schema();
        s.validate().unwrap();
        assert_eq!(s.types().count(), 5);
    }

    #[test]
    fn attribute_lookup() {
        let s = robot_schema();
        let robot = s.resolve("ROBOT").unwrap();
        let arm_ty = s.attribute_type(robot, "Arm").unwrap();
        assert_eq!(s.ref_name(arm_ty), "ARM");
        assert!(matches!(
            s.attribute_type(robot, "Wheels"),
            Err(GomError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn forward_references_resolve() {
        let mut s = Schema::new();
        // PRODUCT references BASEPART_SET before it is defined.
        s.define_tuple(
            "PRODUCT",
            [("Name", "STRING"), ("Composition", "BASEPART_SET")],
        )
        .unwrap();
        assert!(s.validate().is_err(), "BASEPART_SET still undefined");
        s.define_set("BASEPART_SET", "BASEPART").unwrap();
        s.define_tuple("BASEPART", [("Name", "STRING"), ("Price", "DECIMAL")])
            .unwrap();
        s.validate().unwrap();
    }

    #[test]
    fn duplicate_definition_rejected() {
        let mut s = Schema::new();
        s.define_tuple("A", [("x", "INTEGER")]).unwrap();
        assert!(matches!(
            s.define_tuple("A", []),
            Err(GomError::DuplicateType(_))
        ));
        assert!(matches!(
            s.declare("STRING"),
            Err(GomError::DuplicateType(_))
        ));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut s = Schema::new();
        let err = s
            .define_tuple("A", [("x", "INTEGER"), ("x", "STRING")])
            .unwrap_err();
        assert!(matches!(err, GomError::DuplicateAttribute { .. }));
    }

    #[test]
    fn single_inheritance_flattens() {
        let mut s = Schema::new();
        s.define_tuple("VEHICLE", [("Speed", "INTEGER")]).unwrap();
        s.define_tuple_sub("CAR", ["VEHICLE"], [("Doors", "INTEGER")])
            .unwrap();
        let car = s.resolve("CAR").unwrap();
        let attrs = s.all_attributes(car).unwrap();
        assert_eq!(
            attrs.iter().map(|a| a.name.as_str()).collect::<Vec<_>>(),
            vec!["Speed", "Doors"]
        );
        // Inherited attribute resolves through the subtype.
        assert!(s.attribute_type(car, "Speed").is_ok());
    }

    #[test]
    fn multiple_inheritance_and_diamond() {
        let mut s = Schema::new();
        s.define_tuple("NAMED", [("Name", "STRING")]).unwrap();
        s.define_tuple_sub("PRICED", ["NAMED"], [("Price", "DECIMAL")])
            .unwrap();
        s.define_tuple_sub("TRACKED", ["NAMED"], [("Serial", "INTEGER")])
            .unwrap();
        // Diamond: NAMED is reachable twice but contributes `Name` once.
        s.define_tuple_sub("PART", ["PRICED", "TRACKED"], [("Weight", "FLOAT")])
            .unwrap();
        let part = s.resolve("PART").unwrap();
        let attrs = s.all_attributes(part).unwrap();
        assert_eq!(
            attrs.iter().map(|a| a.name.as_str()).collect::<Vec<_>>(),
            vec!["Name", "Price", "Serial", "Weight"]
        );
    }

    #[test]
    fn conflicting_multiple_inheritance_rejected() {
        let mut s = Schema::new();
        s.define_tuple("A", [("x", "INTEGER")]).unwrap();
        s.define_tuple("B", [("x", "STRING")]).unwrap();
        s.define_tuple_sub("C", ["A", "B"], []).unwrap();
        let c = s.resolve("C").unwrap();
        assert!(matches!(
            s.all_attributes(c),
            Err(GomError::DuplicateAttribute { .. })
        ));
    }

    #[test]
    fn inheritance_cycle_detected() {
        let mut s = Schema::new();
        s.define_tuple_sub("A", ["B"], []).unwrap();
        s.define_tuple_sub("B", ["A"], []).unwrap();
        let a = s.resolve("A").unwrap();
        assert!(matches!(
            s.all_attributes(a),
            Err(GomError::InheritanceCycle(_))
        ));
        assert!(s.validate().is_err());
    }

    #[test]
    fn subtype_relation() {
        let mut s = Schema::new();
        s.define_tuple("A", []).unwrap();
        s.define_tuple_sub("B", ["A"], []).unwrap();
        s.define_tuple_sub("C", ["B"], []).unwrap();
        let (a, b, c) = (
            s.resolve("A").unwrap(),
            s.resolve("B").unwrap(),
            s.resolve("C").unwrap(),
        );
        assert!(s.is_subtype(c, a));
        assert!(s.is_subtype(b, b));
        assert!(!s.is_subtype(a, c));
        assert_eq!(s.subtype_closure(a).len(), 3);
        assert_eq!(s.subtype_closure(c), vec![c]);
    }

    #[test]
    fn atomic_supertype_rejected() {
        let mut s = Schema::new();
        assert!(matches!(
            s.define_tuple_sub("A", ["STRING"], []),
            Err(GomError::InvalidSupertype { .. })
        ));
    }

    #[test]
    fn set_of_atomic_elements() {
        let mut s = Schema::new();
        s.define_set("INTS", "INTEGER").unwrap();
        let id = s.resolve("INTS").unwrap();
        assert_eq!(
            s.def(id).unwrap().kind.element(),
            Some(TypeRef::Atomic(AtomicType::Integer))
        );
        s.validate().unwrap();
    }

    #[test]
    fn list_types() {
        let mut s = Schema::new();
        s.define_tuple("POINT", [("x", "FLOAT"), ("y", "FLOAT")])
            .unwrap();
        s.define_list("POLYGON", "POINT").unwrap();
        let id = s.resolve("POLYGON").unwrap();
        assert!(s.def(id).unwrap().kind.is_list());
        s.validate().unwrap();
    }
}
