//! Object identifiers.
//!
//! Every structured GOM instance (tuple, set or list) carries an **object
//! identifier** that remains invariant throughout its lifetime.  The OID is
//! invisible to the database user; the system uses it to reference objects,
//! which is what enables shared subobjects.  The paper fixes the stored size
//! of an OID at 8 bytes (`OIDsize = 8` in Figure 3), which is exactly the
//! width of the wrapped `u64` here.

use std::fmt;

/// An object identifier: an opaque, totally ordered 64-bit handle.
///
/// OIDs are rendered as `i42` following the paper's notation (`i0`, `i5`,
/// `i8`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(u64);

impl Oid {
    /// Construct an OID from its raw representation.
    ///
    /// Mostly useful in tests and when replaying persisted data; normal code
    /// obtains OIDs from [`OidGenerator`] or from the object base.
    pub const fn from_raw(raw: u64) -> Self {
        Oid(raw)
    }

    /// The raw 64-bit representation (what would be stored on a page).
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// Byte encoding used by the page-level structures (big-endian so that
    /// byte-wise comparison equals numeric comparison).
    pub const fn to_be_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Inverse of [`Oid::to_be_bytes`].
    pub const fn from_be_bytes(bytes: [u8; 8]) -> Self {
        Oid(u64::from_be_bytes(bytes))
    }
}

impl fmt::Display for Oid {
    /// Renders the paper's `i<n>` notation (`i0`, `i5`, `i8`, …).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Monotone generator of fresh OIDs.
///
/// The generator is deliberately simple: object bases are single-writer in
/// this library, so a plain counter suffices and keeps OID assignment
/// deterministic (important for reproducible experiments).
#[derive(Debug, Clone, Default)]
pub struct OidGenerator {
    next: u64,
}

impl OidGenerator {
    /// A generator that starts at `i0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator that starts at an arbitrary raw value (used when loading
    /// a pre-existing extension).
    pub fn starting_at(raw: u64) -> Self {
        OidGenerator { next: raw }
    }

    /// Hand out the next fresh OID.
    pub fn fresh(&mut self) -> Oid {
        let oid = Oid(self.next);
        self.next += 1;
        oid
    }

    /// Number of OIDs handed out so far (equals the next raw value).
    pub fn issued(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_monotone_and_dense() {
        let mut g = OidGenerator::new();
        let a = g.fresh();
        let b = g.fresh();
        let c = g.fresh();
        assert!(a < b && b < c);
        assert_eq!(a.as_raw(), 0);
        assert_eq!(c.as_raw(), 2);
        assert_eq!(g.issued(), 3);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Oid::from_raw(0).to_string(), "i0");
        assert_eq!(Oid::from_raw(14).to_string(), "i14");
    }

    #[test]
    fn byte_encoding_round_trips_and_orders() {
        let a = Oid::from_raw(5);
        let b = Oid::from_raw(300);
        assert_eq!(Oid::from_be_bytes(a.to_be_bytes()), a);
        // Big-endian encoding preserves order byte-wise.
        assert!(a.to_be_bytes() < b.to_be_bytes());
    }

    #[test]
    fn starting_at_resumes() {
        let mut g = OidGenerator::starting_at(100);
        assert_eq!(g.fresh().as_raw(), 100);
    }
}
