//! Values: the things attributes, set elements and list elements hold.
//!
//! A GOM value is either `NULL` (the undefined value every tuple attribute
//! is initialized to), an instance of a built-in elementary type (identified
//! by its value), or a *reference* to an object carrying identity.

use std::cmp::Ordering;
use std::fmt;

use crate::atomic::AtomicType;
use crate::oid::Oid;

/// Scale factor used for [`Value::Decimal`]: values are stored as integer
/// multiples of 1/100 (two decimal digits, enough for the paper's `Price`
/// examples such as `1205.50`).
pub const DECIMAL_SCALE: i64 = 100;

/// A GOM value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// The undefined value.  Freshly instantiated tuple attributes are NULL.
    Null,
    /// `INTEGER` value.
    Integer(i64),
    /// `FLOAT` value.  Stored as raw bits so `Value` can be `Eq + Hash`;
    /// constructed via [`Value::float`] and read via [`Value::as_float`].
    Float(u64),
    /// `DECIMAL` value scaled by [`DECIMAL_SCALE`].
    Decimal(i64),
    /// `STRING` value.
    String(String),
    /// `CHAR` value.
    Char(char),
    /// `BOOL` value.
    Bool(bool),
    /// Reference to an identity-carrying object.
    Ref(Oid),
}

impl Value {
    /// Build a string value (convenience over `Value::String(s.into())`).
    pub fn string(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// Build a float value from an `f64`.
    pub fn float(f: f64) -> Value {
        Value::Float(f.to_bits())
    }

    /// Build a decimal value from whole and fractional (cents) parts,
    /// e.g. `Value::decimal(1205, 50)` for the paper's `1205.50`.
    pub fn decimal(whole: i64, cents: i64) -> Value {
        let sign = if whole < 0 { -1 } else { 1 };
        Value::Decimal(whole * DECIMAL_SCALE + sign * cents)
    }

    /// Read a float value back, if this is one.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(bits) => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// Read the referenced OID, if this value is a reference.
    pub fn as_ref_oid(&self) -> Option<Oid> {
        match self {
            Value::Ref(oid) => Some(*oid),
            _ => None,
        }
    }

    /// Read an integer back, if this is one.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Read a string slice back, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `true` iff this is the undefined value.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The atomic type of this value, or `None` for `NULL` and references.
    pub fn atomic_type(&self) -> Option<AtomicType> {
        match self {
            Value::Integer(_) => Some(AtomicType::Integer),
            Value::Float(_) => Some(AtomicType::Float),
            Value::Decimal(_) => Some(AtomicType::Decimal),
            Value::String(_) => Some(AtomicType::String),
            Value::Char(_) => Some(AtomicType::Char),
            Value::Bool(_) => Some(AtomicType::Bool),
            Value::Null | Value::Ref(_) => None,
        }
    }

    /// Approximate stored size of the value in bytes.  References and
    /// numeric values occupy 8 bytes (= `OIDsize`); strings occupy their
    /// UTF-8 length.  Used by the page simulator for clustered object files.
    pub fn stored_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Integer(_) | Value::Float(_) | Value::Decimal(_) | Value::Ref(_) => 8,
            Value::Char(_) => 4,
            Value::Bool(_) => 1,
            Value::String(s) => s.len(),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used for B+ tree keys.  Values of different kinds order
    /// by a kind tag first; floats order by their IEEE total-order bits.
    fn cmp(&self, other: &Self) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Integer(_) => 1,
                Value::Float(_) => 2,
                Value::Decimal(_) => 3,
                Value::String(_) => 4,
                Value::Char(_) => 5,
                Value::Bool(_) => 6,
                Value::Ref(_) => 7,
            }
        }
        tag(self)
            .cmp(&tag(other))
            .then_with(|| match (self, other) {
                (Value::Integer(a), Value::Integer(b)) => a.cmp(b),
                (Value::Float(a), Value::Float(b)) => {
                    f64::from_bits(*a).total_cmp(&f64::from_bits(*b))
                }
                (Value::Decimal(a), Value::Decimal(b)) => a.cmp(b),
                (Value::String(a), Value::String(b)) => a.cmp(b),
                (Value::Char(a), Value::Char(b)) => a.cmp(b),
                (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
                (Value::Ref(a), Value::Ref(b)) => a.cmp(b),
                _ => Ordering::Equal,
            })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(bits) => write!(f, "{}", f64::from_bits(*bits)),
            Value::Decimal(scaled) => {
                write!(
                    f,
                    "{}.{:02}",
                    scaled / DECIMAL_SCALE,
                    (scaled % DECIMAL_SCALE).abs()
                )
            }
            Value::String(s) => write!(f, "\"{s}\""),
            Value::Char(c) => write!(f, "'{c}'"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ref(oid) => write!(f, "{oid}"),
        }
    }
}

impl From<Oid> for Value {
    fn from(oid: Oid) -> Self {
        Value::Ref(oid)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Integer(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::string(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_display_matches_paper() {
        assert_eq!(Value::decimal(1205, 50).to_string(), "1205.50");
        assert_eq!(Value::decimal(0, 12).to_string(), "0.12");
    }

    #[test]
    fn float_round_trips() {
        let v = Value::float(3.25);
        assert_eq!(v.as_float(), Some(3.25));
        assert_eq!(v.atomic_type(), Some(AtomicType::Float));
    }

    #[test]
    fn ordering_is_total_and_kind_first() {
        let mut vals = vec![
            Value::string("b"),
            Value::Integer(5),
            Value::Null,
            Value::Ref(Oid::from_raw(1)),
            Value::string("a"),
            Value::Integer(-1),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Integer(-1),
                Value::Integer(5),
                Value::string("a"),
                Value::string("b"),
                Value::Ref(Oid::from_raw(1)),
            ]
        );
    }

    #[test]
    fn float_ordering_uses_total_cmp() {
        let a = Value::float(-1.0);
        let b = Value::float(1.0);
        let nan = Value::float(f64::NAN);
        assert!(a < b);
        assert!(
            b < nan,
            "positive NaN sorts above all finite values in total order"
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Integer(7).as_integer(), Some(7));
        assert_eq!(Value::string("x").as_str(), Some("x"));
        assert_eq!(
            Value::Ref(Oid::from_raw(3)).as_ref_oid(),
            Some(Oid::from_raw(3))
        );
        assert!(Value::Null.is_null());
        assert_eq!(Value::string("x").as_integer(), None);
    }

    #[test]
    fn stored_sizes() {
        assert_eq!(Value::Ref(Oid::from_raw(0)).stored_size(), 8);
        assert_eq!(Value::string("abcd").stored_size(), 4);
    }
}
