//! Minimal, dependency-free stand-in for the subset of the `criterion` 0.5
//! API this workspace's benches use.
//!
//! The build environment is fully offline (no registry access), so the
//! external `criterion` crate is replaced by this local harness. It runs
//! each benchmark a fixed number of warm-up and measurement iterations with
//! `std::time::Instant` and prints a mean time per iteration — enough to
//! compare orders of magnitude locally, without criterion's statistics,
//! plotting, or baseline storage.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; both variants behave identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The per-benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

fn run_one(group: Option<&str>, name: &str, sample_iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // One warm-up pass, then the measured pass.
    let mut warmup = Bencher::new(1);
    f(&mut warmup);
    let mut bench = Bencher::new(sample_iters);
    f(&mut bench);
    let per_iter = bench.elapsed.as_nanos() / u128::from(bench.iters.max(1));
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    println!("{label:<48} {per_iter:>12} ns/iter ({} iters)", bench.iters);
}

/// Top-level benchmark context, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_iters: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(None, name, self.sample_iters, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_iters: self.sample_iters,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_iters = (n as u64).max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.to_string(), self.sample_iters, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        // One warm-up iteration plus `sample_iters` measured ones.
        assert_eq!(calls, 11);
    }

    #[test]
    fn groups_run_batched_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut seen = Vec::new();
        group.bench_function("batched", |b| {
            b.iter_batched(|| 5u32, |x| seen.push(x), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(seen, vec![5, 5, 5, 5]);
    }
}
