//! Snapshot persistence at workload scale: a generated database with
//! registered ASRs survives save/load with identical query behaviour.

use asr_core::{AsrConfig, Cell, Database, Decomposition, Extension};
use asr_workload::{generate, GeneratorSpec};

#[test]
fn generated_database_round_trips_through_snapshots() {
    let spec = GeneratorSpec {
        counts: vec![30, 150, 300, 1500, 3000],
        defined: vec![27, 120, 240, 600],
        fan: vec![2, 2, 3, 4],
        sizes: vec![500, 400, 300, 300, 100],
    };
    let mut g = generate(&spec, 99);
    let m = g.path.arity(false) - 1;
    let id =
        g.db.create_asr(
            g.path.clone(),
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(m),
                keep_set_oids: false,
            },
        )
        .unwrap();

    let text = g.db.save_to_string();
    let restored = Database::load_from_string(&text).unwrap();
    assert_eq!(restored.base().object_count(), g.db.base().object_count());
    assert_eq!(restored.asrs().count(), 1);

    // Every rebuilt partition matches the original's logical content.
    let orig = g.db.asr(id).unwrap();
    let (rid, rasr) = restored.asrs().next().unwrap();
    assert!(
        orig.full_rows().eq(rasr.full_rows()),
        "extensions identical after restore"
    );

    // Spot-check queries across the restored database.
    for &target in g.levels[4].iter().step_by(311) {
        let want = g.db.backward(id, 0, 4, &Cell::Oid(target)).unwrap();
        let got = restored.backward(rid, 0, 4, &Cell::Oid(target)).unwrap();
        assert_eq!(got, want, "target {target}");
    }
    for &start in g.levels[0].iter().step_by(7) {
        let want = g.db.forward(id, 0, 4, start).unwrap();
        let got = restored.forward(rid, 0, 4, start).unwrap();
        assert_eq!(got, want, "start {start}");
    }

    // Snapshot sizes stay linear in the database (sanity: no quadratic
    // blowup from escaping).
    assert!(
        text.len() < 400_000,
        "snapshot unexpectedly large: {} bytes",
        text.len()
    );
}

#[test]
fn restored_generated_database_keeps_maintaining() {
    let spec = GeneratorSpec {
        counts: vec![10, 40, 80, 160],
        defined: vec![9, 32, 64],
        fan: vec![2, 2, 2],
        sizes: vec![400, 300, 200, 100],
    };
    let mut g = generate(&spec, 5);
    let m = g.path.arity(false) - 1;
    g.db.create_asr(
        g.path.clone(),
        AsrConfig {
            extension: Extension::LeftComplete,
            decomposition: Decomposition::none(m),
            keep_set_oids: false,
        },
    )
    .unwrap();
    let mut restored = Database::load_from_string(&g.db.save_to_string()).unwrap();

    // Insert a fresh edge at the last step through the restored database.
    let owner = g.levels[2]
        .iter()
        .find(|&&o| {
            restored
                .base()
                .get_attribute(o, "A3")
                .map(|v| !v.is_null())
                .unwrap_or(false)
        })
        .copied()
        .expect("some owner has a set");
    let set = restored
        .base()
        .get_attribute(owner, "A3")
        .unwrap()
        .as_ref_oid()
        .unwrap();
    let elem = restored.instantiate("T3").unwrap();
    restored
        .insert_into_set(set, asr_gom::Value::Ref(elem))
        .unwrap();

    let (_, asr) = restored.asrs().next().unwrap();
    asr.check_consistency().unwrap();
    let reference = asr_core::AccessSupportRelation::build(
        restored.base(),
        asr.path().clone(),
        asr.config().clone(),
        asr_pagesim::IoStats::new_handle(),
    )
    .unwrap();
    assert!(asr.full_rows().eq(reference.full_rows()));
}
