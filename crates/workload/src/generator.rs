//! Profile-driven object-base generation.
//!
//! [`generate`] materializes an `asr_costmodel::Profile` as a chain schema
//!
//! ```text
//! T0 --A1--> {T1} --A2--> {T2} --…--> {Tn}
//! ```
//!
//! with `c_i` objects per level, of which `d_i` have their `A_{i+1}`
//! attribute defined, each referencing `round(fan_i)` distinct random
//! targets of the next level.  Steps with `fan_i > 1` become set
//! occurrences, `fan_i = 1` single-valued attributes — matching how the
//! paper's analysis treats fan-out.  Generation is seeded and fully
//! reproducible.

use asr_core::{Database, ObjectStore};
use asr_costmodel::Profile;
use asr_gom::{ObjectBase, Oid, PathExpression, Schema, Value};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How one path level is generated.
#[derive(Debug, Clone)]
pub struct GeneratorSpec {
    /// Objects per level (`c_i`), length `n + 1`.
    pub counts: Vec<usize>,
    /// Objects with defined attribute per level (`d_i`), length `n`.
    pub defined: Vec<usize>,
    /// References per defined attribute (`fan_i`), length `n`.
    pub fan: Vec<usize>,
    /// Clustered object sizes (`size_i`), length `n + 1`.
    pub sizes: Vec<usize>,
}

impl GeneratorSpec {
    /// Derive a generator spec from an analytical profile, optionally
    /// dividing the population by `scale` (at least one object per level
    /// survives; `d_i ≤ c_i` is preserved).
    pub fn from_profile(profile: &Profile, scale: f64) -> Self {
        let shrink = |v: f64| ((v / scale).round() as usize).max(1);
        let counts: Vec<usize> = profile.c.iter().map(|&c| shrink(c)).collect();
        let defined: Vec<usize> = profile
            .d
            .iter()
            .zip(&counts)
            .map(|(&d, &c)| shrink(d).min(c))
            .collect();
        let fan: Vec<usize> = profile
            .fan
            .iter()
            .map(|&f| (f.round() as usize).max(1))
            .collect();
        let sizes: Vec<usize> = profile.size.iter().map(|&s| (s as usize).max(1)).collect();
        GeneratorSpec {
            counts,
            defined,
            fan,
            sizes,
        }
    }

    /// Path length `n`.
    pub fn n(&self) -> usize {
        self.counts.len() - 1
    }
}

/// Downscale an analytical profile by `factor` (population only; fan-outs
/// and sizes are preserved).  Used to validate model shapes empirically at
/// laptop scale.
pub fn scale_profile(profile: &Profile, factor: f64) -> Profile {
    let scaled_c: Vec<f64> = profile
        .c
        .iter()
        .map(|&c| (c / factor).round().max(1.0))
        .collect();
    let scaled_d: Vec<f64> = profile
        .d
        .iter()
        .zip(&scaled_c)
        .map(|(&d, &c)| (d / factor).round().max(1.0).min(c))
        .collect();
    Profile {
        n: profile.n,
        c: scaled_c,
        d: scaled_d,
        fan: profile.fan.clone(),
        size: profile.size.clone(),
        shar: None,
    }
}

/// A generated database with the bookkeeping needed to drive experiments.
#[derive(Debug)]
pub struct GeneratedBase {
    /// The populated database (object store synced and sized).
    pub db: Database,
    /// The generated chain path `T0.A1.….An`.
    pub path: PathExpression,
    /// Level-by-level object lists.
    pub levels: Vec<Vec<Oid>>,
    /// The set instance attached to each defined set-valued attribute:
    /// `(level, owner) -> set`, stored as parallel vectors per level.
    pub sets: Vec<Vec<Option<Oid>>>,
}

/// The chain schema for a spec: level types `T0 … Tn`, attribute `A_{i+1}`
/// on `T_i`, set-typed (`Si`) when `fan_i > 1`.
fn chain_schema(spec: &GeneratorSpec) -> (Schema, String) {
    let n = spec.n();
    let mut schema = Schema::new();
    let mut dotted = String::from("T0");
    for l in 0..=n {
        let tname = format!("T{l}");
        if l < n {
            let attr = format!("A{}", l + 1);
            let target = if spec.fan[l] > 1 {
                let set_name = format!("S{}", l + 1);
                schema
                    .define_set(&set_name, &format!("T{}", l + 1))
                    .unwrap();
                set_name
            } else {
                format!("T{}", l + 1)
            };
            schema
                .define_tuple(&tname, [(attr.as_str(), target.as_str())])
                .unwrap();
            dotted.push('.');
            dotted.push_str(&format!("A{}", l + 1));
        } else {
            schema.define_tuple(&tname, [("Tag", "INTEGER")]).unwrap();
        }
    }
    (schema, dotted)
}

/// Materialize `spec` into a database, seeded for reproducibility.
///
/// The object base is populated through plain `ObjectBase` mutations (no
/// ASRs registered yet — create them afterwards via
/// [`Database::create_asr`], which bulk-builds from the current state).
pub fn generate(spec: &GeneratorSpec, seed: u64) -> GeneratedBase {
    let n = spec.n();
    let (schema, dotted) = chain_schema(spec);
    schema.validate().expect("generated chain schema is valid");
    let path = PathExpression::parse(&schema, &dotted).expect("generated path is valid");
    let mut rng = SmallRng::seed_from_u64(seed);

    let mut base = ObjectBase::new(schema);
    let mut levels: Vec<Vec<Oid>> = Vec::with_capacity(n + 1);
    for l in 0..=n {
        let mut objs = Vec::with_capacity(spec.counts[l]);
        for _ in 0..spec.counts[l] {
            objs.push(base.instantiate(&format!("T{l}")).expect("type exists"));
        }
        levels.push(objs);
    }

    let mut sets: Vec<Vec<Option<Oid>>> = Vec::with_capacity(n);
    for l in 0..n {
        let attr = format!("A{}", l + 1);
        let is_set = spec.fan[l] > 1;
        // The d_l defined owners are a random sample of the level.
        let mut owners = levels[l].clone();
        owners.shuffle(&mut rng);
        owners.truncate(spec.defined[l].min(levels[l].len()));
        let mut level_sets = vec![None; levels[l].len()];
        for owner in owners {
            let idx = levels[l]
                .iter()
                .position(|&o| o == owner)
                .expect("owner in level");
            let targets = sample_targets(&levels[l + 1], spec.fan[l], &mut rng);
            if is_set {
                let set = base.instantiate(&format!("S{}", l + 1)).expect("set type");
                base.set_attribute(owner, &attr, Value::Ref(set))
                    .expect("typed");
                for t in targets {
                    base.insert_into_set(set, Value::Ref(t)).expect("typed");
                }
                level_sets[idx] = Some(set);
            } else {
                base.set_attribute(owner, &attr, Value::Ref(targets[0]))
                    .expect("typed");
            }
        }
        sets.push(level_sets);
    }
    // Tag the terminal level so values exist for value-targeted queries.
    for (i, &o) in levels[n].iter().enumerate() {
        base.set_attribute(o, "Tag", Value::Integer(i as i64))
            .expect("typed");
    }

    // Wrap in a Database with properly sized clustered files.
    let stats = asr_pagesim_stats();
    let mut store = ObjectStore::new(std::rc::Rc::clone(&stats));
    for (l, &size) in spec.sizes.iter().enumerate() {
        if let Some(ty) = base.schema().resolve(&format!("T{l}")) {
            store.set_type_size(ty, size);
        }
        // Set instances are inlined with their owners; give their file a
        // token size so registration is cheap.
        if let Some(ty) = base.schema().resolve(&format!("S{l}")) {
            store.set_type_size(ty, 16);
        }
    }
    store.sync_with_base(&base).expect("sync");
    let db = Database::from_parts(base, store, stats);

    GeneratedBase {
        db,
        path,
        levels,
        sets,
    }
}

fn asr_pagesim_stats() -> asr_pagesim::StatsHandle {
    asr_pagesim::IoStats::new_handle()
}

/// Sample `fan` distinct targets (or as many as exist).
fn sample_targets(pool: &[Oid], fan: usize, rng: &mut SmallRng) -> Vec<Oid> {
    if pool.len() <= fan {
        return pool.to_vec();
    }
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < fan {
        picked.insert(pool[rng.gen_range(0..pool.len())]);
    }
    picked.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_core::{AsrConfig, Cell, Decomposition, Extension};
    use asr_costmodel::profiles;

    fn small_spec() -> GeneratorSpec {
        GeneratorSpec {
            counts: vec![10, 20, 30, 40, 50],
            defined: vec![9, 16, 24, 20],
            fan: vec![2, 2, 3, 4],
            sizes: vec![500, 400, 300, 300, 100],
        }
    }

    #[test]
    fn generation_matches_spec() {
        let spec = small_spec();
        let g = generate(&spec, 42);
        assert_eq!(g.levels.len(), 5);
        for (l, objs) in g.levels.iter().enumerate() {
            assert_eq!(objs.len(), spec.counts[l], "level {l}");
        }
        assert_eq!(g.path.len(), 4);
        assert_eq!(g.path.set_occurrences(), 4, "all fans > 1 here");
        // Exactly d_l owners have the attribute defined.
        for l in 0..4 {
            let attr = format!("A{}", l + 1);
            let defined = g.levels[l]
                .iter()
                .filter(|&&o| !g.db.base().get_attribute(o, &attr).unwrap().is_null())
                .count();
            assert_eq!(defined, spec.defined[l], "level {l}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let a = generate(&spec, 7);
        let b = generate(&spec, 7);
        assert_eq!(a.db.base().object_count(), b.db.base().object_count());
        // Same wiring: compare a sample forward query result.
        let path = a.path.clone();
        let start = a.levels[0][0];
        let ra = a.db.forward_unindexed(&path, 0, 4, start).unwrap();
        let rb = b.db.forward_unindexed(&b.path, 0, 4, start).unwrap();
        assert_eq!(ra, rb);
        // Different seeds differ (overwhelmingly likely).
        let c = generate(&spec, 8);
        let rc = c.db.forward_unindexed(&c.path, 0, 4, start).unwrap();
        assert!(
            ra != rc || a.db.base().object_count() == 5,
            "seed must matter"
        );
    }

    #[test]
    fn fan_one_steps_are_single_valued() {
        let spec = GeneratorSpec {
            counts: vec![5, 5, 5],
            defined: vec![5, 5],
            fan: vec![1, 1],
            sizes: vec![100, 100, 100],
        };
        let g = generate(&spec, 1);
        assert!(g.path.is_linear());
    }

    #[test]
    fn generated_base_supports_asrs_and_queries() {
        let spec = small_spec();
        let mut g = generate(&spec, 3);
        let m = g.path.arity(false) - 1;
        let id =
            g.db.create_asr(
                g.path.clone(),
                AsrConfig {
                    extension: Extension::Full,
                    decomposition: Decomposition::binary(m),
                    keep_set_oids: false,
                },
            )
            .unwrap();
        // Supported and naive answers agree on a backward query.
        let target = Cell::Oid(g.levels[4][0]);
        let sup = g.db.backward(id, 0, 4, &target).unwrap();
        let naive = g.db.backward_unindexed(&g.path, 0, 4, &target).unwrap();
        assert_eq!(sup, naive);
    }

    #[test]
    fn profile_scaling() {
        let m = profiles::fig6_profile();
        let scaled = scale_profile(&m.profile, 10.0);
        assert_eq!(scaled.c[0], 10.0);
        assert_eq!(scaled.c[4], 1000.0);
        assert!(scaled.d.iter().zip(&scaled.c).all(|(d, c)| d <= c));
        let spec = GeneratorSpec::from_profile(&scaled, 1.0);
        assert_eq!(spec.counts, vec![10, 50, 100, 500, 1000]);
        assert_eq!(spec.fan, vec![2, 2, 3, 4]);
    }

    #[test]
    fn store_sizes_follow_profile() {
        let spec = small_spec();
        let g = generate(&spec, 9);
        let t0 = g.db.base().schema().resolve("T0").unwrap();
        // size 500 -> 8 objects/page -> 10 objects on 2 pages.
        assert_eq!(g.db.store().page_count(t0), 2);
    }
}
