//! The paper's two running example databases, ready to use.
//!
//! * [`robot_database`] — Section 2.2's linear engineering schema
//!   (`ROBOT → ARM → TOOL → MANUFACTURER`) with the Figure 1 extension
//!   (`R2D2`, `X4D5`, `Robi`; shared tool `i7`, shared manufacturer
//!   `RobClone`);
//! * [`company_database`] — Section 2.3's schema with set occurrences
//!   (`Division → {Product} → {BasePart}`) and the Figure 2 extension
//!   (`Auto`/`Truck`/`Space`, `560 SEC`/`MB Trak`/`Sausage`,
//!   `Door`/`Pepper`).

use asr_core::Database;
use asr_gom::{Oid, PathExpression, Schema, Value};

/// A ready-made example database plus its canonical path expression.
#[derive(Debug)]
pub struct ExampleDb {
    /// The database (maintained updates and metered queries available).
    pub db: Database,
    /// The path expression the paper's queries navigate.
    pub path: PathExpression,
}

impl ExampleDb {
    /// Find an object by its `Name` attribute (test/demo convenience).
    pub fn by_name(&self, name: &str) -> Option<Oid> {
        self.db
            .base()
            .objects()
            .find(|o| o.attribute("Name") == &Value::string(name))
            .map(|o| o.oid)
    }
}

/// Build the Section 2.2 robot database (Figure 1 extension).
///
/// Path: `ROBOT.Arm.MountedTool.ManufacturedBy.Location` (Query 1 finds
/// the robots using a tool manufactured in "Utopia").
pub fn robot_database() -> ExampleDb {
    let mut s = Schema::new();
    s.define_set("ROBOT_SET", "ROBOT").unwrap();
    s.define_tuple("ROBOT", [("Name", "STRING"), ("Arm", "ARM")])
        .unwrap();
    s.define_tuple("ARM", [("Kinematics", "STRING"), ("MountedTool", "TOOL")])
        .unwrap();
    s.define_tuple(
        "TOOL",
        [("Function", "STRING"), ("ManufacturedBy", "MANUFACTURER")],
    )
    .unwrap();
    s.define_tuple("MANUFACTURER", [("Name", "STRING"), ("Location", "STRING")])
        .unwrap();
    s.validate().unwrap();
    let path = PathExpression::parse(&s, "ROBOT.Arm.MountedTool.ManufacturedBy.Location").unwrap();
    let mut db = Database::new(s);

    // Figure 1: i0 (R2D2) -> i1 -> i2 (welding) -> i3 (RobClone, Utopia);
    // i5 (X4D5) -> i6 -> i7 (gripping) -> i3; i8 (Robi) -> i9 -> i7.
    let r2d2 = db.instantiate("ROBOT").unwrap();
    let arm1 = db.instantiate("ARM").unwrap();
    let welder = db.instantiate("TOOL").unwrap();
    let robclone = db.instantiate("MANUFACTURER").unwrap();
    let x4d5 = db.instantiate("ROBOT").unwrap();
    let arm2 = db.instantiate("ARM").unwrap();
    let gripper = db.instantiate("TOOL").unwrap();
    let robi = db.instantiate("ROBOT").unwrap();
    let arm3 = db.instantiate("ARM").unwrap();

    db.set_attribute(r2d2, "Name", Value::string("R2D2"))
        .unwrap();
    db.set_attribute(r2d2, "Arm", Value::Ref(arm1)).unwrap();
    db.set_attribute(arm1, "MountedTool", Value::Ref(welder))
        .unwrap();
    db.set_attribute(welder, "Function", Value::string("welding"))
        .unwrap();
    db.set_attribute(welder, "ManufacturedBy", Value::Ref(robclone))
        .unwrap();
    db.set_attribute(robclone, "Name", Value::string("RobClone"))
        .unwrap();
    db.set_attribute(robclone, "Location", Value::string("Utopia"))
        .unwrap();

    db.set_attribute(x4d5, "Name", Value::string("X4D5"))
        .unwrap();
    db.set_attribute(x4d5, "Arm", Value::Ref(arm2)).unwrap();
    db.set_attribute(arm2, "MountedTool", Value::Ref(gripper))
        .unwrap();
    db.set_attribute(gripper, "Function", Value::string("gripping"))
        .unwrap();
    db.set_attribute(gripper, "ManufacturedBy", Value::Ref(robclone))
        .unwrap();

    db.set_attribute(robi, "Name", Value::string("Robi"))
        .unwrap();
    db.set_attribute(robi, "Arm", Value::Ref(arm3)).unwrap();
    // Robi shares X4D5's gripping tool (shared subobject i7).
    db.set_attribute(arm3, "MountedTool", Value::Ref(gripper))
        .unwrap();

    let our_robots = db.instantiate("ROBOT_SET").unwrap();
    for r in [r2d2, x4d5, robi] {
        db.insert_into_set(our_robots, Value::Ref(r)).unwrap();
    }
    db.bind_variable("OurRobots", Value::Ref(our_robots));

    ExampleDb { db, path }
}

/// Build the Section 2.3 company database (Figure 2 extension).
///
/// Path: `Division.Manufactures.Composition.Name` (Query 2 finds the
/// divisions using a BasePart named "Door").
pub fn company_database() -> ExampleDb {
    let mut s = Schema::new();
    s.define_set("Company", "Division").unwrap();
    s.define_tuple(
        "Division",
        [("Name", "STRING"), ("Manufactures", "ProdSET")],
    )
    .unwrap();
    s.define_set("ProdSET", "Product").unwrap();
    s.define_tuple(
        "Product",
        [("Name", "STRING"), ("Composition", "BasePartSET")],
    )
    .unwrap();
    s.define_set("BasePartSET", "BasePart").unwrap();
    s.define_tuple("BasePart", [("Name", "STRING"), ("Price", "DECIMAL")])
        .unwrap();
    s.validate().unwrap();
    let path = PathExpression::parse(&s, "Division.Manufactures.Composition.Name").unwrap();
    let mut db = Database::new(s);

    let mercedes = db.instantiate("Company").unwrap();
    let auto = db.instantiate("Division").unwrap();
    let truck = db.instantiate("Division").unwrap();
    let space = db.instantiate("Division").unwrap();
    let prods_auto = db.instantiate("ProdSET").unwrap();
    let prods_truck = db.instantiate("ProdSET").unwrap();
    let sec = db.instantiate("Product").unwrap();
    let parts_sec = db.instantiate("BasePartSET").unwrap();
    let door = db.instantiate("BasePart").unwrap();
    let trak = db.instantiate("Product").unwrap();
    let sausage = db.instantiate("Product").unwrap();
    let parts_sausage = db.instantiate("BasePartSET").unwrap();
    let pepper = db.instantiate("BasePart").unwrap();

    for d in [auto, truck, space] {
        db.insert_into_set(mercedes, Value::Ref(d)).unwrap();
    }
    db.set_attribute(auto, "Name", Value::string("Auto"))
        .unwrap();
    db.set_attribute(auto, "Manufactures", Value::Ref(prods_auto))
        .unwrap();
    db.set_attribute(truck, "Name", Value::string("Truck"))
        .unwrap();
    db.set_attribute(truck, "Manufactures", Value::Ref(prods_truck))
        .unwrap();
    db.set_attribute(space, "Name", Value::string("Space"))
        .unwrap();

    db.insert_into_set(prods_auto, Value::Ref(sec)).unwrap();
    db.insert_into_set(prods_truck, Value::Ref(sec)).unwrap();
    db.insert_into_set(prods_truck, Value::Ref(trak)).unwrap();

    db.set_attribute(sec, "Name", Value::string("560 SEC"))
        .unwrap();
    db.set_attribute(sec, "Composition", Value::Ref(parts_sec))
        .unwrap();
    db.set_attribute(trak, "Name", Value::string("MB Trak"))
        .unwrap();
    db.set_attribute(sausage, "Name", Value::string("Sausage"))
        .unwrap();
    db.set_attribute(sausage, "Composition", Value::Ref(parts_sausage))
        .unwrap();

    db.insert_into_set(parts_sec, Value::Ref(door)).unwrap();
    db.insert_into_set(parts_sausage, Value::Ref(pepper))
        .unwrap();
    db.set_attribute(door, "Name", Value::string("Door"))
        .unwrap();
    db.set_attribute(door, "Price", Value::decimal(1205, 50))
        .unwrap();
    db.set_attribute(pepper, "Name", Value::string("Pepper"))
        .unwrap();
    db.set_attribute(pepper, "Price", Value::decimal(0, 12))
        .unwrap();

    db.bind_variable("Mercedes", Value::Ref(mercedes));

    ExampleDb { db, path }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_core::{AsrConfig, Cell, Decomposition, Extension};

    #[test]
    fn query_1_robots_using_utopia_tools() {
        let mut ex = robot_database();
        let id = ex
            .db
            .create_asr(
                ex.path.clone(),
                AsrConfig {
                    extension: Extension::Canonical,
                    decomposition: Decomposition::binary(4),
                    keep_set_oids: false,
                },
            )
            .unwrap();
        let hits = ex
            .db
            .backward(id, 0, 4, &Cell::Value(Value::string("Utopia")))
            .unwrap();
        let names: Vec<String> = hits
            .iter()
            .map(|&o| {
                ex.db
                    .base()
                    .get_attribute(o, "Name")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(
            names.len(),
            3,
            "all three robots use RobClone tools: {names:?}"
        );
    }

    #[test]
    fn query_2_divisions_using_door() {
        let mut ex = company_database();
        let id = ex
            .db
            .create_asr(
                ex.path.clone(),
                AsrConfig {
                    extension: Extension::Full,
                    decomposition: Decomposition::binary(3),
                    keep_set_oids: false,
                },
            )
            .unwrap();
        let hits = ex
            .db
            .backward(id, 0, 3, &Cell::Value(Value::string("Door")))
            .unwrap();
        assert_eq!(hits.len(), 2, "Auto and Truck both reach Door");
        assert!(hits.contains(&ex.by_name("Auto").unwrap()));
        assert!(hits.contains(&ex.by_name("Truck").unwrap()));
    }

    #[test]
    fn query_3_baseparts_of_auto() {
        let ex = company_database();
        let auto = ex.by_name("Auto").unwrap();
        let names = ex.db.forward_unindexed(&ex.path, 0, 3, auto).unwrap();
        assert_eq!(names, vec![Cell::Value(Value::string("Door"))]);
    }

    #[test]
    fn variables_bound() {
        let ex = company_database();
        assert!(ex.db.base().variable("Mercedes").is_ok());
        let ex = robot_database();
        assert!(ex.db.base().variable("OurRobots").is_ok());
        assert_eq!(ex.by_name("NotAThing"), None);
    }
}
