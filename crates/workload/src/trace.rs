//! Executable operation traces.
//!
//! The analytical model prices an operation mix `M = (Q_mix, U_mix,
//! P_up)`; this module draws a concrete, seeded sequence of operations
//! from the same distribution and *executes* it against a live
//! [`Database`], metering real page accesses — the empirical counterpart
//! of `asr_costmodel::CostModel::mix_cost` used by the `validate`
//! experiment.

use asr_core::{AsrId, Cell, Database};
use asr_costmodel::{Mix, Op, QueryKind};
use asr_gom::{Oid, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::generator::GeneratedBase;

/// One concrete operation of a trace.
#[derive(Debug, Clone)]
pub enum TraceOp {
    /// Forward span query from a concrete object.
    Forward {
        /// Span start.
        i: usize,
        /// Span end.
        j: usize,
        /// The anchor object.
        start: Oid,
    },
    /// Backward span query towards a concrete target.
    Backward {
        /// Span start.
        i: usize,
        /// Span end.
        j: usize,
        /// The target cell.
        target: Cell,
    },
    /// The paper's `ins_i`: insert `elem` into the set hanging off
    /// `owner`'s step-`i+1` attribute.
    Insert {
        /// Edge position `i`.
        i: usize,
        /// The owning `t_i` object.
        owner: Oid,
        /// The `t_{i+1}` element to insert.
        elem: Oid,
    },
}

/// Aggregated result of executing a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Operations executed.
    pub operations: usize,
    /// Page accesses spent in queries.
    pub query_accesses: u64,
    /// Queries executed.
    pub queries: usize,
    /// Page accesses spent in updates (object + ASR maintenance).
    pub update_accesses: u64,
    /// Updates executed.
    pub updates: usize,
}

impl TraceReport {
    /// Total page accesses.
    pub fn total_accesses(&self) -> u64 {
        self.query_accesses + self.update_accesses
    }

    /// Mean page accesses per operation — comparable to
    /// `CostModel::mix_cost`.
    pub fn mean_cost(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.total_accesses() as f64 / self.operations as f64
        }
    }
}

/// Draw `count` concrete operations from the mix's distribution.
pub fn generate_trace(
    generated: &GeneratedBase,
    mix: &Mix,
    count: usize,
    seed: u64,
) -> Vec<TraceOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trace = Vec::with_capacity(count);
    let pick_weighted = |ops: &[(f64, Op)], rng: &mut SmallRng| -> Option<Op> {
        let total: f64 = ops.iter().map(|(w, _)| w).sum();
        if total <= 0.0 {
            return None;
        }
        let mut roll = rng.gen_range(0.0..total);
        for (w, op) in ops {
            if roll < *w {
                return Some(*op);
            }
            roll -= w;
        }
        ops.last().map(|(_, op)| *op)
    };
    while trace.len() < count {
        let is_update = rng.gen_bool(mix.p_up);
        let op = if is_update {
            pick_weighted(&mix.updates, &mut rng)
        } else {
            pick_weighted(&mix.queries, &mut rng)
        };
        let Some(op) = op else { continue };
        match op {
            Op::Query { kind, i, j } => match kind {
                QueryKind::Forward => {
                    let level = &generated.levels[i];
                    if level.is_empty() {
                        continue;
                    }
                    let start = level[rng.gen_range(0..level.len())];
                    trace.push(TraceOp::Forward { i, j, start });
                }
                QueryKind::Backward => {
                    let level = &generated.levels[j];
                    if level.is_empty() {
                        continue;
                    }
                    let target = Cell::Oid(level[rng.gen_range(0..level.len())]);
                    trace.push(TraceOp::Backward { i, j, target });
                }
            },
            Op::Insert { i } => {
                // Choose an owner whose step-(i+1) attribute references a
                // set, and a random new element.
                let owners: Vec<usize> = generated.sets[i]
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, s)| s.map(|_| idx))
                    .collect();
                if owners.is_empty() || generated.levels[i + 1].is_empty() {
                    continue;
                }
                let owner_idx = owners[rng.gen_range(0..owners.len())];
                let owner = generated.levels[i][owner_idx];
                let elem = generated.levels[i + 1][rng.gen_range(0..generated.levels[i + 1].len())];
                trace.push(TraceOp::Insert { i, owner, elem });
            }
        }
    }
    trace
}

/// Execute a trace against the database, routing queries through `asr`
/// (with naive fallback, per formula 35) or entirely unindexed when
/// `asr` is `None`.  Returns the metered page-access report.
pub fn execute_trace(
    db: &mut Database,
    asr: Option<AsrId>,
    path: &asr_gom::PathExpression,
    trace: &[TraceOp],
) -> TraceReport {
    let mut report = TraceReport::default();
    for op in trace {
        let before = db.stats().accesses();
        match op {
            TraceOp::Forward { i, j, start } => {
                let _ = match asr {
                    Some(id) => db.forward(id, *i, *j, *start),
                    None => db.forward_unindexed(path, *i, *j, *start),
                };
                report.queries += 1;
                report.query_accesses += db.stats().accesses() - before;
            }
            TraceOp::Backward { i, j, target } => {
                let _ = match asr {
                    Some(id) => db.backward(id, *i, *j, target),
                    None => db.backward_unindexed(path, *i, *j, target),
                };
                report.queries += 1;
                report.query_accesses += db.stats().accesses() - before;
            }
            TraceOp::Insert { i, owner, elem } => {
                let attr = format!("A{}", i + 1);
                if let Ok(Some(set)) = db
                    .base()
                    .get_attribute(*owner, &attr)
                    .map(|v| v.as_ref_oid())
                {
                    let _ = db.insert_into_set(set, Value::Ref(*elem));
                }
                report.updates += 1;
                report.update_accesses += db.stats().accesses() - before;
            }
        }
        report.operations += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorSpec};
    use asr_core::{AsrConfig, Decomposition, Extension};

    fn setup() -> GeneratedBase {
        generate(
            &GeneratorSpec {
                counts: vec![10, 20, 30, 40],
                defined: vec![9, 16, 24],
                fan: vec![2, 2, 2],
                sizes: vec![400, 300, 200, 100],
            },
            11,
        )
    }

    fn mix() -> Mix {
        Mix::new(
            vec![(0.5, Op::bw(0, 3)), (0.5, Op::fw(0, 3))],
            vec![(1.0, Op::ins(1))],
            0.4,
        )
    }

    #[test]
    fn trace_generation_is_seeded_and_sized() {
        let g = setup();
        let a = generate_trace(&g, &mix(), 50, 5);
        let b = generate_trace(&g, &mix(), 50, 5);
        assert_eq!(a.len(), 50);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same trace");
        let c = generate_trace(&g, &mix(), 50, 6);
        assert_ne!(format!("{a:?}"), format!("{c:?}"), "different seed differs");
    }

    #[test]
    fn executing_against_asr_is_cheaper_than_unindexed() {
        let g1 = setup();
        let trace = generate_trace(
            &g1,
            &Mix::new(vec![(1.0, Op::bw(0, 3))], vec![], 0.0),
            20,
            7,
        );

        let mut unindexed = setup();
        let path = unindexed.path.clone();
        let rep_naive = execute_trace(&mut unindexed.db, None, &path, &trace);

        let mut indexed = setup();
        let m = indexed.path.arity(false) - 1;
        let id = indexed
            .db
            .create_asr(
                indexed.path.clone(),
                AsrConfig {
                    extension: Extension::Full,
                    decomposition: Decomposition::binary(m),
                    keep_set_oids: false,
                },
            )
            .unwrap();
        indexed.db.stats().reset();
        let path = indexed.path.clone();
        let rep_asr = execute_trace(&mut indexed.db, Some(id), &path, &trace);

        assert_eq!(rep_naive.operations, 20);
        assert_eq!(rep_asr.queries, 20);
        assert!(
            rep_asr.total_accesses() < rep_naive.total_accesses(),
            "ASR {} !< naive {}",
            rep_asr.total_accesses(),
            rep_naive.total_accesses()
        );
    }

    #[test]
    fn updates_are_counted_separately() {
        let mut g = setup();
        let trace = generate_trace(&g, &Mix::new(vec![], vec![(1.0, Op::ins(1))], 1.0), 10, 3);
        let path = g.path.clone();
        let report = execute_trace(&mut g.db, None, &path, &trace);
        assert_eq!(report.updates, 10);
        assert_eq!(report.queries, 0);
        assert!(report.update_accesses > 0);
        assert!(report.mean_cost() > 0.0);
    }
}
