//! # asr-workload — synthetic object bases from application profiles
//!
//! The paper's experiments are parameterized by *application profiles*
//! (Figure 3): per-position object counts `c_i`, defined-attribute counts
//! `d_i`, fan-outs `fan_i` and object sizes `size_i`.  This crate turns a
//! profile into a **live, populated object base** (with registered
//! clustered files sized per `size_i`) so the analytical predictions of
//! `asr-costmodel` can be validated against *measured* page accesses on
//! the real structures of `asr-core` / `asr-pagesim`.
//!
//! It also provides the paper's two running example schemas (the robot
//! chain of Section 2.2 and the Company/Division/Product/BasePart schema
//! of Section 2.3) and an executable operation-trace generator for
//! operation mixes (Section 6.4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generator;
pub mod schemas;
pub mod trace;

pub use generator::{generate, scale_profile, GeneratedBase, GeneratorSpec};
pub use schemas::{company_database, robot_database, ExampleDb};
pub use trace::{execute_trace, generate_trace, TraceOp, TraceReport};
