//! # asr-advisor — usage-driven physical database design
//!
//! The paper closes with a vision (Section 7):
//!
//! > "in a 'real' database application one should periodically verify
//! > that the once envisioned usage profile actually remains valid under
//! > operation.  Therefore, the cost model is intended to be integrated
//! > into our object-oriented DBMS in order to verify a given physical
//! > database design, or even to automate the task of physical database
//! > design.  Thus, for a recorded database usage pattern the system
//! > could (semi-)automatically adjust the physical database design."
//!
//! This crate implements that loop:
//!
//! 1. [`derive_profile`] *measures* the application parameters of
//!    Figure 3 (`c_i, d_i, fan_i, shar_i, size_i`) from the live object
//!    base instead of asking the designer to guess them;
//! 2. [`UsageRecorder`] accumulates the observed operation mix
//!    (span queries and `ins_i` updates) into the paper's
//!    `M = (Q_mix, U_mix, P_up)`;
//! 3. [`advise()`](advise()) feeds both into the analytical cost model's design
//!    enumeration and returns a ranked recommendation;
//! 4. [`Advice::apply`] materializes the winning extension ×
//!    decomposition as an actual access support relation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod advise;
pub mod profile;
pub mod recorder;
pub mod subscribe;

pub use advise::{advise, verify, Advice, Verification};
pub use profile::derive_profile;
pub use recorder::UsageRecorder;
pub use subscribe::RecorderSink;
