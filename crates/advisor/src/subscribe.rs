//! Subscribing a [`UsageRecorder`] to the observability event stream.
//!
//! The query layer announces every span query it performs as a semantic
//! trace event (`usage.backward`, `usage.forward`, `usage.insert` with
//! `i`/`j` attributes).  [`RecorderSink`] adapts those events into
//! recorder tallies, so the advisor sees the *actual* operation mix of a
//! session without the front-end calling the recorder by hand.

use std::cell::RefCell;
use std::rc::Rc;

use asr_obs::{EventSink, SpanRecord, Tracer};

use crate::recorder::UsageRecorder;

/// An [`EventSink`] that folds `usage.*` trace events into a shared
/// [`UsageRecorder`].
pub struct RecorderSink {
    recorder: Rc<RefCell<UsageRecorder>>,
}

impl RecorderSink {
    /// Subscribe `recorder` to whatever tracer this sink is attached to.
    pub fn new(recorder: Rc<RefCell<UsageRecorder>>) -> Self {
        RecorderSink { recorder }
    }

    /// Convenience: create a fresh shared recorder, attach a sink for it
    /// to `tracer`, and hand the recorder back.
    pub fn subscribe(tracer: &Tracer) -> Rc<RefCell<UsageRecorder>> {
        let recorder = Rc::new(RefCell::new(UsageRecorder::new()));
        tracer.add_sink(Rc::new(RecorderSink::new(Rc::clone(&recorder))));
        recorder
    }

    fn span_of(record: &SpanRecord) -> Option<(usize, usize)> {
        let i = record.attr("i")?.parse().ok()?;
        let j = record.attr("j")?.parse().ok()?;
        Some((i, j))
    }
}

impl EventSink for RecorderSink {
    fn record(&self, record: &SpanRecord) {
        if !record.event {
            return;
        }
        match record.name.as_str() {
            "usage.backward" => {
                if let Some((i, j)) = Self::span_of(record) {
                    self.recorder.borrow_mut().record_backward(i, j);
                }
            }
            "usage.forward" => {
                if let Some((i, j)) = Self::span_of(record) {
                    self.recorder.borrow_mut().record_forward(i, j);
                }
            }
            "usage.insert" => {
                if let Some(i) = record.attr("i").and_then(|v| v.parse().ok()) {
                    self.recorder.borrow_mut().record_insert(i);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_events_reach_the_recorder() {
        let tracer = Tracer::new();
        let recorder = RecorderSink::subscribe(&tracer);
        tracer.event(
            "usage.backward",
            &[("i", "0".to_string()), ("j", "4".to_string())],
        );
        tracer.event(
            "usage.forward",
            &[("i", "0".to_string()), ("j", "2".to_string())],
        );
        tracer.event("usage.insert", &[("i", "3".to_string())]);
        tracer.event("unrelated", &[]);
        let r = recorder.borrow();
        assert_eq!(r.query_count(), 2);
        assert_eq!(r.update_count(), 1);
    }

    #[test]
    fn malformed_and_non_event_records_are_ignored() {
        let tracer = Tracer::new();
        let recorder = RecorderSink::subscribe(&tracer);
        // Missing attributes.
        tracer.event("usage.backward", &[("i", "0".to_string())]);
        tracer.event(
            "usage.forward",
            &[("i", "x".to_string()), ("j", "2".to_string())],
        );
        // A *span* named like a usage event still does not count.
        tracer.span("usage.backward").finish();
        assert!(recorder.borrow().is_empty());
    }
}
