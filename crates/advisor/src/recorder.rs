//! Recording the observed operation mix.
//!
//! A [`UsageRecorder`] tallies the span queries and `ins_i` updates an
//! application actually performs; [`UsageRecorder::to_mix`] converts the
//! tallies into the paper's `M = (Q_mix, U_mix, P_up)` with weights
//! proportional to the observed frequencies.

use std::collections::BTreeMap;

use asr_costmodel::{Mix, Op, QueryKind};

/// Tallies of observed operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageRecorder {
    queries: BTreeMap<(bool, usize, usize), u64>,
    updates: BTreeMap<usize, u64>,
}

impl UsageRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a forward span query `Q_{i,j}(fw)`.
    pub fn record_forward(&mut self, i: usize, j: usize) {
        *self.queries.entry((true, i, j)).or_default() += 1;
    }

    /// Record a backward span query `Q_{i,j}(bw)`.
    pub fn record_backward(&mut self, i: usize, j: usize) {
        *self.queries.entry((false, i, j)).or_default() += 1;
    }

    /// Record an insertion at edge position `i` (`ins_i`).
    pub fn record_insert(&mut self, i: usize) {
        *self.updates.entry(i).or_default() += 1;
    }

    /// Total recorded queries.
    pub fn query_count(&self) -> u64 {
        self.queries.values().sum()
    }

    /// Total recorded updates.
    pub fn update_count(&self) -> u64 {
        self.updates.values().sum()
    }

    /// The observed update probability `P_up`.
    pub fn p_up(&self) -> f64 {
        let q = self.query_count() as f64;
        let u = self.update_count() as f64;
        if q + u == 0.0 {
            0.0
        } else {
            u / (q + u)
        }
    }

    /// Has anything been recorded?
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty() && self.updates.is_empty()
    }

    /// Convert the tallies into an operation mix.
    pub fn to_mix(&self) -> Mix {
        let q_total = self.query_count().max(1) as f64;
        let queries: Vec<(f64, Op)> = self
            .queries
            .iter()
            .map(|(&(fw, i, j), &count)| {
                let op = if fw {
                    Op::Query {
                        kind: QueryKind::Forward,
                        i,
                        j,
                    }
                } else {
                    Op::Query {
                        kind: QueryKind::Backward,
                        i,
                        j,
                    }
                };
                (count as f64 / q_total, op)
            })
            .collect();
        let u_total = self.update_count().max(1) as f64;
        let updates: Vec<(f64, Op)> = self
            .updates
            .iter()
            .map(|(&i, &count)| (count as f64 / u_total, Op::ins(i)))
            .collect();
        Mix::new(queries, updates, self.p_up())
    }

    /// Merge another recorder's tallies into this one (e.g. per-session
    /// recorders folded into a global history).
    pub fn merge(&mut self, other: &UsageRecorder) {
        for (k, v) in &other.queries {
            *self.queries.entry(*k).or_default() += v;
        }
        for (k, v) in &other.updates {
            *self.updates.entry(*k).or_default() += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_and_p_up() {
        let mut r = UsageRecorder::new();
        assert!(r.is_empty());
        r.record_backward(0, 4);
        r.record_backward(0, 4);
        r.record_forward(1, 2);
        r.record_insert(3);
        assert_eq!(r.query_count(), 3);
        assert_eq!(r.update_count(), 1);
        assert!((r.p_up() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mix_weights_proportional() {
        let mut r = UsageRecorder::new();
        for _ in 0..3 {
            r.record_backward(0, 4);
        }
        r.record_forward(0, 2);
        r.record_insert(2);
        r.record_insert(2);
        r.record_insert(3);
        let mix = r.to_mix();
        assert_eq!(mix.queries.len(), 2);
        let bw = mix
            .queries
            .iter()
            .find(|(_, op)| {
                matches!(
                    op,
                    Op::Query {
                        kind: QueryKind::Backward,
                        ..
                    }
                )
            })
            .unwrap();
        assert!((bw.0 - 0.75).abs() < 1e-12);
        let ins2 = mix
            .updates
            .iter()
            .find(|(_, op)| *op == Op::ins(2))
            .unwrap();
        assert!((ins2.0 - 2.0 / 3.0).abs() < 1e-12);
        assert!((mix.p_up - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = UsageRecorder::new();
        a.record_backward(0, 3);
        let mut b = UsageRecorder::new();
        b.record_backward(0, 3);
        b.record_insert(1);
        a.merge(&b);
        assert_eq!(a.query_count(), 2);
        assert_eq!(a.update_count(), 1);
    }

    #[test]
    fn empty_recorder_produces_neutral_mix() {
        let mix = UsageRecorder::new().to_mix();
        assert!(mix.queries.is_empty());
        assert!(mix.updates.is_empty());
        assert_eq!(mix.p_up, 0.0);
    }
}
