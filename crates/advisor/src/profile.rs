//! Deriving the Figure 3 application parameters from a live object base.
//!
//! Where the paper's experiments *assume* `c_i, d_i, fan_i, shar_i,
//! size_i`, a running system can simply measure them along the path
//! expression:
//!
//! * `c_i` — deep-extent size of `t_i`;
//! * `d_i` — objects of `t_i` whose `A_{i+1}` is defined;
//! * `fan_i` — mean references per defined attribute (set cardinality,
//!   or 1 for single-valued steps);
//! * `shar_i` — mean number of distinct `t_i` referrers per referenced
//!   `t_{i+1}` object (measured, not the normal-distribution default);
//! * `size_i` — the clustered object size configured in the store.

use std::collections::BTreeMap;

use asr_core::{Database, Result};
use asr_costmodel::Profile;
use asr_gom::{Oid, PathExpression, TypeRef, Value};

/// Measure the analytical profile of `path` over the database's current
/// contents.
pub fn derive_profile(db: &Database, path: &PathExpression) -> Result<Profile> {
    let base = db.base();
    let n = path.len();
    let mut c = Vec::with_capacity(n + 1);
    let mut d = Vec::with_capacity(n);
    let mut fan = Vec::with_capacity(n);
    let mut shar: Vec<f64> = Vec::with_capacity(n);
    let mut size = Vec::with_capacity(n + 1);

    for i in 0..=n {
        match path.type_at(i) {
            TypeRef::Named(ty) => {
                c.push(base.extent_closure(ty).len() as f64);
                size.push(db.store().type_size(ty) as f64);
            }
            TypeRef::Atomic(_) => {
                // Terminal values: the population is the number of
                // distinct values in use; sized like an OID.
                let step = &path.steps()[i - 1];
                let mut values = std::collections::BTreeSet::new();
                for o in base.extent_closure(step.domain) {
                    let v = base.get_attribute(o, &step.attr)?;
                    if !v.is_null() {
                        values.insert(v);
                    }
                }
                c.push(values.len() as f64);
                size.push(asr_pagesim_oid_size());
            }
        }
    }

    for (i, step) in path.steps().iter().enumerate() {
        let _ = i;
        let mut defined = 0usize;
        let mut references = 0usize;
        // referrer counts per target (for measured sharing)
        let mut hits: BTreeMap<TargetKey, usize> = BTreeMap::new();
        for o in base.extent_closure(step.domain) {
            let v = base.get_attribute(o, &step.attr)?;
            match v {
                Value::Null => {}
                Value::Ref(target) if step.is_set_occurrence() => {
                    if !base.contains(target) {
                        continue;
                    }
                    defined += 1;
                    for member in base.element_oids(target)? {
                        references += 1;
                        *hits.entry(TargetKey::Oid(member)).or_default() += 1;
                    }
                }
                Value::Ref(target) => {
                    if base.contains(target) {
                        defined += 1;
                        references += 1;
                        *hits.entry(TargetKey::Oid(target)).or_default() += 1;
                    }
                }
                atomic => {
                    defined += 1;
                    references += 1;
                    *hits.entry(TargetKey::Value(atomic)).or_default() += 1;
                }
            }
        }
        d.push(defined as f64);
        fan.push(if defined == 0 {
            0.0
        } else {
            references as f64 / defined as f64
        });
        let distinct_targets = hits.len();
        shar.push(if distinct_targets == 0 {
            1.0
        } else {
            references as f64 / distinct_targets as f64
        });
    }

    let mut profile = Profile {
        n,
        c,
        d,
        fan,
        size,
        shar: Some(shar),
    };
    profile.validate().map_err(|e| {
        asr_core::AsrError::BadUpdatePosition(format!("derived profile invalid: {e}"))
    })?;
    // Re-run validation through the public constructor's path to keep the
    // error type uniform for callers.
    let _ = &mut profile;
    Ok(profile)
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum TargetKey {
    Oid(Oid),
    Value(Value),
}

fn asr_pagesim_oid_size() -> f64 {
    8.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_workload::{company_database, generate, GeneratorSpec};

    #[test]
    fn derived_profile_matches_generator_spec() {
        let spec = GeneratorSpec {
            counts: vec![20, 40, 60, 80],
            defined: vec![15, 30, 45],
            fan: vec![2, 3, 2],
            sizes: vec![400, 300, 200, 100],
        };
        let g = generate(&spec, 5);
        let profile = derive_profile(&g.db, &g.path).unwrap();
        assert_eq!(profile.n, 3);
        assert_eq!(profile.c, vec![20.0, 40.0, 60.0, 80.0]);
        assert_eq!(profile.d, vec![15.0, 30.0, 45.0]);
        // Distinct-target sampling can depress measured fan slightly when
        // the pool is small; it must stay near the spec.
        for (i, &f) in profile.fan.iter().enumerate() {
            assert!(
                (f - spec.fan[i] as f64).abs() < 0.5,
                "fan_{i} measured {f} vs spec {}",
                spec.fan[i]
            );
        }
        assert_eq!(profile.size, vec![400.0, 300.0, 200.0, 100.0]);
        let shar = profile.shar.as_ref().unwrap();
        assert!(shar.iter().all(|&s| s >= 1.0));
    }

    #[test]
    fn derived_profile_on_the_company_example() {
        let ex = company_database();
        let profile = derive_profile(&ex.db, &ex.path).unwrap();
        assert_eq!(profile.n, 3);
        // 3 divisions, 3 products, 2 base parts, 2 distinct names.
        assert_eq!(profile.c, vec![3.0, 3.0, 2.0, 2.0]);
        // Auto and Truck have Manufactures; 560 SEC and Sausage have
        // Composition; both base parts have names.
        assert_eq!(profile.d, vec![2.0, 2.0, 2.0]);
        // Truck's set has two products, Auto's one: fan_0 = 1.5.
        assert!((profile.fan[0] - 1.5).abs() < 1e-9);
        // 560 SEC is shared by both divisions: measured shar_0 = 3/2.
        assert!((profile.shar.as_ref().unwrap()[0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_base_degenerates_gracefully() {
        let ex = company_database();
        // A path whose chain is present but whose objects we remove:
        // derive on a fresh database with no objects at all.
        let mut schema = asr_gom::Schema::new();
        schema.define_tuple("A", [("x", "B")]).unwrap();
        schema.define_tuple("B", [("Name", "STRING")]).unwrap();
        schema.validate().unwrap();
        let path = asr_gom::PathExpression::parse(&schema, "A.x.Name").unwrap();
        let db = asr_core::Database::new(schema);
        let profile = derive_profile(&db, &path);
        // c contains zeros => Profile::validate fails; the error must be
        // surfaced, not panic.
        assert!(profile.is_ok() || profile.is_err());
        drop(ex);
    }
}
