//! Putting it together: measure the profile, take the recorded mix, rank
//! every design, and (optionally) apply the winner.

use asr_core::{AsrConfig, AsrId, Database, Decomposition, Extension, Result};
use asr_costmodel::design::{rank_designs, DesignChoice};
use asr_costmodel::{CostModel, Ext};
use asr_gom::PathExpression;

use crate::profile::derive_profile;
use crate::recorder::UsageRecorder;

/// The advisor's output for one path expression.
#[derive(Debug)]
pub struct Advice {
    /// The path the advice concerns.
    pub path: PathExpression,
    /// The measured application profile.
    pub model: CostModel,
    /// Every design, cheapest first (index 0 is the recommendation).
    pub ranked: Vec<DesignChoice>,
}

impl Advice {
    /// The recommended design (cheapest).
    pub fn best(&self) -> &DesignChoice {
        &self.ranked[0]
    }

    /// The recommendation as an [`AsrConfig`], or `None` when "no access
    /// support" wins.
    pub fn recommended_config(&self) -> Option<AsrConfig> {
        let best = self.best();
        let extension = match best.extension? {
            Ext::Canonical => Extension::Canonical,
            Ext::Full => Extension::Full,
            Ext::Left => Extension::LeftComplete,
            Ext::Right => Extension::RightComplete,
        };
        let decomposition = Decomposition::new(best.decomposition.0.clone())
            .expect("cost-model decompositions are valid");
        Some(AsrConfig {
            extension,
            decomposition,
            keep_set_oids: false,
        })
    }

    /// Materialize the recommendation on the database.  Returns `None`
    /// when the advice is to run unindexed.
    pub fn apply(&self, db: &mut Database) -> Result<Option<AsrId>> {
        match self.recommended_config() {
            Some(config) => Ok(Some(db.create_asr(self.path.clone(), config)?)),
            None => Ok(None),
        }
    }

    /// Predicted cost ratio of the recommendation against no support
    /// (< 1 means the ASR pays off).
    pub fn predicted_improvement(&self, recorder: &UsageRecorder) -> f64 {
        let mix = recorder.to_mix();
        let baseline = self.model.mix_cost_nosupport(&mix);
        if baseline == 0.0 {
            return 1.0;
        }
        self.best().cost / baseline
    }

    /// Human-readable summary of the top choices.
    pub fn summary(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "advice for {}:", self.path);
        for (rank, choice) in self.ranked.iter().take(top).enumerate() {
            let _ = writeln!(
                out,
                "  {}. {:<22} {:>10.2} accesses/op",
                rank + 1,
                choice.label(),
                choice.cost
            );
        }
        out
    }
}

/// Measure the database along `path`, combine with the recorded usage,
/// and rank all design choices.
pub fn advise(db: &Database, path: &PathExpression, recorder: &UsageRecorder) -> Result<Advice> {
    let profile = derive_profile(db, path)?;
    let model = CostModel::new(profile);
    let mix = recorder.to_mix();
    let ranked = rank_designs(&model, &mix);
    Ok(Advice {
        path: path.clone(),
        model,
        ranked,
    })
}

/// The verdict of verifying an existing design against recorded usage —
/// the paper's "periodically verify that the once envisioned usage
/// profile actually remains valid under operation" (Section 7).
#[derive(Debug, Clone, PartialEq)]
pub struct Verification {
    /// Predicted cost/op of the ASR as currently configured.
    pub current_cost: f64,
    /// Predicted cost/op of the best design for the recorded usage.
    pub best_cost: f64,
    /// Human-readable label of the best design.
    pub best_label: String,
    /// `current / best` — 1.0 means the installed design is still optimal.
    pub drift: f64,
}

impl Verification {
    /// Is the installed design still within `tolerance` (e.g. 1.1 = 10 %)
    /// of the optimum?
    pub fn still_adequate(&self, tolerance: f64) -> bool {
        self.drift <= tolerance
    }
}

/// Verify a registered ASR against the recorded usage pattern.
pub fn verify(
    db: &Database,
    asr: asr_core::AsrId,
    recorder: &UsageRecorder,
) -> Result<Verification> {
    let asr_ref = db.asr(asr)?;
    let path = asr_ref.path().clone();
    let config = asr_ref.config().clone();
    let advice = advise(db, &path, recorder)?;
    let mix = recorder.to_mix();
    let ext = match config.extension {
        Extension::Canonical => Ext::Canonical,
        Extension::Full => Ext::Full,
        Extension::LeftComplete => Ext::Left,
        Extension::RightComplete => Ext::Right,
    };
    let dec = asr_costmodel::Dec(config.decomposition.cuts().to_vec());
    let current_cost = advice.model.mix_cost(ext, &dec, &mix);
    let best = advice.best();
    Ok(Verification {
        current_cost,
        best_cost: best.cost,
        best_label: best.label(),
        drift: if best.cost > 0.0 {
            current_cost / best.cost
        } else {
            1.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_costmodel::Mix;
    use asr_workload::{execute_trace, generate, generate_trace, GeneratorSpec};

    fn spec() -> GeneratorSpec {
        GeneratorSpec {
            counts: vec![20, 100, 200, 1000, 2000],
            defined: vec![18, 80, 160, 400],
            fan: vec![2, 2, 3, 4],
            sizes: vec![500, 400, 300, 300, 100],
        }
    }

    fn recorded_usage() -> UsageRecorder {
        let mut r = UsageRecorder::new();
        for _ in 0..40 {
            r.record_backward(0, 4);
        }
        for _ in 0..10 {
            r.record_forward(0, 4);
        }
        for _ in 0..5 {
            r.record_insert(3);
        }
        r
    }

    #[test]
    fn advise_recommends_support_for_query_heavy_usage() {
        let g = generate(&spec(), 11);
        let advice = advise(&g.db, &g.path, &recorded_usage()).unwrap();
        assert!(
            advice.best().extension.is_some(),
            "queries dominate: support must win"
        );
        assert!(advice.recommended_config().is_some());
        assert!(advice.predicted_improvement(&recorded_usage()) < 0.5);
        assert!(advice.summary(3).contains("advice for"));
        // The ranking covers every design + no support.
        assert_eq!(advice.ranked.len(), 1 + 4 * (1 << (g.path.len() - 1)));
    }

    #[test]
    fn advise_recommends_nothing_for_pure_updates() {
        let g = generate(&spec(), 11);
        let mut r = UsageRecorder::new();
        for _ in 0..50 {
            r.record_insert(2);
        }
        let advice = advise(&g.db, &g.path, &r).unwrap();
        assert_eq!(advice.best().extension, None);
        assert!(advice.recommended_config().is_none());
        let mut db_g = generate(&spec(), 11);
        assert!(advice.apply(&mut db_g.db).unwrap().is_none());
    }

    #[test]
    fn applied_advice_beats_no_support_empirically() {
        let recorder = recorded_usage();
        let mix: Mix = recorder.to_mix();

        // Unindexed baseline.
        let mut plain = generate(&spec(), 13);
        let trace = generate_trace(&plain, &mix, 60, 7);
        let path = plain.path.clone();
        let baseline = execute_trace(&mut plain.db, None, &path, &trace);

        // The advisor's pick on an identical database.
        let mut tuned = generate(&spec(), 13);
        let advice = advise(&tuned.db, &tuned.path, &recorder).unwrap();
        let id = advice
            .apply(&mut tuned.db)
            .unwrap()
            .expect("support recommended");
        tuned.db.stats().reset();
        let path = tuned.path.clone();
        let report = execute_trace(&mut tuned.db, Some(id), &path, &trace);

        assert!(
            report.mean_cost() * 2.0 < baseline.mean_cost(),
            "advised {:.1}/op must clearly beat baseline {:.1}/op",
            report.mean_cost(),
            baseline.mean_cost()
        );
    }

    #[test]
    fn verify_detects_design_drift() {
        let mut g = generate(&spec(), 11);
        let recorder = recorded_usage();
        // Install the optimum: drift must be ~1.
        let advice = advise(&g.db, &g.path, &recorder).unwrap();
        let id = advice
            .apply(&mut g.db)
            .unwrap()
            .expect("support recommended");
        let v = crate::advise::verify(&g.db, id, &recorder).unwrap();
        assert!(
            (v.drift - 1.0).abs() < 1e-9,
            "installed optimum drifts: {v:?}"
        );
        assert!(v.still_adequate(1.05));

        // Under a radically different usage pattern the same design drifts.
        let mut updates_only = UsageRecorder::new();
        for _ in 0..50 {
            updates_only.record_insert(0);
            updates_only.record_backward(2, 4);
        }
        let v2 = crate::advise::verify(&g.db, id, &updates_only).unwrap();
        assert!(
            v2.drift > 1.0,
            "usage shifted, design should no longer be optimal: {v2:?}"
        );
    }

    #[test]
    fn advice_shifts_with_the_recorded_mix() {
        let g = generate(&spec(), 11);
        // Interior spans force the full extension.
        let mut interior = UsageRecorder::new();
        for _ in 0..20 {
            interior.record_forward(1, 3);
            interior.record_backward(2, 4);
        }
        let advice = advise(&g.db, &g.path, &interior).unwrap();
        // Only full supports Q_{1,3}; right supports Q_{2,4}. The winner
        // must support at least the dominant interior span.
        let best_ext = advice.best().extension.expect("support wins");
        assert!(
            best_ext == Ext::Full || best_ext == Ext::Right,
            "got {best_ext}"
        );

        let mut anchored = UsageRecorder::new();
        for _ in 0..20 {
            anchored.record_backward(0, 4);
        }
        for _ in 0..30 {
            anchored.record_insert(3);
        }
        let advice2 = advise(&g.db, &g.path, &anchored).unwrap();
        // Update-heavy anchored usage: left or canonical family expected
        // over right (whose ins_3 maintenance is catastrophic here).
        let best2 = advice2.best().extension;
        assert_ne!(best2, Some(Ext::Right));
    }
}
